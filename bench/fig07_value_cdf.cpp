/**
 * Figure 7: CDF of the most frequent unique values for the register
 * and memory data buses of gcc, su2cor, swim and turb3d.
 */

#include "bench/bench_common.h"
#include "trace/trace_stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<std::size_t> ks = {1,    2,    5,     10,   20,
                                         50,   100,  200,   500,  1000,
                                         2000, 5000, 10000, 20000,
                                         50000, 100000};

    std::vector<std::string> header = {"top_k_unique_values"};
    struct Series
    {
        std::string name;
        std::vector<double> cdf;
    };
    std::vector<Series> series;
    for (const auto &wl : bench::statsBenchmarks()) {
        for (const auto bus :
             {trace::BusKind::Register, trace::BusKind::Memory}) {
            Series s;
            s.name = wl + (bus == trace::BusKind::Register
                               ? ", reg bus"
                               : ", memory data bus");
            s.cdf = trace::uniqueValueCdf(bench::seriesValues(wl, bus));
            header.push_back(s.name);
            series.push_back(std::move(s));
        }
    }

    Table table(header);
    for (std::size_t k : ks) {
        table.row().cell(static_cast<long long>(k));
        for (const auto &s : series) {
            const double frac =
                s.cdf.empty()
                    ? 0.0
                    : s.cdf[std::min(k, s.cdf.size()) - 1];
            table.cell(frac, 4);
        }
    }
    bench::emit(
        "Fig 7: fraction of total values covered by top-k uniques",
        table, argc, argv);
    return 0;
}
