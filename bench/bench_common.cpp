#include "bench/bench_common.h"

#include "workloads/workload.h"

namespace predbus::bench
{

std::vector<std::string>
workloadSeries()
{
    std::vector<std::string> names;
    for (const auto &info : workloads::all())
        names.push_back(info.name);
    return names;
}

std::vector<std::string>
seriesWithRandom()
{
    std::vector<std::string> names = {"random"};
    for (const auto &name : workloadSeries())
        names.push_back(name);
    return names;
}

std::vector<std::string>
statsBenchmarks()
{
    return {"gcc", "su2cor", "swim", "turb3d"};
}

std::vector<Word>
seriesValues(const std::string &series, trace::BusKind bus)
{
    const analysis::SuiteOptions opt = analysis::SuiteOptions::fromEnv();
    if (series == "random") {
        // Sized like a typical register trace for the cycle budget.
        return analysis::randomValues(
            static_cast<std::size_t>(opt.cycles * 3 / 4),
            0xD1CE + static_cast<u64>(bus));
    }
    return analysis::busValues(series, bus, opt);
}

void
emit(const std::string &title, const Table &table, int argc,
     char **argv)
{
    const bool csv = wantCsv(argc, argv);
    if (!csv)
        std::cout << "# " << title << "\n\n";
    if (csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << std::endl;
}

double
removedPercent(const coding::CodingResult &result)
{
    return 100.0 * result.removedFraction(1.0);
}

Table
sweepTable(const std::string &param_name,
           const std::vector<unsigned> &params,
           const std::vector<std::string> &series, trace::BusKind bus,
           const CodecFactory &make)
{
    // Load all streams first so simulator output doesn't interleave
    // with the table.
    std::vector<std::vector<Word>> streams;
    std::vector<std::string> header = {param_name};
    for (const auto &name : series) {
        streams.push_back(seriesValues(name, bus));
        header.push_back(name);
    }

    Table table(header);
    for (unsigned p : params) {
        table.row().cell(static_cast<long long>(p));
        for (const auto &stream : streams) {
            auto codec = make(p);
            const coding::CodingResult r =
                coding::evaluate(*codec, stream);
            table.cell(removedPercent(r), 2);
        }
    }
    return table;
}

} // namespace predbus::bench
