/**
 * @file
 * predbus_bench — the one driver for every registered experiment.
 *
 * Replaces the thirty standalone fig/table/ablation/ext binaries:
 *
 *   predbus_bench --list
 *   predbus_bench --filter 'fig19*' --format csv
 *   predbus_bench --jobs 8 --out results --format json
 *   predbus_bench --metrics=m.json --trace-out=t.json --progress
 *
 * Experiment names match the former binary names, so any published
 * reproduction command maps 1:1. Honors PREDBUS_CYCLES and
 * PREDBUS_TRACE_DIR like the binaries it replaces, and PREDBUS_LOG_LEVEL
 * for diagnostics. Observability artifacts (docs/OBSERVABILITY.md):
 * --metrics emits the run manifest + metrics report, --trace-out the
 * Chrome trace of the run's parallelism, --progress a live ticker.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "analysis/suite.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracing.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_bench [options] [name-glob...]\n"
          "\n"
          "  --list            list experiments and exit\n"
          "  --filter GLOB     run experiments matching GLOB "
          "(repeatable;\n"
          "                    positional arguments are filters too)\n"
          "  --jobs N          worker threads (default: hardware "
          "threads;\n"
          "                    results are identical for any N)\n"
          "  --format FMT      table | csv | json (default: table)\n"
          "  --csv             shorthand for --format csv\n"
          "  --out DIR         write one file per experiment "
          "(NAME.EXT)\n"
          "                    into DIR instead of stdout\n"
          "  --metrics[=FILE]  emit the metrics report + run manifest "
          "JSON\n"
          "                    to FILE (stderr if no FILE)\n"
          "  --trace-out=FILE  record phase tracing; write Chrome\n"
          "                    trace-event JSON to FILE\n"
          "  --progress        single-line progress ticker on stderr\n"
          "                    (auto-disabled when not a TTY)\n"
          "  --help            this text\n"
          "\n"
          "Environment: PREDBUS_CYCLES (trace length), "
          "PREDBUS_TRACE_DIR (cache),\n"
          "PREDBUS_LOG_LEVEL (error|warn|info|debug).\n";
}

struct Options
{
    bool list = false;
    std::vector<std::string> filters;
    unsigned jobs = 0;
    analysis::Format format = analysis::Format::Table;
    std::string out_dir;
    bool metrics = false;
    std::string metrics_file;  ///< empty: report goes to stderr
    std::string trace_out;
    bool progress = false;
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--filter") {
            opt.filters.push_back(argValue(argc, argv, i, arg));
        } else if (arg == "--jobs" || arg == "-j") {
            const std::string v = argValue(argc, argv, i, arg);
            try {
                opt.jobs = static_cast<unsigned>(std::stoul(v));
            } catch (const std::exception &) {
                fatal("bad --jobs value '", v, "'");
            }
        } else if (arg == "--format") {
            const std::string v = argValue(argc, argv, i, arg);
            const auto format = analysis::parseFormat(v);
            if (!format)
                fatal("unknown format '", v,
                      "' (expected table, csv, or json)");
            opt.format = *format;
        } else if (arg == "--csv") {
            opt.format = analysis::Format::Csv;
        } else if (arg == "--out") {
            opt.out_dir = argValue(argc, argv, i, arg);
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics = true;
            opt.metrics_file = arg.substr(std::string("--metrics=").size());
        } else if (arg == "--trace-out") {
            opt.trace_out = argValue(argc, argv, i, arg);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.trace_out =
                arg.substr(std::string("--trace-out=").size());
            if (opt.trace_out.empty())
                fatal("missing value for --trace-out");
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "' (see --help)");
        } else {
            opt.filters.push_back(arg);
        }
    }
    return opt;
}

std::vector<const analysis::Experiment *>
selectExperiments(const Options &opt)
{
    const auto &registry = analysis::Registry::instance();
    if (opt.filters.empty())
        return registry.all();

    // Any glob matching nothing is a hard error — a silently dropped
    // typo'd filter looks exactly like a passing run.
    std::vector<std::string> unmatched;
    const std::vector<const analysis::Experiment *> selected =
        analysis::selectByGlobs(registry, opt.filters, &unmatched);
    if (!unmatched.empty()) {
        std::string globs;
        for (const auto &g : unmatched)
            globs += (globs.empty() ? "" : ", ") + g;
        fatal("no experiment matches: ", globs,
              " (try --list for names)");
    }
    return selected;
}

/**
 * Single-line stderr ticker driven by the runner.cells_done/_total
 * counters: "cells 42/96  12.3s elapsed  ETA 15.8s". The total grows
 * as experiments start their grids, so the ETA covers the work known
 * so far. Auto-disabled when stderr is not a TTY (no escape codes in
 * redirected logs).
 */
class ProgressTicker
{
  public:
    ProgressTicker(bool wanted, obs::Registry &registry)
        : done(registry.counter("runner.cells_done")),
          total(registry.counter("runner.cells_total"))
    {
        if (!wanted || !::isatty(::fileno(stderr)))
            return;
        start_time = std::chrono::steady_clock::now();
        thread = std::thread([this] { loop(); });
    }

    ~ProgressTicker()
    {
        if (!thread.joinable())
            return;
        stop.store(true);
        thread.join();
        // Blank the ticker line so ordinary output follows cleanly.
        std::fprintf(stderr, "\r%*s\r", 64, "");
        std::fflush(stderr);
    }

  private:
    void
    loop()
    {
        while (!stop.load()) {
            draw();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
        draw();
    }

    void
    draw()
    {
        const u64 d = done.value();
        const u64 t = total.value();
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_time)
                .count();
        char eta[32] = "?";
        if (d > 0 && t >= d)
            std::snprintf(eta, sizeof(eta), "%.1fs",
                          elapsed * static_cast<double>(t - d) /
                              static_cast<double>(d));
        std::fprintf(stderr,
                     "\rcells %llu/%llu  %.1fs elapsed  ETA %s   ",
                     static_cast<unsigned long long>(d),
                     static_cast<unsigned long long>(t), elapsed,
                     eta);
        std::fflush(stderr);
    }

    obs::Counter &done;
    obs::Counter &total;
    std::chrono::steady_clock::time_point start_time;
    std::atomic<bool> stop{false};
    std::thread thread;
};

void
writeMetrics(const Options &opt,
             const std::vector<std::pair<std::string, double>> &walls)
{
    const analysis::SuiteOptions suite =
        analysis::SuiteOptions::fromEnv();
    obs::ReportContext ctx;
    ctx.tool = "predbus_bench";
    std::string filters;
    for (const auto &f : opt.filters)
        filters += (filters.empty() ? "" : " ") + f;
    ctx.config = {
        {"filters", filters.empty() ? "*" : filters},
        {"jobs", std::to_string(analysis::resolveJobs(opt.jobs))},
        {"format", analysis::formatExtension(opt.format)},
        {"cycles", std::to_string(suite.cycles)},
        {"trace_dir", suite.cache_dir},
    };
    ctx.experiment_wall_ms = walls;

    if (opt.metrics_file.empty()) {
        writeMetricsReport(std::cerr, ctx, obs::Registry::global());
        return;
    }
    std::ofstream os(opt.metrics_file);
    if (!os)
        fatal("cannot write ", opt.metrics_file);
    writeMetricsReport(os, ctx, obs::Registry::global());
    logInfo("wrote metrics report ", opt.metrics_file);
}

void
writeTrace(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write ", path);
    obs::TraceBuffer::global().writeChromeJson(os);
    logInfo("wrote trace ", path);
}

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    const auto &registry = analysis::Registry::instance();

    if (opt.list) {
        std::size_t width = 0;
        for (const auto *exp : registry.all())
            width = std::max(width, exp->name.size());
        for (const auto *exp : registry.all())
            std::cout << exp->name
                      << std::string(width - exp->name.size() + 2, ' ')
                      << exp->description << '\n';
        return 0;
    }

    if (!opt.trace_out.empty())
        obs::TraceBuffer::global().setEnabled(true);

    const auto selected = selectExperiments(opt);
    const analysis::Runner runner(opt.jobs);

    if (!opt.out_dir.empty())
        std::filesystem::create_directories(opt.out_dir);

    std::vector<std::pair<std::string, double>> walls;
    {
        const ProgressTicker ticker(opt.progress,
                                    obs::Registry::global());
        for (const auto *exp : selected) {
            const obs::ScopedTimer span("experiment:" + exp->name);
            const u64 t0 = obs::nowNs();
            const std::vector<analysis::Report> reports =
                exp->run(runner);
            walls.emplace_back(
                exp->name,
                static_cast<double>(obs::nowNs() - t0) / 1e6);
            if (opt.out_dir.empty()) {
                analysis::emitExperiment(std::cout, exp->name,
                                         reports, opt.format);
            } else {
                const std::filesystem::path path =
                    std::filesystem::path(opt.out_dir) /
                    (exp->name + "." +
                     analysis::formatExtension(opt.format));
                std::ofstream os(path);
                if (!os)
                    fatal("cannot write ", path.string());
                analysis::emitExperiment(os, exp->name, reports,
                                         opt.format);
                logInfo("wrote ", path.string());
            }
        }
    }

    if (opt.metrics)
        writeMetrics(opt, walls);
    if (!opt.trace_out.empty())
        writeTrace(opt.trace_out);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        logError("predbus_bench: ", e.what());
        return 1;
    } catch (const PanicError &e) {
        logError("predbus_bench: internal error: ", e.what());
        return 2;
    }
}
