/**
 * @file
 * predbus_bench — the one driver for every registered experiment.
 *
 * Replaces the thirty standalone fig/table/ablation/ext binaries:
 *
 *   predbus_bench --list
 *   predbus_bench --filter 'fig19*' --format csv
 *   predbus_bench --jobs 8 --out results --format json
 *
 * Experiment names match the former binary names, so any published
 * reproduction command maps 1:1. Honors PREDBUS_CYCLES and
 * PREDBUS_TRACE_DIR like the binaries it replaces.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "common/log.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_bench [options] [name-glob...]\n"
          "\n"
          "  --list            list experiments and exit\n"
          "  --filter GLOB     run experiments matching GLOB "
          "(repeatable;\n"
          "                    positional arguments are filters too)\n"
          "  --jobs N          worker threads (default: hardware "
          "threads;\n"
          "                    results are identical for any N)\n"
          "  --format FMT      table | csv | json (default: table)\n"
          "  --csv             shorthand for --format csv\n"
          "  --out DIR         write one file per experiment "
          "(NAME.EXT)\n"
          "                    into DIR instead of stdout\n"
          "  --help            this text\n"
          "\n"
          "Environment: PREDBUS_CYCLES (trace length), "
          "PREDBUS_TRACE_DIR (cache).\n";
}

struct Options
{
    bool list = false;
    std::vector<std::string> filters;
    unsigned jobs = 0;
    analysis::Format format = analysis::Format::Table;
    std::string out_dir;
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--filter") {
            opt.filters.push_back(argValue(argc, argv, i, arg));
        } else if (arg == "--jobs" || arg == "-j") {
            const std::string v = argValue(argc, argv, i, arg);
            try {
                opt.jobs = static_cast<unsigned>(std::stoul(v));
            } catch (const std::exception &) {
                fatal("bad --jobs value '", v, "'");
            }
        } else if (arg == "--format") {
            const std::string v = argValue(argc, argv, i, arg);
            const auto format = analysis::parseFormat(v);
            if (!format)
                fatal("unknown format '", v,
                      "' (expected table, csv, or json)");
            opt.format = *format;
        } else if (arg == "--csv") {
            opt.format = analysis::Format::Csv;
        } else if (arg == "--out") {
            opt.out_dir = argValue(argc, argv, i, arg);
        } else if (!arg.empty() && arg[0] == '-') {
            fatal("unknown option '", arg, "' (see --help)");
        } else {
            opt.filters.push_back(arg);
        }
    }
    return opt;
}

std::vector<const analysis::Experiment *>
selectExperiments(const Options &opt)
{
    const auto &registry = analysis::Registry::instance();
    if (opt.filters.empty())
        return registry.all();

    // Union of all filters, deduped, in registry (sorted) order.
    std::vector<const analysis::Experiment *> selected;
    for (const auto *exp : registry.all()) {
        for (const auto &glob : opt.filters) {
            if (analysis::globMatch(glob, exp->name)) {
                selected.push_back(exp);
                break;
            }
        }
    }
    if (selected.empty()) {
        std::string globs;
        for (const auto &g : opt.filters)
            globs += (globs.empty() ? "" : ", ") + g;
        fatal("no experiment matches ", globs,
              " (try --list for names)");
    }
    return selected;
}

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    const auto &registry = analysis::Registry::instance();

    if (opt.list) {
        std::size_t width = 0;
        for (const auto *exp : registry.all())
            width = std::max(width, exp->name.size());
        for (const auto *exp : registry.all())
            std::cout << exp->name
                      << std::string(width - exp->name.size() + 2, ' ')
                      << exp->description << '\n';
        return 0;
    }

    const auto selected = selectExperiments(opt);
    const analysis::Runner runner(opt.jobs);

    if (!opt.out_dir.empty())
        std::filesystem::create_directories(opt.out_dir);

    for (const auto *exp : selected) {
        const std::vector<analysis::Report> reports =
            exp->run(runner);
        if (opt.out_dir.empty()) {
            analysis::emitExperiment(std::cout, exp->name, reports,
                                     opt.format);
        } else {
            const std::filesystem::path path =
                std::filesystem::path(opt.out_dir) /
                (exp->name + "." +
                 analysis::formatExtension(opt.format));
            std::ofstream os(path);
            if (!os)
                fatal("cannot write ", path.string());
            analysis::emitExperiment(os, exp->name, reports,
                                     opt.format);
            std::cerr << "wrote " << path.string() << '\n';
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        std::cerr << "predbus_bench: " << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << "predbus_bench: internal error: " << e.what()
                  << '\n';
        return 2;
    }
}
