/**
 * Future-work exploration (paper §6): how much headroom would
 * variable-length coding have over the fixed-length transcoder? We
 * compare the window-8 coded cost per word against the zeroth-order
 * entropy of the value stream (an idealized variable-length coder's
 * bits/word, a lower bound on transitions/word for transition-coded
 * output), per workload on the register bus.
 */

#include <cmath>
#include <unordered_map>

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

namespace
{

double
entropyBitsPerWord(const std::vector<Word> &values)
{
    std::unordered_map<Word, u64> freq;
    for (Word v : values)
        ++freq[v];
    const double n = static_cast<double>(values.size());
    double h = 0.0;
    for (const auto &[value, count] : freq) {
        const double p = static_cast<double>(count) / n;
        h -= p * std::log2(p);
    }
    return h;
}

/** First-order (conditional on previous value being equal) repeat
 * fraction, the cheapest structure the transcoder already exploits. */
double
repeatFraction(const std::vector<Word> &values)
{
    if (values.size() < 2)
        return 0.0;
    u64 repeats = 0;
    for (std::size_t i = 1; i < values.size(); ++i)
        repeats += (values[i] == values[i - 1]);
    return static_cast<double>(repeats) /
           static_cast<double>(values.size() - 1);
}

} // namespace

int
main(int argc, char **argv)
{
    Table table({"workload", "unencoded_events_per_word",
                 "window8_events_per_word", "entropy_bits_per_word",
                 "repeat_fraction", "varlen_headroom_%"});

    for (const auto &wl : bench::workloadSeries()) {
        const auto &values =
            bench::seriesValues(wl, trace::BusKind::Register);
        auto codec = coding::makeWindow(8);
        const coding::CodingResult r = coding::evaluate(*codec, values);
        const double words =
            static_cast<double>(std::max<u64>(1, r.words));
        const double base_events = r.base.cost(1.0) / words;
        const double coded_events = r.coded.cost(1.0) / words;
        const double h = entropyBitsPerWord(values);
        // An ideal variable-length transition code needs ~h/2 events
        // per word on average (one transition conveys ~2 bits when
        // codes are balanced); clamp headroom at zero.
        const double ideal_events = h / 2.0;
        const double headroom =
            coded_events > 0
                ? std::max(0.0,
                           100.0 * (1.0 - ideal_events / coded_events))
                : 0.0;
        table.row()
            .cell(wl)
            .cell(base_events, 2)
            .cell(coded_events, 2)
            .cell(h, 2)
            .cell(repeatFraction(values), 3)
            .cell(headroom, 1);
    }
    bench::emit("Future work: variable-length coding headroom over "
                "window-8 (register bus)",
                table, argc, argv);
    return 0;
}
