/**
 * Figure 21: transition-based context transcoder, % energy removed vs
 * frequency table size, register bus (shift register = 8).
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sizes = {4,  8,  12, 16, 20, 24,
                                         28, 32, 40, 48, 56, 64};
    const Table table = bench::sweepTable(
        "table_size", sizes, bench::seriesWithRandom(),
        trace::BusKind::Register, [](unsigned t) {
            coding::ContextConfig cfg;
            cfg.table_size = t;
            cfg.sr_size = 8;
            cfg.transition_based = true;
            return coding::makeContext(cfg);
        });
    bench::emit("Fig 21: context (transition-based) % energy removed, "
                "register bus",
                table, argc, argv);
    return 0;
}
