/**
 * @file
 * Shared plumbing for the figure/table reproduction binaries.
 *
 * Every binary prints the paper's rows/series as an aligned table on
 * stdout (pass --csv for machine-readable output). Traces default to
 * 400k simulated cycles per workload; override with PREDBUS_CYCLES.
 * Traces are cached in PREDBUS_TRACE_DIR (default ./traces).
 */

#ifndef PREDBUS_BENCH_BENCH_COMMON_H
#define PREDBUS_BENCH_BENCH_COMMON_H

#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/suite.h"
#include "coding/bus_energy.h"
#include "common/table.h"
#include "trace/trace_io.h"

namespace predbus::bench
{

/** The paper's series order: "random" then the 17 workloads. */
std::vector<std::string> seriesWithRandom();

/** Just the 17 workloads (paper presentation order). */
std::vector<std::string> workloadSeries();

/** The four benchmarks of Figs 7/8/15. */
std::vector<std::string> statsBenchmarks();

/**
 * Values for a series name: "random" yields a uniform random stream
 * sized like the workload traces; anything else is a suite trace.
 */
std::vector<Word> seriesValues(const std::string &series,
                               trace::BusKind bus);

/** Print the table (aligned or CSV) with a heading line. */
void emit(const std::string &title, const Table &table, int argc,
          char **argv);

/** "Normalized energy removed" percentage at λ=1 (paper §4.4). */
double removedPercent(const coding::CodingResult &result);

/** Builds the codec for one swept parameter value. */
using CodecFactory =
    std::function<std::unique_ptr<coding::Transcoder>(unsigned)>;

/**
 * The common shape of Figs 16-23: rows are parameter values, columns
 * are series, cells are % normalized energy removed on @p bus.
 */
Table sweepTable(const std::string &param_name,
                 const std::vector<unsigned> &params,
                 const std::vector<std::string> &series,
                 trace::BusKind bus, const CodecFactory &make);

} // namespace predbus::bench

#endif // PREDBUS_BENCH_BENCH_COMMON_H
