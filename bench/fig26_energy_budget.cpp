/**
 * Figure 26: transcoder energy budget (wire energy saved per bus
 * word) vs total dictionary entries, for Window- and Context-based
 * designs at 5 / 10 / 15 mm (0.13um, register bus, suite average).
 */

#include "analysis/energy_eval.h"
#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"
#include "wires/technology.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> entry_counts = {4,  8,  12, 16, 24,
                                                32, 48, 64};
    const std::vector<double> lengths = {15.0, 10.0, 5.0};
    const wires::Technology tech = wires::tech013();

    std::vector<std::vector<Word>> streams;
    for (const auto &wl : bench::workloadSeries())
        streams.push_back(
            bench::seriesValues(wl, trace::BusKind::Register));

    std::vector<std::string> header = {"total_entries"};
    for (double len : lengths) {
        header.push_back(std::to_string(static_cast<int>(len)) +
                         "mm_Context");
        header.push_back(std::to_string(static_cast<int>(len)) +
                         "mm_Window");
    }

    Table table(header);
    for (unsigned entries : entry_counts) {
        table.row().cell(static_cast<long long>(entries));

        // Suite-average budget for each design at each length.
        auto budget = [&](bool context, double len) {
            std::vector<double> per_wl;
            for (const auto &stream : streams) {
                std::unique_ptr<coding::Transcoder> codec;
                if (context) {
                    coding::ContextConfig cfg;
                    cfg.sr_size = std::min(8u, entries / 2);
                    cfg.table_size =
                        std::max(2u, entries - cfg.sr_size);
                    codec = coding::makeContext(cfg);
                } else {
                    codec = coding::makeWindow(entries);
                }
                const coding::CodingResult r =
                    coding::evaluate(*codec, stream);
                per_wl.push_back(analysis::energyBudgetPerWord(
                    r, tech, len));
            }
            return mean(per_wl) * 1e12;  // pJ
        };

        for (double len : lengths) {
            table.cell(budget(true, len), 4);
            table.cell(budget(false, len), 4);
        }
    }
    bench::emit("Fig 26: energy budget (pJ per word) vs total entries",
                table, argc, argv);
    return 0;
}
