/**
 * Figure 19: % normalized energy removed by the Window-based
 * transcoder on the register bus vs shift register size. The paper's
 * headline "average 36% transition reduction on the register bus"
 * (§7) corresponds to the 8-entry column average, which this binary
 * also prints.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sizes = {2,  4,  6,  8,  12, 16,
                                         24, 32, 48, 64};
    const Table table = bench::sweepTable(
        "window_entries", sizes, bench::workloadSeries(),
        trace::BusKind::Register,
        [](unsigned n) { return coding::makeWindow(n); });
    bench::emit(
        "Fig 19: window transcoder % energy removed, register bus",
        table, argc, argv);

    // Headline summary (paper §7: average 36% on SPEC95).
    std::vector<double> at8;
    for (std::size_t r = 0; r < table.rowCount(); ++r) {
        if (table.at(r, 0) == "8") {
            for (std::size_t c = 1; c < table.columnCount(); ++c)
                at8.push_back(std::stod(table.at(r, c)));
        }
    }
    if (!wantCsv(argc, argv)) {
        std::cout << "Average % energy removed at 8 entries "
                     "(paper headline ~36% transition reduction): "
                  << mean(at8) << "%\n";
    }
    return 0;
}
