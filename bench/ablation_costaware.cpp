/**
 * Extension ablation: cost-aware encoding. The paper's encoder always
 * sends a dictionary code on a hit; a smarter encoder compares the
 * code and raw candidate states and sends the cheaper (the decoder is
 * oblivious, so the wire protocol is unchanged). Quantifies how much
 * the fixed policy leaves on the table.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    Table table({"workload", "paper_policy_%", "cost_aware_%",
                 "delta_pp"});
    std::vector<double> deltas;
    for (const auto &wl : bench::workloadSeries()) {
        const auto &values =
            bench::seriesValues(wl, trace::BusKind::Register);
        auto plain = coding::makeWindow(8);
        auto aware = coding::makeWindow(8, 1.0, /*cost_aware=*/true);
        const double p =
            bench::removedPercent(coding::evaluate(*plain, values));
        const double a =
            bench::removedPercent(coding::evaluate(*aware, values));
        deltas.push_back(a - p);
        table.row().cell(wl).cell(p, 2).cell(a, 2).cell(a - p, 2);
    }
    table.row()
        .cell("MEDIAN")
        .cell("")
        .cell("")
        .cell(median(deltas), 2);
    bench::emit("Ablation: always-code-on-hit vs cost-aware encoder "
                "(window-8, register bus)",
                table, argc, argv);
    return 0;
}
