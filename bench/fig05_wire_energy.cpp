/**
 * Figure 5: energy of one isolated wire transition vs length for the
 * three technology nodes, buffered (repeaters) and unbuffered.
 */

#include "bench/bench_common.h"
#include "wires/wire_model.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    std::vector<std::string> header = {"length_mm"};
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Repeater_" + tech.name);
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Wire_" + tech.name);

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const bool buffered : {true, false}) {
            for (const auto &tech : wires::allTechnologies()) {
                const wires::WireModel w(tech, len, buffered);
                table.cell(w.isolatedTransitionEnergy() * 1e12, 4);
            }
        }
    }
    bench::emit("Fig 5: wire energy (pJ) vs length (mm)", table, argc,
                argv);
    return 0;
}
