/**
 * Figure 25: value-based context transcoder, % energy removed vs
 * counter divide period, register bus, table sizes 16 and 64.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> periods = {4,    16,   64,  256,
                                           1024, 4096, 16384};
    const std::vector<std::string> wls = {"li",    "compress", "gcc",
                                          "perl",  "fpppp",    "apsi",
                                          "swim"};

    std::vector<std::string> header = {"counter_divide_period"};
    for (const auto &wl : wls)
        for (unsigned t : {16u, 64u})
            header.push_back(wl + ":" + std::to_string(t));

    std::vector<std::vector<Word>> streams;
    for (const auto &wl : wls)
        streams.push_back(
            bench::seriesValues(wl, trace::BusKind::Register));

    Table table(header);
    for (unsigned period : periods) {
        table.row().cell(static_cast<long long>(period));
        for (std::size_t i = 0; i < wls.size(); ++i) {
            for (unsigned t : {16u, 64u}) {
                coding::ContextConfig cfg;
                cfg.table_size = t;
                cfg.sr_size = 8;
                cfg.divide_period = period;
                auto codec = coding::makeContext(cfg);
                table.cell(bench::removedPercent(
                               coding::evaluate(*codec, streams[i])),
                           2);
            }
        }
    }
    bench::emit("Fig 25: context (value-based) % energy removed vs "
                "counter divide period, register bus",
                table, argc, argv);
    return 0;
}
