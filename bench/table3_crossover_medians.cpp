/**
 * Table 3: median crossover lengths (mm) for the window design on the
 * register bus — technology x {8,16} entries x {SPECint, SPECfp, ALL}.
 * Paper anchors: 0.13um/8-entry ~11.5mm (ALL) down to 0.07um/16-entry
 * ~2.7mm.
 */

#include <cmath>

#include "bench/crossover_common.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const auto runs =
        bench::crossoverRuns(trace::BusKind::Register);

    Table table({"technology", "entries", "SPECint_mm", "SPECfp_mm",
                 "ALL_mm"});
    for (const auto &wt : wires::allTechnologies()) {
        const auto &ct = circuit::circuitTech(wt.name);
        for (unsigned entries : {8u, 16u}) {
            table.row()
                .cell(wt.name)
                .cell(static_cast<long long>(entries));
            for (int fp_filter : {0, 1, -1}) {
                const double med = bench::medianCrossover(
                    runs, fp_filter, entries, wt, ct);
                if (std::isfinite(med))
                    table.cell(med, 1);
                else
                    table.cell("inf");
            }
        }
    }
    bench::emit("Table 3: median crossover lengths, register bus, "
                "window design",
                table, argc, argv);
    return 0;
}
