/**
 * Figure 18: % normalized energy removed by the Window-based
 * transcoder on the memory data bus vs shift register size.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sizes = {2,  4,  6,  8,  12, 16,
                                         24, 32, 48, 64};
    const Table table = bench::sweepTable(
        "window_entries", sizes, bench::workloadSeries(),
        trace::BusKind::Memory,
        [](unsigned n) { return coding::makeWindow(n); });
    bench::emit(
        "Fig 18: window transcoder % energy removed, memory bus",
        table, argc, argv);
    return 0;
}
