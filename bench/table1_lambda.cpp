/**
 * Table 1: effective λ (inter-wire / substrate capacitance ratio) for
 * unbuffered and repeater-buffered wires per technology node.
 */

#include "bench/bench_common.h"
#include "wires/wire_model.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    Table table({"technology", "wire_type", "average_lambda"});
    for (const auto &tech : wires::allTechnologies()) {
        table.row()
            .cell(tech.name)
            .cell("unbuffered")
            .cell(tech.unbufferedLambda(), 3);
        // Average across the plotted length range, as in the paper.
        double sum = 0.0;
        int n = 0;
        for (int len = 5; len <= 30; len += 5) {
            sum += wires::WireModel(tech, len, true).effectiveLambda();
            ++n;
        }
        table.row()
            .cell(tech.name)
            .cell("with_repeaters")
            .cell(sum / n, 3);
    }
    bench::emit("Table 1: effective lambda values", table, argc, argv);
    return 0;
}
