/**
 * Table 2: transcoder implementation characteristics per technology —
 * voltage, area, average operation energy (measured on the suite's
 * register-bus traffic), leakage per cycle, delay, and cycle time —
 * for the window-8 encoder and the inversion-coder base case.
 *
 * Also reports the statistical-vs-event-level model validation the
 * paper performs in §5.4.2.
 */

#include "bench/bench_common.h"
#include "circuit/netlist_sim.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

namespace
{

/** Suite-average op counts for a codec on the register bus. */
coding::OpCounts
suiteOps(const std::function<std::unique_ptr<coding::Transcoder>()>
             &make)
{
    coding::OpCounts total;
    for (const auto &wl : bench::workloadSeries()) {
        auto codec = make();
        const coding::CodingResult r = coding::evaluate(
            *codec,
            bench::seriesValues(wl, trace::BusKind::Register));
        total.cycles += r.ops.cycles;
        total.matches += r.ops.matches;
        total.shifts += r.ops.shifts;
        total.counter_incs += r.ops.counter_incs;
        total.compares += r.ops.compares;
        total.swaps += r.ops.swaps;
        total.divisions += r.ops.divisions;
        total.raw_sends += r.ops.raw_sends;
        total.hits += r.ops.hits;
        total.last_hits += r.ops.last_hits;
    }
    return total;
}

} // namespace

int
main(int argc, char **argv)
{
    Table table({"technology", "voltage_V", "area_um2", "op_energy_pJ",
                 "leakage_pJ", "delay_ns", "cycle_time_ns"});

    const coding::OpCounts window_ops =
        suiteOps([] { return coding::makeWindow(8); });
    for (const auto &tech : circuit::allCircuitTechs()) {
        const circuit::ImplEstimate est =
            circuit::estimate(circuit::window8(), tech);
        table.row()
            .cell(tech.name)
            .cell(tech.vdd, 1)
            .cell(est.area_um2, 0)
            .cell(est.opEnergyPerCycle(window_ops) * 1e12, 2)
            .cell(est.leak_per_cycle * 1e12, 5)
            .cell(est.delay * 1e9, 1)
            .cell(est.cycle_time * 1e9, 1);
    }

    const coding::OpCounts inv_ops =
        suiteOps([] { return coding::makeInversion(2, 0.0); });
    const circuit::ImplEstimate inv =
        circuit::estimate(circuit::invertCoder(), circuit::circuit013());
    table.row()
        .cell("InvertCoder")
        .cell(1.2, 1)
        .cell(inv.area_um2, 0)
        .cell(inv.opEnergyPerCycle(inv_ops) * 1e12, 2)
        .cell(inv.leak_per_cycle * 1e12, 5)
        .cell(inv.delay * 1e9, 1)
        .cell(inv.cycle_time * 1e9, 1);

    bench::emit("Table 2: transcoder implementation characteristics",
                table, argc, argv);

    // Validation of the statistical model against the event-level
    // accounting (paper: within 6% on a 100-cycle netlist run).
    const auto sample =
        bench::seriesValues("gcc", trace::BusKind::Register);
    const std::vector<Word> head(
        sample.begin(),
        sample.begin() + std::min<std::size_t>(sample.size(), 10000));
    auto codec = coding::makeWindow(8);
    const coding::CodingResult r = coding::evaluate(*codec, head);
    const circuit::ImplEstimate est =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const double statistical =
        est.energyFor(r.ops, false) -
        static_cast<double>(r.ops.cycles) * est.leak_per_cycle;
    const circuit::NetlistEnergy detailed =
        circuit::detailedWindowEnergy(head, 8, circuit::circuit013());
    if (!wantCsv(argc, argv)) {
        std::cout << "Statistical vs event-level model (gcc register "
                     "trace): "
                  << statistical * 1e12 << " pJ vs "
                  << detailed.total * 1e12 << " pJ ("
                  << 100.0 * (statistical / detailed.total - 1.0)
                  << "% apart)\n";
    }
    return 0;
}
