/**
 * Figure 36: total (wires + encoder + decoder) energy of the 8-entry
 * window transcoder normalized to the unencoded bus, vs wire length,
 * memory data bus, 0.13um. The paper finds the memory bus much less
 * favorable: fewer absolute transitions are removed, so the codec
 * energy dominates at short lengths.
 */

#include "analysis/energy_eval.h"
#include "bench/bench_common.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "wires/technology.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const circuit::ImplEstimate impl =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const wires::Technology tech = wires::tech013();

    std::vector<std::string> header = {"length_mm"};
    std::vector<coding::CodingResult> runs;
    for (const auto &wl : bench::workloadSeries()) {
        header.push_back(wl);
        auto codec = coding::makeWindow(8);
        runs.push_back(coding::evaluate(
            *codec,
            bench::seriesValues(wl, trace::BusKind::Memory)));
    }

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const auto &run : runs) {
            const analysis::LengthEval e =
                analysis::evalAtLength(run, impl, tech, len);
            table.cell(e.normalized(), 3);
        }
    }
    bench::emit("Fig 36: window-8 total energy normalized to "
                "unencoded, memory bus, 0.13um",
                table, argc, argv);
    return 0;
}
