/**
 * Figure 37: median normalized total energy vs wire length on the
 * register bus for {8,16}-entry window designs across 0.13/0.10/0.07
 * um, split into SPECint and SPECfp medians. The length where each
 * curve crosses 1.0 is that configuration's crossover point.
 */

#include "bench/crossover_common.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const auto runs =
        bench::crossoverRuns(trace::BusKind::Register);

    std::vector<std::string> header = {"length_mm"};
    for (const auto &wt : wires::allTechnologies())
        for (unsigned entries : {8u, 16u})
            for (const char *suite : {"specINT", "specFP"})
                header.push_back(wt.name + "_" +
                                 std::to_string(entries) + "e_" +
                                 suite);

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const auto &wt : wires::allTechnologies()) {
            const auto &ct = circuit::circuitTech(wt.name);
            for (unsigned entries : {8u, 16u}) {
                for (const bool fp : {false, true}) {
                    table.cell(bench::medianNormalized(
                                   runs, fp, entries, wt, ct, len),
                               3);
                }
            }
        }
    }
    bench::emit("Fig 37: median normalized energy vs length, register "
                "bus (crossover where a curve passes 1.0)",
                table, argc, argv);
    return 0;
}
