/**
 * Figure 6: wire propagation delay vs length, buffered (linear) and
 * unbuffered (quadratic), for the three technology nodes.
 */

#include "bench/bench_common.h"
#include "wires/wire_model.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    std::vector<std::string> header = {"length_mm"};
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Repeater_" + tech.name);
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Wire_" + tech.name);

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const bool buffered : {true, false}) {
            for (const auto &tech : wires::allTechnologies()) {
                const wires::WireModel w(tech, len, buffered);
                table.cell(w.delay() * 1e12, 1);
            }
        }
    }
    bench::emit("Fig 6: wire delay (ps) vs length (mm)", table, argc,
                argv);
    return 0;
}
