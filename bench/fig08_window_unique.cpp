/**
 * Figure 8: average fraction of values that are unique within a
 * window, vs window size, for the same traces as Fig 7.
 */

#include "bench/bench_common.h"
#include "trace/trace_stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<std::size_t> windows = {
        1, 2, 5, 10, 20, 50, 100, 1000, 10000, 100000};

    std::vector<std::string> header = {"window_size"};
    struct Series
    {
        std::string name;
        std::vector<Word> values;
    };
    std::vector<Series> series;
    for (const auto &wl : bench::statsBenchmarks()) {
        for (const auto bus :
             {trace::BusKind::Register, trace::BusKind::Memory}) {
            Series s;
            s.name = wl + (bus == trace::BusKind::Register
                               ? " reg bus"
                               : " memory data");
            s.values = bench::seriesValues(wl, bus);
            header.push_back(s.name);
            series.push_back(std::move(s));
        }
    }

    Table table(header);
    for (std::size_t w : windows) {
        table.row().cell(static_cast<long long>(w));
        for (const auto &s : series)
            table.cell(trace::windowUniqueFraction(s.values, w), 4);
    }
    bench::emit("Fig 8: average unique fraction per window", table,
                argc, argv);
    return 0;
}
