/**
 * Figure 15: normalized energy remaining for the generalized
 * inversion coder as a function of the wire's actual λ, when the
 * selection logic assumes λ=0 (λ0), λ=1 (λ1), or the true value (λN).
 * Series: register-bus average, memory-bus average (over the Fig 7
 * benchmarks), and uniform random data.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

namespace
{

constexpr unsigned kPatterns = 8;

/** % energy remaining at actual λ for one stream, one selector λ. */
double
remainingPercent(const std::vector<Word> &values, double assumed,
                 double actual)
{
    auto codec = coding::makeInversion(kPatterns, assumed);
    const coding::CodingResult r = coding::evaluate(*codec, values);
    const double base = r.base.cost(actual);
    return base > 0 ? 100.0 * r.coded.cost(actual) / base : 100.0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::vector<double> lambdas = {0.1, 0.2, 0.5, 1.0, 2.0,
                                         5.0, 10.0, 20.0, 50.0, 100.0};

    // Gather the streams once.
    std::vector<std::vector<Word>> mem_streams, reg_streams;
    for (const auto &wl : bench::statsBenchmarks()) {
        reg_streams.push_back(
            bench::seriesValues(wl, trace::BusKind::Register));
        mem_streams.push_back(
            bench::seriesValues(wl, trace::BusKind::Memory));
    }
    const std::vector<Word> random =
        bench::seriesValues("random", trace::BusKind::Register);

    Table table({"actual_lambda", "mem_l0", "mem_l1", "mem_lN",
                 "reg_l0", "reg_l1", "reg_lN", "random_l0",
                 "random_l1", "random_lN"});
    for (double actual : lambdas) {
        table.row().cell(actual, 2);
        for (const auto *streams : {&mem_streams, &reg_streams}) {
            for (const double assumed : {0.0, 1.0, actual}) {
                std::vector<double> vals;
                for (const auto &stream : *streams)
                    vals.push_back(
                        remainingPercent(stream, assumed, actual));
                table.cell(mean(vals), 2);
            }
        }
        for (const double assumed : {0.0, 1.0, actual})
            table.cell(remainingPercent(random, assumed, actual), 2);
    }
    bench::emit("Fig 15: inversion coder % energy remaining vs actual "
                "lambda (8 patterns)",
                table, argc, argv);
    return 0;
}
