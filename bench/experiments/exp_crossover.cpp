/**
 * @file
 * Crossover experiments (Figs 37-38, Table 3): per-benchmark coding
 * runs for {8,16}-entry window designs across the three technology
 * nodes, reduced to SPECint/SPECfp medians.
 */

#include <cmath>

#include "analysis/energy_eval.h"
#include "bench/experiments/exp_common.h"
#include "circuit/transcoder_impl.h"
#include "common/stats.h"
#include "wires/technology.h"
#include "workloads/workload.h"

namespace predbus::bench
{
namespace
{

/** One (workload, entries) coding run on a bus. */
struct CrossRun
{
    std::string workload;
    bool is_fp = false;
    unsigned entries = 8;
    coding::CodingResult result;
};

/** Run window-{8,16} over the whole suite on @p bus. */
std::vector<CrossRun>
crossoverRuns(const Runner &runner, trace::BusKind bus)
{
    std::vector<CrossRun> grid;
    for (const auto &info : workloads::all())
        for (unsigned entries : {8u, 16u})
            grid.push_back({info.name, info.is_fp, entries, {}});

    return runner.map(grid, [bus](const CrossRun &cell) {
        CrossRun run = cell;
        run.result = windowRun(cell.workload, bus, cell.entries);
        return run;
    });
}

/** Median normalized energy across a suite subset at one length. */
double
medianNormalized(const std::vector<CrossRun> &runs, bool fp,
                 unsigned entries, const wires::Technology &wire_tech,
                 const circuit::CircuitTech &ckt_tech, double length)
{
    circuit::DesignConfig cfg = circuit::window8();
    cfg.entries = entries;
    const circuit::ImplEstimate impl = circuit::estimate(cfg, ckt_tech);
    std::vector<double> vals;
    for (const auto &run : runs) {
        if (run.is_fp != fp || run.entries != entries)
            continue;
        vals.push_back(analysis::evalAtLength(run.result, impl,
                                              wire_tech, length)
                           .normalized());
    }
    return median(std::move(vals));
}

/** Median crossover length across a subset ("all" when fp_filter<0). */
double
medianCrossover(const std::vector<CrossRun> &runs, int fp_filter,
                unsigned entries, const wires::Technology &wire_tech,
                const circuit::CircuitTech &ckt_tech)
{
    circuit::DesignConfig cfg = circuit::window8();
    cfg.entries = entries;
    const circuit::ImplEstimate impl = circuit::estimate(cfg, ckt_tech);
    std::vector<double> vals;
    for (const auto &run : runs) {
        if (fp_filter >= 0 && run.is_fp != (fp_filter == 1))
            continue;
        if (run.entries != entries)
            continue;
        vals.push_back(analysis::crossoverLengthMm(run.result, impl,
                                                   wire_tech));
    }
    return median(std::move(vals));
}

std::vector<Report>
crossoverFigure(const Runner &runner, trace::BusKind bus,
                const std::string &title)
{
    const auto runs = crossoverRuns(runner, bus);

    std::vector<std::string> header = {"length_mm"};
    for (const auto &wt : wires::allTechnologies())
        for (unsigned entries : {8u, 16u})
            for (const char *suite : {"specINT", "specFP"})
                header.push_back(wt.name + "_" +
                                 std::to_string(entries) + "e_" +
                                 suite);

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const auto &wt : wires::allTechnologies()) {
            const auto &ct = circuit::circuitTech(wt.name);
            for (unsigned entries : {8u, 16u}) {
                for (const bool fp : {false, true}) {
                    table.cell(medianNormalized(runs, fp, entries, wt,
                                                ct, len),
                               3);
                }
            }
        }
    }
    return {Report(title, table)};
}

std::vector<Report>
runFig37(const Runner &runner)
{
    return crossoverFigure(
        runner, trace::BusKind::Register,
        "Fig 37: median normalized energy vs length, register bus "
        "(crossover where a curve passes 1.0)");
}

std::vector<Report>
runFig38(const Runner &runner)
{
    return crossoverFigure(
        runner, trace::BusKind::Memory,
        "Fig 38: median normalized energy vs length, memory bus");
}

std::vector<Report>
runTable3(const Runner &runner)
{
    const auto runs =
        crossoverRuns(runner, trace::BusKind::Register);

    Table table({"technology", "entries", "SPECint_mm", "SPECfp_mm",
                 "ALL_mm"});
    for (const auto &wt : wires::allTechnologies()) {
        const auto &ct = circuit::circuitTech(wt.name);
        for (unsigned entries : {8u, 16u}) {
            table.row()
                .cell(wt.name)
                .cell(static_cast<long long>(entries));
            for (int fp_filter : {0, 1, -1}) {
                const double med =
                    medianCrossover(runs, fp_filter, entries, wt, ct);
                if (std::isfinite(med))
                    table.cell(med, 1);
                else
                    table.cell("inf");
            }
        }
    }
    return {Report("Table 3: median crossover lengths, register bus, "
                   "window design",
                   table)};
}

const analysis::RegisterExperiment reg_fig37(
    "fig37_crossover_regbus",
    "median normalized energy vs length, register bus, 3 nodes",
    runFig37);
const analysis::RegisterExperiment reg_fig38(
    "fig38_crossover_membus",
    "median normalized energy vs length, memory bus, 3 nodes",
    runFig38);
const analysis::RegisterExperiment reg_table3(
    "table3_crossover_medians",
    "median crossover lengths, register bus, window design",
    runTable3);

} // namespace
} // namespace predbus::bench
