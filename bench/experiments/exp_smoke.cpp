/**
 * @file
 * Smoke experiment: a fast end-to-end pass through the engine on
 * synthetic streams only (no simulator, no trace cache). Used by the
 * tier-1 test suite to exercise registry lookup, the parallel runner,
 * and every emitter in well under a second.
 */

#include "bench/experiments/exp_common.h"

namespace predbus::bench
{
namespace
{

constexpr std::size_t kWords = 4096;

std::vector<Word>
syntheticStream(unsigned variant)
{
    // Half pseudo-random traffic, half predictable ramp: exercises
    // both the miss and hit paths of every predictor.
    std::vector<Word> values =
        analysis::randomValues(kWords / 2, 0x5A0CE + variant);
    for (std::size_t i = 0; i < kWords / 2; ++i)
        values.push_back(static_cast<Word>(i * (variant + 1)));
    return values;
}

std::vector<Report>
runSmoke(const Runner &runner)
{
    struct Scheme
    {
        const char *label;
        const char *spec;
    };
    const std::vector<Scheme> schemes = {
        {"window8", "window:8"},
        {"stride4", "stride:4"},
        {"ctx16+8", "ctx:16+8"},
        {"businvert", "inv:2"},
    };
    const std::vector<unsigned> variants = {0, 1, 2};

    std::vector<std::string> header = {"stream"};
    for (const auto &s : schemes)
        header.push_back(s.label);

    const std::vector<double> cells = runner.mapIndex(
        variants.size() * schemes.size(), [&](std::size_t i) {
            const unsigned variant = variants[i / schemes.size()];
            const auto &scheme = schemes[i % schemes.size()];
            auto codec = coding::makeFromSpec(scheme.spec);
            // verify_decode on: the smoke test doubles as a
            // lossless-transcoding check.
            return removedPercent(coding::evaluate(
                *codec, syntheticStream(variant), true));
        });

    Table table(header);
    for (std::size_t v = 0; v < variants.size(); ++v) {
        table.row().cell("synthetic" + std::to_string(variants[v]));
        for (std::size_t i = 0; i < schemes.size(); ++i)
            table.cell(cells[v * schemes.size() + i], 2);
    }
    return {Report("Smoke: % energy removed on synthetic streams "
                   "(decode-verified)",
                   table)};
}

const analysis::RegisterExperiment reg_smoke(
    "smoke_engine",
    "fast synthetic end-to-end engine check (tier-1)", runSmoke);

} // namespace
} // namespace predbus::bench
