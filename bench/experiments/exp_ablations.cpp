/**
 * @file
 * Ablation experiments: cost-aware encoding, selective precharge,
 * pending-bit sorting, and variable-length coding headroom.
 */

#include <cmath>
#include <unordered_map>

#include "analysis/energy_eval.h"
#include "bench/experiments/exp_common.h"
#include "circuit/transcoder_impl.h"
#include "common/stats.h"
#include "wires/technology.h"

namespace predbus::bench
{
namespace
{

std::vector<Report>
runCostAware(const Runner &runner)
{
    const auto wls = workloadSeries();

    struct Row
    {
        double plain = 0.0;
        double aware = 0.0;
    };
    const std::vector<Row> rows =
        runner.map(wls, [](const std::string &wl) {
            const auto &values =
                seriesValues(wl, trace::BusKind::Register);
            auto aware = coding::makeWindow(8, 1.0, /*cost_aware=*/true);
            Row row;
            row.plain = removedPercent(
                windowRun(wl, trace::BusKind::Register, 8));
            row.aware =
                removedPercent(coding::evaluate(*aware, values));
            return row;
        });

    Table table({"workload", "paper_policy_%", "cost_aware_%",
                 "delta_pp"});
    std::vector<double> deltas;
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const Row &row = rows[w];
        deltas.push_back(row.aware - row.plain);
        table.row()
            .cell(wls[w])
            .cell(row.plain, 2)
            .cell(row.aware, 2)
            .cell(row.aware - row.plain, 2);
    }
    table.row()
        .cell("MEDIAN")
        .cell("")
        .cell("")
        .cell(median(deltas), 2);
    return {Report("Ablation: always-code-on-hit vs cost-aware encoder "
                   "(window-8, register bus)",
                   table)};
}

std::vector<Report>
runPrecharge(const Runner &runner)
{
    const auto wls = workloadSeries();
    const std::vector<coding::CodingResult> runs =
        runner.map(wls, [](const std::string &wl) {
            return windowRun(wl, trace::BusKind::Register, 8);
        });

    coding::OpCounts total;
    for (const auto &run : runs) {
        total.cycles += run.ops.cycles;
        total.matches += run.ops.matches;
        total.shifts += run.ops.shifts;
        total.raw_sends += run.ops.raw_sends;
    }

    Table table({"technology", "selective_op_pJ", "full_op_pJ",
                 "selective_crossover_mm", "full_crossover_mm"});
    for (const auto &wt : wires::allTechnologies()) {
        const auto &ct = circuit::circuitTech(wt.name);
        circuit::DesignConfig selective = circuit::window8();
        circuit::DesignConfig full = circuit::window8();
        full.full_precharge = true;
        const circuit::ImplEstimate es =
            circuit::estimate(selective, ct);
        const circuit::ImplEstimate ef = circuit::estimate(full, ct);

        auto median_cross = [&](const circuit::ImplEstimate &impl) {
            std::vector<double> xs;
            for (const auto &run : runs)
                xs.push_back(
                    analysis::crossoverLengthMm(run, impl, wt));
            return median(std::move(xs));
        };

        table.row()
            .cell(wt.name)
            .cell(es.opEnergyPerCycle(total) * 1e12, 3)
            .cell(ef.opEnergyPerCycle(total) * 1e12, 3)
            .cell(median_cross(es), 1)
            .cell(median_cross(ef), 1);
    }
    return {Report("Ablation: selective precharge vs full CAM probe "
                   "(window-8, register bus)",
                   table)};
}

std::vector<Report>
runSorting(const Runner &runner)
{
    const auto wls = workloadSeries();

    struct Pair
    {
        coding::CodingResult pending;
        coding::CodingResult oracle;
    };
    const std::vector<Pair> pairs =
        runner.map(wls, [](const std::string &wl) {
            const auto &values =
                seriesValues(wl, trace::BusKind::Register);
            Pair pair;
            coding::ContextConfig pending_cfg;
            auto pending = coding::makeContext(pending_cfg);
            pair.pending = coding::evaluate(*pending, values);
            coding::ContextConfig oracle_cfg;
            oracle_cfg.oracle_sort = true;
            auto oracle = coding::makeContext(oracle_cfg);
            pair.oracle = coding::evaluate(*oracle, values);
            return pair;
        });

    Table table({"workload", "pending_removed_%", "oracle_removed_%",
                 "pending_swaps_per_kword", "oracle_swaps_per_kword",
                 "pending_compares_per_word",
                 "oracle_compares_per_word"});
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const coding::CodingResult &rp = pairs[w].pending;
        const coding::CodingResult &ro = pairs[w].oracle;
        const double kwords = std::max<u64>(1, rp.words) / 1000.0;
        table.row()
            .cell(wls[w])
            .cell(removedPercent(rp), 2)
            .cell(removedPercent(ro), 2)
            .cell(static_cast<double>(rp.ops.swaps) / kwords, 2)
            .cell(static_cast<double>(ro.ops.swaps) / kwords, 2)
            .cell(static_cast<double>(rp.ops.compares) /
                      std::max<u64>(1, rp.words),
                  2)
            .cell(static_cast<double>(ro.ops.compares) /
                      std::max<u64>(1, ro.words),
                  2);
    }
    return {Report("Ablation: pending-bit neighbor-swap sort vs oracle "
                   "full sort (context, register bus)",
                   table)};
}

double
entropyBitsPerWord(const std::vector<Word> &values)
{
    std::unordered_map<Word, u64> freq;
    for (Word v : values)
        ++freq[v];
    const double n = static_cast<double>(values.size());
    double h = 0.0;
    for (const auto &[value, count] : freq) {
        const double p = static_cast<double>(count) / n;
        h -= p * std::log2(p);
    }
    return h;
}

/** First-order (conditional on previous value being equal) repeat
 * fraction, the cheapest structure the transcoder already exploits. */
double
repeatFraction(const std::vector<Word> &values)
{
    if (values.size() < 2)
        return 0.0;
    u64 repeats = 0;
    for (std::size_t i = 1; i < values.size(); ++i)
        repeats += (values[i] == values[i - 1]);
    return static_cast<double>(repeats) /
           static_cast<double>(values.size() - 1);
}

std::vector<Report>
runVarlen(const Runner &runner)
{
    const auto wls = workloadSeries();

    struct Row
    {
        double base_events = 0.0;
        double coded_events = 0.0;
        double entropy = 0.0;
        double repeats = 0.0;
        double headroom = 0.0;
    };
    const std::vector<Row> rows =
        runner.map(wls, [](const std::string &wl) {
            const auto &values =
                seriesValues(wl, trace::BusKind::Register);
            const coding::CodingResult &r =
                windowRun(wl, trace::BusKind::Register, 8);
            const double words =
                static_cast<double>(std::max<u64>(1, r.words));
            Row row;
            row.base_events = r.base.cost(1.0) / words;
            row.coded_events = r.coded.cost(1.0) / words;
            row.entropy = entropyBitsPerWord(values);
            row.repeats = repeatFraction(values);
            // An ideal variable-length transition code needs ~h/2
            // events per word on average (one transition conveys ~2
            // bits when codes are balanced); clamp headroom at zero.
            const double ideal_events = row.entropy / 2.0;
            row.headroom =
                row.coded_events > 0
                    ? std::max(0.0, 100.0 * (1.0 - ideal_events /
                                                       row.coded_events))
                    : 0.0;
            return row;
        });

    Table table({"workload", "unencoded_events_per_word",
                 "window8_events_per_word", "entropy_bits_per_word",
                 "repeat_fraction", "varlen_headroom_%"});
    for (std::size_t w = 0; w < wls.size(); ++w) {
        const Row &row = rows[w];
        table.row()
            .cell(wls[w])
            .cell(row.base_events, 2)
            .cell(row.coded_events, 2)
            .cell(row.entropy, 2)
            .cell(row.repeats, 3)
            .cell(row.headroom, 1);
    }
    return {Report("Future work: variable-length coding headroom over "
                   "window-8 (register bus)",
                   table)};
}

const analysis::RegisterExperiment reg_costaware(
    "ablation_costaware",
    "always-code-on-hit vs cost-aware window encoder", runCostAware);
const analysis::RegisterExperiment reg_precharge(
    "ablation_precharge",
    "selective precharge vs full CAM probe energy and crossover",
    runPrecharge);
const analysis::RegisterExperiment reg_sorting(
    "ablation_sorting",
    "pending-bit neighbor-swap sort vs oracle full sort", runSorting);
const analysis::RegisterExperiment reg_varlen(
    "ablation_varlen",
    "variable-length coding headroom over window-8", runVarlen);

} // namespace
} // namespace predbus::bench
