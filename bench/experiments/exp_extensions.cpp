/**
 * @file
 * Extension experiments beyond the paper: the memory address bus,
 * internal buses (reorder buffer / register file), and head-to-head
 * comparison with the related-work encodings of paper §2.
 */

#include <functional>
#include <memory>

#include "bench/experiments/exp_common.h"
#include "common/stats.h"

namespace predbus::bench
{
namespace
{

std::vector<Report>
runAddressBus(const Runner &runner)
{
    struct Scheme
    {
        const char *label;
        std::function<std::unique_ptr<coding::Transcoder>()> make;
    };
    const std::vector<Scheme> schemes = {
        {"window8", [] { return coding::makeWindow(8); }},
        {"window16", [] { return coding::makeWindow(16); }},
        {"stride4", [] { return coding::makeStride(4); }},
        {"stride16", [] { return coding::makeStride(16); }},
        {"ctx-value", [] { return coding::makeContext(
                               coding::ContextConfig{}); }},
        {"businvert", [] { return coding::makeInversion(2, 0.0); }},
    };

    std::vector<std::string> header = {"workload"};
    for (const auto &s : schemes)
        header.push_back(s.label);

    const auto wls = workloadSeries();
    const std::vector<const std::vector<Word> *> streams =
        runner.map(wls, [](const std::string &wl) {
            return &seriesValues(wl, trace::BusKind::Address);
        });
    const std::vector<double> cells = runner.mapIndex(
        wls.size() * schemes.size(), [&](std::size_t i) {
            const std::size_t wl = i / schemes.size();
            auto codec = schemes[i % schemes.size()].make();
            return removedPercent(
                coding::evaluate(*codec, *streams[wl]));
        });

    Table table(header);
    std::vector<std::vector<double>> columns(schemes.size());
    for (std::size_t w = 0; w < wls.size(); ++w) {
        table.row().cell(wls[w]);
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            const double pct = cells[w * schemes.size() + i];
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);

    return {Report(
        "Extension: % energy removed on the memory address bus",
        table)};
}

std::vector<Report>
runInternalBuses(const Runner &runner)
{
    const std::vector<trace::BusKind> buses = {
        trace::BusKind::Register, trace::BusKind::Writeback,
        trace::BusKind::Memory, trace::BusKind::Address};

    std::vector<std::string> header = {"workload"};
    for (const auto bus : buses)
        header.push_back(trace::busName(bus));

    const auto wls = workloadSeries();
    const std::vector<double> cells = runner.mapIndex(
        wls.size() * buses.size(), [&](std::size_t i) {
            const std::size_t wl = i / buses.size();
            return removedPercent(windowRun(
                wls[wl], buses[i % buses.size()], 8));
        });

    Table table(header);
    std::vector<std::vector<double>> columns(buses.size());
    for (std::size_t w = 0; w < wls.size(); ++w) {
        table.row().cell(wls[w]);
        for (std::size_t i = 0; i < buses.size(); ++i) {
            const double pct = cells[w * buses.size() + i];
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);

    return {Report("Extension: window-8 % energy removed across "
                   "internal and external buses",
                   table)};
}

Report
relatedWorkBus(const Runner &runner, trace::BusKind bus,
               const std::string &title)
{
    const std::vector<const char *> specs = {
        "inv:2",    "pbi:4",    "pbi:8",    "wze:4",
        "window:8", "ctx:28+8", "stride:16"};

    std::vector<std::string> header = {"workload"};
    for (const char *s : specs)
        header.push_back(s);

    const auto wls = workloadSeries();
    const std::vector<const std::vector<Word> *> streams =
        runner.map(wls, [bus](const std::string &wl) {
            return &seriesValues(wl, bus);
        });
    const std::vector<double> cells = runner.mapIndex(
        wls.size() * specs.size(), [&](std::size_t i) {
            const std::size_t wl = i / specs.size();
            auto codec =
                coding::makeFromSpec(specs[i % specs.size()]);
            return removedPercent(
                coding::evaluate(*codec, *streams[wl]));
        });

    Table table(header);
    std::vector<std::vector<double>> columns(specs.size());
    for (std::size_t w = 0; w < wls.size(); ++w) {
        table.row().cell(wls[w]);
        for (std::size_t i = 0; i < specs.size(); ++i) {
            const double pct = cells[w * specs.size() + i];
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);
    return Report(title, table);
}

std::vector<Report>
runRelatedWork(const Runner &runner)
{
    return {relatedWorkBus(runner, trace::BusKind::Register,
                           "Extension: related-work encodings, "
                           "register bus (% energy removed)"),
            relatedWorkBus(runner, trace::BusKind::Address,
                           "Extension: related-work encodings, "
                           "address bus (% energy removed)")};
}

const analysis::RegisterExperiment reg_address(
    "ext_address_bus",
    "paper's schemes applied to the memory address bus",
    runAddressBus);
const analysis::RegisterExperiment reg_internal(
    "ext_internal_buses",
    "window-8 across register, writeback, memory, and address buses",
    runInternalBuses);
const analysis::RegisterExperiment reg_related(
    "ext_related_work",
    "related-work encodings head-to-head on register and address "
    "buses",
    runRelatedWork);

} // namespace
} // namespace predbus::bench
