/**
 * @file
 * Whole-system energy experiments (paper §5): Fig 26 energy budget,
 * Table 2 transcoder implementation characteristics, and Figs 35-36
 * total normalized energy vs wire length.
 */

#include <algorithm>
#include <sstream>

#include "analysis/energy_eval.h"
#include "bench/experiments/exp_common.h"
#include "circuit/netlist_sim.h"
#include "circuit/transcoder_impl.h"
#include "common/stats.h"
#include "wires/technology.h"

namespace predbus::bench
{
namespace
{

std::vector<Report>
runFig26(const Runner &runner)
{
    const std::vector<unsigned> entry_counts = {4,  8,  12, 16, 24,
                                                32, 48, 64};
    const std::vector<double> lengths = {15.0, 10.0, 5.0};
    const wires::Technology tech = wires::tech013();
    const auto wls = workloadSeries();

    // One coding run per (entries, design, workload); the per-length
    // budget is pure arithmetic on the run.
    struct Cell
    {
        unsigned entries;
        bool context;
        std::size_t wl;
    };
    std::vector<Cell> grid;
    for (unsigned entries : entry_counts)
        for (const bool context : {true, false})
            for (std::size_t w = 0; w < wls.size(); ++w)
                grid.push_back({entries, context, w});

    const std::vector<coding::CodingResult> runs =
        runner.map(grid, [&](const Cell &cell) {
            if (!cell.context)
                return windowRun(wls[cell.wl],
                                 trace::BusKind::Register,
                                 cell.entries);
            coding::ContextConfig cfg;
            cfg.sr_size = std::min(8u, cell.entries / 2);
            cfg.table_size = std::max(2u, cell.entries - cfg.sr_size);
            auto codec = coding::makeContext(cfg);
            return coding::evaluate(
                *codec, seriesValues(wls[cell.wl],
                                     trace::BusKind::Register));
        });

    std::vector<std::string> header = {"total_entries"};
    for (double len : lengths) {
        header.push_back(std::to_string(static_cast<int>(len)) +
                         "mm_Context");
        header.push_back(std::to_string(static_cast<int>(len)) +
                         "mm_Window");
    }

    // Suite-average budget for each design at each length.
    auto budget = [&](std::size_t row, bool context, double len) {
        std::vector<double> per_wl;
        for (std::size_t w = 0; w < wls.size(); ++w) {
            const std::size_t base = row * 2 * wls.size();
            const std::size_t idx =
                base + (context ? 0 : wls.size()) + w;
            per_wl.push_back(analysis::energyBudgetPerWord(
                runs[idx], tech, len));
        }
        return mean(per_wl) * 1e12;  // pJ
    };

    Table table(header);
    for (std::size_t row = 0; row < entry_counts.size(); ++row) {
        table.row().cell(static_cast<long long>(entry_counts[row]));
        for (double len : lengths) {
            table.cell(budget(row, true, len), 4);
            table.cell(budget(row, false, len), 4);
        }
    }
    return {Report(
        "Fig 26: energy budget (pJ per word) vs total entries",
        table)};
}

/** Suite-total op counts from per-workload coding results. */
coding::OpCounts
totalOps(const std::vector<coding::CodingResult> &runs)
{
    coding::OpCounts total;
    for (const auto &r : runs) {
        total.cycles += r.ops.cycles;
        total.matches += r.ops.matches;
        total.shifts += r.ops.shifts;
        total.counter_incs += r.ops.counter_incs;
        total.compares += r.ops.compares;
        total.swaps += r.ops.swaps;
        total.divisions += r.ops.divisions;
        total.raw_sends += r.ops.raw_sends;
        total.hits += r.ops.hits;
        total.last_hits += r.ops.last_hits;
    }
    return total;
}

std::vector<Report>
runTable2(const Runner &runner)
{
    const auto wls = workloadSeries();

    const std::vector<coding::CodingResult> window_runs =
        runner.map(wls, [](const std::string &wl) {
            return windowRun(wl, trace::BusKind::Register, 8);
        });
    const coding::OpCounts window_ops = totalOps(window_runs);

    Table table({"technology", "voltage_V", "area_um2", "op_energy_pJ",
                 "leakage_pJ", "delay_ns", "cycle_time_ns"});
    for (const auto &tech : circuit::allCircuitTechs()) {
        const circuit::ImplEstimate est =
            circuit::estimate(circuit::window8(), tech);
        table.row()
            .cell(tech.name)
            .cell(tech.vdd, 1)
            .cell(est.area_um2, 0)
            .cell(est.opEnergyPerCycle(window_ops) * 1e12, 2)
            .cell(est.leak_per_cycle * 1e12, 5)
            .cell(est.delay * 1e9, 1)
            .cell(est.cycle_time * 1e9, 1);
    }

    const std::vector<coding::CodingResult> inv_runs =
        runner.map(wls, [](const std::string &wl) {
            auto codec = coding::makeInversion(2, 0.0);
            return coding::evaluate(
                *codec,
                seriesValues(wl, trace::BusKind::Register));
        });
    const coding::OpCounts inv_ops = totalOps(inv_runs);
    const circuit::ImplEstimate inv = circuit::estimate(
        circuit::invertCoder(), circuit::circuit013());
    table.row()
        .cell("InvertCoder")
        .cell(1.2, 1)
        .cell(inv.area_um2, 0)
        .cell(inv.opEnergyPerCycle(inv_ops) * 1e12, 2)
        .cell(inv.leak_per_cycle * 1e12, 5)
        .cell(inv.delay * 1e9, 1)
        .cell(inv.cycle_time * 1e9, 1);

    // Validation of the statistical model against the event-level
    // accounting (paper: within 6% on a 100-cycle netlist run).
    const auto &sample =
        seriesValues("gcc", trace::BusKind::Register);
    const std::vector<Word> head(
        sample.begin(),
        sample.begin() + std::min<std::size_t>(sample.size(), 10000));
    auto codec = coding::makeWindow(8);
    const coding::CodingResult r = coding::evaluate(*codec, head);
    const circuit::ImplEstimate est =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const double statistical =
        est.energyFor(r.ops, false) -
        static_cast<double>(r.ops.cycles) * est.leak_per_cycle;
    const circuit::NetlistEnergy detailed =
        circuit::detailedWindowEnergy(head, 8, circuit::circuit013());
    std::ostringstream note;
    note << "Statistical vs event-level model (gcc register trace): "
         << statistical * 1e12 << " pJ vs " << detailed.total * 1e12
         << " pJ ("
         << 100.0 * (statistical / detailed.total - 1.0)
         << "% apart)";

    return {Report("Table 2: transcoder implementation characteristics",
                   table, {note.str()})};
}

std::vector<Report>
lengthSweep(const Runner &runner, trace::BusKind bus,
            const std::string &title)
{
    const circuit::ImplEstimate impl =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const wires::Technology tech = wires::tech013();
    const auto wls = workloadSeries();

    const std::vector<coding::CodingResult> runs =
        runner.map(wls, [bus](const std::string &wl) {
            return windowRun(wl, bus, 8);
        });

    std::vector<std::string> header = {"length_mm"};
    header.insert(header.end(), wls.begin(), wls.end());

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const auto &run : runs) {
            const analysis::LengthEval e =
                analysis::evalAtLength(run, impl, tech, len);
            table.cell(e.normalized(), 3);
        }
    }
    return {Report(title, table)};
}

std::vector<Report>
runFig35(const Runner &runner)
{
    return lengthSweep(runner, trace::BusKind::Register,
                       "Fig 35: window-8 total energy normalized to "
                       "unencoded, register bus, 0.13um");
}

std::vector<Report>
runFig36(const Runner &runner)
{
    return lengthSweep(runner, trace::BusKind::Memory,
                       "Fig 36: window-8 total energy normalized to "
                       "unencoded, memory bus, 0.13um");
}

const analysis::RegisterExperiment reg_fig26(
    "fig26_energy_budget",
    "transcoder energy budget per word vs total dictionary entries",
    runFig26);
const analysis::RegisterExperiment reg_table2(
    "table2_transcoder_impl",
    "transcoder silicon characteristics per node + model validation",
    runTable2);
const analysis::RegisterExperiment reg_fig35(
    "fig35_window_regbus_energy",
    "window-8 total energy normalized vs length, register bus",
    runFig35);
const analysis::RegisterExperiment reg_fig36(
    "fig36_window_membus_energy",
    "window-8 total energy normalized vs length, memory bus",
    runFig36);

} // namespace
} // namespace predbus::bench
