/**
 * @file
 * Context-transcoder detail experiments: Fig 24 (% energy removed vs
 * staging shift-register size) and Fig 25 (vs counter divide period),
 * register bus, table sizes 16 and 64, on the paper's seven-benchmark
 * subset.
 */

#include "bench/experiments/exp_common.h"

namespace predbus::bench
{
namespace
{

const std::vector<std::string> kSubset = {"li",    "compress", "gcc",
                                          "perl",  "fpppp",    "apsi",
                                          "swim"};
const std::vector<unsigned> kTables = {16u, 64u};

/**
 * Shared grid shape: rows are @p params, columns are
 * (workload x table size), cells configure the context transcoder via
 * @p configure(cfg, param, table_size).
 */
template <typename Configure>
Table
contextGrid(const Runner &runner, const std::string &param_name,
            const std::vector<unsigned> &params,
            const Configure &configure)
{
    std::vector<std::string> header = {param_name};
    for (const auto &wl : kSubset)
        for (unsigned t : kTables)
            header.push_back(wl + ":" + std::to_string(t));

    const std::vector<const std::vector<Word> *> streams =
        runner.map(kSubset, [](const std::string &wl) {
            return &seriesValues(wl, trace::BusKind::Register);
        });

    const std::size_t cols = kSubset.size() * kTables.size();
    const std::vector<double> cells = runner.mapIndex(
        params.size() * cols, [&](std::size_t i) {
            const unsigned param = params[i / cols];
            const std::size_t col = i % cols;
            const std::size_t wl = col / kTables.size();
            const unsigned t = kTables[col % kTables.size()];
            coding::ContextConfig cfg;
            configure(cfg, param, t);
            auto codec = coding::makeContext(cfg);
            return removedPercent(
                coding::evaluate(*codec, *streams[wl]));
        });

    Table table(header);
    for (std::size_t r = 0; r < params.size(); ++r) {
        table.row().cell(static_cast<long long>(params[r]));
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r * cols + c], 2);
    }
    return table;
}

std::vector<Report>
runFig24(const Runner &runner)
{
    const std::vector<unsigned> sr_sizes = {2, 4, 8, 12, 16, 24, 28};
    return {Report(
        "Fig 24: context (value-based) % energy removed vs shift "
        "register size, register bus",
        contextGrid(runner, "shift_register_size", sr_sizes,
                    [](coding::ContextConfig &cfg, unsigned s,
                       unsigned t) {
                        cfg.table_size = t;
                        cfg.sr_size = s;
                    }))};
}

std::vector<Report>
runFig25(const Runner &runner)
{
    const std::vector<unsigned> periods = {4,    16,   64,  256,
                                           1024, 4096, 16384};
    return {Report(
        "Fig 25: context (value-based) % energy removed vs counter "
        "divide period, register bus",
        contextGrid(runner, "counter_divide_period", periods,
                    [](coding::ContextConfig &cfg, unsigned period,
                       unsigned t) {
                        cfg.table_size = t;
                        cfg.sr_size = 8;
                        cfg.divide_period = period;
                    }))};
}

const analysis::RegisterExperiment reg_fig24(
    "fig24_ctx_shiftreg",
    "context (value-based) vs staging shift-register size", runFig24);
const analysis::RegisterExperiment reg_fig25(
    "fig25_ctx_divide",
    "context (value-based) vs counter divide period", runFig25);

} // namespace
} // namespace predbus::bench
