/**
 * @file
 * Fig 15: normalized energy remaining for the generalized inversion
 * coder as a function of the wire's actual λ, when the selection logic
 * assumes λ=0 (λ0), λ=1 (λ1), or the true value (λN). Series:
 * memory-bus average, register-bus average (over the Fig 7
 * benchmarks), and uniform random data.
 */

#include "bench/experiments/exp_common.h"
#include "common/stats.h"

namespace predbus::bench
{
namespace
{

constexpr unsigned kPatterns = 8;

/** % energy remaining at actual λ for one stream, one selector λ. */
double
remainingPercent(const std::vector<Word> &values, double assumed,
                 double actual)
{
    auto codec = coding::makeInversion(kPatterns, assumed);
    const coding::CodingResult r = coding::evaluate(*codec, values);
    const double base = r.base.cost(actual);
    return base > 0 ? 100.0 * r.coded.cost(actual) / base : 100.0;
}

std::vector<Report>
runFig15(const Runner &runner)
{
    const std::vector<double> lambdas = {0.1, 0.2, 0.5, 1.0, 2.0,
                                         5.0, 10.0, 20.0, 50.0, 100.0};

    // Gather the streams once (parallel first touch).
    const auto wls = statsBenchmarks();
    const std::vector<const std::vector<Word> *> reg_streams =
        runner.map(wls, [](const std::string &wl) {
            return &seriesValues(wl, trace::BusKind::Register);
        });
    const std::vector<const std::vector<Word> *> mem_streams =
        runner.map(wls, [](const std::string &wl) {
            return &seriesValues(wl, trace::BusKind::Memory);
        });
    const std::vector<Word> &random =
        seriesValues("random", trace::BusKind::Register);

    // One task per table row (actual λ); each row reproduces the
    // original serial cell order exactly.
    const std::vector<std::vector<double>> rows = runner.map(
        lambdas, [&](double actual) {
            std::vector<double> cells;
            for (const auto *streams : {&mem_streams, &reg_streams}) {
                for (const double assumed : {0.0, 1.0, actual}) {
                    std::vector<double> vals;
                    for (const auto *stream : *streams)
                        vals.push_back(remainingPercent(
                            *stream, assumed, actual));
                    cells.push_back(mean(vals));
                }
            }
            for (const double assumed : {0.0, 1.0, actual})
                cells.push_back(
                    remainingPercent(random, assumed, actual));
            return cells;
        });

    Table table({"actual_lambda", "mem_l0", "mem_l1", "mem_lN",
                 "reg_l0", "reg_l1", "reg_lN", "random_l0",
                 "random_l1", "random_lN"});
    for (std::size_t r = 0; r < lambdas.size(); ++r) {
        table.row().cell(lambdas[r], 2);
        for (double cell : rows[r])
            table.cell(cell, 2);
    }
    return {Report("Fig 15: inversion coder % energy remaining vs "
                   "actual lambda (8 patterns)",
                   table)};
}

const analysis::RegisterExperiment reg_fig15(
    "fig15_inversion_lambda",
    "inversion coder energy remaining vs actual lambda (l0/l1/lN)",
    runFig15);

} // namespace
} // namespace predbus::bench
