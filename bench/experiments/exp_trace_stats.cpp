/**
 * @file
 * Trace characterization experiments (paper §4.2): Fig 7 unique-value
 * CDFs and Fig 8 per-window unique fractions, over the register and
 * memory data buses of gcc, su2cor, swim and turb3d.
 */

#include <algorithm>

#include "bench/experiments/exp_common.h"
#include "trace/trace_stats.h"

namespace predbus::bench
{
namespace
{

struct StatsSeries
{
    std::string workload;
    trace::BusKind bus;
};

std::vector<StatsSeries>
statsSeries()
{
    std::vector<StatsSeries> out;
    for (const auto &wl : statsBenchmarks())
        for (const auto bus :
             {trace::BusKind::Register, trace::BusKind::Memory})
            out.push_back({wl, bus});
    return out;
}

std::vector<Report>
runFig07(const Runner &runner)
{
    const std::vector<std::size_t> ks = {1,    2,    5,     10,   20,
                                         50,   100,  200,   500,  1000,
                                         2000, 5000, 10000, 20000,
                                         50000, 100000};

    const auto series = statsSeries();
    const std::vector<std::vector<double>> cdfs =
        runner.map(series, [](const StatsSeries &s) {
            return trace::uniqueValueCdf(
                seriesValues(s.workload, s.bus));
        });

    std::vector<std::string> header = {"top_k_unique_values"};
    for (const auto &s : series)
        header.push_back(s.workload +
                         (s.bus == trace::BusKind::Register
                              ? ", reg bus"
                              : ", memory data bus"));

    Table table(header);
    for (std::size_t k : ks) {
        table.row().cell(static_cast<long long>(k));
        for (const auto &cdf : cdfs) {
            const double frac =
                cdf.empty() ? 0.0
                            : cdf[std::min(k, cdf.size()) - 1];
            table.cell(frac, 4);
        }
    }
    return {Report(
        "Fig 7: fraction of total values covered by top-k uniques",
        table)};
}

std::vector<Report>
runFig08(const Runner &runner)
{
    const std::vector<std::size_t> windows = {
        1, 2, 5, 10, 20, 50, 100, 1000, 10000, 100000};

    const auto series = statsSeries();
    std::vector<std::string> header = {"window_size"};
    for (const auto &s : series)
        header.push_back(s.workload +
                         (s.bus == trace::BusKind::Register
                              ? " reg bus"
                              : " memory data"));

    const std::size_t cols = series.size();
    const std::vector<double> cells = runner.mapIndex(
        windows.size() * cols, [&](std::size_t i) {
            const auto &s = series[i % cols];
            return trace::windowUniqueFraction(
                seriesValues(s.workload, s.bus),
                windows[i / cols]);
        });

    Table table(header);
    for (std::size_t r = 0; r < windows.size(); ++r) {
        table.row().cell(static_cast<long long>(windows[r]));
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r * cols + c], 4);
    }
    return {Report("Fig 8: average unique fraction per window", table)};
}

const analysis::RegisterExperiment reg_fig07(
    "fig07_value_cdf",
    "CDF of most-frequent unique bus values (gcc/su2cor/swim/turb3d)",
    runFig07);
const analysis::RegisterExperiment reg_fig08(
    "fig08_window_unique",
    "fraction of values unique within a window vs window size",
    runFig08);

} // namespace
} // namespace predbus::bench
