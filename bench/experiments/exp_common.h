/**
 * @file
 * Shared plumbing for the registered experiments.
 *
 * Series naming, trace access, and the common sweep shape of
 * Figs 16-23 — all built on the experiment engine: streams come from
 * the thread-safe suite cache, grids fan out through the Runner, and
 * repeated heavy runs (window-N on a given trace) are memoized across
 * experiments so the full-registry sweep never evaluates the same
 * (workload, scheme) pair twice.
 */

#ifndef PREDBUS_BENCH_EXPERIMENTS_EXP_COMMON_H
#define PREDBUS_BENCH_EXPERIMENTS_EXP_COMMON_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "analysis/suite.h"
#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/table.h"
#include "trace/trace_io.h"

namespace predbus::bench
{

using analysis::Report;
using analysis::Runner;

/** The paper's series order: "random" then the 17 workloads. */
std::vector<std::string> seriesWithRandom();

/** Just the 17 workloads (paper presentation order). */
std::vector<std::string> workloadSeries();

/** The four benchmarks of Figs 7/8/15. */
std::vector<std::string> statsBenchmarks();

/**
 * Values for a series name: "random" yields a uniform random stream
 * sized like the workload traces; anything else is a suite trace.
 * Memoized for the life of the process; thread-safe.
 */
const std::vector<Word> &seriesValues(const std::string &series,
                                      trace::BusKind bus);

/** "Normalized energy removed" percentage at λ=1 (paper §4.4). */
double removedPercent(const coding::CodingResult &result);

/**
 * Window-N coding run on (workload, bus), memoized across experiments
 * (Figs 18-19/26/35-38, Tables 2-3, and several ablations all need
 * the same runs). Thread-safe; results identical to a fresh evaluate.
 */
const coding::CodingResult &windowRun(const std::string &workload,
                                      trace::BusKind bus,
                                      unsigned entries);

/** Builds the codec for one swept parameter value. */
using CodecFactory =
    std::function<std::unique_ptr<coding::Transcoder>(unsigned)>;

/**
 * The common shape of Figs 16-23: rows are parameter values, columns
 * are series, cells are % normalized energy removed on @p bus. Cells
 * are fanned across @p runner and assembled in grid order.
 */
Table sweepTable(const Runner &runner, const std::string &param_name,
                 const std::vector<unsigned> &params,
                 const std::vector<std::string> &series,
                 trace::BusKind bus, const CodecFactory &make);

} // namespace predbus::bench

#endif // PREDBUS_BENCH_EXPERIMENTS_EXP_COMMON_H
