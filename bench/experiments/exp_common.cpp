#include "bench/experiments/exp_common.h"

#include <map>
#include <mutex>
#include <tuple>

#include "obs/metrics.h"
#include "workloads/workload.h"

namespace predbus::bench
{

namespace
{

// Cross-experiment window-run memoization accounting (pre-registered
// so the metrics report always carries the names).
obs::Counter &window_memo_hits =
    obs::Registry::global().counter("coding.window.memo_hits");
obs::Counter &window_memo_misses =
    obs::Registry::global().counter("coding.window.memo_misses");

} // namespace

std::vector<std::string>
workloadSeries()
{
    std::vector<std::string> names;
    for (const auto &info : workloads::all())
        names.push_back(info.name);
    return names;
}

std::vector<std::string>
seriesWithRandom()
{
    std::vector<std::string> names = {"random"};
    for (const auto &name : workloadSeries())
        names.push_back(name);
    return names;
}

std::vector<std::string>
statsBenchmarks()
{
    return {"gcc", "su2cor", "swim", "turb3d"};
}

const std::vector<Word> &
seriesValues(const std::string &series, trace::BusKind bus)
{
    const analysis::SuiteOptions opt = analysis::SuiteOptions::fromEnv();
    if (series == "random") {
        // Sized like a typical register trace for the cycle budget.
        static std::mutex mutex;
        static std::map<std::pair<int, u64>, std::vector<Word>> memo;
        const std::pair<int, u64> key{static_cast<int>(bus),
                                      opt.cycles};
        std::lock_guard<std::mutex> g(mutex);
        auto it = memo.find(key);
        if (it == memo.end()) {
            it = memo.emplace(key,
                              analysis::randomValues(
                                  static_cast<std::size_t>(
                                      opt.cycles * 3 / 4),
                                  0xD1CE + static_cast<u64>(bus)))
                     .first;
        }
        return it->second;
    }
    return analysis::busValues(series, bus, opt);
}

double
removedPercent(const coding::CodingResult &result)
{
    return 100.0 * result.removedFraction(1.0);
}

const coding::CodingResult &
windowRun(const std::string &workload, trace::BusKind bus,
          unsigned entries)
{
    using Key = std::tuple<std::string, int, unsigned, u64>;
    static std::mutex mutex;
    static std::map<Key, coding::CodingResult> memo;
    const u64 cycles = analysis::SuiteOptions::fromEnv().cycles;
    const Key key{workload, static_cast<int>(bus), entries, cycles};
    {
        std::lock_guard<std::mutex> g(mutex);
        if (const auto it = memo.find(key); it != memo.end()) {
            window_memo_hits.inc();
            return it->second;
        }
    }
    window_memo_misses.inc();
    // Evaluate outside the lock so distinct runs proceed in parallel;
    // a racing duplicate computes the identical result and the first
    // emplace wins.
    const auto &values = seriesValues(workload, bus);
    auto codec = coding::makeWindow(entries);
    coding::CodingResult result = coding::evaluate(*codec, values);
    std::lock_guard<std::mutex> g(mutex);
    return memo.emplace(key, std::move(result)).first->second;
}

Table
sweepTable(const Runner &runner, const std::string &param_name,
           const std::vector<unsigned> &params,
           const std::vector<std::string> &series, trace::BusKind bus,
           const CodecFactory &make)
{
    // Materialize the streams first; first touch generates traces, so
    // fan it across the pool too.
    const std::vector<const std::vector<Word> *> streams =
        runner.map(series, [&](const std::string &name) {
            return &seriesValues(name, bus);
        });

    std::vector<std::string> header = {param_name};
    header.insert(header.end(), series.begin(), series.end());

    const std::size_t cols = series.size();
    const std::vector<double> cells =
        runner.mapIndex(params.size() * cols, [&](std::size_t i) {
            auto codec = make(params[i / cols]);
            return removedPercent(
                coding::evaluate(*codec, *streams[i % cols]));
        });

    Table table(header);
    for (std::size_t r = 0; r < params.size(); ++r) {
        table.row().cell(static_cast<long long>(params[r]));
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r * cols + c], 2);
    }
    return table;
}

} // namespace predbus::bench
