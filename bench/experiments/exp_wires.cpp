/**
 * @file
 * Interconnect characterization experiments (paper §3): Figs 5-6 and
 * Table 1. Pure wire-model math — no traces, no simulation.
 */

#include "bench/experiments/exp_common.h"
#include "wires/wire_model.h"

namespace predbus::bench
{
namespace
{

/** Figs 5-6 share the same matrix; only the measured quantity and
 * printed precision differ. */
Table
wireSweep(double (wires::WireModel::*metric)() const, double unit,
          int precision)
{
    std::vector<std::string> header = {"length_mm"};
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Repeater_" + tech.name);
    for (const auto &tech : wires::allTechnologies())
        header.push_back("Wire_" + tech.name);

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const bool buffered : {true, false}) {
            for (const auto &tech : wires::allTechnologies()) {
                const wires::WireModel w(tech, len, buffered);
                table.cell((w.*metric)() * unit, precision);
            }
        }
    }
    return table;
}

std::vector<Report>
runFig05(const Runner &)
{
    return {Report("Fig 5: wire energy (pJ) vs length (mm)",
                   wireSweep(&wires::WireModel::isolatedTransitionEnergy,
                             1e12, 4))};
}

std::vector<Report>
runFig06(const Runner &)
{
    return {Report("Fig 6: wire delay (ps) vs length (mm)",
                   wireSweep(&wires::WireModel::delay, 1e12, 1))};
}

std::vector<Report>
runTable1(const Runner &)
{
    Table table({"technology", "wire_type", "average_lambda"});
    for (const auto &tech : wires::allTechnologies()) {
        table.row()
            .cell(tech.name)
            .cell("unbuffered")
            .cell(tech.unbufferedLambda(), 3);
        // Average across the plotted length range, as in the paper.
        double sum = 0.0;
        int n = 0;
        for (int len = 5; len <= 30; len += 5) {
            sum += wires::WireModel(tech, len, true).effectiveLambda();
            ++n;
        }
        table.row()
            .cell(tech.name)
            .cell("with_repeaters")
            .cell(sum / n, 3);
    }
    return {Report("Table 1: effective lambda values", table)};
}

const analysis::RegisterExperiment reg_fig05(
    "fig05_wire_energy",
    "wire transition energy vs length, 3 nodes, buffered+unbuffered",
    runFig05);
const analysis::RegisterExperiment reg_fig06(
    "fig06_wire_delay",
    "wire propagation delay vs length, 3 nodes, buffered+unbuffered",
    runFig06);
const analysis::RegisterExperiment reg_table1(
    "table1_lambda",
    "effective lambda per technology node, unbuffered and buffered",
    runTable1);

} // namespace
} // namespace predbus::bench
