/**
 * @file
 * The parameter-sweep experiments of Figs 16-23: % normalized energy
 * removed vs predictor size, for the stride, window, and context
 * transcoders on the register and memory data buses.
 */

#include <sstream>

#include "bench/experiments/exp_common.h"
#include "common/stats.h"

namespace predbus::bench
{
namespace
{

const std::vector<unsigned> kStrideCounts = {1,  2,  3,  4,  5,  6,
                                             8,  10, 12, 15, 20, 25,
                                             30};
const std::vector<unsigned> kWindowSizes = {2,  4,  6,  8,  12, 16,
                                            24, 32, 48, 64};
const std::vector<unsigned> kTableSizes = {4,  8,  12, 16, 20, 24,
                                           28, 32, 40, 48, 56, 64};

/**
 * Window sweep via the shared windowRun memo: identical numbers to
 * sweepTable with makeWindow, but the (workload, entries) runs are
 * cached for the energy/crossover experiments that need them again.
 */
Table
windowSweepTable(const Runner &runner, trace::BusKind bus)
{
    const auto wls = workloadSeries();
    const std::size_t cols = wls.size();
    const std::vector<double> cells = runner.mapIndex(
        kWindowSizes.size() * cols, [&](std::size_t i) {
            return removedPercent(windowRun(
                wls[i % cols], bus, kWindowSizes[i / cols]));
        });

    std::vector<std::string> header = {"window_entries"};
    header.insert(header.end(), wls.begin(), wls.end());
    Table table(header);
    for (std::size_t r = 0; r < kWindowSizes.size(); ++r) {
        table.row().cell(static_cast<long long>(kWindowSizes[r]));
        for (std::size_t c = 0; c < cols; ++c)
            table.cell(cells[r * cols + c], 2);
    }
    return table;
}

CodecFactory
contextFactory(bool transition_based)
{
    return [transition_based](unsigned t) {
        coding::ContextConfig cfg;
        cfg.table_size = t;
        cfg.sr_size = 8;
        cfg.transition_based = transition_based;
        return coding::makeContext(cfg);
    };
}

std::vector<Report>
runFig16(const Runner &runner)
{
    return {Report(
        "Fig 16: stride predictor % energy removed, memory bus",
        sweepTable(runner, "strides", kStrideCounts,
                   seriesWithRandom(), trace::BusKind::Memory,
                   [](unsigned k) { return coding::makeStride(k); }))};
}

std::vector<Report>
runFig17(const Runner &runner)
{
    return {Report(
        "Fig 17: stride predictor % energy removed, register bus",
        sweepTable(runner, "strides", kStrideCounts,
                   seriesWithRandom(), trace::BusKind::Register,
                   [](unsigned k) { return coding::makeStride(k); }))};
}

std::vector<Report>
runFig18(const Runner &runner)
{
    return {Report(
        "Fig 18: window transcoder % energy removed, memory bus",
        windowSweepTable(runner, trace::BusKind::Memory))};
}

std::vector<Report>
runFig19(const Runner &runner)
{
    Table table =
        windowSweepTable(runner, trace::BusKind::Register);

    // Headline summary (paper §7: average 36% on SPEC95).
    std::vector<double> at8;
    for (std::size_t r = 0; r < table.rowCount(); ++r) {
        if (table.at(r, 0) == "8") {
            for (std::size_t c = 1; c < table.columnCount(); ++c)
                at8.push_back(std::stod(table.at(r, c)));
        }
    }
    std::ostringstream note;
    note << "Average % energy removed at 8 entries "
            "(paper headline ~36% transition reduction): "
         << mean(at8) << "%";
    return {Report(
        "Fig 19: window transcoder % energy removed, register bus",
        std::move(table), {note.str()})};
}

std::vector<Report>
runFig20(const Runner &runner)
{
    return {Report("Fig 20: context (transition-based) % energy "
                   "removed, memory bus",
                   sweepTable(runner, "table_size", kTableSizes,
                              seriesWithRandom(),
                              trace::BusKind::Memory,
                              contextFactory(true)))};
}

std::vector<Report>
runFig21(const Runner &runner)
{
    return {Report("Fig 21: context (transition-based) % energy "
                   "removed, register bus",
                   sweepTable(runner, "table_size", kTableSizes,
                              seriesWithRandom(),
                              trace::BusKind::Register,
                              contextFactory(true)))};
}

std::vector<Report>
runFig22(const Runner &runner)
{
    return {Report(
        "Fig 22: context (value-based) % energy removed, memory bus",
        sweepTable(runner, "table_size", kTableSizes,
                   seriesWithRandom(), trace::BusKind::Memory,
                   contextFactory(false)))};
}

std::vector<Report>
runFig23(const Runner &runner)
{
    return {Report(
        "Fig 23: context (value-based) % energy removed, register bus",
        sweepTable(runner, "table_size", kTableSizes,
                   seriesWithRandom(), trace::BusKind::Register,
                   contextFactory(false)))};
}

const analysis::RegisterExperiment reg_fig16(
    "fig16_stride_membus",
    "stride predictor sweep, memory data bus", runFig16);
const analysis::RegisterExperiment reg_fig17(
    "fig17_stride_regbus",
    "stride predictor sweep, register bus", runFig17);
const analysis::RegisterExperiment reg_fig18(
    "fig18_window_membus",
    "window transcoder sweep, memory data bus", runFig18);
const analysis::RegisterExperiment reg_fig19(
    "fig19_window_regbus",
    "window transcoder sweep, register bus (paper headline)",
    runFig19);
const analysis::RegisterExperiment reg_fig20(
    "fig20_ctx_trans_membus",
    "context (transition-based) table-size sweep, memory bus",
    runFig20);
const analysis::RegisterExperiment reg_fig21(
    "fig21_ctx_trans_regbus",
    "context (transition-based) table-size sweep, register bus",
    runFig21);
const analysis::RegisterExperiment reg_fig22(
    "fig22_ctx_value_membus",
    "context (value-based) table-size sweep, memory bus", runFig22);
const analysis::RegisterExperiment reg_fig23(
    "fig23_ctx_value_regbus",
    "context (value-based) table-size sweep, register bus", runFig23);

} // namespace
} // namespace predbus::bench
