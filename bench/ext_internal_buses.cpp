/**
 * Extension: the paper's abstract claims savings "on internal buses
 * such as the reorder buffer and register file". This bench compares
 * the window-8 transcoder across all four traced buses — register
 * output port, writeback/reorder-buffer result bus, memory data bus,
 * and memory address bus — per workload.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const trace::BusKind buses[] = {
        trace::BusKind::Register, trace::BusKind::Writeback,
        trace::BusKind::Memory, trace::BusKind::Address};

    std::vector<std::string> header = {"workload"};
    for (const auto bus : buses)
        header.push_back(trace::busName(bus));

    Table table(header);
    std::vector<std::vector<double>> columns(std::size(buses));
    for (const auto &wl : bench::workloadSeries()) {
        table.row().cell(wl);
        for (std::size_t i = 0; i < std::size(buses); ++i) {
            const auto &values = bench::seriesValues(wl, buses[i]);
            auto codec = coding::makeWindow(8);
            const double pct = bench::removedPercent(
                coding::evaluate(*codec, values));
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);

    bench::emit("Extension: window-8 % energy removed across internal "
                "and external buses",
                table, argc, argv);
    return 0;
}
