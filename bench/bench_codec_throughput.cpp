/**
 * Codec hot-path throughput bench: per-word scalar encode() vs the
 * batched encodeSpan() path for every hot codec family, plus a serve
 * loopback (in-process server on a unix socket) latency measurement.
 *
 * Emits BENCH_codec_throughput.json (schema
 * predbus.bench_codec_throughput.v1); tools/check_perf_gate.py
 * compares a fresh run against the committed baseline at the repo
 * root. Not a paper figure; this pins the software perf trajectory.
 *
 * Usage:
 *   bench_codec_throughput [--words=N] [--reps=R] [--chunk=C]
 *                          [--format=table|json] [--out=FILE]
 *                          [--skip-serve]
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "coding/factory.h"
#include "coding/session.h"
#include "coding/window.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/stats.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"
#include "store/session_store.h"

using namespace predbus;

namespace
{

struct Options
{
    std::size_t words = 1u << 16;
    unsigned reps = 3;
    std::size_t chunk = 4096;
    bool json = false;
    std::string out_path;
    bool skip_serve = false;
};

struct CodecRow
{
    std::string spec;
    std::string name;
    double scalar_words_per_sec = 0.0;
    double span_words_per_sec = 0.0;
    double span_speedup = 0.0;  ///< median of per-rep span/scalar

    double
    speedup() const
    {
        return span_speedup;
    }
};

struct ServeRow
{
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    double words_per_sec = 0.0;
};

struct ObsRow
{
    double lockfree_record_ns = 0.0;  ///< quiet single-thread record
    double mutex_record_ns = 0.0;     ///< same for the old design
    double scraped_lockfree_record_ns = 0.0;  ///< under a live scraper
    double scraped_mutex_record_ns = 0.0;
    double record_speedup = 0.0;  ///< scraped mutex / scraped lock-free
};

double
nowSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The mixed-locality stream the old bench used: 60% draws from a
 * 12-value working set, 40% fresh random words. */
std::vector<Word>
stream(std::size_t n)
{
    Rng rng(99);
    std::vector<Word> out(n);
    std::vector<Word> pool(12);
    for (auto &p : pool)
        p = rng.next32();
    for (auto &v : out)
        v = rng.chance(0.6) ? pool[rng.below(pool.size())]
                            : rng.next32();
    return out;
}

/** One timed pass of the per-word scalar encode path (words/sec). */
double
scalarPass(coding::Transcoder &codec, const std::vector<Word> &values,
           std::vector<u64> &out)
{
    codec.reset();
    const double t0 = nowSec();
    for (std::size_t i = 0; i < values.size(); ++i)
        out[i] = codec.encode(values[i]);
    const double dt = nowSec() - t0;
    return dt > 0.0 ? static_cast<double>(values.size()) / dt : 0.0;
}

/** One timed pass of the chunked span path (words/sec). */
double
spanPass(coding::Transcoder &codec, const std::vector<Word> &values,
         std::size_t chunk, std::vector<u64> &out)
{
    codec.reset();
    const double t0 = nowSec();
    std::size_t off = 0;
    while (off < values.size()) {
        const std::size_t n = std::min(chunk, values.size() - off);
        codec.encodeSpan(values.data() + off, out.data() + off, n);
        off += n;
    }
    const double dt = nowSec() - t0;
    return dt > 0.0 ? static_cast<double>(values.size()) / dt : 0.0;
}

CodecRow
benchCodec(const std::string &spec, const std::vector<Word> &values,
           const Options &opt)
{
    auto codec = coding::makeFromSpec(spec);
    CodecRow row;
    row.spec = spec;
    row.name = codec->name();

    // Scalar and span passes interleave rep by rep, and the speedup
    // is the ratio of the two best-of-reps rates: each path's best
    // pass approaches its unthrottled peak independently, which on a
    // shared 1-core host is far more repeatable than pairing the
    // passes of any single (possibly perturbed) rep.
    std::vector<u64> scalar_out(values.size());
    std::vector<u64> span_out(values.size());
    for (unsigned r = 0; r < opt.reps; ++r) {
        const double scalar = scalarPass(*codec, values, scalar_out);
        const double span =
            spanPass(*codec, values, opt.chunk, span_out);
        // The bench double-checks the differential-fuzz contract on
        // its own inputs: identical wire states or the numbers are
        // garbage.
        panicIf(scalar_out != span_out, spec,
                ": span wire states diverge from scalar");
        row.scalar_words_per_sec =
            std::max(row.scalar_words_per_sec, scalar);
        row.span_words_per_sec =
            std::max(row.span_words_per_sec, span);
    }
    if (row.scalar_words_per_sec > 0.0)
        row.span_speedup =
            row.span_words_per_sec / row.scalar_words_per_sec;
    return row;
}

ServeRow
benchServe(const std::vector<Word> &values, const Options &opt)
{
    serve::ServerOptions sopt;
    sopt.unix_path = "/tmp/predbus_bench_" +
                     std::to_string(::getpid()) + ".sock";
    sopt.workers = 1;
    serve::Server server(sopt);
    auto client = serve::Client::connectUnixSocket(sopt.unix_path);
    auto session = client.openOrThrow("window:8");

    constexpr std::size_t kBatch = 256;
    std::vector<double> lat_ns;
    double total_sec = 0.0;
    u64 total_words = 0;
    for (unsigned r = 0; r < opt.reps; ++r) {
        std::size_t off = 0;
        while (off + kBatch <= values.size()) {
            const std::span<const Word> batch(values.data() + off,
                                              kBatch);
            const double t0 = nowSec();
            const auto result = session.encode(batch);
            const double dt = nowSec() - t0;
            panicIf(!result.ok(), "serve loopback batch failed");
            lat_ns.push_back(dt * 1e9);
            total_sec += dt;
            total_words += kBatch;
            off += kBatch;
        }
    }
    session.close();
    server.stop();
    ::unlink(sopt.unix_path.c_str());

    std::sort(lat_ns.begin(), lat_ns.end());
    const auto pct = [&](double p) {
        const std::size_t i = static_cast<std::size_t>(
            p * static_cast<double>(lat_ns.size() - 1));
        return lat_ns[i];
    };
    ServeRow row;
    row.p50_ns = pct(0.50);
    row.p99_ns = pct(0.99);
    row.words_per_sec = total_sec > 0.0
                            ? static_cast<double>(total_words) /
                                  total_sec
                            : 0.0;
    return row;
}

struct EnergyOverheadRow
{
    double unmetered_words_per_sec = 0.0;
    double metered_words_per_sec = 0.0;
    double metering_ratio = 0.0;  ///< metered / unmetered (1.0 = free)
};

/** One paired pass of 256-word encode batches over @p values: the
 * unmetered and metered sessions alternate every 16 batches so both
 * sides of the ratio see the same CPU frequency and background load
 * at sub-millisecond granularity (the overhead being measured is a
 * couple percent, smaller than whole-pass scheduler noise). The value
 * set is swept repeatedly until each side covers at least 512Ki
 * words. */
struct PairedPass
{
    double unmetered_sec = 0.0;
    double metered_sec = 0.0;
    u64 words = 0;  ///< words each side processed
};

PairedPass
pairedLoopbackPass(serve::ClientSession &unmetered,
                   serve::ClientSession &metered,
                   const std::vector<Word> &values,
                   const serve::protocol::TraceContext &trace)
{
    constexpr std::size_t kBatch = 256;
    constexpr std::size_t kChunkBatches = 16;
    constexpr u64 kMinPassWords = 512 * 1024;
    PairedPass pass;
    const std::size_t usable =
        values.size() - values.size() % kBatch;
    while (pass.words < kMinPassWords) {
        std::size_t off = 0;
        while (off < usable) {
            const std::size_t chunk_end =
                std::min(off + kChunkBatches * kBatch, usable);
            double t0 = nowSec();
            for (std::size_t at = off; at + kBatch <= chunk_end;
                 at += kBatch) {
                const auto result = unmetered.encode(
                    std::span<const Word>(values.data() + at, kBatch),
                    nullptr);
                panicIf(!result.ok(), "metering bench batch failed");
            }
            pass.unmetered_sec += nowSec() - t0;
            t0 = nowSec();
            for (std::size_t at = off; at + kBatch <= chunk_end;
                 at += kBatch) {
                const auto result = metered.encode(
                    std::span<const Word>(values.data() + at, kBatch),
                    &trace);
                panicIf(!result.ok(), "metering bench batch failed");
            }
            pass.metered_sec += nowSec() - t0;
            pass.words += chunk_end - off;
            off = chunk_end;
        }
        if (off == 0)
            break;  // value set smaller than one batch
    }
    return pass;
}

/**
 * Serve-path cost of the live energy/tracing plane: two identical
 * single-worker loopback servers, one with metering + batch tail
 * sampling off, one with both on and every batch trace-stamped. Each
 * rep runs one pass against each server back to back and the median
 * paired ratio is the reported metering_ratio. The gate pins it
 * (tools/check_perf_gate.py --energy-overhead-floor): metering must
 * stay within a few percent of the unmetered serve path.
 */
EnergyOverheadRow
benchEnergyOverhead(const std::vector<Word> &values,
                    const Options &opt)
{
    const std::string base_path =
        "/tmp/predbus_bench_" + std::to_string(::getpid());

    serve::ServerOptions off_opt;
    off_opt.unix_path = base_path + "_unmetered.sock";
    off_opt.workers = 1;
    off_opt.meter_energy = false;
    off_opt.batch_trace_capacity = 0;
    serve::Server off_server(off_opt);

    serve::ServerOptions on_opt;
    on_opt.unix_path = base_path + "_metered.sock";
    on_opt.workers = 1;
    on_opt.meter_energy = true;
    on_opt.batch_trace_capacity = 64;
    serve::Server on_server(on_opt);

    auto off_client =
        serve::Client::connectUnixSocket(off_opt.unix_path);
    auto on_client =
        serve::Client::connectUnixSocket(on_opt.unix_path);
    auto off_session = off_client.openOrThrow("window:8");
    auto on_session = on_client.openOrThrow("window:8");

    serve::protocol::TraceContext trace;
    trace.trace_id = 0x1d8f00dbeefcafe5ull;
    trace.span_id = 0x0badc0ffee123457ull;

    // The ratio is the gated quantity, so the two sides must see the
    // same CPU frequency and background load: chunks of batches
    // alternate between the two servers at sub-millisecond
    // granularity, and the ratio is taken over the *total* paired
    // times of the whole run, so a noise burst lands on both sides of
    // the division and cancels. Dividing two independently best-of'd
    // rates instead lets scheduler noise land on one side only, which
    // on a busy host swings the quotient by far more than the
    // metering cost being measured.
    EnergyOverheadRow row;
    double unmetered_sec = 0.0;
    double metered_sec = 0.0;
    for (unsigned r = 0; r < opt.reps; ++r) {
        const PairedPass pass =
            pairedLoopbackPass(off_session, on_session, values, trace);
        if (pass.words == 0 || pass.unmetered_sec <= 0.0 ||
            pass.metered_sec <= 0.0)
            continue;
        const double w = static_cast<double>(pass.words);
        row.unmetered_words_per_sec =
            std::max(row.unmetered_words_per_sec,
                     w / pass.unmetered_sec);
        row.metered_words_per_sec = std::max(
            row.metered_words_per_sec, w / pass.metered_sec);
        unmetered_sec += pass.unmetered_sec;
        metered_sec += pass.metered_sec;
    }
    off_session.close();
    on_session.close();
    off_server.stop();
    on_server.stop();
    ::unlink(off_opt.unix_path.c_str());
    ::unlink(on_opt.unix_path.c_str());

    // rate_metered / rate_unmetered with the shared word count
    // cancelled.
    if (metered_sec > 0.0)
        row.metering_ratio = unmetered_sec / metered_sec;
    return row;
}

struct StoreRow
{
    double churn_sessions_per_sec = 0.0;  ///< touches through the tier
    double resume_p50_ns = 0.0;
    double resume_p99_ns = 0.0;
};

/**
 * Session-store churn bench: a population of sessions 16x the
 * resident budget, touched round-robin — the adversarial order for
 * the per-shard LRU, so (after warm-up) every touch is a disk resume
 * plus an eviction snapshot. The reported rate is session activations
 * per second through the spill tier; the gate's --churn-floor pins it
 * far below any healthy value, as a backstop against the snapshot or
 * segment-file path going accidentally quadratic.
 */
StoreRow
benchStoreChurn(const std::vector<Word> &values, const Options &opt)
{
    constexpr unsigned kSessions = 512;
    constexpr std::size_t kResidentSessions = 32;
    constexpr std::size_t kTouchWords = 64;

    obs::Registry registry;
    const std::size_t snap_bytes =
        coding::CodecSession("window:8").snapshot().size() + 1;
    store::StoreOptions sopt;
    sopt.shards = 4;
    sopt.resident_bytes = kResidentSessions * snap_bytes;
    store::ShardedSessionStore store(std::move(sopt), &registry);
    for (unsigned i = 0; i < kSessions; ++i) {
        store.put((u64{i} << 32) | 1,
                  store::StoredSession{
                      coding::CodecSession("window:8"), false});
    }

    StoreRow row;
    std::vector<u64> states;
    std::size_t pos = 0;
    const unsigned touches = kSessions * 4;
    for (unsigned r = 0; r < opt.reps; ++r) {
        const double t0 = nowSec();
        for (unsigned t = 0; t < touches; ++t) {
            const u64 key = (u64{t % kSessions} << 32) | 1;
            store::StoredSession *stored = store.get(key);
            panicIf(stored == nullptr,
                    "store churn bench lost a session");
            states.clear();
            stored->session.encodeBatch(
                std::span<const Word>(values.data() + pos,
                                      kTouchWords),
                states);
            pos = (pos + kTouchWords) %
                  (values.size() - kTouchWords);
        }
        const double dt = nowSec() - t0;
        if (dt > 0.0) {
            row.churn_sessions_per_sec =
                std::max(row.churn_sessions_per_sec,
                         static_cast<double>(touches) / dt);
        }
    }
    const obs::HistogramStats resume =
        registry.histogram("serve.store.resume_ns").stats();
    row.resume_p50_ns = resume.p50;
    row.resume_p99_ns = resume.p99;
    return row;
}

/**
 * Faithful replica of the pre-lock-free obs::Histogram: min/max/n/sum
 * plus raw-sample retention under one mutex on record(), stats() that
 * copies and sorts the samples under the same mutex. The microbench
 * below measures both designs twice — quiet (nothing reading) and
 * with a live scraper polling stats(), which is the workload the
 * SERVER_STATS plane creates — and the perf gate pins the scraped
 * ratio, so a future change that sneaks a lock back onto the record
 * path fails CI, not just a code review.
 */
class MutexHistogram
{
  public:
    static constexpr std::size_t kMaxSamples = 1u << 20;

    void
    record(double value)
    {
        const std::lock_guard<std::mutex> lock(mutex);
        if (n == 0) {
            lo = hi = value;
        } else {
            lo = std::min(lo, value);
            hi = std::max(hi, value);
        }
        ++n;
        sum += value;
        if (samples.size() < kMaxSamples)
            samples.push_back(value);
    }

    obs::HistogramStats
    stats() const
    {
        const std::lock_guard<std::mutex> lock(mutex);
        obs::HistogramStats s;
        s.count = n;
        if (n == 0)
            return s;
        s.min = lo;
        s.max = hi;
        s.mean = sum / static_cast<double>(n);
        std::vector<double> sorted = samples;
        std::sort(sorted.begin(), sorted.end());
        s.p50 = percentileSorted(sorted, 0.50);
        s.p95 = percentileSorted(sorted, 0.95);
        s.p99 = percentileSorted(sorted, 0.99);
        return s;
    }

    void
    clear()
    {
        const std::lock_guard<std::mutex> lock(mutex);
        n = 0;
        sum = 0.0;
        samples.clear();  // keeps capacity, like a warmed-up run
    }

  private:
    mutable std::mutex mutex;
    u64 n = 0;
    double lo = 0.0;
    double hi = 0.0;
    double sum = 0.0;
    std::vector<double> samples;
};

/** ns/record for @p kRecords calls of @p record, one timed pass. */
template <typename RecordFn>
double
recordPassNs(std::size_t records, RecordFn record)
{
    const double t0 = nowSec();
    for (std::size_t i = 0; i < records; ++i)
        record(static_cast<double>((i & 0xFFFF) + 1));
    return (nowSec() - t0) * 1e9 / static_cast<double>(records);
}

/** Same pass with a scraper thread polling @p scrape throughout. */
template <typename RecordFn, typename ScrapeFn>
double
scrapedPassNs(std::size_t records, RecordFn record, ScrapeFn scrape)
{
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            scrape();
            std::this_thread::yield();
        }
    });
    const double ns = recordPassNs(records, record);
    stop.store(true);
    scraper.join();
    return ns;
}

ObsRow
benchObs(const Options &opt)
{
    constexpr std::size_t kQuiet = 1u << 20;
    constexpr std::size_t kScraped = 1u << 17;
    obs::Registry registry;
    obs::Histogram &lockfree =
        registry.histogram("bench.obs.record_ns");
    MutexHistogram mutexed;
    const auto keepBest = [](double &slot, double ns) {
        if (slot == 0.0 || ns < slot)
            slot = ns;
    };

    ObsRow row;
    for (unsigned r = 0; r < opt.reps; ++r) {
        keepBest(row.lockfree_record_ns,
                 recordPassNs(kQuiet, [&](double v) {
                     lockfree.record(v);
                 }));
        mutexed.clear();
        keepBest(row.mutex_record_ns,
                 recordPassNs(kQuiet, [&](double v) {
                     mutexed.record(v);
                 }));

        keepBest(row.scraped_lockfree_record_ns,
                 scrapedPassNs(
                     kScraped,
                     [&](double v) { lockfree.record(v); },
                     [&] { (void)lockfree.stats(); }));
        mutexed.clear();
        keepBest(row.scraped_mutex_record_ns,
                 scrapedPassNs(
                     kScraped,
                     [&](double v) { mutexed.record(v); },
                     [&] { (void)mutexed.stats(); }));
    }
    panicIf(lockfree.count() !=
                u64{kQuiet + kScraped} * opt.reps,
            "obs microbench lost records");
    if (row.scraped_lockfree_record_ns > 0.0)
        row.record_speedup = row.scraped_mutex_record_ns /
                             row.scraped_lockfree_record_ns;
    return row;
}

void
emitJson(std::ostream &os, const Options &opt,
         const std::vector<CodecRow> &rows, const ServeRow *serve_row,
         const EnergyOverheadRow *energy_row, const ObsRow &obs_row,
         const StoreRow &store_row)
{
    os << "{\n";
    os << "  \"schema\": \"predbus.bench_codec_throughput.v1\",\n";
    os << "  \"words\": " << opt.words << ",\n";
    os << "  \"reps\": " << opt.reps << ",\n";
    os << "  \"chunk\": " << opt.chunk << ",\n";
    os << "  \"simd\": \"" << coding::windowProbeKind() << "\",\n";
    os << "  \"codecs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const CodecRow &r = rows[i];
        os << "    {\"spec\": \"" << r.spec << "\", \"name\": \""
           << r.name << "\", \"scalar_words_per_sec\": "
           << static_cast<u64>(r.scalar_words_per_sec)
           << ", \"span_words_per_sec\": "
           << static_cast<u64>(r.span_words_per_sec)
           << ", \"span_speedup\": ";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", r.speedup());
        os << buf << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (serve_row) {
        os << ",\n  \"serve\": {\"p50_ns\": "
           << static_cast<u64>(serve_row->p50_ns)
           << ", \"p99_ns\": " << static_cast<u64>(serve_row->p99_ns)
           << ", \"words_per_sec\": "
           << static_cast<u64>(serve_row->words_per_sec) << "}";
    }
    char obs_buf[256];
    std::snprintf(obs_buf, sizeof obs_buf,
                  "{\"lockfree_record_ns\": %.2f, "
                  "\"mutex_record_ns\": %.2f, "
                  "\"scraped_lockfree_record_ns\": %.2f, "
                  "\"scraped_mutex_record_ns\": %.2f, "
                  "\"record_speedup\": %.3f}",
                  obs_row.lockfree_record_ns, obs_row.mutex_record_ns,
                  obs_row.scraped_lockfree_record_ns,
                  obs_row.scraped_mutex_record_ns,
                  obs_row.record_speedup);
    os << ",\n  \"obs\": " << obs_buf;
    if (energy_row) {
        char buf[192];
        std::snprintf(buf, sizeof buf,
                      "{\"unmetered_words_per_sec\": %llu, "
                      "\"metered_words_per_sec\": %llu, "
                      "\"metering_ratio\": %.3f}",
                      static_cast<unsigned long long>(
                          energy_row->unmetered_words_per_sec),
                      static_cast<unsigned long long>(
                          energy_row->metered_words_per_sec),
                      energy_row->metering_ratio);
        os << ",\n  \"energy_overhead\": " << buf;
    }
    char store_buf[160];
    std::snprintf(store_buf, sizeof store_buf,
                  "{\"churn_sessions_per_sec\": %llu, "
                  "\"resume_p50_ns\": %.0f, "
                  "\"resume_p99_ns\": %.0f}",
                  static_cast<unsigned long long>(
                      store_row.churn_sessions_per_sec),
                  store_row.resume_p50_ns, store_row.resume_p99_ns);
    os << ",\n  \"store\": " << store_buf;
    os << "\n}\n";
}

void
emitTable(std::ostream &os, const std::vector<CodecRow> &rows,
          const ServeRow *serve_row,
          const EnergyOverheadRow *energy_row, const ObsRow &obs_row,
          const StoreRow &store_row)
{
    os << "codec              scalar Mw/s      span Mw/s    speedup\n";
    for (const CodecRow &r : rows) {
        char line[128];
        std::snprintf(line, sizeof line, "%-16s %12.2f %14.2f %9.2fx\n",
                      r.spec.c_str(),
                      r.scalar_words_per_sec / 1e6,
                      r.span_words_per_sec / 1e6, r.speedup());
        os << line;
    }
    os << "window probe: " << coding::windowProbeKind() << "\n";
    if (serve_row) {
        char line[128];
        std::snprintf(line, sizeof line,
                      "serve loopback: p50 %.0f ns, p99 %.0f ns, "
                      "%.2f Mw/s\n",
                      serve_row->p50_ns, serve_row->p99_ns,
                      serve_row->words_per_sec / 1e6);
        os << line;
    }
    if (energy_row) {
        char line[160];
        std::snprintf(line, sizeof line,
                      "serve metering overhead: %.2f vs %.2f Mw/s "
                      "unmetered (ratio %.3f)\n",
                      energy_row->metered_words_per_sec / 1e6,
                      energy_row->unmetered_words_per_sec / 1e6,
                      energy_row->metering_ratio);
        os << line;
    }
    {
        char line[160];
        std::snprintf(line, sizeof line,
                      "store churn: %.0f sessions/s through the "
                      "spill tier (resume p50 %.0f ns, p99 %.0f "
                      "ns)\n",
                      store_row.churn_sessions_per_sec,
                      store_row.resume_p50_ns,
                      store_row.resume_p99_ns);
        os << line;
    }
    char obs_line[192];
    std::snprintf(obs_line, sizeof obs_line,
                  "obs histogram record: quiet %.1f vs %.1f ns, "
                  "live-scraped %.1f vs %.1f ns (%.1fx)\n",
                  obs_row.lockfree_record_ns, obs_row.mutex_record_ns,
                  obs_row.scraped_lockfree_record_ns,
                  obs_row.scraped_mutex_record_ns,
                  obs_row.record_speedup);
    os << obs_line;
}

bool
parseArg(const std::string &arg, const std::string &name,
         std::string &value, int &i, int argc, char **argv)
{
    if (arg.rfind(name + "=", 0) == 0) {
        value = arg.substr(name.size() + 1);
        return true;
    }
    if (arg == name && i + 1 < argc) {
        value = argv[++i];
        return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (parseArg(arg, "--words", value, i, argc, argv)) {
            opt.words = std::stoul(value);
        } else if (parseArg(arg, "--reps", value, i, argc, argv)) {
            opt.reps = static_cast<unsigned>(std::stoul(value));
        } else if (parseArg(arg, "--chunk", value, i, argc, argv)) {
            opt.chunk = std::stoul(value);
        } else if (parseArg(arg, "--format", value, i, argc, argv)) {
            if (value == "json")
                opt.json = true;
            else if (value == "table")
                opt.json = false;
            else {
                std::cerr << "unknown format '" << value << "'\n";
                return 2;
            }
        } else if (parseArg(arg, "--out", value, i, argc, argv)) {
            opt.out_path = value;
        } else if (arg == "--skip-serve") {
            opt.skip_serve = true;
        } else {
            std::cerr
                << "usage: bench_codec_throughput [--words=N] "
                   "[--reps=R] [--chunk=C] [--format=table|json] "
                   "[--out=FILE] [--skip-serve]\n";
            return 2;
        }
    }
    if (opt.words == 0 || opt.reps == 0 || opt.chunk == 0) {
        std::cerr << "words, reps, and chunk must be positive\n";
        return 2;
    }

    const std::vector<Word> values = stream(opt.words);
    const std::vector<std::string> specs = {
        "raw",       "window:8", "window:8:ca", "window:64",
        "ctx:28+8",  "ctx:28+8:trans",          "stride:8",
        "inv:2",     "inv:8",    "pbi:4",       "wze:4",
    };

    std::vector<CodecRow> rows;
    for (const std::string &spec : specs)
        rows.push_back(benchCodec(spec, values, opt));

    ServeRow serve_row;
    EnergyOverheadRow energy_row;
    const bool have_serve = !opt.skip_serve;
    if (have_serve) {
        serve_row = benchServe(values, opt);
        energy_row = benchEnergyOverhead(values, opt);
    }
    const ObsRow obs_row = benchObs(opt);
    const StoreRow store_row = benchStoreChurn(values, opt);

    std::ostringstream body;
    if (opt.json)
        emitJson(body, opt, rows, have_serve ? &serve_row : nullptr,
                 have_serve ? &energy_row : nullptr, obs_row,
                 store_row);
    else
        emitTable(body, rows, have_serve ? &serve_row : nullptr,
                  have_serve ? &energy_row : nullptr, obs_row,
                  store_row);

    if (!opt.out_path.empty()) {
        std::ofstream file(opt.out_path);
        if (!file) {
            std::cerr << "cannot write " << opt.out_path << "\n";
            return 1;
        }
        file << body.str();
        std::cerr << "wrote " << opt.out_path << "\n";
    } else {
        std::cout << body.str();
    }
    return 0;
}
