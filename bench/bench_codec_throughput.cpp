/**
 * Host-side throughput microbenchmarks (google-benchmark): how fast
 * the software models encode, which bounds full-suite experiment
 * time. Not a paper figure; a development aid.
 */

#include <benchmark/benchmark.h>

#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/rng.h"

using namespace predbus;

namespace
{

std::vector<Word>
stream(std::size_t n)
{
    Rng rng(99);
    std::vector<Word> out(n);
    std::vector<Word> pool(12);
    for (auto &p : pool)
        p = rng.next32();
    for (auto &v : out)
        v = rng.chance(0.6) ? pool[rng.below(pool.size())]
                            : rng.next32();
    return out;
}

void
BM_Window8(benchmark::State &state)
{
    const auto values = stream(1 << 14);
    auto codec = coding::makeWindow(8);
    for (auto _ : state) {
        const auto r = coding::evaluate(*codec, values);
        benchmark::DoNotOptimize(r.coded.tau);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<s64>(values.size()));
}

void
BM_ContextValue(benchmark::State &state)
{
    const auto values = stream(1 << 14);
    coding::ContextConfig cfg;
    auto codec = coding::makeContext(cfg);
    for (auto _ : state) {
        const auto r = coding::evaluate(*codec, values);
        benchmark::DoNotOptimize(r.coded.tau);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<s64>(values.size()));
}

void
BM_Stride8(benchmark::State &state)
{
    const auto values = stream(1 << 14);
    auto codec = coding::makeStride(8);
    for (auto _ : state) {
        const auto r = coding::evaluate(*codec, values);
        benchmark::DoNotOptimize(r.coded.tau);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<s64>(values.size()));
}

void
BM_Inversion8(benchmark::State &state)
{
    const auto values = stream(1 << 14);
    auto codec = coding::makeInversion(8, 1.0);
    for (auto _ : state) {
        const auto r = coding::evaluate(*codec, values);
        benchmark::DoNotOptimize(r.coded.tau);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<s64>(values.size()));
}

BENCHMARK(BM_Window8);
BENCHMARK(BM_ContextValue);
BENCHMARK(BM_Stride8);
BENCHMARK(BM_Inversion8);

} // namespace

BENCHMARK_MAIN();
