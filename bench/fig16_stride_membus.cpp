/**
 * Figure 16: % normalized energy removed by the multi-stride
 * transcoder on the memory data bus vs the number of stride
 * predictors.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> strides = {1,  2,  3,  4,  5,  6,
                                           8,  10, 12, 15, 20, 25,
                                           30};
    const Table table = bench::sweepTable(
        "strides", strides, bench::seriesWithRandom(),
        trace::BusKind::Memory,
        [](unsigned k) { return coding::makeStride(k); });
    bench::emit("Fig 16: stride predictor % energy removed, memory bus",
                table, argc, argv);
    return 0;
}
