/**
 * Figure 35: total (wires + encoder + decoder) energy of the 8-entry
 * window transcoder normalized to the unencoded bus, vs wire length,
 * register bus, 0.13um. Values below 1.0 mean the transcoder saves
 * energy.
 */

#include "analysis/energy_eval.h"
#include "bench/bench_common.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "wires/technology.h"

using namespace predbus;

namespace
{

void
runLengthSweep(trace::BusKind bus, const std::string &title, int argc,
               char **argv)
{
    const circuit::ImplEstimate impl =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const wires::Technology tech = wires::tech013();

    std::vector<std::string> header = {"length_mm"};
    std::vector<coding::CodingResult> runs;
    for (const auto &wl : bench::workloadSeries()) {
        header.push_back(wl);
        auto codec = coding::makeWindow(8);
        runs.push_back(coding::evaluate(
            *codec, bench::seriesValues(wl, bus)));
    }

    Table table(header);
    for (int len = 1; len <= 30; ++len) {
        table.row().cell(static_cast<long long>(len));
        for (const auto &run : runs) {
            const analysis::LengthEval e =
                analysis::evalAtLength(run, impl, tech, len);
            table.cell(e.normalized(), 3);
        }
    }
    bench::emit(title, table, argc, argv);
}

} // namespace

int
main(int argc, char **argv)
{
    runLengthSweep(trace::BusKind::Register,
                   "Fig 35: window-8 total energy normalized to "
                   "unencoded, register bus, 0.13um",
                   argc, argv);
    return 0;
}
