/**
 * @file
 * Shared machinery for the crossover experiments (Figs 37-38,
 * Table 3): per-benchmark coding runs for {8,16}-entry window designs
 * across the three technology nodes, reduced to SPECint/SPECfp
 * medians.
 */

#ifndef PREDBUS_BENCH_CROSSOVER_COMMON_H
#define PREDBUS_BENCH_CROSSOVER_COMMON_H

#include <map>
#include <string>
#include <vector>

#include "analysis/energy_eval.h"
#include "bench/bench_common.h"
#include "circuit/transcoder_impl.h"
#include "common/stats.h"
#include "coding/factory.h"
#include "wires/technology.h"
#include "workloads/workload.h"

namespace predbus::bench
{

/** One (workload, entries) coding run on a bus. */
struct CrossRun
{
    std::string workload;
    bool is_fp = false;
    unsigned entries = 8;
    coding::CodingResult result;
};

/** Run window-{8,16} over the whole suite on @p bus. */
inline std::vector<CrossRun>
crossoverRuns(trace::BusKind bus)
{
    std::vector<CrossRun> runs;
    for (const auto &info : workloads::all()) {
        const auto &values = seriesValues(info.name, bus);
        for (unsigned entries : {8u, 16u}) {
            CrossRun run;
            run.workload = info.name;
            run.is_fp = info.is_fp;
            run.entries = entries;
            auto codec = coding::makeWindow(entries);
            run.result = coding::evaluate(*codec, values);
            runs.push_back(std::move(run));
        }
    }
    return runs;
}

/** Median normalized energy across a suite subset at one length. */
inline double
medianNormalized(const std::vector<CrossRun> &runs, bool fp,
                 unsigned entries, const wires::Technology &wire_tech,
                 const circuit::CircuitTech &ckt_tech, double length)
{
    circuit::DesignConfig cfg = circuit::window8();
    cfg.entries = entries;
    const circuit::ImplEstimate impl = circuit::estimate(cfg, ckt_tech);
    std::vector<double> vals;
    for (const auto &run : runs) {
        if (run.is_fp != fp || run.entries != entries)
            continue;
        vals.push_back(analysis::evalAtLength(run.result, impl,
                                              wire_tech, length)
                           .normalized());
    }
    return median(std::move(vals));
}

/** Median crossover length across a subset ("all" when fp_filter<0). */
inline double
medianCrossover(const std::vector<CrossRun> &runs, int fp_filter,
                unsigned entries, const wires::Technology &wire_tech,
                const circuit::CircuitTech &ckt_tech)
{
    circuit::DesignConfig cfg = circuit::window8();
    cfg.entries = entries;
    const circuit::ImplEstimate impl = circuit::estimate(cfg, ckt_tech);
    std::vector<double> vals;
    for (const auto &run : runs) {
        if (fp_filter >= 0 && run.is_fp != (fp_filter == 1))
            continue;
        if (run.entries != entries)
            continue;
        vals.push_back(analysis::crossoverLengthMm(run.result, impl,
                                                   wire_tech));
    }
    return median(std::move(vals));
}

} // namespace predbus::bench

#endif // PREDBUS_BENCH_CROSSOVER_COMMON_H
