/**
 * Ablation (paper §5.3.3, ref [26]): selective precharge vs full CAM
 * matching — effect on per-cycle energy and on the register-bus
 * crossover length for the window-8 design.
 */

#include "analysis/energy_eval.h"
#include "bench/bench_common.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "common/stats.h"
#include "wires/technology.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    Table table({"technology", "selective_op_pJ", "full_op_pJ",
                 "selective_crossover_mm", "full_crossover_mm"});

    // Suite-aggregate ops and per-workload crossovers.
    std::vector<coding::CodingResult> runs;
    coding::OpCounts total;
    for (const auto &wl : bench::workloadSeries()) {
        auto codec = coding::makeWindow(8);
        runs.push_back(coding::evaluate(
            *codec,
            bench::seriesValues(wl, trace::BusKind::Register)));
        const auto &ops = runs.back().ops;
        total.cycles += ops.cycles;
        total.matches += ops.matches;
        total.shifts += ops.shifts;
        total.raw_sends += ops.raw_sends;
    }

    for (const auto &wt : wires::allTechnologies()) {
        const auto &ct = circuit::circuitTech(wt.name);
        circuit::DesignConfig selective = circuit::window8();
        circuit::DesignConfig full = circuit::window8();
        full.full_precharge = true;
        const circuit::ImplEstimate es =
            circuit::estimate(selective, ct);
        const circuit::ImplEstimate ef = circuit::estimate(full, ct);

        auto median_cross = [&](const circuit::ImplEstimate &impl) {
            std::vector<double> xs;
            for (const auto &run : runs)
                xs.push_back(
                    analysis::crossoverLengthMm(run, impl, wt));
            return median(std::move(xs));
        };

        table.row()
            .cell(wt.name)
            .cell(es.opEnergyPerCycle(total) * 1e12, 3)
            .cell(ef.opEnergyPerCycle(total) * 1e12, 3)
            .cell(median_cross(es), 1)
            .cell(median_cross(ef), 1);
    }
    bench::emit("Ablation: selective precharge vs full CAM probe "
                "(window-8, register bus)",
                table, argc, argv);
    return 0;
}
