/**
 * Ablation (paper §5.3.1): the pending-bit neighbor-swap sorting
 * algorithm vs an oracle full sort. The paper restricts swapping to
 * neighbors to keep wiring O(n); this quantifies what that restriction
 * costs in coding effectiveness and what it saves in swap activity.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    Table table({"workload", "pending_removed_%", "oracle_removed_%",
                 "pending_swaps_per_kword", "oracle_swaps_per_kword",
                 "pending_compares_per_word",
                 "oracle_compares_per_word"});

    for (const auto &wl : bench::workloadSeries()) {
        const auto &values =
            bench::seriesValues(wl, trace::BusKind::Register);

        coding::ContextConfig pending_cfg;
        auto pending = coding::makeContext(pending_cfg);
        const coding::CodingResult rp =
            coding::evaluate(*pending, values);

        coding::ContextConfig oracle_cfg;
        oracle_cfg.oracle_sort = true;
        auto oracle = coding::makeContext(oracle_cfg);
        const coding::CodingResult ro =
            coding::evaluate(*oracle, values);

        const double kwords =
            std::max<u64>(1, rp.words) / 1000.0;
        table.row()
            .cell(wl)
            .cell(bench::removedPercent(rp), 2)
            .cell(bench::removedPercent(ro), 2)
            .cell(static_cast<double>(rp.ops.swaps) / kwords, 2)
            .cell(static_cast<double>(ro.ops.swaps) / kwords, 2)
            .cell(static_cast<double>(rp.ops.compares) /
                      std::max<u64>(1, rp.words),
                  2)
            .cell(static_cast<double>(ro.ops.compares) /
                      std::max<u64>(1, ro.words),
                  2);
    }
    bench::emit("Ablation: pending-bit neighbor-swap sort vs oracle "
                "full sort (context, register bus)",
                table, argc, argv);
    return 0;
}
