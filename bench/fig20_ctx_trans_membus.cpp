/**
 * Figure 20: transition-based context transcoder, % energy removed vs
 * frequency table size, memory bus (shift register = 8).
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sizes = {4,  8,  12, 16, 20, 24,
                                         28, 32, 40, 48, 56, 64};
    const Table table = bench::sweepTable(
        "table_size", sizes, bench::seriesWithRandom(),
        trace::BusKind::Memory, [](unsigned t) {
            coding::ContextConfig cfg;
            cfg.table_size = t;
            cfg.sr_size = 8;
            cfg.transition_based = true;
            return coding::makeContext(cfg);
        });
    bench::emit("Fig 20: context (transition-based) % energy removed, "
                "memory bus",
                table, argc, argv);
    return 0;
}
