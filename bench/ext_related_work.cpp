/**
 * Extension: the related-work encodings of paper §2 head-to-head with
 * the paper's transcoders, on the register bus and on the address bus
 * (working-zone's home turf). Partial bus-invert [20], working-zone
 * [15], classic bus-invert [23], window and context.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

namespace
{

void
runBus(trace::BusKind bus, const char *title, int argc, char **argv)
{
    const char *specs[] = {"inv:2",  "pbi:4",      "pbi:8",
                           "wze:4",  "window:8",   "ctx:28+8",
                           "stride:16"};

    std::vector<std::string> header = {"workload"};
    for (const char *s : specs)
        header.push_back(s);

    Table table(header);
    std::vector<std::vector<double>> columns(std::size(specs));
    for (const auto &wl : bench::workloadSeries()) {
        const auto &values = bench::seriesValues(wl, bus);
        table.row().cell(wl);
        for (std::size_t i = 0; i < std::size(specs); ++i) {
            auto codec = coding::makeFromSpec(specs[i]);
            const double pct = bench::removedPercent(
                coding::evaluate(*codec, values));
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);
    bench::emit(title, table, argc, argv);
}

} // namespace

int
main(int argc, char **argv)
{
    runBus(trace::BusKind::Register,
           "Extension: related-work encodings, register bus "
           "(% energy removed)",
           argc, argv);
    runBus(trace::BusKind::Address,
           "Extension: related-work encodings, address bus "
           "(% energy removed)",
           argc, argv);
    return 0;
}
