/**
 * Extension beyond the paper: the memory *address* bus.
 *
 * The paper's related work (workzone [15], sector-based [1]) targets
 * address buses, whose traffic is dominated by strides and small
 * working sets of regions — exactly what the stride and dictionary
 * predictors exploit. This bench runs the paper's schemes on the
 * address stream of every workload.
 */

#include "bench/bench_common.h"
#include "coding/factory.h"
#include "common/stats.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    struct Scheme
    {
        const char *label;
        std::function<std::unique_ptr<coding::Transcoder>()> make;
    };
    const std::vector<Scheme> schemes = {
        {"window8", [] { return coding::makeWindow(8); }},
        {"window16", [] { return coding::makeWindow(16); }},
        {"stride4", [] { return coding::makeStride(4); }},
        {"stride16", [] { return coding::makeStride(16); }},
        {"ctx-value", [] { return coding::makeContext(
                               coding::ContextConfig{}); }},
        {"businvert", [] { return coding::makeInversion(2, 0.0); }},
    };

    std::vector<std::string> header = {"workload"};
    for (const auto &s : schemes)
        header.push_back(s.label);

    Table table(header);
    std::vector<std::vector<double>> columns(schemes.size());
    for (const auto &wl : bench::workloadSeries()) {
        const auto &values =
            bench::seriesValues(wl, trace::BusKind::Address);
        table.row().cell(wl);
        for (std::size_t i = 0; i < schemes.size(); ++i) {
            auto codec = schemes[i].make();
            const coding::CodingResult r =
                coding::evaluate(*codec, values);
            const double pct = bench::removedPercent(r);
            columns[i].push_back(pct);
            table.cell(pct, 2);
        }
    }
    table.row().cell("MEDIAN");
    for (auto &col : columns)
        table.cell(median(col), 2);

    bench::emit("Extension: % energy removed on the memory address "
                "bus",
                table, argc, argv);
    return 0;
}
