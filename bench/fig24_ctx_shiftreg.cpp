/**
 * Figure 24: value-based context transcoder, % energy removed vs
 * staging shift-register size, register bus, for table sizes 16 and
 * 64 (benchmarks li, compress, gcc, perl, fpppp, apsi, swim).
 */

#include "bench/bench_common.h"
#include "coding/factory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const std::vector<unsigned> sr_sizes = {2, 4, 8, 12, 16, 24, 28};
    const std::vector<std::string> wls = {"li",    "compress", "gcc",
                                          "perl",  "fpppp",    "apsi",
                                          "swim"};

    std::vector<std::string> header = {"shift_register_size"};
    for (const auto &wl : wls)
        for (unsigned t : {16u, 64u})
            header.push_back(wl + ":" + std::to_string(t));

    std::vector<std::vector<Word>> streams;
    for (const auto &wl : wls)
        streams.push_back(
            bench::seriesValues(wl, trace::BusKind::Register));

    Table table(header);
    for (unsigned s : sr_sizes) {
        table.row().cell(static_cast<long long>(s));
        for (std::size_t i = 0; i < wls.size(); ++i) {
            for (unsigned t : {16u, 64u}) {
                coding::ContextConfig cfg;
                cfg.table_size = t;
                cfg.sr_size = s;
                auto codec = coding::makeContext(cfg);
                table.cell(bench::removedPercent(
                               coding::evaluate(*codec, streams[i])),
                           2);
            }
        }
    }
    bench::emit("Fig 24: context (value-based) % energy removed vs "
                "shift register size, register bus",
                table, argc, argv);
    return 0;
}
