/**
 * @file
 * predbus_load — load generator for predbus_served.
 *
 * Replays a bus-value stream (a .pbtr trace file, a simulated
 * workload trace, or deterministic random values) against a running
 * server over parallel connections and reports throughput plus
 * p50/p95/p99 batch latency from an obs histogram. Modes:
 *
 *   encode     client words -> server wire states
 *   decode     pre-encoded wire states -> server words
 *   roundtrip  encode session + decode session; every decoded word is
 *              checked against the original stream (lossless by
 *              construction — mismatches are reported and fail the
 *              run)
 *
 *   predbus_load --unix /tmp/predbus.sock --spec window:8
 *   predbus_load --tcp-port 7411 --source trace:traces/go.pbtr
 *   predbus_load --unix S --source workload:gcc:writeback \
 *                --connections 8 --batch 512 --batches 200
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "analysis/suite.h"
#include "coding/session.h"
#include "common/log.h"
#include "obs/json_check.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracing.h"
#include "serve/client.h"
#include "trace/trace_source.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_load [options]\n"
          "\n"
          "  --unix PATH        connect to a Unix domain socket\n"
          "  --host H           TCP host (default 127.0.0.1)\n"
          "  --tcp-port P       TCP port\n"
          "  --spec SPEC        codec spec (default window:8)\n"
          "  --source SRC       value stream:\n"
          "                       random[:N]          deterministic "
          "PRNG (default,\n"
          "                                           N=262144)\n"
          "                       trace:FILE          .pbtr trace "
          "replay\n"
          "                       workload:NAME[:BUS] simulated "
          "workload trace\n"
          "                       (BUS: register|memory|address|"
          "writeback)\n"
          "  --mode M           encode | decode | roundtrip "
          "(default)\n"
          "  --scenario SC      session-lifecycle scenario instead "
          "of the\n"
          "                     batch replay:\n"
          "                       open    open -> one batch -> close "
          "cycles\n"
          "                       churn   keep --sessions sessions "
          "per\n"
          "                               connection, touch them "
          "round-robin\n"
          "                               (defeats the server's LRU "
          "so every\n"
          "                               touch crosses the spill "
          "tier when\n"
          "                               the resident budget is "
          "small)\n"
          "                       resume  open all sessions, then "
          "one timed\n"
          "                               touch each (resume-path "
          "latency)\n"
          "                     Every reply is verified against a "
          "local\n"
          "                     mirror restored from snapshots; "
          "reports\n"
          "                     sessions/sec and per-op p50/p95/p99\n"
          "  --sessions N       logical sessions per connection for\n"
          "                     --scenario churn/resume (default "
          "256)\n"
          "  --connections C    parallel connections (default 4)\n"
          "  --batch N          words per batch (default 256)\n"
          "  --batches B        batches per connection (default: one "
          "pass\n"
          "                     over the stream)\n"
          "  --metrics=FILE     write the load.* metrics report "
          "JSON\n"
          "  --trace-out=FILE   write a merged client+server Chrome\n"
          "                     trace (trace contexts stamped on "
          "every\n"
          "                     batch join the client-side spans "
          "with\n"
          "                     the server's retained batch spans)\n"
          "  --help             this text\n"
          "\n"
          "Every batch is stamped with a 16-byte trace context; the "
          "run\n"
          "ends with a live-savings line aggregated from the "
          "server's\n"
          "per-session energy meters (STATS frame).\n";
}

struct Options
{
    std::string unix_path;
    std::string host = "127.0.0.1";
    int tcp_port = -1;
    std::string spec = "window:8";
    std::string source = "random";
    std::string mode = "roundtrip";
    std::string scenario;  ///< empty: classic batch replay
    unsigned sessions = 256;
    unsigned connections = 4;
    unsigned batch = 256;
    unsigned batches = 0;  ///< 0: one pass over the stream
    std::string metrics_file;
    std::string trace_out;
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

unsigned
parseUnsigned(const std::string &value, const std::string &flag)
{
    try {
        return static_cast<unsigned>(std::stoul(value));
    } catch (const std::exception &) {
        fatal("bad ", flag, " value '", value, "'");
    }
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--unix") {
            opt.unix_path = argValue(argc, argv, i, arg);
        } else if (arg == "--host") {
            opt.host = argValue(argc, argv, i, arg);
        } else if (arg == "--tcp-port") {
            opt.tcp_port = static_cast<int>(
                parseUnsigned(argValue(argc, argv, i, arg), arg));
        } else if (arg == "--spec") {
            opt.spec = argValue(argc, argv, i, arg);
        } else if (arg == "--source") {
            opt.source = argValue(argc, argv, i, arg);
        } else if (arg == "--mode") {
            opt.mode = argValue(argc, argv, i, arg);
        } else if (arg == "--scenario") {
            opt.scenario = argValue(argc, argv, i, arg);
        } else if (arg.rfind("--scenario=", 0) == 0) {
            opt.scenario =
                arg.substr(std::string("--scenario=").size());
        } else if (arg == "--sessions") {
            opt.sessions =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--connections") {
            opt.connections =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--batch") {
            opt.batch =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--batches") {
            opt.batches =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics_file =
                arg.substr(std::string("--metrics=").size());
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            opt.trace_out =
                arg.substr(std::string("--trace-out=").size());
        } else {
            fatal("unknown option '", arg, "' (see --help)");
        }
    }
    if (opt.unix_path.empty() && opt.tcp_port < 0)
        fatal("one of --unix/--tcp-port is required (see --help)");
    if (opt.mode != "encode" && opt.mode != "decode" &&
        opt.mode != "roundtrip")
        fatal("bad --mode '", opt.mode,
              "' (encode, decode, or roundtrip)");
    if (!opt.scenario.empty() && opt.scenario != "open" &&
        opt.scenario != "churn" && opt.scenario != "resume")
        fatal("bad --scenario '", opt.scenario,
              "' (open, churn, or resume)");
    if (!opt.scenario.empty() && opt.sessions == 0)
        fatal("--sessions must be positive");
    if (opt.connections == 0 || opt.batch == 0)
        fatal("--connections and --batch must be positive");
    if (opt.batch > serve::protocol::kMaxBatchWords)
        fatal("--batch over the protocol limit (",
              serve::protocol::kMaxBatchWords, ")");
    return opt;
}

trace::BusKind
parseBus(const std::string &name)
{
    if (name == "register")
        return trace::BusKind::Register;
    if (name == "memory")
        return trace::BusKind::Memory;
    if (name == "address")
        return trace::BusKind::Address;
    if (name == "writeback")
        return trace::BusKind::Writeback;
    fatal("unknown bus '", name,
          "' (register, memory, address, writeback)");
}

/** Materialize the replay stream named by --source. */
std::vector<Word>
loadStream(const std::string &source)
{
    if (source == "random")
        return analysis::randomValues(1u << 18);
    if (source.rfind("random:", 0) == 0) {
        const unsigned n = parseUnsigned(
            source.substr(std::string("random:").size()), "--source");
        return analysis::randomValues(n);
    }
    if (source.rfind("trace:", 0) == 0) {
        trace::FileTraceSource file(
            source.substr(std::string("trace:").size()));
        return trace::drain(file);
    }
    if (source.rfind("workload:", 0) == 0) {
        std::string rest =
            source.substr(std::string("workload:").size());
        trace::BusKind bus = trace::BusKind::Writeback;
        const std::size_t colon = rest.find(':');
        if (colon != std::string::npos) {
            bus = parseBus(rest.substr(colon + 1));
            rest = rest.substr(0, colon);
        }
        const auto stream = analysis::openTrace(rest, bus);
        return trace::drain(*stream);
    }
    fatal("bad --source '", source, "' (see --help)");
}

/** One client-side batch span, for the merged Chrome trace. */
struct ClientSpan
{
    u64 trace_id = 0;
    u64 span_id = 0;
    u64 t0_ns = 0;
    u64 t1_ns = 0;
    u64 words = 0;
    bool is_encode = false;
};

struct ConnStats
{
    u64 words = 0;
    u64 batches = 0;
    u64 rejects = 0;
    u64 mismatches = 0;
    u64 sessions_cycled = 0;  ///< scenario: session activations
    bool failed = false;
    /** Encoder-session stats fetched before close (server-metered
     * energy rides in here). */
    serve::protocol::SessionStats session;
    bool have_session = false;
    std::vector<ClientSpan> spans;  ///< only with --trace-out
};

/** One connection's replay loop. @p nonce seeds this run's trace ids
 * (every batch is stamped; ids are unique per run/conn/batch). */
void
runConnection(const Options &opt, const std::vector<Word> &stream,
              unsigned conn_index, u64 nonce, bool collect_spans,
              ConnStats &out, obs::Registry &registry)
{
    obs::Counter &m_batches = registry.counter("load.batches");
    obs::Counter &m_words = registry.counter("load.words");
    obs::Counter &m_rejects = registry.counter("load.rejects");
    obs::Counter &m_mismatches = registry.counter("load.mismatches");
    obs::Histogram &m_batch_ns = registry.histogram("load.batch_ns");

    serve::Client client =
        opt.unix_path.empty()
            ? serve::Client::connectTcpSocket(
                  opt.host, static_cast<u16>(opt.tcp_port))
            : serve::Client::connectUnixSocket(opt.unix_path);

    serve::ClientSession encoder = client.openOrThrow(opt.spec);
    std::optional<serve::ClientSession> decoder;
    coding::CodecSession local(opt.spec);  // pre-encoder for --mode decode
    if (opt.mode == "roundtrip")
        decoder = client.openOrThrow(opt.spec);

    const unsigned total_batches =
        opt.batches > 0
            ? opt.batches
            : static_cast<unsigned>(
                  (stream.size() + opt.batch - 1) / opt.batch);

    // Each connection starts at a different offset so concurrent
    // sessions do not replay identical bytes in lock-step.
    std::size_t pos =
        (static_cast<std::size_t>(conn_index) * opt.batch * 17) %
        std::max<std::size_t>(stream.size(), 1);

    std::vector<Word> batch;
    std::vector<u64> pre_encoded;
    for (unsigned b = 0; b < total_batches; ++b) {
        batch.clear();
        for (unsigned i = 0; i < opt.batch; ++i) {
            batch.push_back(stream[pos]);
            pos = (pos + 1) % stream.size();
        }

        // In decode mode the stream is pre-encoded locally — exactly
        // once per batch, outside the retry loop, so a shed batch is
        // retried with identical wire states.
        if (opt.mode == "decode") {
            pre_encoded.clear();
            local.encodeBatch(batch, pre_encoded);
        }

        // End-to-end trace context: one trace id per batch, distinct
        // span ids for the encode and decode legs. The server copies
        // them onto its per-batch span, so client and server traces
        // merge on the shared trace id.
        serve::protocol::TraceContext trace;
        trace.trace_id = nonce ^ (u64{conn_index + 1} << 40) ^
                         (u64{b} + 1);
        trace.span_id = trace.trace_id * 0x9e3779b97f4a7c15ull | 1;
        serve::protocol::TraceContext decode_trace = trace;
        decode_trace.span_id = trace.span_id + 1;

        // Retry overload sheds with a brief backoff; anything else
        // fatal for this connection.
        for (int attempt = 0;; ++attempt) {
            const u64 t0 = obs::nowNs();
            std::optional<serve::ServeError> error;
            if (opt.mode == "decode") {
                const auto result =
                    encoder.decode(pre_encoded, &trace);
                error = result.error;
                if (result.ok()) {
                    for (std::size_t i = 0; i < batch.size(); ++i) {
                        if (result.data[i] != batch[i]) {
                            ++out.mismatches;
                            m_mismatches.inc();
                        }
                    }
                }
            } else {
                const auto result = encoder.encode(batch, &trace);
                error = result.error;
                if (result.ok() && decoder) {
                    const auto decoded =
                        decoder->decode(result.data, &decode_trace);
                    if (decoded.ok()) {
                        for (std::size_t i = 0; i < batch.size();
                             ++i) {
                            if (decoded.data[i] != batch[i]) {
                                ++out.mismatches;
                                m_mismatches.inc();
                            }
                        }
                    } else {
                        error = decoded.error;
                    }
                }
            }

            if (!error) {
                const u64 t1 = obs::nowNs();
                m_batch_ns.record(static_cast<double>(t1 - t0));
                if (collect_spans) {
                    out.spans.push_back(
                        ClientSpan{trace.trace_id, trace.span_id, t0,
                                   t1, batch.size(),
                                   opt.mode != "decode"});
                }
                ++out.batches;
                out.words += batch.size();
                m_batches.inc();
                m_words.inc(batch.size());
                break;
            }
            if (error->code == serve::protocol::ErrCode::Overloaded &&
                attempt < 100) {
                ++out.rejects;
                m_rejects.inc();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
            logWarn("load: connection ", conn_index, " giving up: ",
                    serve::protocol::errName(error->code), " (",
                    error->message, ")");
            out.failed = true;
            return;
        }
    }

    out.session = encoder.stats();
    out.have_session = true;
    encoder.close();
    if (decoder)
        decoder->close();
}

/**
 * One connection's session-lifecycle scenario (--scenario). The local
 * mirror of every logical session is kept as a snapshot blob and
 * restored around each touch, so the generator's memory per idle
 * session matches the server's spilled footprint instead of a live
 * FSM pair — 100k logical sessions cost the client tens of MB. Every
 * reply is verified byte-for-byte against the mirror.
 */
void
runScenarioConnection(const Options &opt,
                      const std::vector<Word> &stream,
                      unsigned conn_index, ConnStats &out,
                      obs::Registry &registry)
{
    obs::Counter &m_batches = registry.counter("load.batches");
    obs::Counter &m_words = registry.counter("load.words");
    obs::Counter &m_rejects = registry.counter("load.rejects");
    obs::Counter &m_mismatches = registry.counter("load.mismatches");
    obs::Counter &m_sessions =
        registry.counter("load.sessions_cycled");
    obs::Histogram &m_op_ns = registry.histogram("load.op_ns");

    serve::Client client =
        opt.unix_path.empty()
            ? serve::Client::connectTcpSocket(
                  opt.host, static_cast<u16>(opt.tcp_port))
            : serve::Client::connectUnixSocket(opt.unix_path);

    std::size_t pos =
        (static_cast<std::size_t>(conn_index) * opt.batch * 17) %
        std::max<std::size_t>(stream.size(), 1);
    std::vector<Word> batch;
    const auto fill = [&] {
        batch.clear();
        for (unsigned i = 0; i < opt.batch; ++i) {
            batch.push_back(stream[pos]);
            pos = (pos + 1) % stream.size();
        }
    };

    // One verified batch: the server reply must equal the local
    // mirror's states and checksum exactly. Overload sheds retry.
    const auto touch = [&](serve::ClientSession &session,
                           coding::CodecSession &mirror) -> bool {
        fill();
        for (int attempt = 0;; ++attempt) {
            const auto result = session.encode(batch);
            if (result.ok()) {
                std::vector<u64> expected;
                mirror.encodeBatch(batch, expected);
                if (result.data != expected ||
                    result.checksum != mirror.checksum()) {
                    ++out.mismatches;
                    m_mismatches.inc();
                }
                ++out.batches;
                out.words += batch.size();
                m_batches.inc();
                m_words.inc(batch.size());
                return true;
            }
            if (result.error->code ==
                    serve::protocol::ErrCode::Overloaded &&
                attempt < 100) {
                ++out.rejects;
                m_rejects.inc();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
                continue;
            }
            logWarn("load: connection ", conn_index, " giving up: ",
                    serve::protocol::errName(result.error->code),
                    " (", result.error->message, ")");
            out.failed = true;
            return false;
        }
    };
    const auto cycled = [&] {
        ++out.sessions_cycled;
        m_sessions.inc();
    };

    if (opt.scenario == "open") {
        const unsigned cycles = opt.batches ? opt.batches : 512;
        for (unsigned c = 0; c < cycles; ++c) {
            const u64 t0 = obs::nowNs();
            serve::ClientSession session =
                client.openOrThrow(opt.spec);
            coding::CodecSession mirror(opt.spec);
            if (!touch(session, mirror))
                return;
            session.close();
            m_op_ns.record(static_cast<double>(obs::nowNs() - t0));
            cycled();
        }
        return;
    }

    // churn / resume: a population of logical sessions, each seeded
    // with one batch so its state is non-trivial before it spills.
    const unsigned n = opt.sessions;
    std::vector<serve::ClientSession> sessions;
    sessions.reserve(n);
    std::vector<std::vector<u8>> mirrors(n);
    for (unsigned i = 0; i < n; ++i) {
        const u64 t0 = obs::nowNs();
        serve::ClientSession session = client.openOrThrow(opt.spec);
        coding::CodecSession mirror(opt.spec);
        if (!touch(session, mirror))
            return;
        mirrors[i] = mirror.snapshot();
        sessions.push_back(session);
        if (opt.scenario == "churn") {
            m_op_ns.record(static_cast<double>(obs::nowNs() - t0));
            cycled();
        }
    }

    // Round-robin touches always revisit the coldest session, the
    // adversarial order for the server's per-shard LRU: with the
    // population over the resident budget every touch is a disk
    // resume plus an eviction.
    const unsigned touches = opt.scenario == "resume"
                                 ? n
                                 : (opt.batches ? opt.batches : 2 * n);
    for (unsigned t = 0; t < touches; ++t) {
        const unsigned i = t % n;
        const u64 t0 = obs::nowNs();
        coding::CodecSession mirror =
            coding::CodecSession::restore(mirrors[i]);
        if (!touch(sessions[i], mirror))
            return;
        mirrors[i] = mirror.snapshot();
        m_op_ns.record(static_cast<double>(obs::nowNs() - t0));
        cycled();
    }
    for (serve::ClientSession &session : sessions)
        session.close();
}

/** 16-digit hex id, matching the server's batch-span id strings. */
std::string
hexId(u64 id)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

/**
 * Merged Chrome trace (chrome://tracing / Perfetto "traceEvents"):
 * client spans as pid 1 (tid = connection), the server's retained
 * batch spans as pid 2 (tid = session id). Both sides stamp the same
 * monotonic clock on the same host, so timestamps line up directly;
 * shared trace ids in args join the two views of one batch.
 */
void
writeChromeTrace(const std::string &path,
                 const std::vector<ConnStats> &stats,
                 const std::string &server_json)
{
    std::ofstream os(path);
    if (!os)
        fatal("cannot write ", path);
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&os, &first] {
        if (!first)
            os << ',';
        first = false;
    };

    for (std::size_t c = 0; c < stats.size(); ++c) {
        for (const ClientSpan &sp : stats[c].spans) {
            sep();
            os << "{\"name\":\""
               << (sp.is_encode ? "encode" : "decode")
               << "\",\"cat\":\"client\",\"ph\":\"X\",\"ts\":";
            obs::jsonNumber(os, static_cast<double>(sp.t0_ns) / 1e3);
            os << ",\"dur\":";
            obs::jsonNumber(os,
                            static_cast<double>(sp.t1_ns - sp.t0_ns) /
                                1e3);
            os << ",\"pid\":1,\"tid\":" << c + 1
               << ",\"args\":{\"trace_id\":\"" << hexId(sp.trace_id)
               << "\",\"span_id\":\"" << hexId(sp.span_id)
               << "\",\"words\":" << sp.words << "}}";
        }
    }

    // Server side: the tail-sampled batch spans out of SERVER_STATS
    // --events, keyed "batches.<i>.<field>" in the flattened view.
    std::vector<obs::JsonScalar> rows;
    if (const auto err = obs::jsonFlatten(server_json, rows)) {
        logWarn("load: server stats JSON failed validation (", *err,
                "); writing client-only trace");
        rows.clear();
    }
    std::map<unsigned, std::map<std::string, std::string>> batches;
    for (const obs::JsonScalar &row : rows) {
        if (row.path.rfind("batches.", 0) != 0)
            continue;
        const std::string rest = row.path.substr(8);
        const std::size_t dot = rest.find('.');
        if (dot == std::string::npos)
            continue;
        try {
            batches[static_cast<unsigned>(
                std::stoul(rest.substr(0, dot)))][rest.substr(dot + 1)] =
                row.value;
        } catch (const std::exception &) {
        }
    }
    for (const auto &[index, fields] : batches) {
        const auto field = [&fields](const char *name) {
            const auto it = fields.find(name);
            return it == fields.end() ? std::string("0") : it->second;
        };
        const double t_ns = std::stod(field("t_ns"));
        const double queue_ns = std::stod(field("queue_ns"));
        const double codec_ns = std::stod(field("codec_ns"));
        sep();
        os << "{\"name\":\"serve:" << field("kind")
           << "\",\"cat\":\"server\",\"ph\":\"X\",\"ts\":";
        obs::jsonNumber(os, t_ns / 1e3);
        os << ",\"dur\":";
        obs::jsonNumber(os, (queue_ns + codec_ns) / 1e3);
        os << ",\"pid\":2,\"tid\":" << field("session")
           << ",\"args\":{\"trace_id\":\"" << field("trace_id")
           << "\",\"span_id\":\"" << field("span_id")
           << "\",\"family\":\"" << field("family")
           << "\",\"seq\":" << field("seq")
           << ",\"words\":" << field("words")
           << ",\"queue_ns\":" << field("queue_ns")
           << ",\"codec_ns\":" << field("codec_ns")
           << ",\"saved_pct\":" << field("saved_pct") << "}}";
    }
    os << "]}\n";
    logInfo("wrote merged trace ", path, " (",
            batches.size(), " server spans)");
}

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    const std::vector<Word> stream = loadStream(opt.source);
    if (stream.empty())
        fatal("replay stream is empty");

    obs::Registry &registry = obs::Registry::global();
    std::vector<ConnStats> stats(opt.connections);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};

    const u64 nonce = obs::nowNs();
    const bool collect_spans = !opt.trace_out.empty();
    const u64 t0 = obs::nowNs();
    for (unsigned c = 0; c < opt.connections; ++c) {
        threads.emplace_back([&, c] {
            try {
                if (!opt.scenario.empty())
                    runScenarioConnection(opt, stream, c, stats[c],
                                          registry);
                else
                    runConnection(opt, stream, c, nonce,
                                  collect_spans, stats[c], registry);
            } catch (const std::exception &e) {
                logError("load: connection ", c, " failed: ",
                         e.what());
                stats[c].failed = true;
            }
            if (stats[c].failed)
                failures.fetch_add(1);
        });
    }
    for (std::thread &t : threads)
        t.join();
    const double elapsed =
        static_cast<double>(obs::nowNs() - t0) / 1e9;

    ConnStats total;
    for (const ConnStats &s : stats) {
        total.words += s.words;
        total.batches += s.batches;
        total.rejects += s.rejects;
        total.mismatches += s.mismatches;
        total.sessions_cycled += s.sessions_cycled;
    }

    if (!opt.scenario.empty()) {
        const obs::HistogramStats op =
            registry.histogram("load.op_ns").stats();
        std::printf("predbus_load  scenario=%s  spec=%s  "
                    "connections=%u  sessions=%u  batch=%u\n",
                    opt.scenario.c_str(), opt.spec.c_str(),
                    opt.connections, opt.sessions, opt.batch);
        std::printf(
            "  sessions %llu  batches %llu  words %llu  "
            "rejects %llu  mismatches %llu  elapsed %.3fs\n",
            static_cast<unsigned long long>(total.sessions_cycled),
            static_cast<unsigned long long>(total.batches),
            static_cast<unsigned long long>(total.words),
            static_cast<unsigned long long>(total.rejects),
            static_cast<unsigned long long>(total.mismatches),
            elapsed);
        std::printf(
            "  sessions/sec %.0f\n",
            elapsed > 0.0
                ? static_cast<double>(total.sessions_cycled) / elapsed
                : 0.0);
        std::printf("  op latency ms  p50 %.3f  p95 %.3f  p99 %.3f  "
                    "(log-bucketed, +/-1.6%%)\n",
                    op.p50 / 1e6, op.p95 / 1e6, op.p99 / 1e6);
        if (!opt.metrics_file.empty()) {
            obs::ReportContext ctx;
            ctx.tool = "predbus_load";
            ctx.config = {
                {"scenario", opt.scenario},
                {"spec", opt.spec},
                {"connections", std::to_string(opt.connections)},
                {"sessions", std::to_string(opt.sessions)},
                {"batch", std::to_string(opt.batch)},
            };
            std::ofstream os(opt.metrics_file);
            if (!os)
                fatal("cannot write ", opt.metrics_file);
            writeMetricsReport(os, ctx, registry);
            logInfo("wrote metrics report ", opt.metrics_file);
        }
        return failures.load() > 0 || total.mismatches > 0 ? 1 : 0;
    }
    // Percentiles come from the bounded log-bucketed obs::Histogram
    // (fixed ~16 KiB regardless of batch count): quantiles are bucket
    // midpoints, accurate to ±1.6% relative (2^-5 bucket width).
    const obs::HistogramStats lat =
        registry.histogram("load.batch_ns").stats();

    std::printf("predbus_load  spec=%s  mode=%s  source=%s  "
                "connections=%u  batch=%u\n",
                opt.spec.c_str(), opt.mode.c_str(),
                opt.source.c_str(), opt.connections, opt.batch);
    std::printf("  words %llu  batches %llu  rejects %llu  "
                "mismatches %llu  elapsed %.3fs\n",
                static_cast<unsigned long long>(total.words),
                static_cast<unsigned long long>(total.batches),
                static_cast<unsigned long long>(total.rejects),
                static_cast<unsigned long long>(total.mismatches),
                elapsed);
    std::printf("  throughput %.0f words/s\n",
                elapsed > 0.0
                    ? static_cast<double>(total.words) / elapsed
                    : 0.0);
    std::printf("  batch latency ms  p50 %.3f  p95 %.3f  p99 %.3f  "
                "(log-bucketed, +/-1.6%%)\n",
                lat.p50 / 1e6, lat.p95 / 1e6, lat.p99 / 1e6);

    // End-to-end savings, aggregated from the server's per-session
    // energy meters (primary-session STATS fetched before close).
    coding::EnergyCount base, coded;
    u64 metered_words = 0;
    for (const ConnStats &s : stats) {
        if (!s.have_session)
            continue;
        base.tau += s.session.base_energy.tau;
        base.kappa += s.session.base_energy.kappa;
        coded.tau += s.session.coded_energy.tau;
        coded.kappa += s.session.coded_energy.kappa;
        metered_words += s.session.metered_words;
    }
    if (metered_words > 0) {
        const double b = base.cost(1.0);
        std::printf("  live savings (server-metered)  words %llu  "
                    "base events %llu  coded events %llu  "
                    "saved %.2f%% (lambda 1)\n",
                    static_cast<unsigned long long>(metered_words),
                    static_cast<unsigned long long>(base.tau +
                                                    base.kappa),
                    static_cast<unsigned long long>(coded.tau +
                                                    coded.kappa),
                    b > 0.0 ? 100.0 * (1.0 - coded.cost(1.0) / b)
                            : 0.0);
    } else {
        std::printf("  live savings unavailable (server energy "
                    "metering disabled)\n");
    }

    if (!opt.trace_out.empty()) {
        // One post-run scrape picks up the server's retained batch
        // spans; trace ids stamped above join them to ours.
        std::string server_json;
        try {
            serve::Client scraper =
                opt.unix_path.empty()
                    ? serve::Client::connectTcpSocket(
                          opt.host, static_cast<u16>(opt.tcp_port))
                    : serve::Client::connectUnixSocket(opt.unix_path);
            server_json = scraper.serverStats(true);
        } catch (const FatalError &e) {
            logWarn("load: post-run stats scrape failed (", e.what(),
                    "); writing client-only trace");
            server_json = "{}";
        }
        writeChromeTrace(opt.trace_out, stats, server_json);
    }

    if (!opt.metrics_file.empty()) {
        obs::ReportContext ctx;
        ctx.tool = "predbus_load";
        ctx.config = {
            {"spec", opt.spec},
            {"mode", opt.mode},
            {"source", opt.source},
            {"connections", std::to_string(opt.connections)},
            {"batch", std::to_string(opt.batch)},
        };
        std::ofstream os(opt.metrics_file);
        if (!os)
            fatal("cannot write ", opt.metrics_file);
        writeMetricsReport(os, ctx, registry);
        logInfo("wrote metrics report ", opt.metrics_file);
    }

    if (failures.load() > 0 || total.mismatches > 0)
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        logError("predbus_load: ", e.what());
        return 1;
    } catch (const PanicError &e) {
        logError("predbus_load: internal error: ", e.what());
        return 2;
    }
}
