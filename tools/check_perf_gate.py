#!/usr/bin/env python3
"""Perf gate: compare a fresh bench_codec_throughput run against the
committed baseline (BENCH_codec_throughput.json at the repo root).

The primary gate is dimensionless on purpose: span_speedup (span
words/sec over per-word scalar words/sec, measured back to back in
the same process on the same stream) is stable across machines, while
absolute words/sec swings with the host. A codec regresses if its
span_speedup falls more than --tolerance (default 10%) below the
baseline's.

On top of the relative gate, hard floors pin the speedup story
regardless of what the baseline file says:
  --window8-floor (3.0)  window:8 register-resident kernel
  --ctx-floor     (2.0)  every ctx:* family (SoA dictionary kernels)
  --stride8-floor (1.5)  stride:8 (SIMD predictor sweep)
  --global-floor  (0.95) every codec: the default span path must
                         never lose to the per-word scalar loop
  --obs-floor     (1.0)  obs.record_speedup: the lock-free histogram
                         record must never lose to the old mutexed
                         sample-vector path (CI runs 0.9 to absorb
                         shared-runner noise)
  --energy-overhead-floor (0.97)
                         energy_overhead.metering_ratio: serve-path
                         throughput with live energy metering + batch
                         tracing on must stay within 2% of the
                         unmetered path; the floor sits at 0.97 =
                         2% claim + 1% measurement margin, since the
                         paired-ratio bench still jitters ~±0.7% on a
                         busy host (CI runs 0.90 to absorb
                         shared-runner noise); skipped when the
                         current run has no serve section
                         (--skip-serve benches)
  --churn-floor   (200)  store.churn_sessions_per_sec: session
                         activations per second through the session
                         store's RAM->disk spill tier (snapshot +
                         segment write on evict, read + restore on
                         resume). Healthy hosts run five to six
                         figures; the floor is a backstop against the
                         spill path going accidentally quadratic, not
                         a throughput target. Skipped when the
                         current run predates the store section.

Absolute throughput is checked only with --absolute, for runs on the
same host that produced the baseline (see docs/PERF.md for the
baseline update procedure).

Usage:
  tools/check_perf_gate.py --current bench_current.json \
      [--baseline BENCH_codec_throughput.json] [--tolerance 0.10] \
      [--window8-floor 3.0] [--ctx-floor 2.0] [--stride8-floor 1.5] \
      [--global-floor 0.95] [--absolute]

Exit status: 0 clean, 1 on regression or malformed input.
"""

import argparse
import json
import os
import sys

SCHEMA = "predbus.bench_codec_throughput.v1"


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"check_perf_gate: cannot read {path}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(
            f"check_perf_gate: {path}: schema "
            f"{doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    codecs = {c["spec"]: c for c in doc.get("codecs", [])}
    if not codecs:
        sys.exit(f"check_perf_gate: {path}: no codec rows")
    return doc, codecs


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", required=True,
                    help="JSON from a fresh bench run")
    ap.add_argument("--baseline",
                    default=os.path.join(
                        root, "BENCH_codec_throughput.json"),
                    help="committed baseline JSON")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative span_speedup drop")
    ap.add_argument("--window8-floor", type=float, default=3.0,
                    help="hard minimum span_speedup for window:8")
    ap.add_argument("--ctx-floor", type=float, default=2.0,
                    help="hard minimum span_speedup for ctx:* specs")
    ap.add_argument("--stride8-floor", type=float, default=1.5,
                    help="hard minimum span_speedup for stride:8")
    ap.add_argument("--global-floor", type=float, default=0.95,
                    help="hard minimum span_speedup for every codec")
    ap.add_argument("--obs-floor", type=float, default=1.0,
                    help="hard minimum histogram record_speedup "
                         "(lock-free vs mutexed)")
    ap.add_argument("--energy-overhead-floor", type=float,
                    default=0.97,
                    help="hard minimum serve metering_ratio (metered "
                         "over unmetered serve-loopback words/sec)")
    ap.add_argument("--churn-floor", type=float, default=200.0,
                    help="hard minimum store churn_sessions_per_sec "
                         "(spill-tier session activations/sec)")
    ap.add_argument("--absolute", action="store_true",
                    help="also gate absolute span words/sec "
                         "(same-host runs only)")
    args = ap.parse_args()

    _, base = load(args.baseline)
    cur_doc, cur = load(args.current)

    failures = []
    for spec, b in sorted(base.items()):
        c = cur.get(spec)
        if c is None:
            failures.append(f"{spec}: missing from current run")
            continue
        b_spd, c_spd = b["span_speedup"], c["span_speedup"]
        floor = b_spd * (1.0 - args.tolerance)
        if c_spd < floor:
            failures.append(
                f"{spec}: span_speedup {c_spd:.3f} < {floor:.3f} "
                f"(baseline {b_spd:.3f} - {args.tolerance:.0%})"
            )
        if args.absolute:
            b_abs = b["span_words_per_sec"]
            c_abs = c["span_words_per_sec"]
            if c_abs < b_abs * (1.0 - args.tolerance):
                failures.append(
                    f"{spec}: span {c_abs:.3e} w/s < baseline "
                    f"{b_abs:.3e} - {args.tolerance:.0%}"
                )

    def family_floor(spec):
        if spec == "window:8":
            return args.window8_floor
        if spec.startswith("ctx:"):
            return args.ctx_floor
        if spec == "stride:8":
            return args.stride8_floor
        return args.global_floor

    w8 = cur.get("window:8")
    if w8 is None:
        failures.append("window:8: missing from current run")
    for spec, c in sorted(cur.items()):
        floor = max(family_floor(spec), args.global_floor)
        if c["span_speedup"] < floor:
            failures.append(
                f"{spec}: span_speedup {c['span_speedup']:.3f} below "
                f"the hard floor {floor:.2f}"
            )

    obs = cur_doc.get("obs")
    if obs is None:
        failures.append("obs: histogram microbench missing from "
                        "current run")
        obs_speedup = 0.0
    else:
        obs_speedup = obs.get("record_speedup", 0.0)
        if obs_speedup < args.obs_floor:
            failures.append(
                f"obs: record_speedup {obs_speedup:.3f} below the "
                f"hard floor {args.obs_floor:.2f} (lock-free "
                f"histogram record lost to the mutexed path)"
            )

    # The metering microbench rides with the serve loopback: a
    # --skip-serve run has neither, and the gate only insists on it
    # when the run actually exercised the serve path.
    energy = cur_doc.get("energy_overhead")
    energy_ratio = None
    if energy is not None:
        energy_ratio = energy.get("metering_ratio", 0.0)
        if energy_ratio < args.energy_overhead_floor:
            failures.append(
                f"energy_overhead: metering_ratio {energy_ratio:.3f} "
                f"below the hard floor "
                f"{args.energy_overhead_floor:.2f} (live energy "
                f"metering costs too much serve throughput)"
            )
    elif cur_doc.get("serve") is not None:
        failures.append("energy_overhead: metering microbench missing "
                        "from current run")

    # The store section appeared with the spill tier; older baselines
    # and bench binaries don't emit it, so the floor is checked only
    # when the current run carries it.
    store = cur_doc.get("store")
    churn = None
    if store is not None:
        churn = store.get("churn_sessions_per_sec", 0.0)
        if churn < args.churn_floor:
            failures.append(
                f"store: churn_sessions_per_sec {churn:.0f} below "
                f"the hard floor {args.churn_floor:.0f} (session "
                f"spill/resume path has regressed catastrophically)"
            )

    for f in failures:
        print(f"check_perf_gate: FAIL {f}", file=sys.stderr)
    if failures:
        return 1
    n = len(base)
    simd = cur_doc.get("simd", "?")
    energy_note = (
        f", metering ratio {energy_ratio:.3f}"
        if energy_ratio is not None else ""
    )
    churn_note = (
        f", store churn {churn:.0f}/s" if churn is not None else ""
    )
    print(f"check_perf_gate: OK ({n} codecs, simd={simd}, "
          f"window:8 speedup {w8['span_speedup']:.2f}x, "
          f"obs record {obs_speedup:.2f}x{energy_note}"
          f"{churn_note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
