/**
 * predbus-sim: command-line front end for the simulator.
 *
 * Run a built-in SPEC95-like workload or your own .s program on the
 * out-of-order machine, print statistics, and optionally dump bus
 * traces to .pbtr files (readable by predbus-codec and the library).
 *
 *   predbus-sim --list
 *   predbus-sim --workload gcc --cycles 200000 --stats
 *   predbus-sim --asm prog.s --dump-reg reg.pbtr --dump-mem mem.pbtr
 *   predbus-sim --workload swim --issue-width 2 --ruu 32 --l1d-kb 8
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <iostream>

#include "analysis/experiment.h"
#include "common/log.h"
#include "isa/asm_parser.h"
#include "sim/machine.h"
#include "trace/trace_io.h"
#include "workloads/workload.h"

using namespace predbus;

namespace
{

void
usage()
{
    std::puts(
        "predbus-sim: run guest programs on the predbus machine\n"
        "\n"
        "program selection:\n"
        "  --workload NAME     built-in SPEC95-like workload\n"
        "  --scale N           workload outer-iteration scale (default 4)\n"
        "  --asm FILE.s        assemble and run a P32 text program\n"
        "  --list              list built-in workloads and exit\n"
        "\n"
        "run control:\n"
        "  --cycles N          simulation budget (default 400000)\n"
        "  --stats             print detailed machine statistics\n"
        "  --dump-reg FILE     write the register-bus trace\n"
        "  --dump-mem FILE     write the memory-bus trace\n"
        "  --dump-addr FILE    write the address-bus trace\n"
        "\n"
        "machine configuration:\n"
        "  --issue-width N --ruu N --lsq N --mem-lat N\n"
        "  --l1d-kb N --l1i-kb N --l2-kb N --no-l2\n"
        "  --bpred bimodal|gshare\n");
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "predbus-sim: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string asm_path;
    u32 scale = 4;
    u64 cycles = 400'000;
    bool want_stats = false;
    std::string dump_reg, dump_mem, dump_addr;
    sim::SimConfig cfg;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            die(std::string("missing value for ") + argv[i]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--list") {
            Table table({"workload", "suite", "description"});
            for (const auto &info : workloads::all())
                table.row()
                    .cell(info.name)
                    .cell(info.is_fp ? "SPECfp" : "SPECint")
                    .cell(info.description);
            analysis::emitReport(
                std::cout,
                analysis::Report("Built-in SPEC95-like workloads",
                                 std::move(table)),
                analysis::Format::Table);
            return 0;
        } else if (arg == "--workload") {
            workload = need_value(i);
        } else if (arg == "--asm") {
            asm_path = need_value(i);
        } else if (arg == "--scale") {
            scale = static_cast<u32>(std::atoi(need_value(i)));
        } else if (arg == "--cycles") {
            cycles = static_cast<u64>(std::atoll(need_value(i)));
        } else if (arg == "--stats") {
            want_stats = true;
        } else if (arg == "--dump-reg") {
            dump_reg = need_value(i);
        } else if (arg == "--dump-mem") {
            dump_mem = need_value(i);
        } else if (arg == "--dump-addr") {
            dump_addr = need_value(i);
        } else if (arg == "--issue-width") {
            cfg.issue_width = cfg.fetch_width = cfg.decode_width =
                cfg.commit_width =
                    static_cast<u32>(std::atoi(need_value(i)));
        } else if (arg == "--ruu") {
            cfg.ruu_size = static_cast<u32>(std::atoi(need_value(i)));
        } else if (arg == "--lsq") {
            cfg.lsq_size = static_cast<u32>(std::atoi(need_value(i)));
        } else if (arg == "--mem-lat") {
            cfg.memory_latency =
                static_cast<u32>(std::atoi(need_value(i)));
        } else if (arg == "--l1d-kb") {
            cfg.dl1.size_bytes =
                static_cast<u32>(std::atoi(need_value(i))) * 1024;
        } else if (arg == "--l1i-kb") {
            cfg.il1.size_bytes =
                static_cast<u32>(std::atoi(need_value(i))) * 1024;
        } else if (arg == "--l2-kb") {
            cfg.l2.size_bytes =
                static_cast<u32>(std::atoi(need_value(i))) * 1024;
        } else if (arg == "--no-l2") {
            cfg.use_l2 = false;
        } else if (arg == "--bpred") {
            const std::string kind = need_value(i);
            if (kind == "bimodal")
                cfg.bpred.kind = sim::BpredKind::Bimodal;
            else if (kind == "gshare")
                cfg.bpred.kind = sim::BpredKind::Gshare;
            else
                die("unknown predictor '" + kind +
                    "' (bimodal|gshare)");
        } else {
            die("unknown option '" + arg + "' (try --help)");
        }
    }

    if (workload.empty() == asm_path.empty())
        die("choose exactly one of --workload or --asm (try --help)");

    try {
        const isa::Program program =
            workload.empty() ? isa::assembleFile(asm_path)
                             : workloads::build(workload, scale);

        sim::Machine machine(program, cfg);
        const sim::RunResult run = machine.run(cycles);

        std::printf("%s: %llu cycles, %llu instructions, IPC %.3f%s\n",
                    program.name.c_str(),
                    static_cast<unsigned long long>(run.stats.cycles),
                    static_cast<unsigned long long>(
                        run.stats.instructions),
                    run.stats.ipc(),
                    run.halted ? " (halted)" : " (cycle budget)");
        for (u32 v : run.output)
            std::printf("OUT 0x%08x (%u)\n", v, v);

        if (want_stats) {
            const sim::SimStats &s = run.stats;
            std::printf(
                "branches      %llu (%.2f%% mispredicted)\n"
                "loads/stores  %llu / %llu\n"
                "il1           %llu accesses, %.2f%% miss\n"
                "dl1           %llu accesses, %.2f%% miss\n"
                "l2            %llu accesses, %.2f%% miss\n"
                "bus traffic   reg %zu, mem %zu, addr %zu values\n",
                static_cast<unsigned long long>(s.branches),
                s.branches ? 100.0 * static_cast<double>(s.mispredicts) /
                                 static_cast<double>(s.branches)
                           : 0.0,
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.stores),
                static_cast<unsigned long long>(s.il1.accesses),
                100.0 * s.il1.missRate(),
                static_cast<unsigned long long>(s.dl1.accesses),
                100.0 * s.dl1.missRate(),
                static_cast<unsigned long long>(s.l2.accesses),
                100.0 * s.l2.missRate(), run.reg_bus.size(),
                run.mem_bus.size(), run.addr_bus.size());
        }

        if (!dump_reg.empty())
            trace::saveTrace(dump_reg, run.reg_bus);
        if (!dump_mem.empty())
            trace::saveTrace(dump_mem, run.mem_bus);
        if (!dump_addr.empty())
            trace::saveTrace(dump_addr, run.addr_bus);
    } catch (const std::exception &e) {
        die(e.what());
    }
    return 0;
}
