/**
 * predbus-codec: run coding schemes over a trace file.
 *
 * Takes a .pbtr trace (from predbus-sim --dump-*) and one or more
 * codec specs, prints wire-event savings, operation counts, and —
 * given a technology and wire length — the full energy verdict. The
 * trace is streamed (trace::TraceSource), never fully materialized,
 * and results go through the experiment engine's emitters, so the
 * same run is available as an aligned table, CSV, or JSON.
 *
 *   predbus-codec trace.pbtr window:8 ctx:28+8 stride:8 inv:2
 *   predbus-codec trace.pbtr window:8 --tech 0.13um --length 15
 *   predbus-codec trace.pbtr window:8 --format json
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/energy_eval.h"
#include "analysis/experiment.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "trace/trace_source.h"

using namespace predbus;

namespace
{

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "predbus-codec: %s\n", msg.c_str());
    std::exit(1);
}

/** Map a codec spec onto the closest hardware design estimate. */
circuit::DesignConfig
implFor(const std::string &spec)
{
    circuit::DesignConfig cfg;
    if (spec.rfind("window", 0) == 0) {
        cfg.kind = circuit::DesignKind::Window;
        cfg.entries = std::max(1u, static_cast<unsigned>(
                                       std::atoi(spec.c_str() + 7)));
    } else if (spec.rfind("ctx", 0) == 0) {
        cfg.kind = spec.find("trans") != std::string::npos
                       ? circuit::DesignKind::ContextTransition
                       : circuit::DesignKind::ContextValue;
    } else if (spec.rfind("inv", 0) == 0) {
        cfg.kind = circuit::DesignKind::Inversion;
    } else {
        // stride/spatial/raw: no silicon estimate in the paper; use the
        // window model sized by the codec's width as a rough stand-in.
        cfg.kind = circuit::DesignKind::Window;
        cfg.entries = 8;
    }
    return cfg;
}

/** Stream the trace through the codec in chunks. */
coding::CodingResult
streamEvaluate(const std::string &trace_path, coding::Transcoder &codec)
{
    trace::FileTraceSource source(trace_path);
    coding::StreamingEvaluator eval(codec, /*verify_decode=*/true);
    std::vector<Word> chunk(4096);
    for (;;) {
        const std::size_t got = source.read(chunk);
        if (got == 0)
            break;
        eval.feed({chunk.data(), got});
    }
    return eval.result();
}

double
percentOf(u64 part, u64 whole)
{
    return 100.0 * static_cast<double>(part) /
           static_cast<double>(std::max<u64>(1, whole));
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::vector<std::string> specs;
    std::string tech_name = "0.13um";
    double length_mm = 0.0;
    analysis::Format format = analysis::Format::Table;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::puts(
                "usage: predbus-codec TRACE.pbtr SPEC... "
                "[--tech NODE] [--length MM] [--format FMT]\n"
                "specs: raw | window:N[:ca] | ctx:T+S[:trans][:dD] | "
                "stride:K | inv:P[:lX] | spatial:B\n"
                "formats: table | csv | json");
            return 0;
        } else if (arg == "--tech") {
            if (i + 1 >= argc)
                die("missing value for --tech");
            tech_name = argv[++i];
        } else if (arg == "--length") {
            if (i + 1 >= argc)
                die("missing value for --length");
            length_mm = std::atof(argv[++i]);
        } else if (arg == "--format") {
            if (i + 1 >= argc)
                die("missing value for --format");
            const auto parsed = analysis::parseFormat(argv[++i]);
            if (!parsed)
                die("unknown format (expected table, csv, or json)");
            format = *parsed;
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            specs.push_back(arg);
        }
    }
    if (trace_path.empty() || specs.empty())
        die("need a trace file and at least one codec spec "
            "(try --help)");

    std::vector<std::string> header = {
        "codec",     "removed_%", "tau_base", "tau_coded", "kappa_base",
        "kappa_coded", "hits_%",  "repeats_%", "raw_%"};
    const bool with_length = length_mm > 0.0;
    if (with_length) {
        header.push_back("normalized");
        header.push_back("crossover_mm");
    }

    Table table(header);
    u64 words = 0;
    for (const std::string &spec : specs) {
        try {
            auto codec = coding::makeFromSpec(spec);
            const coding::CodingResult r =
                streamEvaluate(trace_path, *codec);
            words = r.words;
            table.row()
                .cell(codec->name())
                .cell(100.0 * r.removedFraction(1.0), 2)
                .cell(static_cast<long long>(r.base.tau))
                .cell(static_cast<long long>(r.coded.tau))
                .cell(static_cast<long long>(r.base.kappa))
                .cell(static_cast<long long>(r.coded.kappa))
                .cell(percentOf(r.ops.hits, r.ops.cycles), 1)
                .cell(percentOf(r.ops.last_hits, r.ops.cycles), 1)
                .cell(percentOf(r.ops.raw_sends, r.ops.cycles), 1);
            if (with_length) {
                const auto &wire_tech = wires::technology(tech_name);
                const auto &ckt_tech = circuit::circuitTech(tech_name);
                const circuit::ImplEstimate impl =
                    circuit::estimate(implFor(spec), ckt_tech);
                const analysis::LengthEval e = analysis::evalAtLength(
                    r, impl, wire_tech, length_mm);
                table.cell(e.normalized(), 3)
                    .cell(analysis::crossoverLengthMm(r, impl,
                                                      wire_tech),
                          1);
            }
        } catch (const std::exception &e) {
            die(spec + ": " + e.what());
        }
    }

    std::string title = trace_path + ": " + std::to_string(words) +
                        " values";
    if (with_length)
        title += " (" + tech_name + ", " +
                 std::to_string(length_mm) + " mm)";
    analysis::emitReport(std::cout, analysis::Report(title, table),
                         format);
    return 0;
}
