/**
 * predbus-codec: run coding schemes over a trace file.
 *
 * Takes a .pbtr trace (from predbus-sim --dump-*) and one or more
 * codec specs, prints wire-event savings, operation counts, and —
 * given a technology and wire length — the full energy verdict.
 *
 *   predbus-codec trace.pbtr window:8 ctx:28+8 stride:8 inv:2
 *   predbus-codec trace.pbtr window:8 --tech 0.13um --length 15
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/energy_eval.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "trace/trace_io.h"

using namespace predbus;

namespace
{

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "predbus-codec: %s\n", msg.c_str());
    std::exit(1);
}

/** Map a codec spec onto the closest hardware design estimate. */
circuit::DesignConfig
implFor(const std::string &spec, const coding::Transcoder &codec)
{
    circuit::DesignConfig cfg;
    if (spec.rfind("window", 0) == 0) {
        cfg.kind = circuit::DesignKind::Window;
        cfg.entries = std::max(1u, static_cast<unsigned>(
                                       std::atoi(spec.c_str() + 7)));
    } else if (spec.rfind("ctx", 0) == 0) {
        cfg.kind = spec.find("trans") != std::string::npos
                       ? circuit::DesignKind::ContextTransition
                       : circuit::DesignKind::ContextValue;
    } else if (spec.rfind("inv", 0) == 0) {
        cfg.kind = circuit::DesignKind::Inversion;
    } else {
        // stride/spatial/raw: no silicon estimate in the paper; use the
        // window model sized by the codec's width as a rough stand-in.
        cfg.kind = circuit::DesignKind::Window;
        cfg.entries = 8;
    }
    (void)codec;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::vector<std::string> specs;
    std::string tech_name = "0.13um";
    double length_mm = 0.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::puts(
                "usage: predbus-codec TRACE.pbtr SPEC... "
                "[--tech NODE] [--length MM]\n"
                "specs: raw | window:N[:ca] | ctx:T+S[:trans][:dD] | "
                "stride:K | inv:P[:lX] | spatial:B");
            return 0;
        } else if (arg == "--tech") {
            if (i + 1 >= argc)
                die("missing value for --tech");
            tech_name = argv[++i];
        } else if (arg == "--length") {
            if (i + 1 >= argc)
                die("missing value for --length");
            length_mm = std::atof(argv[++i]);
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            specs.push_back(arg);
        }
    }
    if (trace_path.empty() || specs.empty())
        die("need a trace file and at least one codec spec "
            "(try --help)");

    const auto trace = trace::loadTrace(trace_path);
    if (!trace)
        die("cannot read trace '" + trace_path + "'");
    const std::vector<Word> values = trace->values();
    std::printf("%s: %zu values\n\n", trace_path.c_str(),
                values.size());

    for (const std::string &spec : specs) {
        try {
            auto codec = coding::makeFromSpec(spec);
            const coding::CodingResult r =
                coding::evaluate(*codec, values, /*verify=*/true);
            std::printf("%-16s removed %6.2f%%  (tau %llu->%llu, "
                        "kappa %llu->%llu; hits %.1f%%, repeats "
                        "%.1f%%, raw %.1f%%)\n",
                        codec->name().c_str(),
                        100.0 * r.removedFraction(1.0),
                        static_cast<unsigned long long>(r.base.tau),
                        static_cast<unsigned long long>(r.coded.tau),
                        static_cast<unsigned long long>(r.base.kappa),
                        static_cast<unsigned long long>(r.coded.kappa),
                        100.0 * static_cast<double>(r.ops.hits) /
                            std::max<u64>(1, r.ops.cycles),
                        100.0 * static_cast<double>(r.ops.last_hits) /
                            std::max<u64>(1, r.ops.cycles),
                        100.0 * static_cast<double>(r.ops.raw_sends) /
                            std::max<u64>(1, r.ops.cycles));

            if (length_mm > 0.0) {
                const auto &wire_tech = wires::technology(tech_name);
                const auto &ckt_tech = circuit::circuitTech(tech_name);
                const circuit::ImplEstimate impl = circuit::estimate(
                    implFor(spec, *codec), ckt_tech);
                const analysis::LengthEval e = analysis::evalAtLength(
                    r, impl, wire_tech, length_mm);
                const double cross = analysis::crossoverLengthMm(
                    r, impl, wire_tech);
                std::printf(
                    "%-16s at %.1f mm (%s): normalized %.3f, "
                    "crossover %.1f mm\n",
                    "", length_mm, tech_name.c_str(), e.normalized(),
                    cross);
            }
        } catch (const std::exception &e) {
            std::printf("%-16s error: %s\n", spec.c_str(), e.what());
        }
    }
    return 0;
}
