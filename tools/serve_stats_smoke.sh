#!/bin/sh
# End-to-end smoke for the live telemetry plane:
#   1. start predbus_served with the JSON-lines self-scrape ticker,
#   2. scrape it with predbus_stats before and after a predbus_load
#      run and require the serve.* counters to have advanced,
#   3. validate a scraped snapshot with the in-tree RFC 8259 checker
#      (predbus_stats --check-json) and with python3,
#   4. require the flight recorder to have seen the load's sessions,
#   5. SIGUSR1 must dump a postmortem snapshot to stderr mid-serve,
#   6. SIGTERM must still drain gracefully, leaving a valid
#      stats.jsonl behind.
# Usage: tools/serve_stats_smoke.sh predbus_served predbus_load predbus_stats
set -e

SERVED=${1:?predbus_served path required}
LOAD=${2:?predbus_load path required}
STATS=${3:?predbus_stats path required}

DIR=$(mktemp -d)
SOCK="$DIR/predbus.sock"
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

"$SERVED" --unix "$SOCK" --workers 2 --queue 64 \
    --stats-interval 0.2 --stats-out="$DIR/stats.jsonl" \
    > "$DIR/served.out" 2> "$DIR/served.err" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_stats_smoke: server did not come up" >&2
        exit 1
    fi
    sleep 0.1
done

# Scrape the idle server, drive load, scrape again.
"$STATS" --unix "$SOCK" > "$DIR/scrape1.txt"
grep -q 'predbus\.serverstats\.v1' "$DIR/scrape1.txt"

"$LOAD" --unix "$SOCK" --spec window:8 --source random:8192 \
    --connections 2 --batch 256 --mode roundtrip

"$STATS" --unix "$SOCK" > "$DIR/scrape2.txt"

batches_before=$(awk '$1 == "counters.serve.batches" { print $2 }' \
    "$DIR/scrape1.txt")
batches_after=$(awk '$1 == "counters.serve.batches" { print $2 }' \
    "$DIR/scrape2.txt")
if [ -z "$batches_before" ] || [ -z "$batches_after" ] ||
        [ "$batches_after" -le "$batches_before" ]; then
    echo "serve_stats_smoke: serve.batches did not advance" \
         "($batches_before -> $batches_after)" >&2
    exit 1
fi

# Each scrape counts itself, so by now at least two are on record.
scrapes=$(awk '$1 == "counters.serve.stats_requests" { print $2 }' \
    "$DIR/scrape2.txt")
if [ -z "$scrapes" ] || [ "$scrapes" -lt 2 ]; then
    echo "serve_stats_smoke: serve.stats_requests is '$scrapes'," \
         "expected >= 2" >&2
    exit 1
fi

# Raw snapshot with flight-recorder events: both validators must
# accept it, and the load's sessions must be on the ring.
"$STATS" --unix "$SOCK" --events --format=json \
    --out="$DIR/snapshot.json"
"$STATS" --check-json "$DIR/snapshot.json"
python3 -m json.tool "$DIR/snapshot.json" > /dev/null
grep -q '"kind":"session_open"' "$DIR/snapshot.json"

# SIGUSR1 postmortem: snapshot + events to stderr, server keeps going.
kill -USR1 "$SERVER_PID"
i=0
until grep -q 'predbus\.serverstats\.v1' "$DIR/served.err" 2>/dev/null
do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_stats_smoke: no SIGUSR1 dump on stderr" >&2
        exit 1
    fi
    sleep 0.1
done
"$STATS" --unix "$SOCK" > /dev/null  # still serving after the dump

kill -TERM "$SERVER_PID"
STATUS=0
wait "$SERVER_PID" || STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "serve_stats_smoke: server exited $STATUS on SIGTERM" >&2
    exit 1
fi

# The ticker left JSON-lines delta snapshots; every line must parse.
python3 - "$DIR/stats.jsonl" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "stats.jsonl is empty"
for line in lines:
    json.loads(line)
EOF
echo "serve_stats_smoke: OK"
