/**
 * @file
 * predbus_served — the stateful bus-transcoding daemon.
 *
 * Serves the predbus framing protocol (docs/SERVING.md) over a Unix
 * domain socket and/or TCP: per-session encoder/decoder FSM pairs
 * built from src/coding factory specs, a fixed worker pool over a
 * bounded request queue (explicit OVERLOADED sheds, never unbounded
 * buffering), checksum-based desync detection with a RESYNC recovery
 * handshake, and graceful drain on SIGTERM/SIGINT — in-flight batches
 * complete, responses are flushed, then the process exits 0.
 *
 *   predbus_served --unix /tmp/predbus.sock
 *   predbus_served --tcp 7411 --workers 8 --queue 512
 *   predbus_served --tcp 0 --metrics=serve-metrics.json
 */

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include <unistd.h>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/server.h"
#include "wires/wire_model.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_served [options]\n"
          "\n"
          "  --unix PATH       listen on a Unix domain socket\n"
          "  --tcp PORT        listen on 127.0.0.1:PORT (0 = "
          "ephemeral,\n"
          "                    resolved port printed on startup)\n"
          "  --workers N       worker pool size (default: hardware "
          "threads)\n"
          "  --queue N         bounded request-queue capacity "
          "(default 256)\n"
          "  --max-pending N   per-connection pending cap (default "
          "32)\n"
          "  --max-sessions N  per-connection session cap (default "
          "64)\n"
          "  --store-budget B  resident session-state budget in "
          "bytes\n"
          "                    (default 64 MiB); least-recently-used\n"
          "                    sessions past it spill to disk and "
          "resume\n"
          "                    lazily on their next request\n"
          "  --store-dir PATH  session spill directory (default: a\n"
          "                    private temp dir, removed on exit)\n"
          "  --store-segment B spill segment file size in bytes "
          "(default\n"
          "                    4 MiB)\n"
          "  --no-energy       disable live energy metering "
          "(serve.energy.*)\n"
          "  --energy-lambda L coupling ratio for saved-percent "
          "figures\n"
          "                    (default 1.0)\n"
          "  --energy-wire TECH:MM[:bare]\n"
          "                    report Joules using the src/wires "
          "model:\n"
          "                    technology (e.g. 0.13um), bus length "
          "in mm,\n"
          "                    optional ':bare' for an unbuffered "
          "bus;\n"
          "                    also sets lambda to the model's "
          "effective\n"
          "                    ratio unless --energy-lambda is given\n"
          "  --batch-trace N   per-class batch tail-sampler slots "
          "(slowest /\n"
          "                    worst-savings; default 64, 0 "
          "disables)\n"
          "  --metrics=FILE    write the serve.* metrics report JSON "
          "on exit\n"
          "  --stats-interval SEC\n"
          "                    emit a server-stats JSON line (schema\n"
          "                    predbus.serverstats.v1) every SEC "
          "seconds\n"
          "  --stats-out=FILE  destination for the JSON lines "
          "(default:\n"
          "                    stdout)\n"
          "  --help            this text\n"
          "\n"
          "At least one of --unix/--tcp is required. SIGTERM/SIGINT "
          "drain\n"
          "gracefully: in-flight batches complete before exit. "
          "SIGUSR1\n"
          "dumps the stats snapshot with the flight-recorder events "
          "to\n"
          "stderr and keeps serving (live clients also get it via "
          "the\n"
          "SERVER_STATS frame / predbus_stats).\n";
}

struct Options
{
    serve::ServerOptions server;
    std::string metrics_file;
    double stats_interval = 0.0;  ///< 0: ticker disabled
    std::string stats_out;        ///< empty: stdout
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

unsigned
parseUnsigned(const std::string &value, const std::string &flag)
{
    try {
        return static_cast<unsigned>(std::stoul(value));
    } catch (const std::exception &) {
        fatal("bad ", flag, " value '", value, "'");
    }
}

std::size_t
parseSize(const std::string &value, const std::string &flag)
{
    try {
        return static_cast<std::size_t>(std::stoull(value));
    } catch (const std::exception &) {
        fatal("bad ", flag, " value '", value, "'");
    }
}

/** "TECH:MM[:bare]" → Joule-per-event and lambda server options. */
void
applyWireSpec(Options &opt, const std::string &spec,
              bool explicit_lambda)
{
    const std::size_t c1 = spec.find(':');
    if (c1 == std::string::npos)
        fatal("--energy-wire wants TECH:MM[:bare], got '", spec, "'");
    const std::size_t c2 = spec.find(':', c1 + 1);
    const std::string tech_name = spec.substr(0, c1);
    const std::string mm_str =
        spec.substr(c1 + 1, c2 == std::string::npos ? std::string::npos
                                                    : c2 - c1 - 1);
    bool buffered = true;
    if (c2 != std::string::npos) {
        const std::string tail = spec.substr(c2 + 1);
        if (tail == "bare")
            buffered = false;
        else if (tail != "buffered")
            fatal("--energy-wire tail must be 'bare' or 'buffered', "
                  "got '", tail, "'");
    }
    double length_mm = 0.0;
    try {
        length_mm = std::stod(mm_str);
    } catch (const std::exception &) {
        fatal("bad --energy-wire length '", mm_str, "'");
    }
    if (length_mm <= 0.0)
        fatal("--energy-wire length must be positive");
    const wires::WireModel model(wires::technology(tech_name),
                                 length_mm, buffered);
    opt.server.energy_joule_per_tau = model.energyPerTransition();
    opt.server.energy_joule_per_kappa = model.energyPerCoupling();
    if (!explicit_lambda)
        opt.server.energy_lambda = model.effectiveLambda();
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    bool explicit_lambda = false;
    std::string wire_spec;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--unix") {
            opt.server.unix_path = argValue(argc, argv, i, arg);
        } else if (arg == "--tcp") {
            opt.server.tcp_port = static_cast<int>(
                parseUnsigned(argValue(argc, argv, i, arg), arg));
        } else if (arg == "--workers") {
            opt.server.workers =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--queue") {
            opt.server.queue_capacity =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--max-pending") {
            opt.server.max_pending =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--max-sessions") {
            opt.server.max_sessions =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--store-budget") {
            opt.server.store_resident_bytes =
                parseSize(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--store-dir") {
            opt.server.store_spill_dir = argValue(argc, argv, i, arg);
        } else if (arg == "--store-segment") {
            opt.server.store_segment_bytes =
                parseSize(argValue(argc, argv, i, arg), arg);
        } else if (arg == "--no-energy") {
            opt.server.meter_energy = false;
        } else if (arg == "--energy-lambda") {
            try {
                opt.server.energy_lambda =
                    std::stod(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --energy-lambda value");
            }
            explicit_lambda = true;
        } else if (arg == "--energy-wire") {
            wire_spec = argValue(argc, argv, i, arg);
        } else if (arg == "--batch-trace") {
            opt.server.batch_trace_capacity =
                parseUnsigned(argValue(argc, argv, i, arg), arg);
        } else if (arg.rfind("--metrics=", 0) == 0) {
            opt.metrics_file =
                arg.substr(std::string("--metrics=").size());
        } else if (arg == "--stats-interval") {
            try {
                opt.stats_interval =
                    std::stod(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --stats-interval value");
            }
            if (opt.stats_interval <= 0.0)
                fatal("--stats-interval must be positive");
        } else if (arg.rfind("--stats-out=", 0) == 0) {
            opt.stats_out =
                arg.substr(std::string("--stats-out=").size());
        } else {
            fatal("unknown option '", arg, "' (see --help)");
        }
    }
    if (opt.server.unix_path.empty() && opt.server.tcp_port < 0)
        fatal("one of --unix/--tcp is required (see --help)");
    if (!wire_spec.empty())
        applyWireSpec(opt, wire_spec, explicit_lambda);
    return opt;
}

// Self-pipe: the handler is async-signal-safe, the main thread blocks
// on the read end. Byte 1 = drain and exit (TERM/INT), byte 2 =
// postmortem stats dump, keep serving (USR1).
int signal_pipe[2] = {-1, -1};

void
onSignal(int sig)
{
    const char byte = sig == SIGUSR1 ? 2 : 1;
    [[maybe_unused]] const ssize_t n =
        ::write(signal_pipe[1], &byte, 1);
}

/** Background JSON-lines stats writer (--stats-interval). */
class StatsTicker
{
  public:
    StatsTicker(const serve::Server &server, double interval_s,
                const std::string &path)
        : server(server)
    {
        if (!path.empty()) {
            file.open(path, std::ios::app);
            if (!file)
                fatal("cannot write ", path);
        }
        thread = std::thread([this, interval_s] {
            const auto interval = std::chrono::duration<double>(
                interval_s);
            std::unique_lock<std::mutex> lock(mutex);
            while (!cv.wait_for(lock, interval,
                                [this] { return stopping; }))
                emit();
        });
    }

    ~StatsTicker()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stopping = true;
        }
        cv.notify_all();
        thread.join();
        emit();  // final line so short runs still record one snapshot
    }

  private:
    void
    emit()
    {
        std::ostream &os = file.is_open() ? file : std::cout;
        os << server.statsJson(false) << '\n' << std::flush;
    }

    const serve::Server &server;
    std::ofstream file;
    std::mutex mutex;
    std::condition_variable cv;
    bool stopping = false;
    std::thread thread;
};

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    if (::pipe(signal_pipe) != 0)
        fatal("cannot create signal pipe");
    struct sigaction sa
    {
    };
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGUSR1, &sa, nullptr);

    serve::Server server(opt.server);
    std::optional<StatsTicker> ticker;
    if (opt.stats_interval > 0.0)
        ticker.emplace(server, opt.stats_interval, opt.stats_out);
    std::cout << "predbus_served listening"
              << (opt.server.unix_path.empty()
                      ? ""
                      : " unix=" + opt.server.unix_path)
              << (opt.server.tcp_port < 0
                      ? ""
                      : " tcp=" + std::to_string(server.tcpPort()))
              << std::endl;

    for (;;) {
        char byte = 0;
        const ssize_t n = ::read(signal_pipe[0], &byte, 1);
        if (n < 0 && errno == EINTR)
            continue;
        if (n > 0 && byte == 2) {
            // SIGUSR1 postmortem: full snapshot + flight-recorder
            // events to stderr, then keep serving.
            std::cerr << server.statsJson(true) << std::endl;
            continue;
        }
        break;
    }
    logInfo("serve: shutdown signal received, draining");
    server.beginDrain();
    server.waitDrained();
    server.stop();
    logInfo("serve: drained, exiting");

    if (!opt.metrics_file.empty()) {
        obs::ReportContext ctx;
        ctx.tool = "predbus_served";
        ctx.config = {
            {"unix", opt.server.unix_path},
            {"tcp", std::to_string(server.tcpPort())},
            {"queue", std::to_string(opt.server.queue_capacity)},
        };
        std::ofstream os(opt.metrics_file);
        if (!os)
            fatal("cannot write ", opt.metrics_file);
        writeMetricsReport(os, ctx, obs::Registry::global());
        logInfo("wrote metrics report ", opt.metrics_file);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        logError("predbus_served: ", e.what());
        return 1;
    } catch (const PanicError &e) {
        logError("predbus_served: internal error: ", e.what());
        return 2;
    }
}
