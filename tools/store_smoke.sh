#!/bin/sh
# Session-store smoke: churn far more logical sessions through a
# running predbus_served than its resident budget can hold, and
# require that
#   1. the churn scenario completes with zero byte mismatches (every
#      reply is verified against a local mirror restored from
#      snapshots — spilled sessions must resume byte-identically),
#   2. the serve.store.* telemetry shows real tiering traffic (spills
#      and resumes both advanced, spills == evictions),
#   3. the spill directory is left empty after a graceful drain (all
#      segment files unlinked, directory removed).
# Usage: tools/store_smoke.sh predbus_served predbus_load predbus_stats
set -e

SERVED=${1:?predbus_served path required}
LOAD=${2:?predbus_load path required}
STATS=${3:?predbus_stats path required}

DIR=$(mktemp -d)
SOCK="$DIR/predbus.sock"
SPILL="$DIR/spill"
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

# A 16 KiB resident budget fits a couple dozen window:8 sessions;
# the scenario churns 400 per connection, so nearly every touch
# crosses the disk tier.
"$SERVED" --unix "$SOCK" --workers 2 --store-budget 16384 \
    --store-dir "$SPILL" --max-sessions 1000 > "$DIR/served.out" &
SERVER_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "store_smoke: server did not come up" >&2
        exit 1
    fi
    sleep 0.1
done

"$LOAD" --unix "$SOCK" --scenario=churn --spec window:8 \
    --sessions 400 --connections 2 --batch 64 --batches 800 \
    > "$DIR/load.out"
grep -q "mismatches 0 " "$DIR/load.out" || {
    echo "store_smoke: churn run reported mismatches" >&2
    cat "$DIR/load.out" >&2
    exit 1
}

# The churn run closes its sessions on the way out, so the gauges
# read zero here; the traffic counters must still show the tiering
# that happened while it ran.
"$STATS" --unix "$SOCK" --store > "$DIR/store.out"
cat "$DIR/store.out"
SPILLS=$(awk '/^spills/{print $2}' "$DIR/store.out")
RESUMES=$(awk '/^resumes/{print $2}' "$DIR/store.out")
EVICTIONS=$(awk '/^evictions/{print $2}' "$DIR/store.out")
[ "${SPILLS:-0}" -gt 0 ] || {
    echo "store_smoke: no spills recorded (budget never pressed?)" >&2
    exit 1
}
[ "${RESUMES:-0}" -gt 0 ] || {
    echo "store_smoke: no resumes recorded" >&2
    exit 1
}
[ "$SPILLS" = "$EVICTIONS" ] || {
    echo "store_smoke: spills ($SPILLS) != evictions ($EVICTIONS)" >&2
    exit 1
}

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "store_smoke: server exited $STATUS on SIGTERM" >&2
    exit 1
fi

# Graceful shutdown erases every spilled session: no segment files
# may survive (an empty or absent spill dir both count as clean).
LEFT=$(find "$SPILL" -type f 2>/dev/null | wc -l)
if [ "$LEFT" -ne 0 ]; then
    echo "store_smoke: $LEFT segment file(s) left in $SPILL" >&2
    ls -l "$SPILL" >&2
    exit 1
fi
echo "store_smoke: OK"
