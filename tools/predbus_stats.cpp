/**
 * @file
 * predbus_stats — scrape a running predbus_served.
 *
 * Sends the SERVER_STATS admin frame and renders the returned
 * predbus.serverstats.v1 JSON (docs/OBSERVABILITY.md), either raw
 * (--format=json, one line per scrape — pipeable JSON-lines) or as an
 * aligned path/value table (--format=table, every scalar leaf of the
 * document flattened to a dotted path). Every payload is validated
 * with the in-tree RFC-8259 checker before printing; a server that
 * emits broken JSON fails the scrape.
 *
 *   predbus_stats --unix /tmp/predbus.sock
 *   predbus_stats --tcp-port 7411 --events --format=json
 *   predbus_stats --unix S --watch 1 --count 10
 *   predbus_stats --check-json snapshot.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "obs/json_check.h"
#include "serve/client.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_stats [options]\n"
          "\n"
          "  --unix PATH       connect to a Unix domain socket\n"
          "  --host H          TCP host (default 127.0.0.1)\n"
          "  --tcp-port P      TCP port\n"
          "  --events          include the flight-recorder events\n"
          "  --format=F        table (default) | json (raw "
          "serverstats\n"
          "                    line, pipeable as JSON-lines)\n"
          "  --watch SEC       re-scrape every SEC seconds until "
          "killed\n"
          "  --count N         stop after N scrapes (with --watch)\n"
          "  --out=FILE        append output to FILE instead of "
          "stdout\n"
          "  --check-json FILE offline: validate FILE with the "
          "in-tree\n"
          "                    RFC-8259 checker and exit (no "
          "server)\n"
          "  --help            this text\n";
}

struct Options
{
    std::string unix_path;
    std::string host = "127.0.0.1";
    int tcp_port = -1;
    bool events = false;
    std::string format = "table";
    double watch_interval = 0.0;  ///< 0: single scrape
    unsigned count = 0;           ///< 0: until killed
    std::string out_file;
    std::string check_file;
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--unix") {
            opt.unix_path = argValue(argc, argv, i, arg);
        } else if (arg == "--host") {
            opt.host = argValue(argc, argv, i, arg);
        } else if (arg == "--tcp-port") {
            try {
                opt.tcp_port =
                    std::stoi(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --tcp-port value");
            }
        } else if (arg == "--events") {
            opt.events = true;
        } else if (arg.rfind("--format=", 0) == 0) {
            opt.format = arg.substr(std::string("--format=").size());
        } else if (arg == "--watch") {
            try {
                opt.watch_interval =
                    std::stod(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --watch value");
            }
            if (opt.watch_interval <= 0.0)
                fatal("--watch interval must be positive");
        } else if (arg == "--count") {
            try {
                opt.count = static_cast<unsigned>(
                    std::stoul(argValue(argc, argv, i, arg)));
            } catch (const std::exception &) {
                fatal("bad --count value");
            }
        } else if (arg.rfind("--out=", 0) == 0) {
            opt.out_file = arg.substr(std::string("--out=").size());
        } else if (arg == "--check-json") {
            opt.check_file = argValue(argc, argv, i, arg);
        } else {
            fatal("unknown option '", arg, "' (see --help)");
        }
    }
    if (opt.format != "table" && opt.format != "json")
        fatal("bad --format '", opt.format, "' (table or json)");
    if (opt.check_file.empty() && opt.unix_path.empty() &&
        opt.tcp_port < 0)
        fatal("one of --unix/--tcp-port is required (see --help)");
    return opt;
}

/** --check-json: validate a file offline; exit status is the result. */
int
checkJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read ", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (const auto err = obs::jsonSyntaxError(buf.str())) {
        std::fprintf(stderr, "predbus_stats: %s: %s\n", path.c_str(),
                     err->c_str());
        return 1;
    }
    std::printf("%s: valid JSON\n", path.c_str());
    return 0;
}

void
renderTable(std::ostream &os, const std::string &json)
{
    std::vector<obs::JsonScalar> rows;
    if (const auto err = obs::jsonFlatten(json, rows))
        fatal("server stats JSON failed validation: ", *err);
    std::size_t width = 0;
    for (const obs::JsonScalar &row : rows)
        width = std::max(width, row.path.size());
    for (const obs::JsonScalar &row : rows) {
        os << row.path
           << std::string(width - row.path.size() + 2, ' ')
           << row.value << '\n';
    }
}

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (!opt.check_file.empty())
        return checkJsonFile(opt.check_file);

    std::ofstream file;
    if (!opt.out_file.empty()) {
        file.open(opt.out_file, std::ios::app);
        if (!file)
            fatal("cannot write ", opt.out_file);
    }
    std::ostream &os = file.is_open() ? file : std::cout;

    serve::Client client =
        opt.unix_path.empty()
            ? serve::Client::connectTcpSocket(
                  opt.host, static_cast<u16>(opt.tcp_port))
            : serve::Client::connectUnixSocket(opt.unix_path);

    const unsigned scrapes =
        opt.watch_interval > 0.0 ? opt.count : 1;
    for (unsigned n = 0; scrapes == 0 || n < scrapes; ++n) {
        if (n > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.watch_interval));
        }
        const std::string json = client.serverStats(opt.events);
        // The scrape path IS the validator: any malformed payload
        // from the server fails here, watch mode included.
        if (const auto err = obs::jsonSyntaxError(json))
            fatal("server stats JSON failed validation: ", *err);
        if (opt.format == "json") {
            os << json << '\n' << std::flush;
        } else {
            if (n > 0)
                os << "---\n";
            renderTable(os, json);
            os << std::flush;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        logError("predbus_stats: ", e.what());
        return 1;
    } catch (const PanicError &e) {
        logError("predbus_stats: internal error: ", e.what());
        return 2;
    }
}
