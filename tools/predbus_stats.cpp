/**
 * @file
 * predbus_stats — scrape a running predbus_served.
 *
 * Sends the SERVER_STATS admin frame and renders the returned
 * predbus.serverstats.v1 JSON (docs/OBSERVABILITY.md), either raw
 * (--format=json, one line per scrape — pipeable JSON-lines) or as an
 * aligned path/value table (--format=table, every scalar leaf of the
 * document flattened to a dotted path). Every payload is validated
 * with the in-tree RFC-8259 checker before printing; a server that
 * emits broken JSON fails the scrape.
 *
 *   predbus_stats --unix /tmp/predbus.sock
 *   predbus_stats --tcp-port 7411 --events --format=json
 *   predbus_stats --unix S --watch 1 --count 10
 *   predbus_stats --check-json snapshot.json
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/log.h"
#include "obs/json_check.h"
#include "serve/client.h"

using namespace predbus;

namespace
{

void
usage(std::ostream &os)
{
    os << "usage: predbus_stats [options]\n"
          "\n"
          "  --unix PATH       connect to a Unix domain socket\n"
          "  --host H          TCP host (default 127.0.0.1)\n"
          "  --tcp-port P      TCP port\n"
          "  --events          include the flight-recorder events\n"
          "  --energy          render the live energy attribution as "
          "a\n"
          "                    per-family table (words, wire events, "
          "%\n"
          "                    saved, Joules when the server has a "
          "wire\n"
          "                    model); with --format=json the raw "
          "line\n"
          "                    already carries the \"energy\" "
          "section\n"
          "  --store           render the session store's tiering "
          "state\n"
          "                    as a compact table (resident vs "
          "spilled\n"
          "                    sessions/bytes, spill/resume/eviction\n"
          "                    counters, resume latency "
          "percentiles)\n"
          "  --format=F        table (default) | json (raw "
          "serverstats\n"
          "                    line, pipeable as JSON-lines)\n"
          "  --watch SEC       re-scrape every SEC seconds until "
          "killed;\n"
          "                    reconnects with bounded backoff if "
          "the\n"
          "                    server restarts mid-watch\n"
          "  --count N         stop after N scrapes (with --watch)\n"
          "  --out=FILE        append output to FILE instead of "
          "stdout\n"
          "  --check-json FILE offline: validate FILE with the "
          "in-tree\n"
          "                    RFC-8259 checker and exit (no "
          "server)\n"
          "  --help            this text\n";
}

struct Options
{
    std::string unix_path;
    std::string host = "127.0.0.1";
    int tcp_port = -1;
    bool events = false;
    bool energy = false;
    bool store = false;
    std::string format = "table";
    double watch_interval = 0.0;  ///< 0: single scrape
    unsigned count = 0;           ///< 0: until killed
    std::string out_file;
    std::string check_file;
};

std::string
argValue(int argc, char **argv, int &i, const std::string &flag)
{
    if (i + 1 >= argc)
        fatal("missing value for ", flag);
    return argv[++i];
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--unix") {
            opt.unix_path = argValue(argc, argv, i, arg);
        } else if (arg == "--host") {
            opt.host = argValue(argc, argv, i, arg);
        } else if (arg == "--tcp-port") {
            try {
                opt.tcp_port =
                    std::stoi(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --tcp-port value");
            }
        } else if (arg == "--events") {
            opt.events = true;
        } else if (arg == "--energy") {
            opt.energy = true;
        } else if (arg == "--store") {
            opt.store = true;
        } else if (arg.rfind("--format=", 0) == 0) {
            opt.format = arg.substr(std::string("--format=").size());
        } else if (arg == "--watch") {
            try {
                opt.watch_interval =
                    std::stod(argValue(argc, argv, i, arg));
            } catch (const std::exception &) {
                fatal("bad --watch value");
            }
            if (opt.watch_interval <= 0.0)
                fatal("--watch interval must be positive");
        } else if (arg == "--count") {
            try {
                opt.count = static_cast<unsigned>(
                    std::stoul(argValue(argc, argv, i, arg)));
            } catch (const std::exception &) {
                fatal("bad --count value");
            }
        } else if (arg.rfind("--out=", 0) == 0) {
            opt.out_file = arg.substr(std::string("--out=").size());
        } else if (arg == "--check-json") {
            opt.check_file = argValue(argc, argv, i, arg);
        } else {
            fatal("unknown option '", arg, "' (see --help)");
        }
    }
    if (opt.format != "table" && opt.format != "json")
        fatal("bad --format '", opt.format, "' (table or json)");
    if (opt.check_file.empty() && opt.unix_path.empty() &&
        opt.tcp_port < 0)
        fatal("one of --unix/--tcp-port is required (see --help)");
    return opt;
}

/** --check-json: validate a file offline; exit status is the result. */
int
checkJsonFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        fatal("cannot read ", path);
    std::ostringstream buf;
    buf << is.rdbuf();
    if (const auto err = obs::jsonSyntaxError(buf.str())) {
        std::fprintf(stderr, "predbus_stats: %s: %s\n", path.c_str(),
                     err->c_str());
        return 1;
    }
    std::printf("%s: valid JSON\n", path.c_str());
    return 0;
}

/** Render the "energy" section as one aligned per-family table:
 * "total" last, Joule columns only when the server reported them. */
void
renderEnergyTable(std::ostream &os, const std::string &json)
{
    std::vector<obs::JsonScalar> rows;
    if (const auto err = obs::jsonFlatten(json, rows))
        fatal("server stats JSON failed validation: ", *err);

    // energy.total.<field> and energy.families.<family>.<field>
    std::string lambda = "?";
    std::vector<std::pair<std::string,
                          std::map<std::string, std::string>>> groups;
    auto groupFor =
        [&groups](const std::string &name)
        -> std::map<std::string, std::string> & {
        for (auto &[n, fields] : groups) {
            if (n == name)
                return fields;
        }
        groups.emplace_back(name,
                            std::map<std::string, std::string>{});
        return groups.back().second;
    };
    for (const obs::JsonScalar &row : rows) {
        if (row.path == "energy.lambda") {
            lambda = row.value;
        } else if (row.path.rfind("energy.total.", 0) == 0) {
            groupFor("total")[row.path.substr(13)] = row.value;
        } else if (row.path.rfind("energy.families.", 0) == 0) {
            const std::string rest = row.path.substr(16);
            const std::size_t dot = rest.find('.');
            if (dot != std::string::npos) {
                groupFor(rest.substr(0, dot))[rest.substr(dot + 1)] =
                    row.value;
            }
        }
    }
    // Families first (already in document order), total last.
    std::stable_partition(
        groups.begin(), groups.end(),
        [](const auto &g) { return g.first != "total"; });

    const bool joules =
        !groups.empty() && groups.front().second.count("base_pj") > 0;
    std::vector<std::string> columns = {
        "family",     "words",       "base_tau",
        "base_kappa", "coded_tau",   "coded_kappa",
        "saved_pct",
    };
    if (joules) {
        columns.insert(columns.end(),
                       {"base_pj", "coded_pj", "saved_pj"});
    }

    std::vector<std::vector<std::string>> cells;
    cells.push_back(columns);
    for (const auto &[name, fields] : groups) {
        std::vector<std::string> line{name};
        for (std::size_t c = 1; c < columns.size(); ++c) {
            const auto it = fields.find(columns[c]);
            line.push_back(it == fields.end() ? "0" : it->second);
        }
        cells.push_back(std::move(line));
    }

    os << "energy (lambda " << lambda << ")\n";
    std::vector<std::size_t> widths(columns.size(), 0);
    for (const auto &line : cells) {
        for (std::size_t c = 0; c < line.size(); ++c)
            widths[c] = std::max(widths[c], line[c].size());
    }
    for (const auto &line : cells) {
        for (std::size_t c = 0; c < line.size(); ++c) {
            const std::size_t pad = widths[c] - line[c].size();
            if (c == 0)  // left-align the name, right-align numbers
                os << line[c] << std::string(pad, ' ');
            else
                os << "  " << std::string(pad, ' ') << line[c];
        }
        os << '\n';
    }
}

/** Render the session store's two-tier state from the serve.store.*
 * metrics of the scrape: the RAM tier, the disk tier, the traffic
 * between them, and the resume-path latency percentiles. */
void
renderStoreTable(std::ostream &os, const std::string &json)
{
    std::vector<obs::JsonScalar> rows;
    if (const auto err = obs::jsonFlatten(json, rows))
        fatal("server stats JSON failed validation: ", *err);
    const auto value = [&rows](const std::string &path) {
        for (const obs::JsonScalar &row : rows)
            if (row.path == path)
                return row.value;
        return std::string("0");
    };
    const auto ms = [&value](const std::string &path) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f",
                      std::stod(value(path)) / 1e6);
        return std::string(buf);
    };

    const std::vector<std::pair<std::string, std::string>> lines = {
        {"resident sessions",
         value("gauges.serve.store.resident_sessions")},
        {"resident bytes",
         value("gauges.serve.store.resident_bytes")},
        {"spilled sessions",
         value("gauges.serve.store.spilled_sessions")},
        {"spilled bytes", value("gauges.serve.store.spilled_bytes")},
        {"spills", value("counters.serve.store.spills")},
        {"resumes", value("counters.serve.store.resumes")},
        {"evictions", value("counters.serve.store.evictions")},
        {"resume p50 ms",
         ms("histograms.serve.store.resume_ns.p50")},
        {"resume p95 ms",
         ms("histograms.serve.store.resume_ns.p95")},
        {"resume p99 ms",
         ms("histograms.serve.store.resume_ns.p99")},
    };
    std::size_t width = 0;
    for (const auto &[name, v] : lines)
        width = std::max(width, name.size());
    os << "session store\n";
    for (const auto &[name, v] : lines) {
        os << name << std::string(width - name.size() + 2, ' ') << v
           << '\n';
    }
}

void
renderTable(std::ostream &os, const std::string &json)
{
    std::vector<obs::JsonScalar> rows;
    if (const auto err = obs::jsonFlatten(json, rows))
        fatal("server stats JSON failed validation: ", *err);
    std::size_t width = 0;
    for (const obs::JsonScalar &row : rows)
        width = std::max(width, row.path.size());
    for (const obs::JsonScalar &row : rows) {
        os << row.path
           << std::string(width - row.path.size() + 2, ' ')
           << row.value << '\n';
    }
}

int
runMain(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);
    if (!opt.check_file.empty())
        return checkJsonFile(opt.check_file);

    std::ofstream file;
    if (!opt.out_file.empty()) {
        file.open(opt.out_file, std::ios::app);
        if (!file)
            fatal("cannot write ", opt.out_file);
    }
    std::ostream &os = file.is_open() ? file : std::cout;

    auto connect = [&opt]() {
        return opt.unix_path.empty()
                   ? serve::Client::connectTcpSocket(
                         opt.host, static_cast<u16>(opt.tcp_port))
                   : serve::Client::connectUnixSocket(opt.unix_path);
    };
    std::optional<serve::Client> client(connect());

    // Watch-mode reconnect policy: a failed scrape (server restarted
    // mid-watch) drops the connection and retries with doubling
    // backoff, capped per attempt and bounded in attempt count so a
    // permanently-gone server still terminates the watch. Only
    // successful scrapes count toward --count.
    constexpr double kBackoffStartS = 0.1;
    constexpr double kBackoffCapS = 2.0;
    constexpr unsigned kMaxConsecutiveFailures = 30;

    const unsigned scrapes =
        opt.watch_interval > 0.0 ? opt.count : 1;
    unsigned done = 0;
    unsigned failures = 0;
    double backoff = kBackoffStartS;
    while (scrapes == 0 || done < scrapes) {
        if (done > 0 && failures == 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(opt.watch_interval));
        }
        std::string json;
        try {
            if (!client)
                client.emplace(connect());
            json = client->serverStats(opt.events);
        } catch (const FatalError &e) {
            if (opt.watch_interval <= 0.0)
                throw;  // one-shot mode: fail like before
            client.reset();
            if (++failures > kMaxConsecutiveFailures) {
                fatal("server unreachable after ", failures - 1,
                      " reconnect attempts: ", e.what());
            }
            logWarn("predbus_stats: scrape failed (", e.what(),
                    "); retrying in ", backoff, "s");
            std::this_thread::sleep_for(
                std::chrono::duration<double>(backoff));
            backoff = std::min(backoff * 2.0, kBackoffCapS);
            continue;
        }
        failures = 0;
        backoff = kBackoffStartS;

        // The scrape path IS the validator: any malformed payload
        // from the server fails here, watch mode included.
        if (const auto err = obs::jsonSyntaxError(json))
            fatal("server stats JSON failed validation: ", *err);
        if (opt.format == "json") {
            os << json << '\n' << std::flush;
        } else {
            if (done > 0)
                os << "---\n";
            if (opt.energy)
                renderEnergyTable(os, json);
            else if (opt.store)
                renderStoreTable(os, json);
            else
                renderTable(os, json);
            os << std::flush;
        }
        ++done;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const FatalError &e) {
        logError("predbus_stats: ", e.what());
        return 1;
    } catch (const PanicError &e) {
        logError("predbus_stats: internal error: ", e.what());
        return 2;
    }
}
