#!/bin/sh
# End-to-end smoke for the serving pipeline:
#   1. start predbus_served on a Unix socket,
#   2. replay a deterministic random stream through predbus_load
#      (roundtrip mode verifies losslessness batch by batch),
#   3. SIGTERM the server and require a graceful, zero-status drain.
# Usage: tools/serve_smoke.sh path/to/predbus_served path/to/predbus_load
set -e

SERVED=${1:?predbus_served path required}
LOAD=${2:?predbus_load path required}

DIR=$(mktemp -d)
SOCK="$DIR/predbus.sock"
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

"$SERVED" --unix "$SOCK" --workers 2 --queue 64 \
    --metrics="$DIR/serve-metrics.json" > "$DIR/served.out" &
SERVER_PID=$!

# Wait for the socket to appear (the server prints its listening line
# only after the listeners are bound).
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_smoke: server did not come up" >&2
        exit 1
    fi
    sleep 0.1
done

"$LOAD" --unix "$SOCK" --spec window:8 --source random:8192 \
    --connections 2 --batch 256 --mode roundtrip

kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
STATUS=$?
SERVER_PID=""
if [ "$STATUS" -ne 0 ]; then
    echo "serve_smoke: server exited $STATUS on SIGTERM" >&2
    exit 1
fi

# The drain wrote a metrics report; require valid JSON.
python3 -m json.tool "$DIR/serve-metrics.json" > /dev/null
echo "serve_smoke: OK"
