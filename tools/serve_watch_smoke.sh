#!/bin/sh
# Smoke for predbus_stats --watch surviving a server restart:
#   1. start predbus_served and a background --watch scrape loop,
#   2. let the watcher land a couple of snapshots, then SIGTERM the
#      server out from under it,
#   3. relaunch the server on the same socket path,
#   4. the watcher must have logged a reconnect retry, kept running,
#      collected its full --count of snapshots, and exited 0.
# Usage: tools/serve_watch_smoke.sh predbus_served predbus_stats
set -e

SERVED=${1:?predbus_served path required}
STATS=${2:?predbus_stats path required}

DIR=$(mktemp -d)
SOCK="$DIR/predbus.sock"
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    [ -n "$WATCH_PID" ] && kill "$WATCH_PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

start_server() {
    "$SERVED" --unix "$SOCK" --workers 2 \
        > "$DIR/served.out" 2> "$DIR/served.err" &
    SERVER_PID=$!
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "serve_watch_smoke: server did not come up" >&2
            exit 1
        fi
        sleep 0.1
    done
}

snapshots() {
    grep -c 'predbus\.serverstats\.v1' "$DIR/watch.txt" 2>/dev/null \
        || echo 0
}

start_server

"$STATS" --unix "$SOCK" --watch 0.2 --count 6 \
    --out="$DIR/watch.txt" 2> "$DIR/watch.err" &
WATCH_PID=$!

# Let the watcher land at least two snapshots before pulling the rug.
i=0
while [ "$(snapshots)" -lt 2 ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve_watch_smoke: watcher produced no snapshots" >&2
        exit 1
    fi
    sleep 0.1
done

# Restart the server mid-watch: the watcher must ride it out.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || true
SERVER_PID=""
rm -f "$SOCK"
sleep 0.5
start_server

WATCH_STATUS=0
wait "$WATCH_PID" || WATCH_STATUS=$?
WATCH_PID=""
if [ "$WATCH_STATUS" -ne 0 ]; then
    echo "serve_watch_smoke: watcher exited $WATCH_STATUS" \
         "(expected a clean reconnect)" >&2
    cat "$DIR/watch.err" >&2
    exit 1
fi

# All six snapshots landed despite the restart...
got=$(snapshots)
if [ "$got" -lt 6 ]; then
    echo "serve_watch_smoke: only $got of 6 snapshots collected" >&2
    exit 1
fi
# ...and the watcher really did lose the server at some point (the
# test is vacuous if the kill landed between scrapes unseen).
if ! grep -q 'retrying in' "$DIR/watch.err"; then
    echo "serve_watch_smoke: no reconnect retry was logged" >&2
    cat "$DIR/watch.err" >&2
    exit 1
fi

echo "serve_watch_smoke: OK"
