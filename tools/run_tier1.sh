#!/bin/sh
# Configure, build, and run the tier-1 test suite (unit tests + the
# predbus_bench smoke experiment), lint the metric names, and check
# the observability artifacts are valid JSON.
# Usage: tools/run_tier1.sh [builddir]
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$ROOT" -B "$BUILD"
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" -L tier1 --output-on-failure

"$ROOT/tools/check_metrics_names.sh"

# Smoke run with observability on: both artifacts must parse as JSON.
OBSDIR=$(mktemp -d)
trap 'rm -rf "$OBSDIR"' EXIT
"$BUILD/bench/predbus_bench" --filter 'smoke*' \
    --metrics="$OBSDIR/metrics.json" \
    --trace-out="$OBSDIR/trace.json" > /dev/null
python3 -m json.tool "$OBSDIR/metrics.json" > /dev/null
python3 -m json.tool "$OBSDIR/trace.json" > /dev/null
echo "observability artifacts: OK"
