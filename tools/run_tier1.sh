#!/bin/sh
# Configure, build, and run the tier-1 test suite (unit tests + the
# predbus_bench smoke experiment). Usage: tools/run_tier1.sh [builddir]
set -e

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build"}
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -S "$ROOT" -B "$BUILD"
cmake --build "$BUILD" -j "$JOBS"
ctest --test-dir "$BUILD" -L tier1 --output-on-failure
