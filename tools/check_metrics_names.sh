#!/bin/sh
# Lint the observability metric names.
#
# Every literal registry call — counter("...") / gauge("...") /
# histogram("...") — in src/, bench/, and tools/ must (a) follow the
# dotted-name convention (two or more lowercase [a-z0-9_] segments
# joined by single dots) and (b) be registered in the metric-name
# table of docs/OBSERVABILITY.md, so metrics never drift out of the
# docs. Names built at runtime (coding.<codec>.*, sim.cache.<level>.*)
# are documented as patterns and validated at registration by
# Registry::validName instead.
#
# The reverse direction is linted too: every concrete (non-<pattern>)
# name in the registry table must still appear somewhere in the
# sources, so renamed or deleted metrics cannot leave stale doc rows.
#
# Usage: tools/check_metrics_names.sh   (exit 0 clean, 1 on violations)
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
DOCS="$ROOT/docs/OBSERVABILITY.md"

[ -r "$DOCS" ] || { echo "check_metrics_names: missing $DOCS" >&2; exit 1; }

# Tests exercise the validator with deliberately bad names; skip them.
names=$(grep -rhoE '(counter|gauge|histogram)\("[^"]*"\)' \
            "$ROOT/src" "$ROOT/bench" "$ROOT/tools" \
            --include='*.cpp' --include='*.h' 2>/dev/null |
        sed -E 's/^[a-z]+\("([^"]*)"\)$/\1/' | sort -u)

status=0
for name in $names; do
    if ! printf '%s\n' "$name" |
            grep -qE '^[a-z0-9_]+(\.[a-z0-9_]+)+$'; then
        echo "check_metrics_names: '$name' violates the dotted-name" \
             "convention (see docs/OBSERVABILITY.md)" >&2
        status=1
        continue
    fi
    if ! grep -qF "\`$name\`" "$DOCS"; then
        echo "check_metrics_names: '$name' is not registered in" \
             "docs/OBSERVABILITY.md" >&2
        status=1
    fi
done

# Reverse check: documented names must exist in the sources. Table
# rows whose name contains '<' are runtime patterns
# (coding.<codec>.*, serve.sessions.<family>) and rows listing
# several suffixes ('/' shorthand like sim.cache.il1.*) are expanded
# by the forward grep anyway, so both are skipped here.
documented=$(grep -oE '^\| `[a-z0-9_.]+` \|' "$DOCS" |
             sed -E 's/^\| `([a-z0-9_.]+)` \|$/\1/' | sort -u)
for name in $documented; do
    if ! printf '%s\n' "$names" | grep -qFx "$name"; then
        echo "check_metrics_names: '$name' is documented in" \
             "docs/OBSERVABILITY.md but no longer appears in the" \
             "sources" >&2
        status=1
    fi
done

[ "$status" -eq 0 ] && echo "check_metrics_names: OK ($(printf '%s\n' "$names" | grep -c .) names, $(printf '%s\n' "$documented" | grep -c .) documented)"
exit "$status"
