/**
 * predbus-asm: assemble and inspect P32 programs.
 *
 *   predbus-asm prog.s              assemble, print a listing
 *   predbus-asm prog.s --run        ...then run it functionally
 *   predbus-asm prog.s --hex        emit code as hex words
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "isa/asm_parser.h"
#include "isa/isa.h"
#include "sim/functional.h"
#include "sim/memory.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    std::string path;
    bool run = false, hex = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::puts("usage: predbus-asm FILE.s [--run] [--hex]");
            return 0;
        } else if (arg == "--run") {
            run = true;
        } else if (arg == "--hex") {
            hex = true;
        } else {
            path = arg;
        }
    }
    if (path.empty()) {
        std::fprintf(stderr, "predbus-asm: need a .s file\n");
        return 1;
    }

    try {
        const isa::Program program = isa::assembleFile(path);
        std::printf("# %s: %zu instructions, %zu data segment(s), "
                    "entry 0x%08x\n",
                    program.name.c_str(), program.code.size(),
                    program.data.size(), program.entry);
        Addr pc = program.code_base;
        for (u32 word : program.code) {
            if (hex) {
                std::printf("%08x\n", word);
            } else {
                const auto inst = isa::decode(word);
                std::printf("%08x:  %08x    %s\n", pc, word,
                            inst ? isa::disassemble(*inst).c_str()
                                 : "<illegal>");
            }
            pc += 4;
        }
        for (const isa::Segment &seg : program.data)
            std::printf("# data: 0x%08x .. 0x%08zx (%zu bytes)\n",
                        seg.base, seg.base + seg.bytes.size(),
                        seg.bytes.size());

        if (run) {
            sim::Memory mem;
            mem.load(program);
            sim::ArchState arch(mem);
            arch.pc = program.entry;
            const u64 steps = arch.run(50'000'000);
            std::printf("# ran %llu instructions%s\n",
                        static_cast<unsigned long long>(steps),
                        arch.halted() ? " (halted)" : " (step limit)");
            for (u32 v : arch.output())
                std::printf("OUT 0x%08x (%u)\n", v, v);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "predbus-asm: %s\n", e.what());
        return 1;
    }
    return 0;
}
