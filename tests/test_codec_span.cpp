/**
 * @file
 * Differential fuzz for the span codec paths: for every factory
 * codec, encodeSpan()/decodeSpan() must be byte-identical to the
 * per-word encode()/decode() loop — wire states, decoded values,
 * operation counts, FSM evolution across chunk boundaries, behavior
 * after a mid-span reset(), published stats deltas, and session
 * checksums. The fused window kernels (scalar, AVX2, and the
 * register-resident small-window variant) all ride through here.
 */

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>
#include <gtest/gtest.h>

#include "coding/bus_energy.h"
#include "coding/context.h"
#include "coding/factory.h"
#include "coding/session.h"
#include "coding/window.h"
#include "common/rng.h"
#include "obs/metrics.h"

using namespace predbus;

namespace
{

/** Every spec family the factory accepts, at sizes that exercise the
 * distinct kernels (window <= 8 register-resident, > 8 array probe,
 * 93 = the full code space). */
const std::vector<std::string> kSpecs = {
    "raw",          "window:1",   "window:8",  "window:8:ca",
    "window:13",    "window:64",  "window:93", "ctx:28+8",
    "ctx:28+8:trans",             "ctx:12+4:d64",
    "stride:1",     "stride:8",   "inv:2",     "inv:16:l1.83",
    "pbi:4",        "wze:4",      "spatial:6",
};

std::vector<Word>
randomStream(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    for (auto &v : out)
        v = rng.next32();
    return out;
}

/** Mostly arithmetic sequences with occasional phase breaks: the
 * stride predictor's best case, the window predictor's worst. */
std::vector<Word>
strideStream(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    Word v = rng.next32();
    Word step = rng.next32() & 0xff;
    for (auto &o : out) {
        o = v;
        v += step;
        if (rng.chance(0.02)) {
            v = rng.next32();
            step = rng.next32() & 0xff;
        }
    }
    return out;
}

/** Small working set with heavy repeats: hits and last-value codes
 * dominate (the paper's high-locality regime). */
std::vector<Word>
lowEntropyStream(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> pool(5);
    for (auto &p : pool)
        p = rng.next32();
    std::vector<Word> out(n);
    Word cur = pool[0];
    for (auto &o : out) {
        if (rng.chance(0.4))
            cur = pool[rng.below(pool.size())];
        o = cur;
    }
    return out;
}

struct Streams
{
    const char *label;
    std::vector<Word> (*make)(std::size_t, u64);
};

const Streams kStreams[] = {
    {"random", randomStream},
    {"stride", strideStream},
    {"low_entropy", lowEntropyStream},
};

/** Clamp a stream into the codec's accepted input range: spatial:B
 * codecs take B-bit values; every other family takes full words. */
std::vector<Word>
fitToSpec(const std::string &spec, std::vector<Word> values)
{
    if (spec.rfind("spatial:", 0) == 0) {
        const unsigned bits =
            static_cast<unsigned>(std::stoul(spec.substr(8)));
        for (auto &v : values)
            v &= (Word{1} << bits) - 1u;
    }
    return values;
}

/** Reference per-word run: encode word by word, then decode the wire
 * states word by word on a second instance of the same spec. */
struct Reference
{
    std::vector<u64> wire;
    std::vector<Word> decoded;
    coding::OpCounts enc_ops;

    Reference(const std::string &spec, const std::vector<Word> &values)
    {
        auto enc = coding::makeFromSpec(spec);
        wire.resize(values.size());
        for (std::size_t i = 0; i < values.size(); ++i)
            wire[i] = enc->encode(values[i]);
        enc_ops = enc->ops();
        auto dec = coding::makeFromSpec(spec);
        decoded.resize(wire.size());
        for (std::size_t i = 0; i < wire.size(); ++i)
            decoded[i] = dec->decode(wire[i]);
    }
};

/** Span run chunked at @p chunk words; chunk boundaries must be
 * invisible (the FSM state carries across calls). */
void
expectSpanMatches(const std::string &spec,
                  const std::vector<Word> &values, std::size_t chunk,
                  const Reference &ref)
{
    auto enc = coding::makeFromSpec(spec);
    std::vector<u64> wire(values.size());
    for (std::size_t off = 0; off < values.size();) {
        const std::size_t n = std::min(chunk, values.size() - off);
        enc->encodeSpan(values.data() + off, wire.data() + off, n);
        off += n;
    }
    EXPECT_EQ(wire, ref.wire) << spec << " chunk=" << chunk;
    EXPECT_TRUE(enc->ops() == ref.enc_ops)
        << spec << " chunk=" << chunk << ": op counts diverge";

    auto dec = coding::makeFromSpec(spec);
    std::vector<Word> decoded(wire.size());
    for (std::size_t off = 0; off < wire.size();) {
        const std::size_t n = std::min(chunk, wire.size() - off);
        dec->decodeSpan(wire.data() + off, decoded.data() + off, n);
        off += n;
    }
    EXPECT_EQ(decoded, ref.decoded) << spec << " chunk=" << chunk;
    EXPECT_EQ(decoded, values) << spec << ": round trip broken";
}

TEST(CodecSpan, MatchesPerWordEverySpecStreamAndChunk)
{
    const std::size_t kWords = 4096;
    const std::size_t kChunks[] = {1, 7, 64, 1000, 4096, 9999};
    u64 seed = 1;
    for (const std::string &spec : kSpecs) {
        for (const Streams &s : kStreams) {
            SCOPED_TRACE(spec + " / " + s.label);
            const std::vector<Word> values =
                fitToSpec(spec, s.make(kWords, seed++));
            const Reference ref(spec, values);
            for (const std::size_t chunk : kChunks)
                expectSpanMatches(spec, values, chunk, ref);
        }
    }
}

TEST(CodecSpan, MidSpanResetRestartsBothPathsIdentically)
{
    for (const std::string &spec : kSpecs) {
        SCOPED_TRACE(spec);
        const std::vector<Word> a =
            fitToSpec(spec, randomStream(700, 77));
        const std::vector<Word> b =
            fitToSpec(spec, lowEntropyStream(900, 78));

        auto scalar = coding::makeFromSpec(spec);
        std::vector<u64> scalar_wire(b.size());
        for (const Word v : a)
            scalar->encode(v);
        scalar->reset();
        for (std::size_t i = 0; i < b.size(); ++i)
            scalar_wire[i] = scalar->encode(b[i]);

        auto span = coding::makeFromSpec(spec);
        std::vector<u64> junk(a.size());
        span->encodeSpan(a.data(), junk.data(), a.size());
        span->reset();
        std::vector<u64> span_wire(b.size());
        span->encodeSpan(b.data(), span_wire.data(), b.size());

        EXPECT_EQ(span_wire, scalar_wire)
            << spec << ": reset() did not restore initial FSM state";
        // After reset() the counters restart from zero on both paths.
        EXPECT_TRUE(span->ops() == scalar->ops())
            << spec << ": op counts diverge after mid-span reset";
        EXPECT_EQ(span->ops().cycles, b.size());
    }
}

TEST(CodecSpan, StatsSinkSeesIdenticalDeltas)
{
    for (const std::string &spec : {std::string("window:8"),
                                    std::string("ctx:28+8"),
                                    std::string("stride:8")}) {
        SCOPED_TRACE(spec);
        const std::vector<Word> values = randomStream(3000, 5);

        obs::Registry scalar_reg;
        auto scalar = coding::makeFromSpec(spec);
        scalar->setStatsSink(scalar_reg, "codec");
        for (const Word v : values)
            scalar->encode(v);
        scalar->flushStats();

        obs::Registry span_reg;
        auto span = coding::makeFromSpec(spec);
        span->setStatsSink(span_reg, "codec");
        span->encodeSpan(values.data(),
                         std::vector<u64>(values.size()).data(),
                         values.size());
        span->flushStats();

        const auto scalar_snap = scalar_reg.counters();
        const auto span_snap = span_reg.counters();
        EXPECT_EQ(span_snap, scalar_snap)
            << spec << ": published metric deltas diverge";
    }
}

TEST(CodecSpan, SessionChecksumsMatchPerWordFolding)
{
    for (const std::string &spec : kSpecs) {
        SCOPED_TRACE(spec);
        const std::vector<Word> values =
            fitToSpec(spec, lowEntropyStream(2500, 9));

        // Per-word reference: encode word by word, fold each state.
        auto ref = coding::makeFromSpec(spec);
        u64 ref_sum = coding::kChecksumSeed;
        std::vector<u64> ref_wire;
        ref_wire.reserve(values.size());
        for (const Word v : values) {
            ref_wire.push_back(ref->encode(v));
            ref_sum = coding::checksumFold(ref_sum, ref_wire.back());
        }

        coding::CodecSession enc_session(spec);
        std::vector<u64> wire;
        enc_session.encodeBatch(values, wire);
        EXPECT_EQ(wire, ref_wire) << spec;
        EXPECT_EQ(enc_session.checksum(), ref_sum) << spec;
        EXPECT_EQ(enc_session.seq(), 1u);

        // Decode side: folding the decoded words must also match.
        u64 dec_sum = coding::kChecksumSeed;
        for (const Word v : values)
            dec_sum = coding::checksumFold(dec_sum, v);
        coding::CodecSession dec_session(spec);
        std::vector<Word> decoded;
        dec_session.decodeBatch(wire, decoded);
        EXPECT_EQ(decoded, values) << spec;
        EXPECT_EQ(dec_session.checksum(), dec_sum) << spec;
    }
}

TEST(CodecSpan, EnergyEvaluationIdenticalViaSpans)
{
    // evaluate() feeds the streaming evaluator in span chunks; a
    // per-word meter walk over the same wire states must agree on
    // tau/kappa exactly.
    for (const std::string &spec : {std::string("window:8"),
                                    std::string("window:64"),
                                    std::string("inv:2")}) {
        SCOPED_TRACE(spec);
        const std::vector<Word> values = randomStream(6000, 21);
        auto codec = coding::makeFromSpec(spec);
        const coding::CodingResult via_span =
            coding::evaluate(*codec, values, true);

        auto ref = coding::makeFromSpec(spec);
        coding::BusEnergyMeter meter(ref->width());
        for (const Word v : values)
            meter.observe(ref->encode(v));
        EXPECT_EQ(via_span.coded.tau, meter.count().tau) << spec;
        EXPECT_EQ(via_span.coded.kappa, meter.count().kappa) << spec;
        EXPECT_TRUE(via_span.ops == ref->ops()) << spec;
    }
}

TEST(CodecSpan, WindowProbeKindReportsThisHost)
{
    const std::string kind = coding::windowProbeKind();
    EXPECT_TRUE(kind == "avx2" || kind == "scalar") << kind;
}

// The force-scalar ctest variant (codec_span_force_scalar in
// tests/CMakeLists.txt) reruns this whole file with
// PREDBUS_FORCE_SCALAR=1; this test pins the dispatch itself so the
// rerun provably exercises the scalar kernels and not a silently
// still-vectorized path.
TEST(CodecSpan, ForceScalarEnvPinsDispatchToScalar)
{
    const char *env = std::getenv("PREDBUS_FORCE_SCALAR");
    const bool forced = env != nullptr && env[0] != '\0' &&
                        !(env[0] == '0' && env[1] == '\0');
    if (forced)
        EXPECT_STREQ(coding::windowProbeKind(), "scalar");
    else
        GTEST_SKIP() << "PREDBUS_FORCE_SCALAR not set";
}

/** The encoder-side context dictionary of a factory-made ctx codec. */
const coding::ContextDict &
contextDictOf(const coding::Transcoder &codec)
{
    const auto *ctx =
        dynamic_cast<const coding::ContextTranscoder *>(&codec);
    EXPECT_NE(ctx, nullptr);
    return ctx->dictionary();
}

// Counter-division boundaries (every divide_period accesses) must be
// invisible to chunking: the fused kernel tracks the period with a
// countdown rather than the per-word modulo, and a chunk edge landing
// anywhere around the boundary has to produce the same division
// schedule. Chunk sizes straddle the period (63/64/65) on purpose.
TEST(CodecSpan, ContextDividePeriodBoundaryCrossesMidSpan)
{
    const std::string spec = "ctx:12+4:d64";
    const std::vector<Word> values = lowEntropyStream(1000, 41);
    const Reference ref(spec, values);
    ASSERT_EQ(ref.enc_ops.divisions, 1000u / 64u);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{63},
                                    std::size_t{64}, std::size_t{65},
                                    std::size_t{127},
                                    std::size_t{1000}})
        expectSpanMatches(spec, values, chunk, ref);
}

// Saturate table counters at kCounterMax (no division, d0): the
// paper's sorting network still charges the increment even when a
// saturated Johnson counter stays put, and the span kernel must agree
// on that accounting exactly. Four distinct leading values push the
// first two through the SR into the table; the long alternation then
// drives their counters to the ceiling (a repeat never reaches the
// dictionary, so the pair must alternate).
TEST(CodecSpan, ContextCounterSaturationMatchesScalar)
{
    const std::string spec = "ctx:4+2:d0";
    std::vector<Word> values = {10, 20, 30, 40};
    for (int i = 0; i < 9000; ++i) {
        values.push_back(10);
        values.push_back(20);
    }
    const Reference ref(spec, values);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{97},
                                    values.size()})
        expectSpanMatches(spec, values, chunk, ref);

    auto span = coding::makeFromSpec(spec);
    std::vector<u64> wire(values.size());
    span->encodeSpan(values.data(), wire.data(), values.size());
    const coding::ContextDict &dict = contextDictOf(*span);
    EXPECT_EQ(dict.tableCount(0), coding::ContextDict::kCounterMax);
    EXPECT_TRUE(dict.sortedByCount());
}

// Entries at equal counts swap on the pending-bit pass (paper Fig 27
// step 3 prefers the swap when counts tie). Random picks from a pool
// that fits the dictionary keep all counters close together, so ties
// and swaps occur throughout the run; the span kernel's sparse
// pending-mask walk must reproduce the same swap sequence, op counts
// included, at any chunking.
TEST(CodecSpan, ContextEqualCounterSwapsStableAcrossChunking)
{
    const std::string spec = "ctx:12+4:d0";
    Rng rng(7);
    std::vector<Word> values;
    for (int i = 0; i < 6400; ++i)
        values.push_back(0x1000 + rng.below(8));
    const Reference ref(spec, values);
    ASSERT_GT(ref.enc_ops.swaps, 0u);
    for (const std::size_t chunk : {std::size_t{1}, std::size_t{5},
                                    std::size_t{129}, values.size()})
        expectSpanMatches(spec, values, chunk, ref);

    auto span = coding::makeFromSpec(spec);
    std::vector<u64> wire(values.size());
    span->encodeSpan(values.data(), wire.data(), values.size());
    const coding::ContextDict &dict = contextDictOf(*span);
    EXPECT_TRUE(dict.sortedByCount());
    // Invariant 1: resident table tags stay unique through the swaps.
    for (unsigned i = 0; i < dict.validCount(); ++i)
        for (unsigned j = i + 1; j < dict.validCount(); ++j)
            EXPECT_NE(dict.tableKey(i), dict.tableKey(j))
                << "duplicate tag at " << i << "," << j;
}

} // namespace
