#include "circuit/transcoder_impl.h"

#include <gtest/gtest.h>

#include "circuit/netlist_sim.h"
#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/log.h"
#include "common/rng.h"

namespace predbus::circuit
{
namespace
{

/** Typical bus traffic for exercising the op-energy model. */
std::vector<Word>
typicalTraffic(std::size_t n, u64 seed)
{
    // Roughly the suite mix the Table 2 averages are measured on:
    // ~10% repeats, ~40% dictionary-resident values, ~50% novel
    // (about half the suite's register-bus words go raw).
    Rng rng(seed);
    std::vector<Word> out;
    Word cur = 0;
    std::vector<Word> pool;
    for (int i = 0; i < 6; ++i)
        pool.push_back(rng.next32());
    for (std::size_t i = 0; i < n; ++i) {
        const double dice = rng.uniform();
        if (dice < 0.1) {
            // repeat
        } else if (dice < 0.5) {
            cur = pool[rng.below(pool.size())];
        } else {
            cur = rng.next32();
        }
        out.push_back(cur);
    }
    return out;
}

coding::OpCounts
windowOps(unsigned entries, std::size_t n, u64 seed)
{
    auto codec = coding::makeWindow(entries);
    const auto traffic = typicalTraffic(n, seed);
    return coding::evaluate(*codec, traffic, false).ops;
}

TEST(CircuitTech, ThreeNodes)
{
    EXPECT_EQ(allCircuitTechs().size(), 3u);
    EXPECT_THROW(circuitTech("0.18um"), FatalError);
    EXPECT_GT(circuit013().unitEnergy(), circuit007().unitEnergy());
}

TEST(TranscoderImpl, Table2AreaAnchors)
{
    // Paper Table 2: 12400 / 7340 / 3600 um^2 for the window-8
    // encoder; 4700 um^2 for the inversion coder at 0.13um.
    EXPECT_NEAR(estimate(window8(), circuit013()).area_um2, 12400,
                12400 * 0.03);
    EXPECT_NEAR(estimate(window8(), circuit010()).area_um2, 7340,
                7340 * 0.03);
    EXPECT_NEAR(estimate(window8(), circuit007()).area_um2, 3600,
                3600 * 0.03);
    EXPECT_NEAR(estimate(invertCoder(), circuit013()).area_um2, 4700,
                4700 * 0.05);
}

TEST(TranscoderImpl, Table2TimingAnchors)
{
    // Delay 3.1 / 2.4 / 2.0 ns; cycle 4 / 3.2 / 2.7 ns (window-8);
    // inversion 2.2 / 2.2 ns at 0.13um.
    const ImplEstimate w13 = estimate(window8(), circuit013());
    const ImplEstimate w10 = estimate(window8(), circuit010());
    const ImplEstimate w07 = estimate(window8(), circuit007());
    EXPECT_NEAR(w13.delay, 3.1e-9, 0.15e-9);
    EXPECT_NEAR(w10.delay, 2.4e-9, 0.15e-9);
    EXPECT_NEAR(w07.delay, 2.0e-9, 0.15e-9);
    EXPECT_NEAR(w13.cycle_time, 4.0e-9, 0.25e-9);
    EXPECT_NEAR(w10.cycle_time, 3.2e-9, 0.25e-9);
    EXPECT_NEAR(w07.cycle_time, 2.7e-9, 0.25e-9);
    const ImplEstimate inv = estimate(invertCoder(), circuit013());
    EXPECT_NEAR(inv.delay, 2.2e-9, 0.15e-9);
    EXPECT_NEAR(inv.cycle_time, 2.2e-9, 0.15e-9);
}

TEST(TranscoderImpl, Table2LeakageAnchors)
{
    // Leakage per cycle: 0.00088 / 0.00338 / 0.00787 pJ; grows as
    // technology shrinks even though dynamic energy falls.
    const double l13 =
        estimate(window8(), circuit013()).leak_per_cycle;
    const double l10 =
        estimate(window8(), circuit010()).leak_per_cycle;
    const double l07 =
        estimate(window8(), circuit007()).leak_per_cycle;
    EXPECT_NEAR(l13, 0.88e-15, 0.12e-15);
    EXPECT_NEAR(l10, 3.38e-15, 0.4e-15);
    EXPECT_NEAR(l07, 7.87e-15, 0.9e-15);
    EXPECT_LT(l13, l10);
    EXPECT_LT(l10, l07);
}

TEST(TranscoderImpl, Table2OpEnergyAnchors)
{
    // Average op energy on typical traffic: 1.39 / 1.07 / 0.55 pJ for
    // window-8; 1.76 pJ for the inversion coder at 0.13um. Allow 15%:
    // the paper's number comes from its own SPEC mix.
    const coding::OpCounts ops = windowOps(8, 50000, 42);
    EXPECT_NEAR(estimate(window8(), circuit013()).opEnergyPerCycle(ops),
                1.39e-12, 0.21e-12);
    EXPECT_NEAR(estimate(window8(), circuit010()).opEnergyPerCycle(ops),
                1.07e-12, 0.17e-12);
    EXPECT_NEAR(estimate(window8(), circuit007()).opEnergyPerCycle(ops),
                0.55e-12, 0.12e-12);

    auto inv_codec = coding::makeInversion(2, 0.0);
    const auto traffic = typicalTraffic(50000, 43);
    const coding::OpCounts inv_ops =
        coding::evaluate(*inv_codec, traffic, false).ops;
    EXPECT_NEAR(
        estimate(invertCoder(), circuit013()).opEnergyPerCycle(inv_ops),
        1.76e-12, 0.26e-12);
}

TEST(TranscoderImpl, BiggerDictionariesCostMore)
{
    const ImplEstimate w8 = estimate(window8(), circuit013());
    const ImplEstimate w16 = estimate(window16(), circuit013());
    EXPECT_GT(w16.area_um2, w8.area_um2);
    EXPECT_GT(w16.e_match, w8.e_match);
    EXPECT_GT(w16.delay, w8.delay);

    const ImplEstimate ctx = estimate(context28(), circuit013());
    EXPECT_GT(ctx.area_um2, w8.area_um2);
    // Paper §5.3.4: counters+compare add at least ~33% over a
    // comparable dictionary without them.
    DesignConfig plain_w = window8();
    plain_w.entries = 32;
    EXPECT_GT(ctx.area_um2,
              estimate(plain_w, circuit013()).area_um2 * 1.05);
}

TEST(TranscoderImpl, TransitionTagsDoubleCamWidth)
{
    DesignConfig v = context28();
    DesignConfig t = context28();
    t.kind = DesignKind::ContextTransition;
    const ImplEstimate ev = estimate(v, circuit013());
    const ImplEstimate et = estimate(t, circuit013());
    EXPECT_GT(et.area_um2, ev.area_um2 * 1.4);
    EXPECT_GT(et.e_match, ev.e_match * 1.4);
}

TEST(TranscoderImpl, EnergyForComposition)
{
    const ImplEstimate impl = estimate(window8(), circuit013());
    coding::OpCounts ops;
    ops.cycles = 100;
    ops.matches = 100;
    ops.shifts = 40;
    ops.raw_sends = 40;
    ops.hits = 50;
    ops.last_hits = 10;
    const double enc = impl.energyFor(ops, false);
    EXPECT_NEAR(enc,
                100 * impl.e_clock + 100 * impl.e_match +
                    40 * impl.e_shift + 40 * impl.e_raw +
                    100 * impl.leak_per_cycle,
                1e-18);
    // The decoder mirrors dictionary maintenance but replaces the CAM
    // search with indexed reads and the raw path with a pass-through.
    const double dec = 100 * impl.e_clock + 40 * impl.e_shift +
                       60 * impl.e_dec_read + 40 * impl.e_dec_raw +
                       100 * impl.leak_per_cycle;
    EXPECT_NEAR(impl.energyFor(ops, true), enc + dec, 1e-18);
    EXPECT_LT(impl.energyFor(ops, true), 2 * enc);
}

TEST(NetlistSim, AgreesWithStatisticalModel)
{
    // The paper's statistical model validated within 6% of the
    // netlist on a short trace; our analytic event accounting must
    // stay within 35% of the statistical budgets on typical traffic
    // (they share unit energies but differ in activity assumptions).
    const auto traffic = typicalTraffic(10000, 44);
    const NetlistEnergy detailed =
        detailedWindowEnergy(traffic, 8, circuit013());
    auto codec = coding::makeWindow(8);
    const coding::OpCounts ops =
        coding::evaluate(*codec, traffic, false).ops;
    const ImplEstimate impl = estimate(window8(), circuit013());
    const double statistical = impl.energyFor(ops, false) -
                               static_cast<double>(ops.cycles) *
                                   impl.leak_per_cycle;
    ASSERT_GT(detailed.total, 0.0);
    const double ratio = statistical / detailed.total;
    EXPECT_GT(ratio, 0.65) << "statistical " << statistical
                           << " detailed " << detailed.total;
    EXPECT_LT(ratio, 1.55);
}

TEST(NetlistSim, ActivityDependence)
{
    // A constant stream must cost far less than a random stream of
    // the same length in the detailed model.
    std::vector<Word> constant(5000, 0x1234u);
    Rng rng(45);
    std::vector<Word> random(5000);
    for (auto &v : random)
        v = rng.next32();
    const NetlistEnergy quiet =
        detailedWindowEnergy(constant, 8, circuit013());
    const NetlistEnergy busy =
        detailedWindowEnergy(random, 8, circuit013());
    EXPECT_LT(quiet.total, busy.total * 0.6);
}

} // namespace
} // namespace predbus::circuit
