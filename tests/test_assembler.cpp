#include "isa/assembler.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/log.h"
#include "isa/isa.h"

namespace predbus::isa
{
namespace
{

using namespace regs;

TEST(Assembler, EmitsSequentialCode)
{
    Asm a("t");
    a.add(r1, r2, r3);
    a.sub(r4, r5, r6);
    Program p = a.finish();
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(disassemble(*decode(p.code[0])), "add r1, r2, r3");
    EXPECT_EQ(disassemble(*decode(p.code[1])), "sub r4, r5, r6");
    EXPECT_EQ(p.entry, kDefaultCodeBase);
}

TEST(Assembler, BackwardBranchOffset)
{
    Asm a("t");
    a.label("top");        // index 0
    a.addi(r1, r1, 1);     // index 0
    a.bne(r1, r2, "top");  // index 1: target 0, next 2 -> offset -2
    Program p = a.finish();
    const auto br = decode(p.code[1]);
    ASSERT_TRUE(br.has_value());
    EXPECT_EQ(br->op, Opcode::BNE);
    EXPECT_EQ(br->imm, -2);
}

TEST(Assembler, ForwardBranchOffset)
{
    Asm a("t");
    a.beq(r0, r0, "done"); // index 0 -> offset = 2 - 1 = 1
    a.nop();               // index 1
    a.label("done");       // index 2
    a.halt();
    Program p = a.finish();
    const auto br = decode(p.code[0]);
    EXPECT_EQ(br->imm, 1);
}

TEST(Assembler, JumpTargetAbsolute)
{
    Asm a("t", 0x2000);
    a.nop();            // 0x2000
    a.label("x");       // 0x2004
    a.nop();
    a.j("x");           // word target = 0x2004 >> 2
    Program p = a.finish();
    const auto jmp = decode(p.code[2]);
    EXPECT_EQ(jmp->op, Opcode::J);
    EXPECT_EQ(jmp->target, 0x2004u >> 2);
}

TEST(Assembler, UndefinedLabelFatal)
{
    Asm a("t");
    a.j("nowhere");
    EXPECT_THROW(a.finish(), FatalError);
}

TEST(Assembler, DuplicateLabelFatal)
{
    Asm a("t");
    a.label("x");
    EXPECT_THROW(a.label("x"), FatalError);
}

TEST(Assembler, LiSmallUsesOneInstruction)
{
    Asm a("t");
    a.li(r1, 5);
    a.li(r2, static_cast<u32>(-5));
    Program p = a.finish();
    EXPECT_EQ(p.code.size(), 2u);
    EXPECT_EQ(decode(p.code[0])->op, Opcode::ADDI);
    EXPECT_EQ(decode(p.code[1])->imm, -5);
}

TEST(Assembler, LiLargeUsesLuiOri)
{
    Asm a("t");
    a.li(r1, 0xdeadbeef);
    Program p = a.finish();
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(decode(p.code[0])->op, Opcode::LUI);
    EXPECT_EQ(static_cast<u32>(decode(p.code[0])->imm), 0xdeadu);
    EXPECT_EQ(decode(p.code[1])->op, Opcode::ORI);
    EXPECT_EQ(static_cast<u32>(decode(p.code[1])->imm), 0xbeefu);
}

TEST(Assembler, LiAlignedLargeOmitsOri)
{
    Asm a("t");
    a.li(r1, 0xabcd0000);
    Program p = a.finish();
    EXPECT_EQ(p.code.size(), 1u);
    EXPECT_EQ(decode(p.code[0])->op, Opcode::LUI);
}

TEST(Assembler, FliAllocatesPool)
{
    Asm a("t");
    a.fli(f1, 2.5, r9);
    a.fli(f2, -1.25, r9);
    a.halt();
    Program p = a.finish();
    ASSERT_EQ(p.data.size(), 1u);
    EXPECT_EQ(p.data[0].bytes.size(), 16u);
    // First pool slot decodes back to 2.5.
    double v = 0;
    static_assert(sizeof(v) == 8);
    std::memcpy(&v, p.data[0].bytes.data(), 8);
    EXPECT_EQ(v, 2.5);
    std::memcpy(&v, p.data[0].bytes.data() + 8, 8);
    EXPECT_EQ(v, -1.25);
}

TEST(Assembler, HereAndLabelAddr)
{
    Asm a("t", 0x1000);
    EXPECT_EQ(a.here(), 0x1000u);
    a.nop();
    EXPECT_EQ(a.here(), 0x1004u);
    a.label("L");
    a.nop();
    EXPECT_EQ(a.labelAddr("L"), 0x1004u);
}

TEST(Assembler, FinishTwicePanics)
{
    Asm a("t");
    a.halt();
    a.finish();
    EXPECT_THROW(a.finish(), PanicError);
}

TEST(Program, AddWordsLittleEndian)
{
    Program p;
    p.addWords(0x100, {0x04030201u});
    ASSERT_EQ(p.data.size(), 1u);
    ASSERT_EQ(p.data[0].bytes.size(), 4u);
    EXPECT_EQ(p.data[0].bytes[0], 0x01);
    EXPECT_EQ(p.data[0].bytes[3], 0x04);
}

} // namespace
} // namespace predbus::isa
