#include "coding/bus_energy.h"

#include <gtest/gtest.h>

#include "coding/factory.h"
#include "coding/protocol.h"
#include "common/rng.h"

namespace predbus::coding
{
namespace
{

TEST(BusEnergyMeter, CountsTransitions)
{
    BusEnergyMeter m(32);
    m.observe(0x0);          // first: free
    m.observe(0xf);          // 4 transitions
    m.observe(0xf);          // none
    m.observe(0x0);          // 4 more
    EXPECT_EQ(m.count().tau, 8u);
}

TEST(BusEnergyMeter, CountsCoupling)
{
    BusEnergyMeter m(2);
    m.observe(0b00);
    m.observe(0b01);   // relative state flips: 1 coupling event
    EXPECT_EQ(m.count().kappa, 1u);
    m.observe(0b10);   // 01 -> 10: both toggle, XOR stays 1: no event
    EXPECT_EQ(m.count().kappa, 1u);
    EXPECT_EQ(m.count().tau, 3u);
}

TEST(BusEnergyMeter, ResetClears)
{
    BusEnergyMeter m(8);
    m.observe(0);
    m.observe(0xff);
    m.reset();
    EXPECT_EQ(m.count().tau, 0u);
    m.observe(0xff);
    EXPECT_EQ(m.count().tau, 0u);  // first observation after reset free
}

TEST(BusEnergyMeter, WidthMasking)
{
    BusEnergyMeter m(4);
    m.observe(0);
    m.observe(0xf0);   // outside 4-wire bus: masked away
    EXPECT_EQ(m.count().tau, 0u);
}

TEST(EnergyCount, CostWeighting)
{
    EnergyCount c{10, 4};
    EXPECT_DOUBLE_EQ(c.cost(0.0), 10.0);
    EXPECT_DOUBLE_EQ(c.cost(1.0), 14.0);
    EXPECT_DOUBLE_EQ(c.cost(0.5), 12.0);
}

TEST(MeasureUnencoded, MatchesByHand)
{
    // 0 -> 0xFFFFFFFF: 32 tau, coupling unchanged (all wires same
    // direction). -> 0xAAAAAAAA: 16 tau, every adjacent pair's XOR
    // flips: 31 kappa.
    const std::vector<Word> values = {0, 0xffffffffu, 0xaaaaaaaau};
    const EnergyCount c = measureUnencoded(values);
    EXPECT_EQ(c.tau, 48u);
    EXPECT_EQ(c.kappa, 31u);
}

TEST(Protocol, CodeVectorWeights)
{
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(popcount(codeVector(i)), 1);
    for (unsigned i = 32; i < 63; ++i)
        EXPECT_EQ(popcount(codeVector(i)), 2);
    for (unsigned i = 63; i < kMaxCodePoints; ++i)
        EXPECT_EQ(popcount(codeVector(i)), 3);
}

TEST(Protocol, CodeVectorRoundTrip)
{
    for (unsigned i = 0; i < kMaxCodePoints; ++i) {
        const auto back = codeIndex(codeVector(i));
        ASSERT_TRUE(back.has_value()) << i;
        EXPECT_EQ(*back, i);
    }
}

TEST(Protocol, CodeVectorsDistinct)
{
    for (unsigned i = 0; i < kMaxCodePoints; ++i)
        for (unsigned j = i + 1; j < kMaxCodePoints; ++j)
            EXPECT_NE(codeVector(i), codeVector(j));
}

TEST(Protocol, CodeIndexRejectsNonCodes)
{
    EXPECT_FALSE(codeIndex(0).has_value());
    EXPECT_FALSE(codeIndex(0b101).has_value());       // non-adjacent
    EXPECT_FALSE(codeIndex(0b1111).has_value());      // weight 4
    EXPECT_FALSE(codeIndex(u64{1} << 33).has_value()); // control wire
}

TEST(Protocol, InterpretWireStates)
{
    using Kind = DecodedCodeword::Kind;
    // Unchanged state under Code control = LAST value.
    const u64 prev = withCtl(0xabc, CtlState::Code);
    auto last = interpret(prev, prev);
    ASSERT_TRUE(last);
    EXPECT_EQ(last->kind, Kind::LastValue);

    // A one-hot data flip under Code control names a dictionary index.
    auto dict = interpret(withCtl(0xabcu ^ (1u << 5), CtlState::Code),
                          prev);
    ASSERT_TRUE(dict);
    EXPECT_EQ(dict->kind, Kind::Dictionary);
    EXPECT_EQ(dict->index, 5u);

    // Raw control: the data wires are the value.
    auto raw = interpret(withCtl(0x1234, CtlState::Raw), prev);
    ASSERT_TRUE(raw);
    EXPECT_EQ(raw->kind, Kind::Raw);
    EXPECT_EQ(raw->raw, 0x1234u);

    // RawInv control: the data wires are the inverted value.
    auto inv = interpret(withCtl(0x0000ffffu, CtlState::RawInv), prev);
    ASSERT_TRUE(inv);
    EXPECT_EQ(inv->kind, Kind::RawInverted);
    EXPECT_EQ(inv->raw, 0xffff0000u);

    // Control state 11 is illegal.
    EXPECT_FALSE(interpret(kCtlMask | 5u, prev));
    // Code-kind with a non-code transition vector is illegal.
    EXPECT_FALSE(interpret(withCtl(0xabcu ^ 0b1010u, CtlState::Code),
                           prev));
}

TEST(Protocol, RawRunsCostBaselineOnly)
{
    // Control states are absolute: a run of raw words flips the
    // control wire once, then behaves exactly like the unencoded bus.
    const std::vector<Word> ramp = [] {
        std::vector<Word> v;
        for (u32 i = 0; i < 1000; ++i)
            v.push_back(0x40000000u + 8 * i);  // high bit defeats dicts
        return v;
    }();
    auto win = makeWindow(2);
    const CodingResult r = evaluate(*win, ramp, true);
    // tau overhead over base must be tiny (one control flip + at most
    // a handful of raw/rawinv toggles).
    EXPECT_LE(r.coded.tau, r.base.tau + 40);
}

TEST(Evaluate, RawBusMatchesMeasureUnencoded)
{
    Rng rng(5);
    std::vector<Word> values;
    for (int i = 0; i < 5000; ++i)
        values.push_back(rng.next32());
    auto raw = makeRaw();
    const CodingResult r = evaluate(*raw, values, true);
    const EnergyCount direct = measureUnencoded(values);
    EXPECT_EQ(r.base.tau, direct.tau);
    EXPECT_EQ(r.coded.tau, direct.tau);
    EXPECT_EQ(r.coded.kappa, direct.kappa);
    EXPECT_DOUBLE_EQ(r.removedFraction(1.0), 0.0);
}

TEST(Evaluate, RemovedFractionSignsMakeSense)
{
    // Blocks of two repeated values: the unencoded bus pays 32 flips
    // per block boundary, the window codes each boundary as a single
    // wire flip once both values are resident.
    std::vector<Word> values;
    for (int block = 0; block < 20; ++block)
        for (int i = 0; i < 50; ++i)
            values.push_back(block % 2 ? 0xffffffffu : 0u);
    auto win = makeWindow(8);
    const CodingResult r = evaluate(*win, values, true);
    EXPECT_GT(r.removedFraction(1.0), 0.9);

    // A constant trace has zero base energy; removedFraction must
    // report 0 rather than dividing by zero.
    std::vector<Word> constant(100, 7u);
    auto win2 = makeWindow(8);
    const CodingResult r2 = evaluate(*win2, constant, true);
    EXPECT_DOUBLE_EQ(r2.removedFraction(1.0), 0.0);
}

} // namespace
} // namespace predbus::coding
