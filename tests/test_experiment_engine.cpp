/**
 * @file
 * The experiment engine: registry lookup and glob filtering, runner
 * determinism (--jobs N must be byte-identical to --jobs 1), exception
 * propagation, and the structured emitters.
 */

#include <atomic>
#include <sstream>
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "common/log.h"

using namespace predbus;

namespace
{

TEST(Registry, EveryFormerBinaryIsRegistered)
{
    const char *expected[] = {
        "fig05_wire_energy",        "fig06_wire_delay",
        "table1_lambda",            "fig07_value_cdf",
        "fig08_window_unique",      "fig15_inversion_lambda",
        "fig16_stride_membus",      "fig17_stride_regbus",
        "fig18_window_membus",      "fig19_window_regbus",
        "fig20_ctx_trans_membus",   "fig21_ctx_trans_regbus",
        "fig22_ctx_value_membus",   "fig23_ctx_value_regbus",
        "fig24_ctx_shiftreg",       "fig25_ctx_divide",
        "fig26_energy_budget",      "table2_transcoder_impl",
        "fig35_window_regbus_energy", "fig36_window_membus_energy",
        "fig37_crossover_regbus",   "fig38_crossover_membus",
        "table3_crossover_medians", "ablation_costaware",
        "ablation_precharge",       "ablation_sorting",
        "ablation_varlen",          "ext_address_bus",
        "ext_internal_buses",       "ext_related_work",
        "smoke_engine",
    };
    const auto &registry = analysis::Registry::instance();
    for (const char *name : expected) {
        SCOPED_TRACE(name);
        const analysis::Experiment *exp = registry.find(name);
        ASSERT_NE(exp, nullptr);
        EXPECT_EQ(exp->name, name);
        EXPECT_FALSE(exp->description.empty());
        EXPECT_TRUE(exp->run != nullptr);
    }
    EXPECT_EQ(registry.all().size(), std::size(expected));
}

TEST(Registry, AllIsSortedAndMatchFilters)
{
    const auto &registry = analysis::Registry::instance();
    const auto all = registry.all();
    for (std::size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->name, all[i]->name);

    EXPECT_EQ(registry.match("fig19*").size(), 1u);
    EXPECT_EQ(registry.match("fig19_window_regbus").size(), 1u);
    EXPECT_EQ(registry.match("ablation_*").size(), 4u);
    EXPECT_EQ(registry.match("*").size(), all.size());
    EXPECT_TRUE(registry.match("zzz*").empty());
    EXPECT_EQ(registry.find("no_such_experiment"), nullptr);
}

TEST(Registry, SelectByGlobsReportsUnmatchedFilters)
{
    const auto &registry = analysis::Registry::instance();
    const auto all = registry.all();

    // All filters match: union, deduped, sorted, nothing unmatched.
    std::vector<std::string> unmatched;
    auto selected = analysis::selectByGlobs(
        registry, {"fig19*", "*", "ablation_*"}, &unmatched);
    EXPECT_TRUE(unmatched.empty());
    ASSERT_EQ(selected.size(), all.size());
    for (std::size_t i = 1; i < selected.size(); ++i)
        EXPECT_LT(selected[i - 1]->name, selected[i]->name);

    // A typo'd filter alongside matching ones is reported, and the
    // matching ones still select.
    unmatched.clear();
    selected = analysis::selectByGlobs(
        registry, {"fig19*", "zzz_no_such*", "fig19*"}, &unmatched);
    EXPECT_EQ(selected.size(), 1u);
    ASSERT_EQ(unmatched.size(), 1u);
    EXPECT_EQ(unmatched[0], "zzz_no_such*");

    // Nothing matches: everything is unmatched, selection is empty.
    unmatched.clear();
    selected =
        analysis::selectByGlobs(registry, {"nope", "nada*"}, &unmatched);
    EXPECT_TRUE(selected.empty());
    EXPECT_EQ(unmatched.size(), 2u);

    // The out-parameter is optional.
    EXPECT_EQ(analysis::selectByGlobs(registry, {"fig19*"}).size(), 1u);
}

TEST(Glob, MatchesShellStyle)
{
    EXPECT_TRUE(analysis::globMatch("*", ""));
    EXPECT_TRUE(analysis::globMatch("fig*", "fig19_window_regbus"));
    EXPECT_TRUE(analysis::globMatch("*regbus", "fig19_window_regbus"));
    EXPECT_TRUE(analysis::globMatch("fig??_*", "fig19_window_regbus"));
    EXPECT_TRUE(analysis::globMatch("*window*", "fig19_window_regbus"));
    EXPECT_FALSE(analysis::globMatch("fig2*", "fig19_window_regbus"));
    EXPECT_FALSE(analysis::globMatch("fig19", "fig19_window_regbus"));
    EXPECT_FALSE(analysis::globMatch("", "x"));
}

TEST(Runner, MapPreservesInputOrder)
{
    const analysis::Runner runner(8);
    const auto results = runner.mapIndex(
        1000, [](std::size_t i) { return i * 2 + 1; });
    ASSERT_EQ(results.size(), 1000u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i], i * 2 + 1);
}

TEST(Runner, ExceptionsPropagateToCaller)
{
    const analysis::Runner runner(4);
    EXPECT_THROW(
        runner.forEachIndex(100,
                            [](std::size_t i) {
                                if (i == 37)
                                    fatal("cell ", i, " failed");
                            }),
        FatalError);
}

TEST(Runner, ZeroJobsResolvesToHardware)
{
    EXPECT_GE(analysis::resolveJobs(0), 1u);
    EXPECT_EQ(analysis::resolveJobs(5), 5u);
    EXPECT_GE(analysis::Runner(0).jobs(), 1u);
}

/** Emit one experiment's reports in @p format via N-job runner. */
std::string
emitWithJobs(const std::string &name, unsigned jobs,
             analysis::Format format)
{
    const analysis::Experiment *exp =
        analysis::Registry::instance().find(name);
    EXPECT_NE(exp, nullptr);
    const analysis::Runner runner(jobs);
    std::ostringstream os;
    analysis::emitExperiment(os, exp->name, exp->run(runner), format);
    return os.str();
}

TEST(Engine, JobCountDoesNotChangeOutput)
{
    // Cheap experiments only (no simulator): the smoke experiment plus
    // the analytic wire sweeps cover table/CSV/JSON emitters.
    for (const char *name :
         {"smoke_engine", "fig05_wire_energy", "table1_lambda"}) {
        SCOPED_TRACE(name);
        for (const auto format :
             {analysis::Format::Csv, analysis::Format::Json}) {
            const std::string serial =
                emitWithJobs(name, 1, format);
            const std::string parallel =
                emitWithJobs(name, 8, format);
            EXPECT_FALSE(serial.empty());
            EXPECT_EQ(serial, parallel);
        }
    }
}

TEST(Emitters, FormatsRenderAsExpected)
{
    Table table({"a", "b"});
    table.row().cell("x").cell(1.25, 2);
    table.row().cell("y").cell(3.0, 2);
    const analysis::Report report("Tiny \"report\"",
                                  std::move(table), {"note one"});

    std::ostringstream csv;
    analysis::emitReport(csv, report, analysis::Format::Csv);
    EXPECT_EQ(csv.str(), "a,b\nx,1.25\ny,3.00\n\n");

    std::ostringstream txt;
    analysis::emitReport(txt, report, analysis::Format::Table);
    EXPECT_NE(txt.str().find("# Tiny \"report\""), std::string::npos);
    EXPECT_NE(txt.str().find("note one"), std::string::npos);

    std::ostringstream json;
    analysis::emitExperiment(json, "tiny", {report},
                             analysis::Format::Json);
    const std::string j = json.str();
    EXPECT_NE(j.find("\"experiment\": \"tiny\""), std::string::npos);
    EXPECT_NE(j.find("\"Tiny \\\"report\\\"\""), std::string::npos);
    EXPECT_NE(j.find("[\"x\", \"1.25\"]"), std::string::npos);
    EXPECT_NE(j.find("\"notes\": [\"note one\"]"), std::string::npos);
}

TEST(Emitters, ParseFormatAndExtensions)
{
    EXPECT_EQ(analysis::parseFormat("table"), analysis::Format::Table);
    EXPECT_EQ(analysis::parseFormat("csv"), analysis::Format::Csv);
    EXPECT_EQ(analysis::parseFormat("json"), analysis::Format::Json);
    EXPECT_FALSE(analysis::parseFormat("yaml").has_value());
    EXPECT_STREQ(analysis::formatExtension(analysis::Format::Table),
                 "txt");
    EXPECT_STREQ(analysis::formatExtension(analysis::Format::Csv),
                 "csv");
    EXPECT_STREQ(analysis::formatExtension(analysis::Format::Json),
                 "json");
}

TEST(Registry, DuplicateRegistrationIsFatal)
{
    auto noop = [](const analysis::Runner &) {
        return std::vector<analysis::Report>{};
    };
    analysis::Registry::instance().add(
        analysis::Experiment{"test_dup_probe", "probe", noop});
    EXPECT_THROW(analysis::Registry::instance().add(
                     analysis::Experiment{"test_dup_probe", "again",
                                          noop}),
                 FatalError);
}

} // namespace
