#include "common/stats.h"

#include <gtest/gtest.h>

namespace predbus
{
namespace
{

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Percentile, MedianOddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Percentile, Extremes)
{
    std::vector<double> v{10.0, 20.0, 30.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(v, 1.0), 30.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, EmptyAndSingle)
{
    EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.9), 42.0);
}

TEST(MeanGeomean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace
} // namespace predbus
