/**
 * Parameterized machine-configuration sweeps: architectural results
 * must be identical under any legal timing configuration (functional
 * execution is timing-independent), while timing must respond to
 * resources in the physically sensible direction.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "sim/machine.h"
#include "workloads/workload.h"

namespace predbus::sim
{
namespace
{

SimConfig
configVariant(int variant)
{
    SimConfig cfg;
    switch (variant) {
      case 0:  // default 4-wide
        break;
      case 1:  // scalar in-order-ish
        cfg.fetch_width = cfg.decode_width = cfg.issue_width =
            cfg.commit_width = 1;
        cfg.ruu_size = 8;
        cfg.lsq_size = 4;
        cfg.int_alus = 1;
        cfg.fp_alus = 1;
        cfg.mem_ports = 1;
        break;
      case 2:  // wide machine, tiny caches
        cfg.fetch_width = cfg.decode_width = cfg.issue_width =
            cfg.commit_width = 8;
        cfg.ruu_size = 128;
        cfg.dl1.size_bytes = 1024;
        cfg.dl1.assoc = 1;
        cfg.il1.size_bytes = 1024;
        break;
      case 3:  // no L2, slow memory
        cfg.use_l2 = false;
        cfg.memory_latency = 200;
        break;
      case 4:  // tiny predictor, long redirect
        cfg.bpred.bimodal_entries = 16;
        cfg.bpred.btb_entries = 16;
        cfg.bpred.ras_entries = 0;
        cfg.mispredict_penalty = 10;
        break;
      case 5:  // deep but narrow
        cfg.fetch_width = 2;
        cfg.decode_width = 2;
        cfg.issue_width = 2;
        cfg.commit_width = 2;
        cfg.ruu_size = 256;
        cfg.lsq_size = 128;
        break;
      default:  // gshare front end
        cfg.bpred.kind = BpredKind::Gshare;
        cfg.bpred.history_bits = 10;
        break;
    }
    return cfg;
}

using ConfigParam = std::tuple<std::string, int>;

class MachineConfigSweep : public ::testing::TestWithParam<ConfigParam>
{
};

TEST_P(MachineConfigSweep, ArchitecturallyInvariant)
{
    const auto &[workload, variant] = GetParam();
    Machine machine(workloads::build(workload, 1),
                    configVariant(variant));
    const RunResult run = machine.run(100'000'000);
    ASSERT_TRUE(run.halted) << workload << " variant " << variant;
    EXPECT_EQ(run.output, workloads::reference(workload, 1))
        << workload << " variant " << variant;
    // Physical sanity.
    const double ipc = run.stats.ipc();
    EXPECT_GT(ipc, 0.0);
    EXPECT_LE(ipc, 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, MachineConfigSweep,
    ::testing::Combine(::testing::Values("compress", "go", "swim",
                                         "wave5"),
                       ::testing::Values(0, 1, 2, 3, 4, 5, 6)),
    [](const ::testing::TestParamInfo<ConfigParam> &info) {
        return std::get<0>(info.param) + "_v" +
               std::to_string(std::get<1>(info.param));
    });

TEST(MachineTiming, TinyCachesAreSlower)
{
    // Same width, only the cache sizes differ.
    const isa::Program p = workloads::build("mgrid", 1);
    SimConfig big;
    SimConfig tiny_caches;
    tiny_caches.dl1.size_bytes = 1024;
    tiny_caches.dl1.assoc = 1;
    tiny_caches.il1.size_bytes = 1024;
    tiny_caches.l2.size_bytes = 16 * 1024;
    Machine fast(p, big);
    Machine tiny(p, tiny_caches);
    const u64 c_fast = fast.run(100'000'000).stats.cycles;
    const u64 c_tiny = tiny.run(100'000'000).stats.cycles;
    EXPECT_GT(c_tiny, c_fast);
}

TEST(MachineTiming, SlowMemoryHurts)
{
    const isa::Program p = workloads::build("gcc", 1);
    SimConfig fast_mem;
    fast_mem.memory_latency = 20;
    SimConfig slow_mem;
    slow_mem.memory_latency = 400;
    Machine fast(p, fast_mem);
    Machine slow(p, slow_mem);
    EXPECT_LT(fast.run(100'000'000).stats.cycles,
              slow.run(100'000'000).stats.cycles);
}

TEST(MachineTiming, MispredictPenaltyVisible)
{
    // The alternating-branch kernel from test_machine, parameterized
    // over redirect penalty.
    const isa::Program p = workloads::build("m88ksim", 1);
    SimConfig cheap;
    cheap.mispredict_penalty = 0;
    SimConfig costly;
    costly.mispredict_penalty = 30;
    Machine a(p, cheap);
    Machine b(p, costly);
    const RunResult ra = a.run(100'000'000);
    const RunResult rb = b.run(100'000'000);
    ASSERT_TRUE(ra.halted);
    ASSERT_TRUE(rb.halted);
    EXPECT_EQ(ra.output, rb.output);
    EXPECT_LT(ra.stats.cycles, rb.stats.cycles);
}

TEST(MachineTiming, RegBusSamplingVariants)
{
    // Dispatch-order (default) and issue-order register-bus sampling
    // both produce one post per cycle at most, identical architectural
    // results, and generally different value sequences.
    const isa::Program p = workloads::build("swim", 1);
    SimConfig dispatch_cfg;
    SimConfig issue_cfg;
    issue_cfg.reg_bus_at_issue = true;
    Machine md(p, dispatch_cfg);
    Machine mi(p, issue_cfg);
    const RunResult rd = md.run(100'000'000);
    const RunResult ri = mi.run(100'000'000);
    ASSERT_TRUE(rd.halted);
    ASSERT_TRUE(ri.halted);
    EXPECT_EQ(rd.output, ri.output);
    EXPECT_EQ(rd.stats.cycles, ri.stats.cycles);
    for (std::size_t i = 1; i < rd.reg_bus.size(); ++i)
        EXPECT_LT(rd.reg_bus[i - 1].cycle, rd.reg_bus[i].cycle);
    for (std::size_t i = 1; i < ri.reg_bus.size(); ++i)
        EXPECT_LT(ri.reg_bus[i - 1].cycle, ri.reg_bus[i].cycle);
    EXPECT_NE(rd.reg_bus.values(), ri.reg_bus.values());
}

TEST(MachineTiming, BusTrafficScalesWithMemOps)
{
    // Address/memory bus events == executed loads + stores (plus one
    // extra beat per double transfer).
    Machine m(workloads::build("compress", 1));
    const RunResult r = m.run(100'000'000);
    ASSERT_TRUE(r.halted);
    EXPECT_EQ(r.addr_bus.size(), r.stats.loads + r.stats.stores);
    EXPECT_GE(r.mem_bus.size(), r.addr_bus.size());
}

} // namespace
} // namespace predbus::sim
