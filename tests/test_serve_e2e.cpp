/**
 * @file
 * End-to-end tests for the serving subsystem: a served session over a
 * real socket must be indistinguishable from the in-process codec
 * path — byte-identical wire states, decoded streams, checksums, and
 * operation counts — and the overload/desync/drain behaviors the
 * protocol promises must hold.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/suite.h"
#include "coding/factory.h"
#include "coding/session.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace predbus;
using serve::protocol::ErrCode;
using serve::protocol::MsgType;

namespace
{

/** Unique per-test unix socket path under the system temp dir. */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/predbus_e2e_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** Deterministic value stream with both random and strided phases so
 * dictionary, stride, and inversion codecs all exercise their hit and
 * miss paths. */
std::vector<Word>
testStream(std::size_t n)
{
    std::vector<Word> values = analysis::randomValues(n / 2, 0xE2E);
    for (std::size_t i = 0; values.size() < n; ++i) {
        // Strided addresses with periodic repeats.
        values.push_back(static_cast<Word>(0x1000'0000 + 16 * i));
        if (i % 7 == 0 && values.size() < n)
            values.push_back(values[values.size() / 2]);
    }
    values.resize(n);
    return values;
}

class ServeE2E : public ::testing::Test
{
  protected:
    serve::Server &
    startServer(serve::ServerOptions opt = {})
    {
        path = socketPath();
        opt.unix_path = path;
        server = std::make_unique<serve::Server>(opt, registry);
        return *server;
    }

    serve::Client
    connect()
    {
        return serve::Client::connectUnixSocket(path);
    }

    u64
    counterValue(const std::string &name)
    {
        return registry.counter(name).value();
    }

    s64
    gaugeValue(const std::string &name)
    {
        return registry.gauge(name).value();
    }

    obs::Registry registry;
    std::string path;
    std::unique_ptr<serve::Server> server;
};

void
expectOpsEqual(const coding::OpCounts &a, const coding::OpCounts &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.shifts, b.shifts);
    EXPECT_EQ(a.counter_incs, b.counter_incs);
    EXPECT_EQ(a.compares, b.compares);
    EXPECT_EQ(a.swaps, b.swaps);
    EXPECT_EQ(a.divisions, b.divisions);
    EXPECT_EQ(a.raw_sends, b.raw_sends);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.last_hits, b.last_hits);
}

} // namespace

// The core acceptance property: for every spec family the paper
// studies, a socket round trip is lossless and every piece of state
// the two paths expose (wire states, checksums, sequence numbers,
// per-session transition/op stats) is identical to the in-process
// codec path.
TEST_F(ServeE2E, SocketPathMatchesInProcessPath)
{
    startServer();
    const std::vector<Word> stream = testStream(4096);
    constexpr std::size_t kBatch = 256;

    for (const std::string spec :
         {"window:8", "ctx:16+4", "inv:2", "stride:4", "raw"}) {
        SCOPED_TRACE(spec);
        serve::Client client = connect();
        serve::ClientSession enc_remote = client.openOrThrow(spec);
        serve::ClientSession dec_remote = client.openOrThrow(spec);

        coding::CodecSession enc_local(spec);
        coding::CodecSession dec_local(spec);
        EXPECT_EQ(enc_remote.width(), enc_local.codec().width());

        std::vector<Word> decoded_all;
        for (std::size_t pos = 0; pos < stream.size();
             pos += kBatch) {
            const std::span<const Word> batch(stream.data() + pos,
                                              kBatch);

            // Server encode vs in-process encode: identical states.
            const auto remote = enc_remote.encode(batch);
            ASSERT_TRUE(remote.ok());
            std::vector<u64> local_states;
            enc_local.encodeBatch(batch, local_states);
            ASSERT_EQ(remote.data, local_states);
            EXPECT_EQ(remote.checksum, enc_local.checksum());

            // Server decode of those states: lossless round trip,
            // and identical to the in-process decoder.
            const auto decoded = dec_remote.decode(remote.data);
            ASSERT_TRUE(decoded.ok());
            std::vector<Word> local_words;
            dec_local.decodeBatch(local_states, local_words);
            ASSERT_EQ(decoded.data, local_words);
            ASSERT_EQ(std::vector<Word>(batch.begin(), batch.end()),
                      decoded.data);
            decoded_all.insert(decoded_all.end(),
                               decoded.data.begin(),
                               decoded.data.end());
        }
        EXPECT_EQ(decoded_all, stream);

        // Per-session stats over the wire match the local FSMs.
        const auto enc_stats = enc_remote.stats();
        EXPECT_EQ(enc_stats.seq, enc_local.seq());
        EXPECT_EQ(enc_stats.checksum, enc_local.checksum());
        EXPECT_EQ(enc_stats.epoch, 0u);
        expectOpsEqual(enc_stats.ops, enc_local.codec().ops());

        const auto dec_stats = dec_remote.stats();
        EXPECT_EQ(dec_stats.checksum, dec_local.checksum());
        expectOpsEqual(dec_stats.ops, dec_local.codec().ops());

        enc_remote.close();
        dec_remote.close();
    }

    EXPECT_GT(counterValue("serve.batches"), 0u);
    EXPECT_GT(counterValue("serve.words"), 0u);
}

TEST_F(ServeE2E, TcpRoundTrip)
{
    serve::ServerOptions opt;
    opt.tcp_port = 0;  // ephemeral
    path = socketPath();
    opt.unix_path = path;
    server = std::make_unique<serve::Server>(opt, registry);
    ASSERT_GT(server->tcpPort(), 0);

    serve::Client client = serve::Client::connectTcpSocket(
        "127.0.0.1", server->tcpPort());
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream = testStream(512);
    const auto encoded = session.encode(stream);
    ASSERT_TRUE(encoded.ok());

    coding::CodecSession local("window:8");
    std::vector<u64> expected;
    local.encodeBatch(stream, expected);
    EXPECT_EQ(encoded.data, expected);
}

// Forced desync: a batch with a corrupted checksum must be detected
// *before* the server FSMs advance, the session must refuse further
// batches, and RESYNC must restore it to a fresh-session state whose
// subsequent encodes match a fresh in-process reference.
TEST_F(ServeE2E, ForcedDesyncRecoversViaResync)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream = testStream(1024);
    const std::span<const Word> first(stream.data(), 256);
    const std::span<const Word> second(stream.data() + 256, 256);

    ASSERT_TRUE(session.encode(first).ok());

    // Poison: right seq, wrong checksum (a lost response would look
    // like this — the client's dictionary no longer matches).
    client.send(serve::protocol::makeEncode(
        session.id(), session.seq() + 1,
        session.checksum() ^ 0xDEAD, second));
    serve::protocol::Frame response = client.recv();
    ErrCode code{};
    std::string message;
    ASSERT_TRUE(serve::protocol::parseError(response, code, message));
    EXPECT_EQ(code, ErrCode::Desync);

    // The session is now latched desynced: even a well-formed batch
    // is refused until RESYNC.
    const auto refused = session.encode(second);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.error->code, ErrCode::Desync);

    // Recovery handshake.
    const u32 epoch = session.resync();
    EXPECT_EQ(epoch, 1u);
    EXPECT_EQ(session.seq(), 0u);

    // Post-resync encodes match a *fresh* in-process session.
    const auto after = session.encode(second);
    ASSERT_TRUE(after.ok());
    coding::CodecSession fresh("window:8");
    std::vector<u64> expected;
    fresh.encodeBatch(second, expected);
    EXPECT_EQ(after.data, expected);
    EXPECT_EQ(after.checksum, fresh.checksum());

    const auto stats = session.stats();
    EXPECT_EQ(stats.epoch, 1u);
    EXPECT_EQ(counterValue("serve.desyncs"), 1u);
    EXPECT_EQ(counterValue("serve.resyncs"), 1u);
}

// Overload: with a one-slot queue and a single worker, pipelining a
// slow batch followed by a burst must shed load with explicit
// OVERLOADED errors — and the server must keep running.
TEST_F(ServeE2E, OverloadShedsWithExplicitRejects)
{
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.queue_capacity = 1;
    opt.max_pending = 1;
    startServer(opt);

    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");

    // One protocol-max batch to occupy the worker...
    const std::vector<Word> big =
        testStream(serve::protocol::kMaxBatchWords);
    client.send(serve::protocol::makeEncode(
        session.id(), 1, session.checksum(), big));
    // ...then a pipelined burst the one-deep queue cannot hold.
    constexpr int kBurst = 8;
    const std::vector<Word> small = testStream(16);
    for (int i = 0; i < kBurst; ++i) {
        client.send(serve::protocol::makeEncode(
            session.id(), static_cast<u64>(2 + i), 0, small));
    }

    int ok = 0;
    int overloaded = 0;
    int desync = 0;
    for (int i = 0; i < 1 + kBurst; ++i) {
        const serve::protocol::Frame frame = client.recv();
        if (frame.hdr.type == static_cast<u8>(MsgType::EncodeOk)) {
            ++ok;
            continue;
        }
        ErrCode code{};
        std::string message;
        ASSERT_TRUE(
            serve::protocol::parseError(frame, code, message));
        if (code == ErrCode::Overloaded)
            ++overloaded;
        else if (code == ErrCode::Desync)
            ++desync;
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(overloaded, 1);
    EXPECT_EQ(ok + overloaded + desync, 1 + kBurst);
    EXPECT_EQ(counterValue("serve.rejects"),
              static_cast<u64>(overloaded));

    // The server survived the burst: recover and keep encoding.
    session.resync();
    EXPECT_TRUE(session.encode(small).ok());
}

// Graceful drain: queued batches complete, their responses arrive,
// then connections close and the listener goes away.
TEST_F(ServeE2E, DrainCompletesInFlightBatches)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> batch = testStream(4096);

    client.send(serve::protocol::makeEncode(
        session.id(), 1, session.checksum(), batch));
    // Give the reader a moment to queue the frame, then drain.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server->beginDrain();

    // The in-flight batch's response still arrives, and it is the
    // same answer an undrained server would have produced.
    const serve::protocol::Frame response = client.recv();
    ASSERT_EQ(response.hdr.type,
              static_cast<u8>(MsgType::EncodeOk));
    u64 checksum = 0;
    std::vector<u64> states;
    ASSERT_TRUE(
        serve::protocol::parseEncodeOk(response, checksum, states));
    coding::CodecSession local("window:8");
    std::vector<u64> expected;
    local.encodeBatch(batch, expected);
    EXPECT_EQ(states, expected);

    server->waitDrained();
    EXPECT_EQ(gaugeValue("serve.connections_active"), 0);
    EXPECT_EQ(gaugeValue("serve.sessions_active"), 0);
    EXPECT_EQ(gaugeValue("serve.queue_depth"), 0);
    server->stop();

    // The listener is gone: new connections are refused.
    EXPECT_THROW(serve::Client::connectUnixSocket(path), FatalError);
}

// A second connection's sessions are independent: same spec, same
// stream, same states — interleaved with another client's traffic.
TEST_F(ServeE2E, ConnectionsAreIsolated)
{
    startServer();
    serve::Client a = connect();
    serve::Client b = connect();
    serve::ClientSession sa = a.openOrThrow("stride:4");
    serve::ClientSession sb = b.openOrThrow("stride:4");

    const std::vector<Word> stream = testStream(512);
    const auto ra1 = sa.encode(std::span(stream).first(128));
    const auto rb1 = sb.encode(std::span(stream).first(128));
    const auto ra2 = sa.encode(std::span(stream).subspan(128, 128));
    const auto rb2 = sb.encode(std::span(stream).subspan(128, 128));
    ASSERT_TRUE(ra1.ok() && rb1.ok() && ra2.ok() && rb2.ok());
    EXPECT_EQ(ra1.data, rb1.data);
    EXPECT_EQ(ra2.data, rb2.data);
    EXPECT_EQ(sa.checksum(), sb.checksum());
}
