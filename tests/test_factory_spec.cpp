/**
 * @file
 * Codec spec-string parsing (coding::makeFromSpec): every documented
 * form builds a working, losslessly-decodable transcoder, and
 * malformed specs fail with a clear FatalError instead of silently
 * building the wrong scheme.
 */

#include <gtest/gtest.h>

#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/log.h"
#include "common/rng.h"

using namespace predbus;

namespace
{

/** Mixed predictable/random traffic, masked to @p bits. */
std::vector<Word>
stream(std::size_t n, unsigned bits)
{
    const Word mask = bits >= 32
                          ? ~Word{0}
                          : static_cast<Word>((u64{1} << bits) - 1);
    Rng rng(1234);
    std::vector<Word> out(n);
    for (std::size_t i = 0; i < n; ++i) {
        out[i] = (rng.chance(0.5) ? static_cast<Word>(i / 3)
                                  : rng.next32()) &
                 mask;
    }
    return out;
}

struct SpecCase
{
    const char *spec;
    const char *expect_name;  ///< nullptr: only check non-empty
    unsigned value_bits = 32;
};

TEST(FactorySpec, DocumentedFormsRoundTrip)
{
    const SpecCase cases[] = {
        {"raw", "raw"},
        {"window:8", "window8"},
        {"window:8:ca", "window8-ca"},
        {"window:64", "window64"},
        {"ctx:28+8", "ctx-value28+8"},
        {"ctx:16+4:trans", "ctx-trans16+4"},
        {"ctx:16+8:d1024", "ctx-value16+8"},
        {"stride:4", nullptr},
        {"stride:1", nullptr},
        {"inv:2", nullptr},
        {"inv:8:l1.5", nullptr},
        {"pbi:4", nullptr},
        {"wze:4", nullptr},
        // The spatial coder only accepts values within its input
        // width, so drive it with masked traffic.
        {"spatial:8", nullptr, 8},
    };

    for (const SpecCase &c : cases) {
        SCOPED_TRACE(c.spec);
        auto codec = coding::makeFromSpec(c.spec);
        ASSERT_NE(codec, nullptr);
        if (c.expect_name)
            EXPECT_EQ(codec->name(), c.expect_name);
        else
            EXPECT_FALSE(codec->name().empty());
        EXPECT_GT(codec->width(), 0u);

        // verify_decode panics on any decode mismatch, so a clean
        // evaluate proves the spec built a lossless transcoder.
        const std::vector<Word> values = stream(2000, c.value_bits);
        const coding::CodingResult r =
            coding::evaluate(*codec, values, /*verify_decode=*/true);
        EXPECT_EQ(r.words, values.size());
    }
}

TEST(FactorySpec, MalformedSpecsThrowFatalError)
{
    const char *bad[] = {
        "",              // no scheme at all
        "window",        // missing entry count
        "window:",       // empty entry count
        "window:x",      // non-numeric
        "window:8:bogus",// unknown option
        "window:8:ca:x", // too many parts
        "raw:1",         // raw takes no arguments
        "ctx",           // missing sizes
        "ctx:bogus",     // no T+S shape
        "ctx:8",         // missing '+'
        "ctx:16+x",      // non-numeric SR size
        "ctx:16+8:fast", // unknown option
        "stride",        // missing count
        "stride:4:5",    // too many parts
        "inv:2:x1.5",    // option must start with 'l'
        "inv:2:l",       // empty lambda
        "pbi",           // missing group count
        "wze:4:5",       // too many parts
        "spatial",       // missing bit count
        "huffman:8",     // unknown scheme
    };
    for (const char *spec : bad) {
        SCOPED_TRACE(spec);
        EXPECT_THROW(coding::makeFromSpec(spec), FatalError);
    }
}

TEST(FactorySpec, ContextOptionsAreApplied)
{
    // Transition flag and divide period parse into distinct codecs:
    // run them over the same stream and expect the transition-based
    // variant to differ from the value-based one.
    const std::vector<Word> values = stream(4000, 32);

    auto value_based = coding::makeFromSpec("ctx:16+8");
    auto trans_based = coding::makeFromSpec("ctx:16+8:trans");
    const auto rv = coding::evaluate(*value_based, values, true);
    const auto rt = coding::evaluate(*trans_based, values, true);
    EXPECT_NE(rv.coded.tau + rv.coded.kappa,
              rt.coded.tau + rt.coded.kappa);
}

} // namespace
