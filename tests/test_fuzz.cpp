/**
 * Property fuzzing: every codec configuration must round-trip every
 * stream, and its coded wire stream must always be interpretable.
 * These are the library's load-bearing invariants — a transcoder that
 * ever decodes the wrong value silently corrupts the bus.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/rng.h"

namespace predbus::coding
{
namespace
{

/** Stream generators keyed by kind. */
std::vector<Word>
makeStream(int kind, u64 seed, std::size_t n)
{
    Rng rng(seed);
    std::vector<Word> out;
    out.reserve(n);
    Word cur = 0;
    switch (kind) {
      case 0:  // uniform random
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(rng.next32());
        break;
      case 1:  // small working set
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(static_cast<Word>(rng.below(12)) *
                          0x01010101u);
        break;
      case 2:  // strided with jitter
        for (std::size_t i = 0; i < n; ++i) {
            cur += 8 + (rng.chance(0.05) ? rng.next32() % 256 : 0);
            out.push_back(cur);
        }
        break;
      case 3:  // bursty repeats
        for (std::size_t i = 0; i < n; ++i) {
            if (rng.chance(0.2))
                cur = rng.next32();
            out.push_back(cur);
        }
        break;
      case 4:  // zipf-popular values
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(static_cast<Word>(rng.zipf(1000, 1.2)) *
                          0x9e3779b9u);
        break;
      default:  // alternating extremes
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(i % 2 ? 0xffffffffu : 0u);
        break;
    }
    return out;
}

using FuzzParam = std::tuple<std::string, int>;

class CodecFuzz : public ::testing::TestWithParam<FuzzParam>
{
};

TEST_P(CodecFuzz, RoundTripsAndStaysDecodable)
{
    const auto &[spec, stream_kind] = GetParam();
    const auto values =
        makeStream(stream_kind, 0xF00D + stream_kind, 8000);
    auto codec = makeFromSpec(spec);
    // evaluate() with verify panics on any decode mismatch.
    const CodingResult r = evaluate(*codec, values, true);
    EXPECT_EQ(r.ops.cycles, values.size());
    // Sanity: a coded bus can't do better than zero events.
    EXPECT_GE(r.coded.cost(1.0), 0.0);
}

TEST_P(CodecFuzz, ResetRestoresDeterminism)
{
    const auto &[spec, stream_kind] = GetParam();
    const auto values =
        makeStream(stream_kind, 0xBEEF + stream_kind, 3000);
    auto codec = makeFromSpec(spec);
    const CodingResult first = evaluate(*codec, values, true);
    const CodingResult second = evaluate(*codec, values, true);
    EXPECT_EQ(first.coded.tau, second.coded.tau);
    EXPECT_EQ(first.coded.kappa, second.coded.kappa);
    EXPECT_EQ(first.ops.hits, second.ops.hits);
    EXPECT_EQ(first.ops.raw_sends, second.ops.raw_sends);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CodecFuzz,
    ::testing::Combine(
        ::testing::Values("window:1", "window:8", "window:64",
                          "window:8:ca", "ctx:4+1", "ctx:28+8",
                          "ctx:64+16:d64", "ctx:16+8:trans",
                          "stride:1", "stride:16", "inv:2", "inv:64",
                          "raw"),
        ::testing::Values(0, 1, 2, 3, 4, 5)),
    [](const ::testing::TestParamInfo<FuzzParam> &info) {
        std::string name = std::get<0>(info.param) + "_s" +
                           std::to_string(std::get<1>(info.param));
        for (char &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name;
    });

/** Spatial is fuzzed separately (its inputs must fit its width). */
TEST(CodecFuzzSpatial, AllStreamKinds)
{
    for (int kind = 0; kind < 6; ++kind) {
        auto values = makeStream(kind, 0xCAFE + kind, 5000);
        for (auto &v : values)
            v &= 0x3ff;
        auto codec = makeFromSpec("spatial:10");
        EXPECT_NO_THROW(evaluate(*codec, values, true)) << kind;
    }
}

} // namespace
} // namespace predbus::coding
