#include "sim/functional.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/log.h"
#include "isa/assembler.h"

namespace predbus::sim
{
namespace
{

using namespace isa;
using namespace isa::regs;

/** Assemble, load, and run a DSL program; return final state pieces. */
struct RunFixture
{
    Memory mem;
    ArchState arch{mem};

    explicit RunFixture(Asm &a, u64 max_steps = 100000)
    {
        Program p = a.finish();
        mem.load(p);
        arch.pc = p.entry;
        arch.run(max_steps);
    }
};

TEST(Functional, ArithmeticBasics)
{
    Asm a("t");
    a.li(r1, 20);
    a.li(r2, 3);
    a.add(r3, r1, r2);
    a.sub(r4, r1, r2);
    a.mul(r5, r1, r2);
    a.div(r6, r1, r2);
    a.rem(r7, r1, r2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 23u);
    EXPECT_EQ(f.arch.readInt(4), 17u);
    EXPECT_EQ(f.arch.readInt(5), 60u);
    EXPECT_EQ(f.arch.readInt(6), 6u);
    EXPECT_EQ(f.arch.readInt(7), 2u);
    EXPECT_TRUE(f.arch.halted());
}

TEST(Functional, NegativeDivRem)
{
    Asm a("t");
    a.li(r1, static_cast<u32>(-7));
    a.li(r2, 2);
    a.div(r3, r1, r2);
    a.rem(r4, r1, r2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(static_cast<s32>(f.arch.readInt(3)), -3);
    EXPECT_EQ(static_cast<s32>(f.arch.readInt(4)), -1);
}

TEST(Functional, DivByZeroDefined)
{
    Asm a("t");
    a.li(r1, 9);
    a.div(r2, r1, r0);
    a.rem(r3, r1, r0);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(2), 0u);
    EXPECT_EQ(f.arch.readInt(3), 9u);
}

TEST(Functional, DivOverflowDefined)
{
    Asm a("t");
    a.li(r1, 0x80000000u);
    a.li(r2, static_cast<u32>(-1));
    a.div(r3, r1, r2);
    a.rem(r4, r1, r2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 0x80000000u);
    EXPECT_EQ(f.arch.readInt(4), 0u);
}

TEST(Functional, LogicAndShifts)
{
    Asm a("t");
    a.li(r1, 0xf0f0);
    a.li(r2, 0x0ff0);
    a.and_(r3, r1, r2);
    a.or_(r4, r1, r2);
    a.xor_(r5, r1, r2);
    a.nor(r6, r1, r2);
    a.sll(r7, r1, 4);
    a.srl(r8, r1, 4);
    a.li(r9, 0x80000000u);
    a.sra(r10, r9, 4);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 0x00f0u);
    EXPECT_EQ(f.arch.readInt(4), 0xfff0u);
    EXPECT_EQ(f.arch.readInt(5), 0xff00u);
    EXPECT_EQ(f.arch.readInt(6), ~0xfff0u);
    EXPECT_EQ(f.arch.readInt(7), 0xf0f00u);
    EXPECT_EQ(f.arch.readInt(8), 0x0f0fu);
    EXPECT_EQ(f.arch.readInt(10), 0xf8000000u);
}

TEST(Functional, VariableShifts)
{
    Asm a("t");
    a.li(r1, 1);
    a.li(r2, 33);       // shift amounts use low 5 bits: 33 & 31 = 1
    a.sllv(r3, r1, r2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 2u);
}

TEST(Functional, SetLessThan)
{
    Asm a("t");
    a.li(r1, static_cast<u32>(-1));
    a.li(r2, 1);
    a.slt(r3, r1, r2);   // -1 < 1 signed
    a.sltu(r4, r1, r2);  // 0xffffffff < 1 unsigned: no
    a.slti(r5, r1, 0);
    a.sltiu(r6, r2, 2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 1u);
    EXPECT_EQ(f.arch.readInt(4), 0u);
    EXPECT_EQ(f.arch.readInt(5), 1u);
    EXPECT_EQ(f.arch.readInt(6), 1u);
}

TEST(Functional, R0AlwaysZero)
{
    Asm a("t");
    a.li(r1, 55);
    a.add(r0, r1, r1);  // write to r0 discarded
    a.move(r2, r0);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(0), 0u);
    EXPECT_EQ(f.arch.readInt(2), 0u);
}

TEST(Functional, MemoryOps)
{
    Asm a("t");
    a.li(r1, 0x100000);
    a.li(r2, 0xdeadbeef);
    a.sw(r2, r1, 0);
    a.lw(r3, r1, 0);
    a.lb(r4, r1, 3);    // 0xde sign-extends
    a.lbu(r5, r1, 3);
    a.lh(r6, r1, 0);    // 0xbeef sign-extends
    a.lhu(r7, r1, 0);
    a.sb(r2, r1, 4);    // low byte 0xef
    a.lbu(r8, r1, 4);
    a.sh(r2, r1, 8);
    a.lhu(r9, r1, 8);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readInt(3), 0xdeadbeefu);
    EXPECT_EQ(f.arch.readInt(4), 0xffffffdeu);
    EXPECT_EQ(f.arch.readInt(5), 0xdeu);
    EXPECT_EQ(f.arch.readInt(6), 0xffffbeefu);
    EXPECT_EQ(f.arch.readInt(7), 0xbeefu);
    EXPECT_EQ(f.arch.readInt(8), 0xefu);
    EXPECT_EQ(f.arch.readInt(9), 0xbeefu);
}

TEST(Functional, LoopAndBranches)
{
    // Sum 1..10.
    Asm a("t");
    a.li(r1, 10);
    a.li(r2, 0);
    a.label("loop");
    a.add(r2, r2, r1);
    a.addi(r1, r1, -1);
    a.bgtz(r1, "loop");
    a.out(r2);
    a.halt();
    RunFixture f(a);
    ASSERT_EQ(f.arch.output().size(), 1u);
    EXPECT_EQ(f.arch.output()[0], 55u);
}

TEST(Functional, AllBranchKinds)
{
    Asm a("t");
    a.li(r1, 5);
    a.li(r2, 5);
    a.li(r10, 0);
    a.beq(r1, r2, "b1");
    a.j("fail");
    a.label("b1");
    a.addi(r10, r10, 1);
    a.bne(r1, r0, "b2");
    a.j("fail");
    a.label("b2");
    a.addi(r10, r10, 1);
    a.blez(r0, "b3");
    a.j("fail");
    a.label("b3");
    a.addi(r10, r10, 1);
    a.bgtz(r1, "b4");
    a.j("fail");
    a.label("b4");
    a.addi(r10, r10, 1);
    a.li(r3, static_cast<u32>(-2));
    a.bltz(r3, "b5");
    a.j("fail");
    a.label("b5");
    a.addi(r10, r10, 1);
    a.bgez(r0, "b6");
    a.j("fail");
    a.label("b6");
    a.addi(r10, r10, 1);
    a.out(r10);
    a.halt();
    a.label("fail");
    a.out(r0);
    a.halt();
    RunFixture f(a);
    ASSERT_EQ(f.arch.output().size(), 1u);
    EXPECT_EQ(f.arch.output()[0], 6u);
}

TEST(Functional, JalAndJr)
{
    Asm a("t");
    a.li(r4, 7);
    a.jal("double_it");
    a.out(r4);
    a.halt();
    a.label("double_it");
    a.add(r4, r4, r4);
    a.jr(r31);
    RunFixture f(a);
    ASSERT_EQ(f.arch.output().size(), 1u);
    EXPECT_EQ(f.arch.output()[0], 14u);
}

TEST(Functional, JalrLinksAndJumps)
{
    // Lay out the callee first so its address is known for la().
    Asm a("t");
    a.j("main");
    a.label("triple");
    a.mul(r4, r4, r3);
    a.jr(r31);
    a.label("main");
    a.li(r3, 3);
    a.li(r4, 5);
    a.la(r5, a.labelAddr("triple"));
    a.jalr(r31, r5);
    a.out(r4);
    a.halt();
    RunFixture f(a);
    ASSERT_EQ(f.arch.output().size(), 1u);
    EXPECT_EQ(f.arch.output()[0], 15u);
    // r31 holds the link address (instruction after jalr).
    EXPECT_NE(f.arch.readInt(31), 0u);
}

TEST(Functional, FloatingPoint)
{
    Asm a("t");
    a.fli(f1, 2.5, r9);
    a.fli(f2, 4.0, r9);
    a.fadd(f3, f1, f2);
    a.fsub(f4, f2, f1);
    a.fmul(f5, f1, f2);
    a.fdiv(f6, f2, f1);
    a.fsqrt(f7, f2);
    a.fneg(f8, f1);
    a.fabs_(f9, f8);
    a.fmin(f10, f1, f2);
    a.fmax(f11, f1, f2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readFp(3), 6.5);
    EXPECT_EQ(f.arch.readFp(4), 1.5);
    EXPECT_EQ(f.arch.readFp(5), 10.0);
    EXPECT_EQ(f.arch.readFp(6), 1.6);
    EXPECT_EQ(f.arch.readFp(7), 2.0);
    EXPECT_EQ(f.arch.readFp(8), -2.5);
    EXPECT_EQ(f.arch.readFp(9), 2.5);
    EXPECT_EQ(f.arch.readFp(10), 2.5);
    EXPECT_EQ(f.arch.readFp(11), 4.0);
}

TEST(Functional, FpConversionsAndCompares)
{
    Asm a("t");
    a.li(r1, static_cast<u32>(-3));
    a.cvtif(f1, r1);
    a.cvtfi(r2, f1);
    a.fli(f2, 1.0, r9);
    a.fli(f3, 2.0, r9);
    a.fclt(r3, f2, f3);
    a.fcle(r4, f3, f3);
    a.fceq(r5, f2, f3);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readFp(1), -3.0);
    EXPECT_EQ(static_cast<s32>(f.arch.readInt(2)), -3);
    EXPECT_EQ(f.arch.readInt(3), 1u);
    EXPECT_EQ(f.arch.readInt(4), 1u);
    EXPECT_EQ(f.arch.readInt(5), 0u);
}

TEST(Functional, FpLoadStore)
{
    Asm a("t");
    a.li(r1, 0x100000);
    a.fli(f1, 123.456, r9);
    a.fsd(f1, r1, 0);
    a.fld(f2, r1, 0);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(f.arch.readFp(2), 123.456);
    EXPECT_EQ(f.mem.readDouble(0x100000), 123.456);
}

TEST(Functional, ExecInfoMemoryFields)
{
    Asm a("t");
    a.li(r1, 0x100000);
    a.li(r2, 0xabcd);
    a.sw(r2, r1, 4);
    a.halt();
    Program p = a.finish();
    Memory mem;
    mem.load(p);
    ArchState arch(mem);
    arch.pc = p.entry;
    arch.step();  // li r1 (one addi? 0x100000 needs lui+ori)
    // Step through until the store executes.
    ExecInfo info;
    for (int i = 0; i < 10; ++i) {
        info = arch.step();
        if (info.is_mem)
            break;
    }
    EXPECT_TRUE(info.is_mem);
    EXPECT_EQ(info.mem_addr, 0x100004u);
    EXPECT_EQ(info.mem_lo, 0xabcdu);
    EXPECT_FALSE(info.mem_is_double);
}

TEST(Functional, ExecInfoIntOperandTracking)
{
    Asm a("t");
    a.li(r1, 77);
    a.add(r2, r1, r1);
    a.halt();
    Program p = a.finish();
    Memory mem;
    mem.load(p);
    ArchState arch(mem);
    arch.pc = p.entry;
    // The port drives r0 reads too (li is addi rt, r0, imm): the bus
    // sees the zero, as in real hardware.
    const ExecInfo li_info = arch.step();
    EXPECT_TRUE(li_info.has_int_operand);
    EXPECT_EQ(li_info.int_operand, 0u);
    const ExecInfo add_info = arch.step();
    EXPECT_TRUE(add_info.has_int_operand);
    EXPECT_EQ(add_info.int_operand, 77u);
}

TEST(Functional, CvtfiClampsAndNan)
{
    Asm a("t");
    a.fli(f1, 1e20, r9);
    a.cvtfi(r1, f1);
    a.fli(f2, -1e20, r9);
    a.cvtfi(r2, f2);
    a.halt();
    RunFixture f(a);
    EXPECT_EQ(static_cast<s32>(f.arch.readInt(1)),
              std::numeric_limits<s32>::max());
    EXPECT_EQ(static_cast<s32>(f.arch.readInt(2)),
              std::numeric_limits<s32>::min());
}

TEST(Functional, IllegalInstructionFatal)
{
    Memory mem;
    mem.write32(0x1000, 0xfc000000u);  // primary opcode 63: illegal
    ArchState arch(mem);
    arch.pc = 0x1000;
    EXPECT_THROW(arch.step(), FatalError);
}

TEST(Functional, StepAfterHaltPanics)
{
    Asm a("t");
    a.halt();
    Program p = a.finish();
    Memory mem;
    mem.load(p);
    ArchState arch(mem);
    arch.pc = p.entry;
    arch.step();
    EXPECT_TRUE(arch.halted());
    EXPECT_THROW(arch.step(), PanicError);
}

} // namespace
} // namespace predbus::sim
