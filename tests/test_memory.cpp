#include "sim/memory.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace predbus::sim
{
namespace
{

TEST(Memory, DefaultZero)
{
    Memory m;
    EXPECT_EQ(m.read8(0), 0);
    EXPECT_EQ(m.read32(0x12345678), 0u);
    EXPECT_EQ(m.pageCount(), 0u);
}

TEST(Memory, ByteRoundTrip)
{
    Memory m;
    m.write8(100, 0xab);
    EXPECT_EQ(m.read8(100), 0xab);
    EXPECT_EQ(m.read8(101), 0);
}

TEST(Memory, WordLittleEndian)
{
    Memory m;
    m.write32(0x1000, 0x04030201);
    EXPECT_EQ(m.read8(0x1000), 0x01);
    EXPECT_EQ(m.read8(0x1001), 0x02);
    EXPECT_EQ(m.read8(0x1002), 0x03);
    EXPECT_EQ(m.read8(0x1003), 0x04);
    EXPECT_EQ(m.read16(0x1000), 0x0201);
    EXPECT_EQ(m.read16(0x1002), 0x0403);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    const Addr boundary = Memory::kPageSize - 2;
    m.write32(boundary, 0xdeadbeef);
    EXPECT_EQ(m.read32(boundary), 0xdeadbeefu);
    EXPECT_EQ(m.pageCount(), 2u);
}

TEST(Memory, Word64AndDouble)
{
    Memory m;
    m.write64(0x2000, 0x1122334455667788ull);
    EXPECT_EQ(m.read64(0x2000), 0x1122334455667788ull);
    EXPECT_EQ(m.read32(0x2000), 0x55667788u);
    EXPECT_EQ(m.read32(0x2004), 0x11223344u);

    m.writeDouble(0x3000, 3.14159);
    EXPECT_EQ(m.readDouble(0x3000), 3.14159);
}

TEST(Memory, HighAddresses)
{
    Memory m;
    m.write32(0xfffffff0u, 42);
    EXPECT_EQ(m.read32(0xfffffff0u), 42u);
}

TEST(Memory, LoadProgram)
{
    using namespace isa;
    using namespace isa::regs;
    Asm a("t", 0x1000);
    a.addi(r1, r0, 7);
    a.halt();
    Program p = a.finish();
    p.addWords(0x100000, {11, 22});

    Memory m;
    m.load(p);
    EXPECT_EQ(m.read32(0x1000), p.code[0]);
    EXPECT_EQ(m.read32(0x1004), p.code[1]);
    EXPECT_EQ(m.read32(0x100000), 11u);
    EXPECT_EQ(m.read32(0x100004), 22u);
}

} // namespace
} // namespace predbus::sim
