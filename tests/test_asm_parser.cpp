#include "isa/asm_parser.h"

#include <gtest/gtest.h>

#include "common/log.h"
#include "isa/isa.h"

namespace predbus::isa
{
namespace
{

TEST(AsmParser, BasicProgram)
{
    const Program p = assembleText(R"(
        # simple loop
        li r1, 3
        loop:
        addi r2, r2, 10
        addi r1, r1, -1
        bgtz r1, loop
        out r2
        halt
    )");
    ASSERT_EQ(p.code.size(), 6u);
    EXPECT_EQ(decode(p.code[0])->op, Opcode::ADDI);
    const auto br = decode(p.code[3]);
    EXPECT_EQ(br->op, Opcode::BGTZ);
    EXPECT_EQ(br->imm, -3);
}

TEST(AsmParser, LabelOnSameLine)
{
    const Program p = assembleText("top: nop\n j top\n");
    ASSERT_EQ(p.code.size(), 2u);
    EXPECT_EQ(decode(p.code[1])->op, Opcode::J);
}

TEST(AsmParser, MemoryOperands)
{
    const Program p = assembleText(R"(
        lw r1, 8(r2)
        sw r1, -4(r3)
        fld f1, 16(r4)
        fsd f1, 0(r4)
        halt
    )");
    EXPECT_EQ(disassemble(*decode(p.code[0])), "lw r1, 8(r2)");
    EXPECT_EQ(disassemble(*decode(p.code[1])), "sw r1, -4(r3)");
    EXPECT_EQ(disassemble(*decode(p.code[2])), "fld f1, 16(r4)");
    EXPECT_EQ(disassemble(*decode(p.code[3])), "fsd f1, 0(r4)");
}

TEST(AsmParser, DataDirectives)
{
    const Program p = assembleText(R"(
        .data 0x200000
        .word 1, 2, 3
        .double 1.5
        .space 8
        .text
        halt
    )");
    ASSERT_EQ(p.data.size(), 1u);
    EXPECT_EQ(p.data[0].base, 0x200000u);
    EXPECT_EQ(p.data[0].bytes.size(), 12u + 8u + 8u);
    EXPECT_EQ(p.data[0].bytes[0], 1);
    EXPECT_EQ(p.data[0].bytes[4], 2);
}

TEST(AsmParser, HexAndNegativeNumbers)
{
    const Program p = assembleText("li r1, 0xff\n addi r2, r1, -128\n");
    EXPECT_EQ(decode(p.code[0])->imm, 0xff);
    EXPECT_EQ(decode(p.code[1])->imm, -128);
}

TEST(AsmParser, FpOps)
{
    const Program p = assembleText(R"(
        fadd f1, f2, f3
        cvtif f4, r5
        cvtfi r6, f7
        fclt r8, f9, f10
        halt
    )");
    EXPECT_EQ(disassemble(*decode(p.code[0])), "fadd f1, f2, f3");
    EXPECT_EQ(disassemble(*decode(p.code[1])), "cvtif f4, r5");
    EXPECT_EQ(disassemble(*decode(p.code[2])), "cvtfi r6, f7");
    EXPECT_EQ(disassemble(*decode(p.code[3])), "fclt r8, f9, f10");
}

TEST(AsmParser, CommentsAndBlankLines)
{
    const Program p = assembleText(R"(

        # full line comment
        nop ; trailing comment
        nop # other comment style

        halt
    )");
    EXPECT_EQ(p.code.size(), 3u);
}

TEST(AsmParser, Errors)
{
    EXPECT_THROW(assembleText("bogus r1, r2\n"), FatalError);
    EXPECT_THROW(assembleText("add r1, r2\n"), FatalError);
    EXPECT_THROW(assembleText("add r1, r2, f3\n"), FatalError);
    EXPECT_THROW(assembleText("lw r1, 4(f2)\n"), FatalError);
    EXPECT_THROW(assembleText("li r99, 0\n"), FatalError);
    EXPECT_THROW(assembleText("li r1, zzz\n"), FatalError);
    EXPECT_THROW(assembleText(".word 1\n"), FatalError);
    EXPECT_THROW(assembleText(".bogus\n"), FatalError);
    EXPECT_THROW(assembleText("j nowhere\n"), FatalError);
}

TEST(AsmParser, DisassembleReassembleRoundTrip)
{
    // Disassembler output must be legal assembler input producing the
    // identical encoding (for label-free instructions).
    const Program p1 = assembleText(R"(
        add r1, r2, r3
        sll r4, r5, 7
        lw r6, 20(r7)
        fadd f8, f9, f10
        fsd f1, -16(r2)
        sltiu r3, r4, 99
        halt
    )");
    std::string src;
    for (u32 w : p1.code)
        src += disassemble(*decode(w)) + "\n";
    const Program p2 = assembleText(src);
    EXPECT_EQ(p1.code, p2.code);
}

} // namespace
} // namespace predbus::isa
