/**
 * Statistical character of the workload bus traces — the properties
 * the paper's §4.2 measurements (Figs 7-8) rely on. These pin down
 * the traffic realism the coding results depend on: hot value sets,
 * small-window locality, and the INT/FP contrast.
 */

#include <gtest/gtest.h>

#include "analysis/suite.h"
#include "sim/machine.h"
#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "trace/trace_stats.h"
#include "workloads/workload.h"

namespace predbus
{
namespace
{

analysis::SuiteOptions
testOptions()
{
    analysis::SuiteOptions opt;
    opt.cycles = 60'000;
    opt.cache_dir = "/tmp/predbus_character_traces";
    return opt;
}

TEST(TraceCharacter, RegisterTracesHaveSmallWindowLocality)
{
    // Paper Fig 8: even a 10-entry window sees far fewer unique
    // values than a random stream would.
    for (const char *wl : {"gcc", "swim", "go", "applu"}) {
        const auto &values = analysis::busValues(
            wl, trace::BusKind::Register, testOptions());
        ASSERT_GT(values.size(), 10'000u) << wl;
        const double unique10 =
            trace::windowUniqueFraction(values, 10);
        EXPECT_LT(unique10, 0.95) << wl;
        EXPECT_GT(unique10, 0.05) << wl;
    }
}

TEST(TraceCharacter, IntTracesHaveHotValues)
{
    // Paper Fig 7: for INT register traffic a few hundred uniques
    // cover a large fraction of the trace.
    const auto &values = analysis::busValues(
        "gcc", trace::BusKind::Register, testOptions());
    const auto cdf = trace::uniqueValueCdf(values);
    ASSERT_GT(cdf.size(), 100u);
    EXPECT_GT(cdf[99], 0.4);   // top-100 uniques cover > 40%
}

TEST(TraceCharacter, AddressTracesAreStridyInProgramOrder)
{
    // On a scalar (program-order issue) machine the address stream of
    // a stencil kernel is periodic with constant inter-period strides
    // — the multi-stride predictor's best case. (On the wide OoO
    // machine issue-order scrambling breaks the periodicity; the
    // ext_address_bus bench quantifies that.)
    sim::SimConfig scalar;
    scalar.fetch_width = scalar.decode_width = scalar.issue_width =
        scalar.commit_width = 1;
    scalar.int_alus = 1;
    scalar.mem_ports = 1;
    sim::Machine m(workloads::build("apsi", 1), scalar);
    const sim::RunResult run = m.run(200'000);
    ASSERT_GT(run.addr_bus.size(), 1'000u);
    // The kernel's access pattern repeats every ~5 memory ops; give
    // the predictor enough intervals to straddle the occasional
    // perturbation from cache-miss retiming.
    auto stride = coding::makeStride(16);
    const coding::CodingResult r =
        coding::evaluate(*stride, run.addr_bus.values(), true);
    EXPECT_GT(r.removedFraction(1.0), 0.35);
}

TEST(TraceCharacter, MemoryTracesDifferFromRegisterTraces)
{
    const auto &reg = analysis::busValues(
        "compress", trace::BusKind::Register, testOptions());
    const auto &memv = analysis::busValues(
        "compress", trace::BusKind::Memory, testOptions());
    ASSERT_FALSE(reg.empty());
    ASSERT_FALSE(memv.empty());
    EXPECT_NE(reg.size(), memv.size());
}

TEST(TraceCharacter, WindowEightHitsOnSuiteTraffic)
{
    // The silicon design's reason to exist: a non-trivial fraction of
    // suite register traffic hits an 8-entry dictionary.
    u64 hits = 0, cycles = 0;
    for (const char *wl : {"gcc", "swim", "tomcatv", "perl"}) {
        auto codec = coding::makeWindow(8);
        const coding::CodingResult r = coding::evaluate(
            *codec, analysis::busValues(wl, trace::BusKind::Register,
                                        testOptions()));
        hits += r.ops.hits + r.ops.last_hits;
        cycles += r.ops.cycles;
    }
    EXPECT_GT(static_cast<double>(hits) / static_cast<double>(cycles),
              0.25);
}

} // namespace
} // namespace predbus
