#include "common/bitops.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace predbus
{
namespace
{

TEST(Bitops, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(1), 1);
    EXPECT_EQ(popcount(0xffffffffu), 32);
    EXPECT_EQ(popcount(~u64{0}), 64);
    EXPECT_EQ(popcount(0xa5a5a5a5u), 16);
}

TEST(Bitops, HammingDistance)
{
    EXPECT_EQ(hammingDistance(0, 0), 0);
    EXPECT_EQ(hammingDistance(0xff, 0x0f), 4);
    EXPECT_EQ(hammingDistance(0x12345678u, 0x12345678u), 0);
    EXPECT_EQ(hammingDistance(0, ~u64{0}), 64);
}

TEST(Bitops, BitAndBits)
{
    EXPECT_EQ(bit(0b1010, 1), 1u);
    EXPECT_EQ(bit(0b1010, 0), 0u);
    EXPECT_EQ(bits(0xdeadbeefu, 0, 16), 0xbeefu);
    EXPECT_EQ(bits(0xdeadbeefu, 16, 16), 0xdeadu);
    EXPECT_EQ(bits(0xffffffffffffffffull, 0, 64), 0xffffffffffffffffull);
}

TEST(Bitops, InsertBits)
{
    EXPECT_EQ(insertBits(0, 8, 8, 0xab), 0xab00u);
    EXPECT_EQ(insertBits(0xffffu, 4, 8, 0), 0xf00fu);
    // Value wider than field is truncated.
    EXPECT_EQ(insertBits(0, 0, 4, 0x1ff), 0xfu);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(signExtend(0xff, 8), -1);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend32(0xffffu, 16), -1);
    EXPECT_EQ(signExtend32(0x7fffu, 16), 32767);
}

TEST(Bitops, MaskLow)
{
    EXPECT_EQ(maskLow(0), 0u);
    EXPECT_EQ(maskLow(1), 1u);
    EXPECT_EQ(maskLow(32), 0xffffffffull);
    EXPECT_EQ(maskLow(64), ~u64{0});
}

TEST(Bitops, OneHot)
{
    EXPECT_EQ(oneHot(0), 1u);
    EXPECT_EQ(oneHot(31), 0x80000000ull);
    EXPECT_TRUE(isOneHotOrZero(0));
    EXPECT_TRUE(isOneHotOrZero(0x400));
    EXPECT_FALSE(isOneHotOrZero(3));
}

TEST(Bitops, CouplingEventsBasics)
{
    // Single wire bus: never any coupling.
    EXPECT_EQ(couplingEvents(0, 1, 1), 0);
    // Two wires 00 -> 11: both change together, relative state constant.
    EXPECT_EQ(couplingEvents(0b00, 0b11, 2), 0);
    // Two wires 00 -> 01: relative state flips -> one coupling event.
    EXPECT_EQ(couplingEvents(0b00, 0b01, 2), 1);
    // Two wires 01 -> 10: both toggle in opposite directions.
    EXPECT_EQ(couplingEvents(0b01, 0b10, 2), 0);
    // Paper Eq.3 counts changes of (W_n XOR W_{n+1}); 01->10 keeps
    // the XOR at 1 so no event under this (first-order) model.
}

TEST(Bitops, CouplingEventsMatchesDirectFormula)
{
    // Cross-check the word-parallel implementation against a literal
    // transcription of Eq. 3 over random bus states.
    Rng rng(123);
    for (int iter = 0; iter < 1000; ++iter) {
        const unsigned wires = 2 + iter % 33;
        const u64 prev = rng.next64() & maskLow(wires);
        const u64 cur = rng.next64() & maskLow(wires);
        int direct = 0;
        for (unsigned n = 0; n + 1 < wires; ++n) {
            const int prev_rel =
                static_cast<int>(bit(prev, n) ^ bit(prev, n + 1));
            const int cur_rel =
                static_cast<int>(bit(cur, n) ^ bit(cur, n + 1));
            direct += (prev_rel != cur_rel) ? 1 : 0;
        }
        EXPECT_EQ(couplingEvents(prev, cur, wires), direct);
    }
}

TEST(Bitops, ReverseBits)
{
    EXPECT_EQ(reverseBits(0b1, 4), 0b1000u);
    EXPECT_EQ(reverseBits(0b1011, 4), 0b1101u);
    EXPECT_EQ(reverseBits(0x1u, 32), 0x80000000u);
}

} // namespace
} // namespace predbus
