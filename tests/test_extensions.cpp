/**
 * Tests for the extensions beyond the paper: the address-bus timing
 * generator, the cost-aware encoder, the oracle-sort ablation, and
 * the codec spec parser used by the CLI tools.
 */

#include <gtest/gtest.h>

#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "common/log.h"
#include "common/rng.h"
#include "isa/assembler.h"
#include "trace/trace_io.h"
#include "sim/machine.h"

namespace predbus
{
namespace
{

using namespace isa::regs;

TEST(AddressBus, TracksMemoryAccesses)
{
    isa::Asm a("addr");
    a.li(r1, 0x20000000);
    a.li(r2, 50);
    a.label("loop");
    a.lw(r3, r1, 0);
    a.sw(r3, r1, 4096);
    a.addi(r1, r1, 8);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.halt();
    sim::Machine m(a.finish());
    const sim::RunResult r = m.run(100000);
    ASSERT_TRUE(r.halted);
    // One address per load + one per store.
    EXPECT_EQ(r.addr_bus.size(), 100u);
    // Addresses stride by 8 within each stream.
    bool saw_load_base = false, saw_store_base = false;
    for (const auto &e : r.addr_bus) {
        saw_load_base |= (e.value == 0x20000000u);
        saw_store_base |= (e.value == 0x20001000u);
    }
    EXPECT_TRUE(saw_load_base);
    EXPECT_TRUE(saw_store_base);
}

TEST(AddressBus, StridePredictorExcelsOnAddresses)
{
    // Interleaved load/store address streams with constant strides are
    // the stride transcoder's best case.
    isa::Asm a("stride_addr");
    a.li(r1, 0x20000000);
    a.li(r2, 400);
    a.label("loop");
    a.lw(r3, r1, 0);
    a.addi(r1, r1, 64);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.halt();
    sim::Machine m(a.finish());
    const sim::RunResult r = m.run(200000);
    ASSERT_TRUE(r.halted);
    auto codec = coding::makeStride(4);
    const coding::CodingResult res =
        coding::evaluate(*codec, r.addr_bus.values(), true);
    EXPECT_GT(res.removedFraction(1.0), 0.4);
    EXPECT_GT(res.ops.hits, res.ops.raw_sends * 10);
}

TEST(AddressBus, BusName)
{
    EXPECT_STREQ(trace::busName(trace::BusKind::Address), "address");
}

TEST(CostAware, NeverWorseThanFixedPolicy)
{
    Rng rng(31);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<Word> values;
        Word cur = 0;
        std::vector<Word> pool(6);
        for (auto &p : pool)
            p = rng.next32();
        for (int i = 0; i < 4000; ++i) {
            const double dice = rng.uniform();
            if (dice < 0.3) {
                // repeat
            } else if (dice < 0.7) {
                cur = pool[rng.below(pool.size())];
            } else {
                cur = rng.next32();
            }
            values.push_back(cur);
        }
        auto plain = coding::makeWindow(8);
        auto aware = coding::makeWindow(8, 1.0, true);
        const double p =
            coding::evaluate(*plain, values, true).removedFraction(1.0);
        const double a =
            coding::evaluate(*aware, values, true).removedFraction(1.0);
        // Greedy per-word choice is not globally optimal, but it must
        // not lose more than noise.
        EXPECT_GT(a, p - 0.02) << "trial " << trial;
    }
}

TEST(CostAware, DecodesIdentically)
{
    // Cost-aware is encoder-only: the unmodified decoder must track.
    Rng rng(37);
    std::vector<Word> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(i % 3 ? rng.next32()
                               : static_cast<Word>(rng.below(8)));
    auto aware = coding::makeWindow(8, 1.0, true);
    EXPECT_NO_THROW(coding::evaluate(*aware, values, true));
}

TEST(OracleSort, AtLeastAsEffective)
{
    Rng rng(41);
    std::vector<Word> values;
    for (int i = 0; i < 30000; ++i)
        values.push_back(static_cast<Word>(rng.zipf(60, 1.3)) *
                         0x9e3779b9u);
    coding::ContextConfig pending_cfg;
    coding::ContextConfig oracle_cfg;
    oracle_cfg.oracle_sort = true;
    auto pending = coding::makeContext(pending_cfg);
    auto oracle = coding::makeContext(oracle_cfg);
    const auto rp = coding::evaluate(*pending, values, true);
    const auto ro = coding::evaluate(*oracle, values, true);
    // The oracle keeps hot entries higher (cheaper codes) — it should
    // be at least roughly as good, and the pending-bit algorithm
    // should be close behind (that's the paper's design bet).
    EXPECT_GT(ro.removedFraction(1.0), 0.0);
    EXPECT_GT(rp.removedFraction(1.0),
              ro.removedFraction(1.0) - 0.05);
}

TEST(SpecParser, BuildsEverything)
{
    EXPECT_EQ(coding::makeFromSpec("raw")->name(), "raw");
    EXPECT_EQ(coding::makeFromSpec("window:8")->name(), "window8");
    EXPECT_EQ(coding::makeFromSpec("window:16:ca")->name(),
              "window16-ca");
    EXPECT_EQ(coding::makeFromSpec("ctx:28+8")->name(),
              "ctx-value28+8");
    EXPECT_EQ(coding::makeFromSpec("ctx:16+4:trans")->name(),
              "ctx-trans16+4");
    EXPECT_EQ(coding::makeFromSpec("ctx:16+4:d256")->name(),
              "ctx-value16+4");
    EXPECT_EQ(coding::makeFromSpec("stride:8")->name(), "stride8");
    EXPECT_EQ(coding::makeFromSpec("inv:4")->name(), "inv4");
    EXPECT_EQ(coding::makeFromSpec("inv:4:l1.5")->name(), "inv4");
    EXPECT_EQ(coding::makeFromSpec("spatial:8")->name(), "spatial8");
}

TEST(SpecParser, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"", "bogus", "window", "window:x", "window:8:zz", "ctx:28",
          "ctx:28+8:what", "stride", "inv:3", "inv:4:x2", "raw:1",
          "spatial:99"}) {
        EXPECT_THROW(coding::makeFromSpec(bad), FatalError) << bad;
    }
}

TEST(SpecParser, SpecCodecsRoundTrip)
{
    Rng rng(43);
    std::vector<Word> values;
    for (int i = 0; i < 5000; ++i)
        values.push_back(rng.next32() & 0xff);
    for (const char *spec :
         {"raw", "window:8", "window:8:ca", "ctx:16+4",
          "ctx:16+4:trans:d128", "stride:6", "inv:8:l1", "spatial:8"}) {
        auto codec = coding::makeFromSpec(spec);
        EXPECT_NO_THROW(coding::evaluate(*codec, values, true)) << spec;
    }
}

} // namespace
} // namespace predbus
