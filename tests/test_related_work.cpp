/**
 * Tests for the related-work baselines (paper §2): partial bus-invert
 * [20] and working-zone encoding [15].
 */

#include <gtest/gtest.h>

#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "coding/partial_invert.h"
#include "coding/workzone.h"
#include "common/log.h"
#include "common/rng.h"

namespace predbus::coding
{
namespace
{

std::vector<Word>
randomStream(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    for (auto &v : out)
        v = rng.next32();
    return out;
}

TEST(PartialBusInvert, RoundTrips)
{
    for (unsigned groups : {1u, 2u, 4u, 8u, 16u, 32u}) {
        PartialBusInvert coder(groups, 1.0);
        EXPECT_NO_THROW(
            evaluate(coder, randomStream(10000, 100 + groups), true))
            << groups;
    }
}

TEST(PartialBusInvert, GroupCountMustDivideWidth)
{
    EXPECT_THROW(PartialBusInvert(3, 1.0), FatalError);
    EXPECT_THROW(PartialBusInvert(0, 1.0), FatalError);
    EXPECT_THROW(PartialBusInvert(64, 1.0), FatalError);
}

TEST(PartialBusInvert, LocalizedBurstsFavorMoreGroups)
{
    // Activity confined to one byte: 4 groups can invert just that
    // byte; classic bus-invert never reaches its 50% trigger.
    Rng rng(7);
    std::vector<Word> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(0x5a5a5a00u |
                         static_cast<Word>(rng.below(256)));
    PartialBusInvert one(1, 0.0);
    PartialBusInvert four(4, 0.0);
    const CodingResult r1 = evaluate(one, values, true);
    const CodingResult r4 = evaluate(four, values, true);
    EXPECT_LT(r4.coded.tau, r1.coded.tau);
}

TEST(PartialBusInvert, BoundsWorstCasePerGroup)
{
    // With lambda=0 selection, each 8-bit group flips at most 4 data
    // wires (+1 invert wire) per word.
    PartialBusInvert coder(4, 0.0);
    coder.reset();
    u64 prev = 0;
    Rng rng(9);
    for (int i = 0; i < 3000; ++i) {
        const u64 state = coder.encode(rng.next32());
        for (unsigned g = 0; g < 4; ++g) {
            const u64 mask = maskLow(8) << (g * 8);
            EXPECT_LE(hammingDistance(prev & mask, state & mask), 4u);
        }
        prev = state;
    }
}

TEST(WorkZone, RoundTripsOnAddressLikeStreams)
{
    // Interleave three strided "zones" plus occasional jumps.
    Rng rng(11);
    std::vector<Word> addrs;
    Word zones[3] = {0x10000000, 0x20000000, 0x7fff0000};
    for (int i = 0; i < 20000; ++i) {
        const unsigned z = static_cast<unsigned>(rng.below(3));
        zones[z] += static_cast<Word>(rng.range(-12, 12));
        if (rng.chance(0.01))
            zones[z] = rng.next32();  // context switch
        addrs.push_back(zones[z]);
    }
    WorkZoneCoder coder(4);
    EXPECT_NO_THROW(evaluate(coder, addrs, true));
}

TEST(WorkZone, RoundTripsOnRandom)
{
    WorkZoneCoder coder(4);
    EXPECT_NO_THROW(evaluate(coder, randomStream(10000, 13), true));
}

TEST(WorkZone, CapturesInterleavedStrides)
{
    // Two interleaved byte-stride streams: every access is within
    // range of its zone's previous address.
    std::vector<Word> addrs;
    Word a = 0x10000000, b = 0x30000000;
    for (int i = 0; i < 5000; ++i) {
        addrs.push_back(i % 2 ? (b += 8) : (a += 4));
    }
    WorkZoneCoder coder(2);
    const CodingResult r = evaluate(coder, addrs, true);
    // After the two cold misses everything hits.
    EXPECT_EQ(r.ops.raw_sends, 2u);
    EXPECT_GT(r.removedFraction(1.0), 0.5);
}

TEST(WorkZone, ZoneThrashingDegradesGracefully)
{
    // More active zones than zone registers: misses dominate but
    // decode must stay correct.
    std::vector<Word> addrs;
    Word streams[6] = {0x1000, 0x200000, 0x3000000, 0x40000000,
                       0x50000, 0x6000};
    for (int i = 0; i < 6000; ++i)
        addrs.push_back(streams[i % 6] += 4);
    WorkZoneCoder coder(2);
    const CodingResult r = evaluate(coder, addrs, true);
    EXPECT_GT(r.ops.raw_sends, 4000u);
}

TEST(WorkZone, OffsetIndexInverse)
{
    for (s32 d = -WorkZoneCoder::kRange; d <= WorkZoneCoder::kRange;
         ++d) {
        if (d == 0)
            continue;
        // Round-trip through the private mapping via coder behavior:
        // one zone, consecutive addresses differing by d must hit.
        WorkZoneCoder coder(1);
        std::vector<Word> addrs = {1000u, 1000u + static_cast<Word>(d)};
        const CodingResult r = evaluate(coder, addrs, true);
        EXPECT_EQ(r.ops.hits, 1u) << d;
    }
}

TEST(WorkZone, BadZoneCounts)
{
    EXPECT_THROW(WorkZoneCoder(0), FatalError);
    EXPECT_THROW(WorkZoneCoder(3), FatalError);
    EXPECT_THROW(WorkZoneCoder(32), FatalError);
}

TEST(RelatedWorkSpecs, ParseAndRun)
{
    const auto values = randomStream(3000, 17);
    for (const char *spec : {"pbi:4", "pbi:8", "wze:2", "wze:8"}) {
        auto codec = makeFromSpec(spec);
        EXPECT_NO_THROW(evaluate(*codec, values, true)) << spec;
    }
    EXPECT_THROW(makeFromSpec("pbi:3"), FatalError);
    EXPECT_THROW(makeFromSpec("wze:5"), FatalError);
}

} // namespace
} // namespace predbus::coding
