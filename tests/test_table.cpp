#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace predbus
{
namespace
{

TEST(Table, BuildsCells)
{
    Table t({"a", "b", "c"});
    t.row().cell("x").cell(7ll).cell(1.5, 2);
    ASSERT_EQ(t.rowCount(), 1u);
    EXPECT_EQ(t.at(0, 0), "x");
    EXPECT_EQ(t.at(0, 1), "7");
    EXPECT_EQ(t.at(0, 2), "1.50");
}

TEST(Table, CellBeforeRowThrows)
{
    Table t({"a"});
    EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, PrintAligned)
{
    Table t({"name", "v"});
    t.row().cell("long_name").cell(1ll);
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("long_name"), std::string::npos);
    EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PrintCsv)
{
    Table t({"x", "y"});
    t.row().cell(1ll).cell(2ll);
    t.row().cell(3ll).cell(4ll);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n3,4\n");
}

TEST(Table, WantCsv)
{
    const char *argv1[] = {"prog", "--csv"};
    const char *argv2[] = {"prog"};
    EXPECT_TRUE(wantCsv(2, const_cast<char **>(argv1)));
    EXPECT_FALSE(wantCsv(1, const_cast<char **>(argv2)));
}

} // namespace
} // namespace predbus
