/**
 * @file
 * The live telemetry plane of the serving subsystem: SERVER_STATS
 * frame round trips and malformed-payload rejection, the flight
 * recorder's lock-free ring (ordering, overwrite, concurrent dump),
 * and end-to-end scrapes against a live server — the JSON must
 * validate, agree with the registry, list per-family session gauges,
 * surface forced desync/RESYNC in the event dump, and never perturb
 * the encoded bytes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/suite.h"
#include "coding/session.h"
#include "common/log.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/flight_recorder.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stats.h"

using namespace predbus;
using serve::FlightEvent;
using serve::FlightEventKind;
using serve::FlightRecorder;
using serve::protocol::Frame;
using serve::protocol::MsgType;

namespace
{

// -- SERVER_STATS framing ----------------------------------------------

TEST(ServerStatsProtocol, RequestRoundTrip)
{
    for (const bool events : {false, true}) {
        const Frame frame =
            serve::protocol::makeServerStats(events);
        EXPECT_EQ(frame.hdr.type,
                  static_cast<u8>(MsgType::ServerStats));
        EXPECT_EQ(frame.hdr.session, 0u);
        ASSERT_EQ(frame.payload.size(), 1u);
        bool parsed = !events;
        ASSERT_TRUE(serve::protocol::parseServerStats(frame, parsed));
        EXPECT_EQ(parsed, events);
    }
}

TEST(ServerStatsProtocol, RequestRejectsMalformedPayloads)
{
    bool events = false;

    Frame empty = serve::protocol::makeServerStats(false);
    empty.payload.clear();
    empty.hdr.payload_len = 0;
    EXPECT_FALSE(serve::protocol::parseServerStats(empty, events));

    Frame oversize = serve::protocol::makeServerStats(false);
    oversize.payload.push_back(0);
    oversize.hdr.payload_len = 2;
    EXPECT_FALSE(serve::protocol::parseServerStats(oversize, events));

    // Reserved flag bits must be rejected, not silently ignored —
    // they are how the frame grows in a future protocol version.
    Frame reserved = serve::protocol::makeServerStats(false);
    reserved.payload[0] = 0x02;
    EXPECT_FALSE(serve::protocol::parseServerStats(reserved, events));
    reserved.payload[0] = 0x81;
    EXPECT_FALSE(serve::protocol::parseServerStats(reserved, events));
}

TEST(ServerStatsProtocol, ResponseRoundTrip)
{
    const std::string json =
        "{\"schema\":\"predbus.serverstats.v1\",\"counters\":{}}";
    const Frame frame = serve::protocol::makeServerStatsOk(json);
    EXPECT_EQ(frame.hdr.type,
              static_cast<u8>(MsgType::ServerStatsOk));
    std::string parsed;
    ASSERT_TRUE(serve::protocol::parseServerStatsOk(frame, parsed));
    EXPECT_EQ(parsed, json);
}

TEST(ServerStatsProtocol, ResponseRejectsTruncatedPayloads)
{
    std::string parsed;

    Frame frame = serve::protocol::makeServerStatsOk("{\"a\":1}");
    frame.payload.pop_back();  // length prefix now overruns
    frame.hdr.payload_len = static_cast<u32>(frame.payload.size());
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(frame, parsed));

    Frame bare = serve::protocol::makeServerStatsOk("{}");
    bare.payload.resize(2);  // shorter than the u32 length itself
    bare.hdr.payload_len = 2;
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(bare, parsed));

    // Trailing garbage after the declared JSON bytes is malformed.
    Frame padded = serve::protocol::makeServerStatsOk("{}");
    padded.payload.push_back('x');
    padded.hdr.payload_len = static_cast<u32>(padded.payload.size());
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(padded, parsed));
}

// -- flight recorder ----------------------------------------------------

TEST(FlightRecorder, RecordsInOrderBelowCapacity)
{
    FlightRecorder recorder(16);
    EXPECT_EQ(recorder.capacity(), 16u);
    for (u32 i = 0; i < 10; ++i) {
        recorder.record(FlightEventKind::SessionOpen, i, i * 7,
                        "window:8");
    }
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 10u);
    EXPECT_EQ(recorder.recorded(), 10u);
    for (u32 i = 0; i < 10; ++i) {
        EXPECT_EQ(events[i].session, i);
        EXPECT_EQ(events[i].seq, u64{i} * 7);
        EXPECT_EQ(events[i].kind,
                  static_cast<u8>(FlightEventKind::SessionOpen));
        EXPECT_STREQ(events[i].label, "window:8");
    }
    // Timestamps never run backwards within a single writer.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].time_ns, events[i - 1].time_ns);
}

TEST(FlightRecorder, OverwritesOldestAtCapacity)
{
    FlightRecorder recorder(16);
    for (u32 i = 0; i < 100; ++i)
        recorder.record(FlightEventKind::Shed, i, i, "queue_full");
    EXPECT_EQ(recorder.recorded(), 100u);
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 16u);
    // The ring retains exactly the newest events, oldest first.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].session, 84u + i);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(FlightRecorder(1).capacity(), 16u);   // min 16
    EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
    EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
}

TEST(FlightRecorder, LabelsTruncateSafely)
{
    FlightRecorder recorder(16);
    const std::string longlabel(200, 'x');
    recorder.record(FlightEventKind::Desync, 1, 2, longlabel);
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 1u);
    const std::string label = events[0].label;
    EXPECT_LT(label.size(), sizeof(events[0].label));
    EXPECT_EQ(label, longlabel.substr(0, label.size()));
}

TEST(FlightRecorder, EventKindNamesAreStable)
{
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::SessionOpen),
                 "session_open");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::SessionClose),
                 "session_close");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Desync),
                 "desync");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Resync),
                 "resync");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Shed),
                 "shed");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Drain),
                 "drain");
}

TEST(FlightRecorder, ConcurrentWritersNeverTearAnEvent)
{
    FlightRecorder recorder(64);
    constexpr unsigned kWriters = 4;
    constexpr u32 kPerWriter = 20000;
    std::atomic<bool> stop{false};

    // Reader thread dumps continuously while writers hammer the ring;
    // every event a dump returns must be complete and well-formed.
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::vector<FlightEvent> events = recorder.dump();
            u64 prev_time = 0;
            for (const FlightEvent &e : events) {
                EXPECT_EQ(e.kind,
                          static_cast<u8>(FlightEventKind::Desync));
                // session encodes (writer, i); seq mirrors it — a
                // torn slot would mix two different writes.
                EXPECT_EQ(e.seq, u64{e.session});
                EXPECT_GE(e.time_ns, prev_time);
                prev_time = e.time_ns;
                const std::string label = e.label;
                EXPECT_EQ(label, "seq_mismatch");
            }
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&recorder, w] {
            for (u32 i = 0; i < kPerWriter; ++i) {
                const u32 tag = w * kPerWriter + i;
                recorder.record(FlightEventKind::Desync, tag, tag,
                                "seq_mismatch");
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(recorder.recorded(), u64{kWriters} * kPerWriter);
    const std::vector<FlightEvent> final_events = recorder.dump();
    EXPECT_EQ(final_events.size(), recorder.capacity());
}

// -- end-to-end scrapes -------------------------------------------------

/** Unique per-test unix socket path under the system temp dir. */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/predbus_stats_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

class ServeStats : public ::testing::Test
{
  protected:
    serve::Server &
    startServer(serve::ServerOptions opt = {})
    {
        path = socketPath();
        opt.unix_path = path;
        server = std::make_unique<serve::Server>(opt, registry);
        return *server;
    }

    serve::Client
    connect()
    {
        return serve::Client::connectUnixSocket(path);
    }

    /** Flatten a scrape; fails the test on invalid JSON. */
    std::vector<obs::JsonScalar>
    flatten(const std::string &json)
    {
        std::vector<obs::JsonScalar> rows;
        const auto err = obs::jsonFlatten(json, rows);
        EXPECT_EQ(err, std::nullopt)
            << err.value_or("") << "\n" << json;
        return rows;
    }

    /** Value of a flattened path ("" if absent). */
    static std::string
    valueOf(const std::vector<obs::JsonScalar> &rows,
            const std::string &path)
    {
        for (const obs::JsonScalar &row : rows)
            if (row.path == path)
                return row.value;
        return "";
    }

    obs::Registry registry;
    std::string path;
    std::unique_ptr<serve::Server> server;
};

TEST_F(ServeStats, ScrapeAgreesWithRegistryMidLoad)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream =
        analysis::randomValues(2048, 0x57A7);

    for (std::size_t pos = 0; pos < 1024; pos += 256) {
        ASSERT_TRUE(
            session.encode(std::span(stream).subspan(pos, 256)).ok());
    }

    // Mid-load scrape: valid JSON whose counters match the registry
    // the server publishes into.
    const std::string mid = client.serverStats(false);
    const auto rows = flatten(mid);
    EXPECT_EQ(valueOf(rows, "schema"), "predbus.serverstats.v1");
    EXPECT_EQ(valueOf(rows, "draining"), "false");
    EXPECT_EQ(valueOf(rows, "counters.serve.batches"), "4");
    EXPECT_EQ(valueOf(rows, "counters.serve.batches"),
              std::to_string(registry.counter("serve.batches")
                                 .value()));
    EXPECT_EQ(valueOf(rows, "counters.serve.words"), "1024");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions_active"), "1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.window"), "1");
    EXPECT_EQ(valueOf(rows, "histograms.serve.batch_ns.count"), "4");
    EXPECT_NE(valueOf(rows, "uptime_s"), "");
    // Events were not requested: recorded count present, list absent.
    EXPECT_NE(valueOf(rows, "events_recorded"), "");
    for (const obs::JsonScalar &row : rows)
        EXPECT_EQ(row.path.rfind("events.", 0), std::string::npos);

    // Counters only ever advance between scrapes.
    for (std::size_t pos = 1024; pos < 2048; pos += 256) {
        ASSERT_TRUE(
            session.encode(std::span(stream).subspan(pos, 256)).ok());
    }
    const auto rows2 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows2, "counters.serve.batches"), "8");
    EXPECT_EQ(valueOf(rows2, "counters.serve.words"), "2048");
    // Each scrape counts itself before snapshotting.
    EXPECT_EQ(valueOf(rows2, "counters.serve.stats_requests"), "2");

    session.close();
    const auto rows3 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows3, "gauges.serve.sessions.window"), "0");
}

TEST_F(ServeStats, PerFamilySessionGauges)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession w1 = client.openOrThrow("window:8");
    serve::ClientSession w2 = client.openOrThrow("window:16");
    serve::ClientSession s1 = client.openOrThrow("stride:4");

    const auto rows = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.window"), "2");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.stride"), "1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions_active"), "3");

    w1.close();
    s1.close();
    const auto rows2 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows2, "gauges.serve.sessions.window"), "1");
    EXPECT_EQ(valueOf(rows2, "gauges.serve.sessions.stride"), "0");
    w2.close();
}

TEST_F(ServeStats, ForcedDesyncShowsUpInFlightEvents)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream =
        analysis::randomValues(512, 0xDE57);
    ASSERT_TRUE(session.encode(std::span(stream).first(256)).ok());

    // Poison the checksum to force a desync, then recover.
    client.send(serve::protocol::makeEncode(
        session.id(), session.seq() + 1, session.checksum() ^ 0xBAD,
        std::span(stream).last(256)));
    serve::protocol::ErrCode code{};
    std::string message;
    ASSERT_TRUE(
        serve::protocol::parseError(client.recv(), code, message));
    ASSERT_EQ(code, serve::protocol::ErrCode::Desync);
    EXPECT_EQ(session.resync(), 1u);

    const std::string json = client.serverStats(true);
    const auto rows = flatten(json);
    std::set<std::string> kinds;
    for (const obs::JsonScalar &row : rows) {
        if (row.path.rfind("events.", 0) == 0 &&
            row.path.size() > 5 &&
            row.path.compare(row.path.size() - 5, 5, ".kind") == 0)
            kinds.insert(row.value);
    }
    // The acceptance sequence: open, the forced desync, and the
    // RESYNC recovery all appear in one dump, in record order.
    EXPECT_TRUE(kinds.count("session_open")) << json;
    EXPECT_TRUE(kinds.count("desync")) << json;
    EXPECT_TRUE(kinds.count("resync")) << json;

    // The recorder itself holds them in causal order.
    const auto events = server->flightRecorder().dump();
    std::vector<u8> sequence;
    for (const FlightEvent &e : events)
        sequence.push_back(e.kind);
    const auto open_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::SessionOpen));
    const auto desync_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::Desync));
    const auto resync_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::Resync));
    ASSERT_NE(open_at, sequence.end());
    ASSERT_NE(desync_at, sequence.end());
    ASSERT_NE(resync_at, sequence.end());
    EXPECT_LT(open_at, desync_at);
    EXPECT_LT(desync_at, resync_at);
}

TEST_F(ServeStats, DrainAndShedAreRecorded)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    (void)session;
    server->beginDrain();
    server->waitDrained();
    const auto events = server->flightRecorder().dump();
    const bool drained = std::any_of(
        events.begin(), events.end(), [](const FlightEvent &e) {
            return e.kind == static_cast<u8>(FlightEventKind::Drain);
        });
    EXPECT_TRUE(drained);
    server->stop();
}

TEST_F(ServeStats, EncodedBytesIdenticalWithConcurrentScraping)
{
    startServer();
    const std::vector<Word> stream =
        analysis::randomValues(4096, 0x0B5);
    constexpr std::size_t kBatch = 256;

    // A scraper hammers SERVER_STATS on its own connection for the
    // whole run; the encode stream must not notice.
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        serve::Client client = connect();
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string json = client.serverStats(true);
            ASSERT_EQ(obs::jsonSyntaxError(json), std::nullopt)
                << json;
        }
    });

    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("ctx:16+4");
    coding::CodecSession local("ctx:16+4");
    for (std::size_t pos = 0; pos < stream.size(); pos += kBatch) {
        const std::span<const Word> batch(stream.data() + pos,
                                          kBatch);
        const auto remote = session.encode(batch);
        ASSERT_TRUE(remote.ok());
        std::vector<u64> expected;
        local.encodeBatch(batch, expected);
        ASSERT_EQ(remote.data, expected);
        ASSERT_EQ(remote.checksum, local.checksum());
    }
    stop.store(true);
    scraper.join();
    EXPECT_GT(registry.counter("serve.stats_requests").value(), 0u);
}

TEST_F(ServeStats, StatsJsonDirectDumpIsValid)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("inv:2");
    const std::vector<Word> stream =
        analysis::randomValues(256, 0x51);
    ASSERT_TRUE(session.encode(stream).ok());

    // The SIGUSR1 path calls statsJson(true) directly (no socket).
    const std::string json = server->statsJson(true);
    const auto rows = flatten(json);
    EXPECT_EQ(valueOf(rows, "schema"), "predbus.serverstats.v1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.inv"), "1");
    EXPECT_EQ(valueOf(rows, "events.0.kind"), "session_open");
    EXPECT_EQ(valueOf(rows, "events.0.label"), "inv:2");
}

} // namespace
