/**
 * @file
 * The live telemetry plane of the serving subsystem: SERVER_STATS
 * frame round trips and malformed-payload rejection, the flight
 * recorder's lock-free ring (ordering, overwrite, concurrent dump),
 * and end-to-end scrapes against a live server — the JSON must
 * validate, agree with the registry, list per-family session gauges,
 * surface forced desync/RESYNC in the event dump, and never perturb
 * the encoded bytes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "analysis/suite.h"
#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "coding/session.h"
#include "common/log.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/flight_recorder.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/stats.h"

using namespace predbus;
using serve::FlightEvent;
using serve::FlightEventKind;
using serve::FlightRecorder;
using serve::protocol::Frame;
using serve::protocol::MsgType;

namespace
{

// -- SERVER_STATS framing ----------------------------------------------

TEST(ServerStatsProtocol, RequestRoundTrip)
{
    for (const bool events : {false, true}) {
        const Frame frame =
            serve::protocol::makeServerStats(events);
        EXPECT_EQ(frame.hdr.type,
                  static_cast<u8>(MsgType::ServerStats));
        EXPECT_EQ(frame.hdr.session, 0u);
        ASSERT_EQ(frame.payload.size(), 1u);
        bool parsed = !events;
        ASSERT_TRUE(serve::protocol::parseServerStats(frame, parsed));
        EXPECT_EQ(parsed, events);
    }
}

TEST(ServerStatsProtocol, RequestRejectsMalformedPayloads)
{
    bool events = false;

    Frame empty = serve::protocol::makeServerStats(false);
    empty.payload.clear();
    empty.hdr.payload_len = 0;
    EXPECT_FALSE(serve::protocol::parseServerStats(empty, events));

    Frame oversize = serve::protocol::makeServerStats(false);
    oversize.payload.push_back(0);
    oversize.hdr.payload_len = 2;
    EXPECT_FALSE(serve::protocol::parseServerStats(oversize, events));
}

TEST(ServerStatsProtocol, RequestIgnoresReservedFlagBits)
{
    // Reserved flag bits are IGNORED, not rejected: a newer client
    // that sets a bit this server predates still gets a valid v1
    // snapshot (the server answers the parts of the request it
    // understands). Only bit 0 (include events) is interpreted.
    bool events = false;

    Frame reserved = serve::protocol::makeServerStats(false);
    reserved.payload[0] = 0x02;
    EXPECT_TRUE(serve::protocol::parseServerStats(reserved, events));
    EXPECT_FALSE(events);

    reserved.payload[0] = 0x81;  // high bits + events bit
    EXPECT_TRUE(serve::protocol::parseServerStats(reserved, events));
    EXPECT_TRUE(events);

    reserved.payload[0] = 0xFE;  // every reserved bit, events off
    EXPECT_TRUE(serve::protocol::parseServerStats(reserved, events));
    EXPECT_FALSE(events);
}

TEST(ServerStatsProtocol, ResponseRoundTrip)
{
    const std::string json =
        "{\"schema\":\"predbus.serverstats.v1\",\"counters\":{}}";
    const Frame frame = serve::protocol::makeServerStatsOk(json);
    EXPECT_EQ(frame.hdr.type,
              static_cast<u8>(MsgType::ServerStatsOk));
    std::string parsed;
    ASSERT_TRUE(serve::protocol::parseServerStatsOk(frame, parsed));
    EXPECT_EQ(parsed, json);
}

TEST(ServerStatsProtocol, ResponseRejectsTruncatedPayloads)
{
    std::string parsed;

    Frame frame = serve::protocol::makeServerStatsOk("{\"a\":1}");
    frame.payload.pop_back();  // length prefix now overruns
    frame.hdr.payload_len = static_cast<u32>(frame.payload.size());
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(frame, parsed));

    Frame bare = serve::protocol::makeServerStatsOk("{}");
    bare.payload.resize(2);  // shorter than the u32 length itself
    bare.hdr.payload_len = 2;
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(bare, parsed));

    // Trailing garbage after the declared JSON bytes is malformed.
    Frame padded = serve::protocol::makeServerStatsOk("{}");
    padded.payload.push_back('x');
    padded.hdr.payload_len = static_cast<u32>(padded.payload.size());
    EXPECT_FALSE(serve::protocol::parseServerStatsOk(padded, parsed));
}

// -- flight recorder ----------------------------------------------------

TEST(FlightRecorder, RecordsInOrderBelowCapacity)
{
    FlightRecorder recorder(16);
    EXPECT_EQ(recorder.capacity(), 16u);
    for (u32 i = 0; i < 10; ++i) {
        recorder.record(FlightEventKind::SessionOpen, i, i * 7,
                        "window:8");
    }
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 10u);
    EXPECT_EQ(recorder.recorded(), 10u);
    for (u32 i = 0; i < 10; ++i) {
        EXPECT_EQ(events[i].session, i);
        EXPECT_EQ(events[i].seq, u64{i} * 7);
        EXPECT_EQ(events[i].kind,
                  static_cast<u8>(FlightEventKind::SessionOpen));
        EXPECT_STREQ(events[i].label, "window:8");
    }
    // Timestamps never run backwards within a single writer.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_GE(events[i].time_ns, events[i - 1].time_ns);
}

TEST(FlightRecorder, OverwritesOldestAtCapacity)
{
    FlightRecorder recorder(16);
    for (u32 i = 0; i < 100; ++i)
        recorder.record(FlightEventKind::Shed, i, i, "queue_full");
    EXPECT_EQ(recorder.recorded(), 100u);
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 16u);
    // The ring retains exactly the newest events, oldest first.
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].session, 84u + i);
}

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(FlightRecorder(1).capacity(), 16u);   // min 16
    EXPECT_EQ(FlightRecorder(16).capacity(), 16u);
    EXPECT_EQ(FlightRecorder(17).capacity(), 32u);
    EXPECT_EQ(FlightRecorder(100).capacity(), 128u);
}

TEST(FlightRecorder, LabelsTruncateSafely)
{
    FlightRecorder recorder(16);
    const std::string longlabel(200, 'x');
    recorder.record(FlightEventKind::Desync, 1, 2, longlabel);
    const std::vector<FlightEvent> events = recorder.dump();
    ASSERT_EQ(events.size(), 1u);
    const std::string label = events[0].label;
    EXPECT_LT(label.size(), sizeof(events[0].label));
    EXPECT_EQ(label, longlabel.substr(0, label.size()));
}

TEST(FlightRecorder, EventKindNamesAreStable)
{
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::SessionOpen),
                 "session_open");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::SessionClose),
                 "session_close");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Desync),
                 "desync");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Resync),
                 "resync");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Shed),
                 "shed");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::Drain),
                 "drain");
    EXPECT_STREQ(serve::flightEventName(FlightEventKind::SessionSpill),
                 "session_spill");
    EXPECT_STREQ(
        serve::flightEventName(FlightEventKind::SessionResume),
        "session_resume");
}

TEST(FlightRecorder, ConcurrentWritersNeverTearAnEvent)
{
    FlightRecorder recorder(64);
    constexpr unsigned kWriters = 4;
    constexpr u32 kPerWriter = 20000;
    std::atomic<bool> stop{false};

    // Reader thread dumps continuously while writers hammer the ring;
    // every event a dump returns must be complete and well-formed.
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const std::vector<FlightEvent> events = recorder.dump();
            u64 prev_time = 0;
            for (const FlightEvent &e : events) {
                EXPECT_EQ(e.kind,
                          static_cast<u8>(FlightEventKind::Desync));
                // session encodes (writer, i); seq mirrors it — a
                // torn slot would mix two different writes.
                EXPECT_EQ(e.seq, u64{e.session});
                EXPECT_GE(e.time_ns, prev_time);
                prev_time = e.time_ns;
                const std::string label = e.label;
                EXPECT_EQ(label, "seq_mismatch");
            }
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&recorder, w] {
            for (u32 i = 0; i < kPerWriter; ++i) {
                const u32 tag = w * kPerWriter + i;
                recorder.record(FlightEventKind::Desync, tag, tag,
                                "seq_mismatch");
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();

    EXPECT_EQ(recorder.recorded(), u64{kWriters} * kPerWriter);
    const std::vector<FlightEvent> final_events = recorder.dump();
    EXPECT_EQ(final_events.size(), recorder.capacity());
}

TEST(FlightRecorder, SpillAndResumeEventsNeverTear)
{
    // Spill and resume events are written by shard threads while the
    // stats path dumps: interleave the two kinds from many writers
    // and require that kind, session/seq tag, and label always belong
    // to the same write. A torn slot would pair a spill kind with a
    // resume label (or mismatched tags).
    FlightRecorder recorder(64);
    constexpr unsigned kWriters = 4;
    constexpr u32 kPerWriter = 20000;
    std::atomic<bool> stop{false};

    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            for (const FlightEvent &e : recorder.dump()) {
                EXPECT_EQ(e.seq, u64{e.session});
                const std::string label = e.label;
                if (e.session % 2 == 0) {
                    EXPECT_EQ(
                        e.kind,
                        static_cast<u8>(FlightEventKind::SessionSpill));
                    EXPECT_EQ(label, "shard=0 b=512");
                } else {
                    EXPECT_EQ(e.kind,
                              static_cast<u8>(
                                  FlightEventKind::SessionResume));
                    EXPECT_EQ(label, "shard=1 b=256");
                }
            }
        }
    });

    std::vector<std::thread> writers;
    for (unsigned w = 0; w < kWriters; ++w) {
        writers.emplace_back([&recorder, w] {
            for (u32 i = 0; i < kPerWriter; ++i) {
                const u32 tag = 2 * (w * kPerWriter + i) + (w % 2);
                recorder.record(tag % 2 == 0
                                    ? FlightEventKind::SessionSpill
                                    : FlightEventKind::SessionResume,
                                tag, tag,
                                tag % 2 == 0 ? "shard=0 b=512"
                                             : "shard=1 b=256");
            }
        });
    }
    for (auto &t : writers)
        t.join();
    stop.store(true);
    reader.join();
    EXPECT_EQ(recorder.recorded(), u64{kWriters} * kPerWriter);
}

// -- end-to-end scrapes -------------------------------------------------

/** Unique per-test unix socket path under the system temp dir. */
std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/predbus_stats_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

class ServeStats : public ::testing::Test
{
  protected:
    serve::Server &
    startServer(serve::ServerOptions opt = {})
    {
        path = socketPath();
        opt.unix_path = path;
        server = std::make_unique<serve::Server>(opt, registry);
        return *server;
    }

    serve::Client
    connect()
    {
        return serve::Client::connectUnixSocket(path);
    }

    /** Flatten a scrape; fails the test on invalid JSON. */
    std::vector<obs::JsonScalar>
    flatten(const std::string &json)
    {
        std::vector<obs::JsonScalar> rows;
        const auto err = obs::jsonFlatten(json, rows);
        EXPECT_EQ(err, std::nullopt)
            << err.value_or("") << "\n" << json;
        return rows;
    }

    /** Value of a flattened path ("" if absent). */
    static std::string
    valueOf(const std::vector<obs::JsonScalar> &rows,
            const std::string &path)
    {
        for (const obs::JsonScalar &row : rows)
            if (row.path == path)
                return row.value;
        return "";
    }

    obs::Registry registry;
    std::string path;
    std::unique_ptr<serve::Server> server;
};

TEST_F(ServeStats, ScrapeAgreesWithRegistryMidLoad)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream =
        analysis::randomValues(2048, 0x57A7);

    for (std::size_t pos = 0; pos < 1024; pos += 256) {
        ASSERT_TRUE(
            session.encode(std::span(stream).subspan(pos, 256)).ok());
    }

    // Mid-load scrape: valid JSON whose counters match the registry
    // the server publishes into.
    const std::string mid = client.serverStats(false);
    const auto rows = flatten(mid);
    EXPECT_EQ(valueOf(rows, "schema"), "predbus.serverstats.v1");
    EXPECT_EQ(valueOf(rows, "draining"), "false");
    EXPECT_EQ(valueOf(rows, "counters.serve.batches"), "4");
    EXPECT_EQ(valueOf(rows, "counters.serve.batches"),
              std::to_string(registry.counter("serve.batches")
                                 .value()));
    EXPECT_EQ(valueOf(rows, "counters.serve.words"), "1024");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions_active"), "1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.window"), "1");
    EXPECT_EQ(valueOf(rows, "histograms.serve.batch_ns.count"), "4");
    EXPECT_NE(valueOf(rows, "uptime_s"), "");
    // Events were not requested: recorded count present, list absent.
    EXPECT_NE(valueOf(rows, "events_recorded"), "");
    for (const obs::JsonScalar &row : rows)
        EXPECT_EQ(row.path.rfind("events.", 0), std::string::npos);

    // Counters only ever advance between scrapes.
    for (std::size_t pos = 1024; pos < 2048; pos += 256) {
        ASSERT_TRUE(
            session.encode(std::span(stream).subspan(pos, 256)).ok());
    }
    const auto rows2 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows2, "counters.serve.batches"), "8");
    EXPECT_EQ(valueOf(rows2, "counters.serve.words"), "2048");
    // Each scrape counts itself before snapshotting.
    EXPECT_EQ(valueOf(rows2, "counters.serve.stats_requests"), "2");

    session.close();
    const auto rows3 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows3, "gauges.serve.sessions.window"), "0");
}

TEST_F(ServeStats, PerFamilySessionGauges)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession w1 = client.openOrThrow("window:8");
    serve::ClientSession w2 = client.openOrThrow("window:16");
    serve::ClientSession s1 = client.openOrThrow("stride:4");

    const auto rows = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.window"), "2");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.stride"), "1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions_active"), "3");

    w1.close();
    s1.close();
    const auto rows2 = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows2, "gauges.serve.sessions.window"), "1");
    EXPECT_EQ(valueOf(rows2, "gauges.serve.sessions.stride"), "0");
    w2.close();
}

TEST_F(ServeStats, ForcedDesyncShowsUpInFlightEvents)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream =
        analysis::randomValues(512, 0xDE57);
    ASSERT_TRUE(session.encode(std::span(stream).first(256)).ok());

    // Poison the checksum to force a desync, then recover.
    client.send(serve::protocol::makeEncode(
        session.id(), session.seq() + 1, session.checksum() ^ 0xBAD,
        std::span(stream).last(256)));
    serve::protocol::ErrCode code{};
    std::string message;
    ASSERT_TRUE(
        serve::protocol::parseError(client.recv(), code, message));
    ASSERT_EQ(code, serve::protocol::ErrCode::Desync);
    EXPECT_EQ(session.resync(), 1u);

    const std::string json = client.serverStats(true);
    const auto rows = flatten(json);
    std::set<std::string> kinds;
    for (const obs::JsonScalar &row : rows) {
        if (row.path.rfind("events.", 0) == 0 &&
            row.path.size() > 5 &&
            row.path.compare(row.path.size() - 5, 5, ".kind") == 0)
            kinds.insert(row.value);
    }
    // The acceptance sequence: open, the forced desync, and the
    // RESYNC recovery all appear in one dump, in record order.
    EXPECT_TRUE(kinds.count("session_open")) << json;
    EXPECT_TRUE(kinds.count("desync")) << json;
    EXPECT_TRUE(kinds.count("resync")) << json;

    // The recorder itself holds them in causal order.
    const auto events = server->flightRecorder().dump();
    std::vector<u8> sequence;
    for (const FlightEvent &e : events)
        sequence.push_back(e.kind);
    const auto open_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::SessionOpen));
    const auto desync_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::Desync));
    const auto resync_at = std::find(
        sequence.begin(), sequence.end(),
        static_cast<u8>(FlightEventKind::Resync));
    ASSERT_NE(open_at, sequence.end());
    ASSERT_NE(desync_at, sequence.end());
    ASSERT_NE(resync_at, sequence.end());
    EXPECT_LT(open_at, desync_at);
    EXPECT_LT(desync_at, resync_at);
}

TEST_F(ServeStats, DrainAndShedAreRecorded)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    (void)session;
    server->beginDrain();
    server->waitDrained();
    const auto events = server->flightRecorder().dump();
    const bool drained = std::any_of(
        events.begin(), events.end(), [](const FlightEvent &e) {
            return e.kind == static_cast<u8>(FlightEventKind::Drain);
        });
    EXPECT_TRUE(drained);
    server->stop();
}

TEST_F(ServeStats, EncodedBytesIdenticalWithConcurrentScraping)
{
    startServer();
    const std::vector<Word> stream =
        analysis::randomValues(4096, 0x0B5);
    constexpr std::size_t kBatch = 256;

    // A scraper hammers SERVER_STATS on its own connection for the
    // whole run; the encode stream must not notice.
    std::atomic<bool> stop{false};
    std::thread scraper([&] {
        serve::Client client = connect();
        while (!stop.load(std::memory_order_relaxed)) {
            const std::string json = client.serverStats(true);
            ASSERT_EQ(obs::jsonSyntaxError(json), std::nullopt)
                << json;
        }
    });

    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("ctx:16+4");
    coding::CodecSession local("ctx:16+4");
    for (std::size_t pos = 0; pos < stream.size(); pos += kBatch) {
        const std::span<const Word> batch(stream.data() + pos,
                                          kBatch);
        const auto remote = session.encode(batch);
        ASSERT_TRUE(remote.ok());
        std::vector<u64> expected;
        local.encodeBatch(batch, expected);
        ASSERT_EQ(remote.data, expected);
        ASSERT_EQ(remote.checksum, local.checksum());
    }
    stop.store(true);
    scraper.join();
    EXPECT_GT(registry.counter("serve.stats_requests").value(), 0u);
}

TEST_F(ServeStats, ReservedStatsFlagBitsStillReturnSnapshot)
{
    // Forward compatibility end to end: a SERVER_STATS request with
    // reserved flag bits set (a newer client speaking to this server)
    // still gets a complete, valid v1 snapshot.
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    ASSERT_TRUE(
        session.encode(analysis::randomValues(256, 0xF1A6)).ok());

    for (const u8 flags : {u8{0x02}, u8{0x82}, u8{0xFE}}) {
        Frame request = serve::protocol::makeServerStats(false);
        request.payload[0] = flags;
        client.send(request);
        const Frame response = client.recv();
        ASSERT_EQ(response.hdr.type,
                  static_cast<u8>(MsgType::ServerStatsOk))
            << "flags=" << unsigned{flags};
        std::string json;
        ASSERT_TRUE(
            serve::protocol::parseServerStatsOk(response, json));
        const auto rows = flatten(json);
        EXPECT_EQ(valueOf(rows, "schema"), "predbus.serverstats.v1");
        EXPECT_EQ(valueOf(rows, "counters.serve.batches"), "1");
    }
}

// -- live energy attribution --------------------------------------------

TEST_F(ServeStats, LiveEnergyMatchesOfflineEvaluator)
{
    // The acceptance contract of the serve.energy.* plane: the live
    // counters a scrape reports must equal an offline
    // StreamingEvaluator run over the same stream — exactly, not
    // approximately, because the session meters carry wire state
    // across batch boundaries just like the evaluator does.
    startServer();
    const std::vector<Word> stream =
        analysis::randomValues(4096, 0xE4E6);

    for (const std::string spec : {"window:8", "inv:2"}) {
        serve::Client client = connect();
        serve::ClientSession session = client.openOrThrow(spec);
        for (std::size_t pos = 0; pos < stream.size(); pos += 256) {
            ASSERT_TRUE(
                session.encode(std::span(stream).subspan(pos, 256))
                    .ok());
        }

        auto codec = coding::makeFromSpec(spec);
        coding::StreamingEvaluator offline(*codec);
        offline.feed(stream);
        const coding::CodingResult expect = offline.result();

        // Session-level STATS carries the same meters.
        const serve::protocol::SessionStats stats = session.stats();
        EXPECT_EQ(stats.metered_words, stream.size()) << spec;
        EXPECT_EQ(stats.base_energy.tau, expect.base.tau) << spec;
        EXPECT_EQ(stats.base_energy.kappa, expect.base.kappa) << spec;
        EXPECT_EQ(stats.coded_energy.tau, expect.coded.tau) << spec;
        EXPECT_EQ(stats.coded_energy.kappa, expect.coded.kappa)
            << spec;

        // Per-family counters aggregate the published deltas.
        const std::string family = spec.substr(0, spec.find(':'));
        const std::string prefix = "serve.energy." + family + ".";
        EXPECT_EQ(registry.counter(prefix + "words").value(),
                  stream.size());
        EXPECT_EQ(registry.counter(prefix + "base_tau").value(),
                  expect.base.tau);
        EXPECT_EQ(registry.counter(prefix + "base_kappa").value(),
                  expect.base.kappa);
        EXPECT_EQ(registry.counter(prefix + "coded_tau").value(),
                  expect.coded.tau);
        EXPECT_EQ(registry.counter(prefix + "coded_kappa").value(),
                  expect.coded.kappa);
        session.close();
    }

    // The scrape's "energy" section is derived from those counters:
    // per-family saved_pct must match removedFraction to the printed
    // precision, and the server-wide totals are the family sums.
    serve::Client client = connect();
    const auto rows = flatten(client.serverStats(false));
    auto codec = coding::makeFromSpec("window:8");
    coding::StreamingEvaluator offline(*codec);
    offline.feed(stream);
    const double expect_pct =
        offline.result().removedFraction(1.0) * 100.0;
    const std::string got =
        valueOf(rows, "energy.families.window.saved_pct");
    ASSERT_NE(got, "");
    EXPECT_NEAR(std::stod(got), expect_pct, 0.01);
    EXPECT_EQ(valueOf(rows, "energy.total.words"),
              std::to_string(2 * stream.size()));
}

TEST_F(ServeStats, DecodeBatchesAreMeteredToo)
{
    startServer();
    const std::vector<Word> stream =
        analysis::randomValues(1024, 0xDEC0);

    // Encode locally, decode through the server: the decode session's
    // meters must see the same base (decoded words) and coded (wire
    // states) streams the offline evaluator sees.
    coding::CodecSession local("window:8");
    std::vector<u64> states;
    local.encodeBatch(stream, states);

    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    for (std::size_t pos = 0; pos < states.size(); pos += 256) {
        const auto result =
            session.decode(std::span(states).subspan(pos, 256));
        ASSERT_TRUE(result.ok());
        for (std::size_t i = 0; i < result.data.size(); ++i)
            ASSERT_EQ(result.data[i], stream[pos + i]);
    }

    auto codec = coding::makeFromSpec("window:8");
    coding::StreamingEvaluator offline(*codec);
    offline.feed(stream);
    const coding::CodingResult expect = offline.result();
    const serve::protocol::SessionStats stats = session.stats();
    EXPECT_EQ(stats.metered_words, stream.size());
    EXPECT_EQ(stats.base_energy.tau, expect.base.tau);
    EXPECT_EQ(stats.base_energy.kappa, expect.base.kappa);
    EXPECT_EQ(stats.coded_energy.tau, expect.coded.tau);
    EXPECT_EQ(stats.coded_energy.kappa, expect.coded.kappa);
}

TEST_F(ServeStats, MeteringAndTracingNeverChangeBytes)
{
    // Byte-identical wire contract: the same stream through a fully
    // instrumented server (metering on, batch tracing on, every
    // frame trace-stamped) and through a stripped server (both off,
    // no trace contexts) produces identical states and checksums.
    const std::vector<Word> stream =
        analysis::randomValues(2048, 0xB17E);

    serve::ServerOptions bare;
    bare.meter_energy = false;
    bare.batch_trace_capacity = 0;
    startServer(bare);
    serve::Client bare_client = connect();
    serve::ClientSession bare_session =
        bare_client.openOrThrow("ctx:16+4");

    obs::Registry full_registry;
    const std::string full_path = socketPath();
    serve::ServerOptions full_opt;
    full_opt.unix_path = full_path;
    serve::Server full_server(full_opt, full_registry);
    serve::Client full_client =
        serve::Client::connectUnixSocket(full_path);
    serve::ClientSession full_session =
        full_client.openOrThrow("ctx:16+4");

    serve::protocol::TraceContext trace;
    trace.trace_id = 0x7e57ab1e0ddba11ull;
    for (std::size_t pos = 0; pos < stream.size(); pos += 256) {
        trace.span_id = pos + 1;
        const std::span<const Word> batch(stream.data() + pos, 256);
        const auto plain = bare_session.encode(batch);
        const auto traced = full_session.encode(batch, &trace);
        ASSERT_TRUE(plain.ok());
        ASSERT_TRUE(traced.ok());
        ASSERT_EQ(plain.data, traced.data);
        ASSERT_EQ(plain.checksum, traced.checksum);
    }
    // The stripped server really was stripped, and the instrumented
    // one really metered: the instrumentation is the only delta.
    EXPECT_EQ(registry.counter("serve.energy.words").value(), 0u);
    EXPECT_EQ(full_registry.counter("serve.energy.words").value(),
              stream.size());
}

TEST_F(ServeStats, BatchTailSamplerSurfacesTracedBatches)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("window:8");
    const std::vector<Word> stream =
        analysis::randomValues(1024, 0x7ACE);

    serve::protocol::TraceContext trace;
    trace.trace_id = 0xabcdef0123456789ull;
    for (std::size_t pos = 0; pos < stream.size(); pos += 256) {
        trace.span_id = 0x1000 + pos;
        ASSERT_TRUE(
            session.encode(std::span(stream).subspan(pos, 256), &trace)
                .ok());
    }

    // Events requested: the batch tail appears with the stamped ids
    // (16-digit hex strings), timing split, and per-batch energy.
    const auto rows = flatten(client.serverStats(true));
    EXPECT_EQ(valueOf(rows, "batches_recorded"), "4");
    EXPECT_EQ(valueOf(rows, "batches.0.trace_id"),
              "abcdef0123456789");
    EXPECT_EQ(valueOf(rows, "batches.0.span_id"),
              "0000000000001000");
    EXPECT_EQ(valueOf(rows, "batches.0.kind"), "encode");
    EXPECT_EQ(valueOf(rows, "batches.0.family"), "window");
    EXPECT_EQ(valueOf(rows, "batches.0.words"), "256");
    EXPECT_NE(valueOf(rows, "batches.0.codec_ns"), "");
    EXPECT_NE(valueOf(rows, "batches.0.queue_ns"), "");
    EXPECT_NE(valueOf(rows, "batches.0.base_tau"), "");
    EXPECT_NE(valueOf(rows, "batches.0.saved_pct"), "");

    // The queue-wait histogram saw every batch.
    EXPECT_EQ(valueOf(rows, "histograms.serve.queue_wait_ns.count"),
              "4");

    // Without --events the tail stays out of the payload.
    const auto quiet = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(quiet, "batches_recorded"), "4");
    EXPECT_EQ(valueOf(quiet, "batches.0.trace_id"), "");
}

TEST_F(ServeStats, StatsJsonDirectDumpIsValid)
{
    startServer();
    serve::Client client = connect();
    serve::ClientSession session = client.openOrThrow("inv:2");
    const std::vector<Word> stream =
        analysis::randomValues(256, 0x51);
    ASSERT_TRUE(session.encode(stream).ok());

    // The SIGUSR1 path calls statsJson(true) directly (no socket).
    const std::string json = server->statsJson(true);
    const auto rows = flatten(json);
    EXPECT_EQ(valueOf(rows, "schema"), "predbus.serverstats.v1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.sessions.inv"), "1");
    EXPECT_EQ(valueOf(rows, "events.0.kind"), "session_open");
    EXPECT_EQ(valueOf(rows, "events.0.label"), "inv:2");
}

// -- session store telemetry --------------------------------------------

TEST_F(ServeStats, SessionSpillAndResumeSurfaceInStoreTelemetry)
{
    // A resident budget too small for even one session forces every
    // session swap through the disk tier: each batch resumes its own
    // session and evicts the other. The wire bytes must not notice,
    // and the spill/resume traffic must surface in the serve.store.*
    // metrics and the flight recorder.
    serve::ServerOptions opt;
    opt.workers = 1;
    opt.store_resident_bytes = 1;
    startServer(opt);
    serve::Client client = connect();
    serve::ClientSession a = client.openOrThrow("window:8");
    serve::ClientSession b = client.openOrThrow("ctx:16+4");
    coding::CodecSession mirror_a("window:8");
    coding::CodecSession mirror_b("ctx:16+4");

    const std::vector<Word> stream =
        analysis::randomValues(2048, 0x5B11);
    for (std::size_t pos = 0; pos < stream.size(); pos += 256) {
        const std::span<const Word> batch(stream.data() + pos, 256);
        for (auto &[session, mirror] :
             {std::pair<serve::ClientSession &,
                        coding::CodecSession &>{a, mirror_a},
              {b, mirror_b}}) {
            const auto remote = session.encode(batch);
            ASSERT_TRUE(remote.ok());
            std::vector<u64> expected;
            mirror.encodeBatch(batch, expected);
            ASSERT_EQ(remote.data, expected);
            ASSERT_EQ(remote.checksum, mirror.checksum());
        }
    }

    EXPECT_GT(registry.counter("serve.store.spills").value(), 0u);
    EXPECT_GT(registry.counter("serve.store.resumes").value(), 0u);
    EXPECT_EQ(registry.counter("serve.store.spills").value(),
              registry.counter("serve.store.evictions").value());

    // One session resident (the last one touched), one on disk.
    const auto rows = flatten(client.serverStats(false));
    EXPECT_EQ(valueOf(rows, "gauges.serve.store.resident_sessions"),
              "1");
    EXPECT_EQ(valueOf(rows, "gauges.serve.store.spilled_sessions"),
              "1");
    EXPECT_NE(valueOf(rows, "gauges.serve.store.spilled_bytes"), "0");
    EXPECT_NE(
        valueOf(rows, "histograms.serve.store.resume_ns.count"), "");

    // The flight recorder saw both directions, labelled with the
    // owning shard and the snapshot size.
    bool spill_seen = false;
    bool resume_seen = false;
    for (const FlightEvent &e : server->flightRecorder().dump()) {
        const std::string label = e.label;
        if (e.kind ==
            static_cast<u8>(FlightEventKind::SessionSpill)) {
            spill_seen = true;
            EXPECT_EQ(label.rfind("shard=", 0), 0u) << label;
            EXPECT_NE(label.find(" b="), std::string::npos) << label;
        }
        if (e.kind ==
            static_cast<u8>(FlightEventKind::SessionResume)) {
            resume_seen = true;
            EXPECT_EQ(label.rfind("shard=", 0), 0u) << label;
        }
    }
    EXPECT_TRUE(spill_seen);
    EXPECT_TRUE(resume_seen);

    // Session STATS still reads coherently through a resume.
    const serve::protocol::SessionStats stats = a.stats();
    EXPECT_EQ(stats.seq, a.seq());
    EXPECT_EQ(stats.checksum, mirror_a.checksum());
}

} // namespace
