#include "sim/bpred.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace predbus::sim
{
namespace
{

TEST(Bpred, InitiallyWeaklyTaken)
{
    Bpred b(BpredConfig{});
    EXPECT_TRUE(b.predict(0x1000, false, false).taken);
}

TEST(Bpred, LearnsNotTaken)
{
    Bpred b(BpredConfig{});
    for (int i = 0; i < 4; ++i)
        b.update(0x1000, false, 0, true);
    EXPECT_FALSE(b.predict(0x1000, false, false).taken);
}

TEST(Bpred, SaturatesAndRecovers)
{
    Bpred b(BpredConfig{});
    for (int i = 0; i < 10; ++i)
        b.update(0x1000, true, 0x2000, true);
    // One not-taken shouldn't flip a saturated counter.
    b.update(0x1000, false, 0, true);
    EXPECT_TRUE(b.predict(0x1000, false, false).taken);
    b.update(0x1000, false, 0, true);
    b.update(0x1000, false, 0, true);
    EXPECT_FALSE(b.predict(0x1000, false, false).taken);
}

TEST(Bpred, BtbProvidesTarget)
{
    Bpred b(BpredConfig{});
    EXPECT_FALSE(b.predict(0x1000, true, false).target_valid);
    b.update(0x1000, true, 0x4444, false);
    const Prediction p = b.predict(0x1000, true, false);
    EXPECT_TRUE(p.target_valid);
    EXPECT_EQ(p.target, 0x4444u);
}

TEST(Bpred, BtbTagsDistinguishAliases)
{
    BpredConfig cfg;
    cfg.btb_entries = 16;
    Bpred b(cfg);
    b.update(0x1000, true, 0xaaaa, false);
    // Aliased PC (same index, different tag) must not get that target.
    const Addr alias = 0x1000 + 16 * 4;
    EXPECT_FALSE(b.predict(alias, true, false).target_valid);
}

TEST(Bpred, RasPredictsReturns)
{
    Bpred b(BpredConfig{});
    b.pushReturn(0x5678);
    const Prediction p = b.predict(0x3000, true, true);
    EXPECT_TRUE(p.target_valid);
    EXPECT_EQ(p.target, 0x5678u);
    // Stack popped: next return with empty RAS has no target.
    EXPECT_FALSE(b.predict(0x3000, true, true).target_valid);
}

TEST(Bpred, RasNested)
{
    Bpred b(BpredConfig{});
    b.pushReturn(0x100);
    b.pushReturn(0x200);
    EXPECT_EQ(b.predict(0, true, true).target, 0x200u);
    EXPECT_EQ(b.predict(0, true, true).target, 0x100u);
}

TEST(Bpred, RasOverflowKeepsNewest)
{
    BpredConfig cfg;
    cfg.ras_entries = 2;
    Bpred b(cfg);
    b.pushReturn(0x1);
    b.pushReturn(0x2);
    b.pushReturn(0x3);  // drops 0x1
    EXPECT_EQ(b.predict(0, true, true).target, 0x3u);
    EXPECT_EQ(b.predict(0, true, true).target, 0x2u);
    EXPECT_FALSE(b.predict(0, true, true).target_valid);
}

TEST(Bpred, StatsAccuracy)
{
    Bpred b(BpredConfig{});
    b.predict(0, false, false);
    b.predict(0, false, false);
    b.recordOutcome(true, true);
    b.recordOutcome(false, false);
    EXPECT_DOUBLE_EQ(b.stats().accuracy(), 0.5);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // A strictly alternating branch defeats a bimodal predictor but is
    // trivial for gshare once the history register captures the phase.
    BpredConfig bimodal_cfg;
    BpredConfig gshare_cfg;
    gshare_cfg.kind = BpredKind::Gshare;
    gshare_cfg.history_bits = 8;

    auto accuracy = [](Bpred &b) {
        int correct = 0;
        const int n = 2000;
        for (int i = 0; i < n; ++i) {
            const bool actual = (i % 2) == 0;
            const Prediction p = b.predict(0x1000, false, false);
            correct += (p.taken == actual);
            b.update(0x1000, actual, 0x2000, true);
        }
        return static_cast<double>(correct) / n;
    };

    Bpred bimodal(bimodal_cfg);
    Bpred gshare(gshare_cfg);
    const double acc_bimodal = accuracy(bimodal);
    const double acc_gshare = accuracy(gshare);
    EXPECT_LT(acc_bimodal, 0.7);   // bimodal dithers
    EXPECT_GT(acc_gshare, 0.95);   // gshare locks on
}

TEST(Gshare, LearnsPeriodicPattern)
{
    BpredConfig cfg;
    cfg.kind = BpredKind::Gshare;
    cfg.history_bits = 10;
    Bpred b(cfg);
    // Pattern TTNTTN... period 3.
    int correct = 0;
    const int n = 3000;
    for (int i = 0; i < n; ++i) {
        const bool actual = (i % 3) != 2;
        const Prediction p = b.predict(0x4000, false, false);
        correct += (p.taken == actual);
        b.update(0x4000, actual, 0x5000, true);
    }
    EXPECT_GT(static_cast<double>(correct) / n, 0.9);
}


TEST(Bpred, NonPowerOfTwoRejected)
{
    BpredConfig cfg;
    cfg.bimodal_entries = 1000;
    EXPECT_THROW(Bpred{cfg}, FatalError);
}

} // namespace
} // namespace predbus::sim
