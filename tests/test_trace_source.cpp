/**
 * @file
 * Streaming trace sources: chunked reads must reproduce exactly the
 * values() of the materialized path, including the out-of-order file
 * fallback, and the trace cache write must be atomic.
 */

#include <filesystem>
#include <gtest/gtest.h>

#include "analysis/suite.h"
#include "coding/bus_energy.h"
#include "coding/factory.h"
#include "trace/trace_io.h"
#include "trace/trace_source.h"

using namespace predbus;

namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::path(::testing::TempDir()) / name)
        .string();
}

trace::ValueTrace
rampTrace(std::size_t n, bool ascending)
{
    trace::ValueTrace t;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t k = ascending ? i : n - 1 - i;
        t.post(static_cast<Cycle>(k), static_cast<Word>(k * 7 + 3));
    }
    return t;
}

std::vector<Word>
readChunked(trace::TraceSource &source, std::size_t chunk)
{
    std::vector<Word> out;
    std::vector<Word> buf(chunk);
    std::size_t got;
    while ((got = source.read(buf)) != 0)
        out.insert(out.end(), buf.begin(),
                   buf.begin() + static_cast<std::ptrdiff_t>(got));
    return out;
}

TEST(TraceSource, SpanAndVectorMatchDrain)
{
    const std::vector<Word> values = analysis::randomValues(1000, 42);

    trace::SpanTraceSource span(values);
    EXPECT_EQ(readChunked(span, 7), values);
    span.rewind();
    EXPECT_EQ(trace::drain(span), values);
    ASSERT_TRUE(span.sizeHint().has_value());
    EXPECT_EQ(*span.sizeHint(), values.size());

    trace::VectorTraceSource vec(values);
    EXPECT_EQ(readChunked(vec, 333), values);
    vec.rewind();
    EXPECT_EQ(trace::drain(vec), values);
}

TEST(TraceSource, FileStreamsInOrderTrace)
{
    const std::string path = tempPath("stream_inorder.pbtr");
    trace::ValueTrace t = rampTrace(2500, /*ascending=*/true);
    trace::saveTrace(path, t);

    trace::FileTraceSource source(path);
    ASSERT_TRUE(source.sizeHint().has_value());
    EXPECT_EQ(*source.sizeHint(), t.size());
    EXPECT_EQ(readChunked(source, 64), t.values());

    // rewind() restarts from the first value.
    source.rewind();
    EXPECT_EQ(trace::drain(source), t.values());
}

TEST(TraceSource, FileFallsBackOnOutOfOrderTrace)
{
    // saveTrace preserves raw event order, so an unfinalized trace
    // posted backwards produces an out-of-order file; streaming must
    // still yield the time-sorted order loadTrace produces.
    const std::string path = tempPath("stream_outoforder.pbtr");
    trace::ValueTrace t = rampTrace(1200, /*ascending=*/false);
    trace::saveTrace(path, t);

    const auto loaded = trace::loadTrace(path);
    ASSERT_TRUE(loaded.has_value());

    trace::FileTraceSource source(path);
    EXPECT_EQ(readChunked(source, 100), loaded->values());
    source.rewind();
    EXPECT_EQ(trace::drain(source), loaded->values());
}

TEST(TraceSource, MissingFileThrows)
{
    EXPECT_THROW(
        trace::FileTraceSource(tempPath("no_such_trace.pbtr")),
        FatalError);
}

TEST(TraceIo, SaveLeavesNoTempFiles)
{
    const std::string dir =
        tempPath("atomic_save_dir");
    std::filesystem::create_directories(dir);
    const std::string path =
        (std::filesystem::path(dir) / "trace.pbtr").string();
    trace::saveTrace(path, rampTrace(100, true));

    std::size_t entries = 0;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir)) {
        ++entries;
        EXPECT_EQ(entry.path().filename().string(), "trace.pbtr");
    }
    EXPECT_EQ(entries, 1u);

    // Overwrite is atomic too: same invariant after a second save.
    trace::saveTrace(path, rampTrace(50, true));
    const auto loaded = trace::loadTrace(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), 50u);
}

TEST(StreamingEvaluator, ChunkedFeedMatchesOneShotEvaluate)
{
    const std::vector<Word> values = analysis::randomValues(5000, 7);

    auto codec_a = coding::makeWindow(8);
    const coding::CodingResult one_shot =
        coding::evaluate(*codec_a, values);

    auto codec_b = coding::makeWindow(8);
    coding::StreamingEvaluator eval(*codec_b);
    for (std::size_t pos = 0; pos < values.size(); pos += 997) {
        const std::size_t n = std::min<std::size_t>(
            997, values.size() - pos);
        eval.feed({values.data() + pos, n});
    }
    const coding::CodingResult chunked = eval.result();

    EXPECT_EQ(chunked.words, one_shot.words);
    EXPECT_EQ(chunked.base.tau, one_shot.base.tau);
    EXPECT_EQ(chunked.base.kappa, one_shot.base.kappa);
    EXPECT_EQ(chunked.coded.tau, one_shot.coded.tau);
    EXPECT_EQ(chunked.coded.kappa, one_shot.coded.kappa);
    EXPECT_EQ(chunked.ops.cycles, one_shot.ops.cycles);
    EXPECT_EQ(chunked.ops.hits, one_shot.ops.hits);
    EXPECT_EQ(chunked.ops.raw_sends, one_shot.ops.raw_sends);
}

} // namespace
