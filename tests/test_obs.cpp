/**
 * @file
 * The observability subsystem: metrics registry concurrency and naming,
 * scoped-timer tracing and Chrome JSON export, the metrics report
 * (structure determinism across job counts), the JSON syntax checker,
 * the leveled logger, and the runner's failure aggregation.
 */

#include <algorithm>
#include <atomic>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>
#include <gtest/gtest.h>

#include "analysis/experiment.h"
#include "analysis/runner.h"
#include "coding/factory.h"
#include "common/log.h"
#include "common/rng.h"
#include "obs/json_check.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracing.h"

using namespace predbus;

namespace
{

TEST(Metrics, CounterSumsExactlyUnderContention)
{
    obs::Registry registry;
    obs::Counter &c = registry.counter("test.counter.contended");
    constexpr unsigned kThreads = 8;
    constexpr u64 kIncsPerThread = 100000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&c] {
            for (u64 i = 0; i < kIncsPerThread; ++i)
                c.inc();
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kIncsPerThread);
}

TEST(Metrics, HistogramCountExactUnderContention)
{
    obs::Registry registry;
    obs::Histogram &h = registry.histogram("test.histogram.dur_ns");
    constexpr unsigned kThreads = 8;
    constexpr u64 kPerThread = 5000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&h, t] {
            for (u64 i = 0; i < kPerThread; ++i)
                h.record(static_cast<double>(t * kPerThread + i));
        });
    }
    for (auto &t : threads)
        t.join();
    const obs::HistogramStats stats = h.stats();
    EXPECT_EQ(stats.count, kThreads * kPerThread);
    EXPECT_EQ(stats.min, 0.0);
    EXPECT_EQ(stats.max,
              static_cast<double>(kThreads * kPerThread - 1));
    // Mean of 0..N-1 is (N-1)/2.
    EXPECT_NEAR(stats.mean,
                static_cast<double>(kThreads * kPerThread - 1) / 2.0,
                1e-6);
    EXPECT_GT(stats.p95, stats.p50);
}

TEST(Metrics, HistogramPercentilesExact)
{
    obs::Registry registry;
    obs::Histogram &h = registry.histogram("test.percentiles.dur_ns");
    for (int i = 1; i <= 100; ++i)
        h.record(static_cast<double>(i));
    const obs::HistogramStats stats = h.stats();
    EXPECT_EQ(stats.count, 100u);
    EXPECT_NEAR(stats.p50, 50.5, 0.51);
    EXPECT_NEAR(stats.p95, 95.0, 1.01);
    EXPECT_NEAR(stats.p99, 99.0, 1.01);
}

TEST(Metrics, SameNameReturnsSameObject)
{
    obs::Registry registry;
    obs::Counter &a = registry.counter("test.same.name");
    obs::Counter &b = registry.counter("test.same.name");
    EXPECT_EQ(&a, &b);
    a.inc(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, InvalidNamesPanic)
{
    obs::Registry registry;
    EXPECT_THROW(registry.counter(""), PanicError);
    EXPECT_THROW(registry.counter("noDots"), PanicError);
    EXPECT_THROW(registry.counter("Upper.case"), PanicError);
    EXPECT_THROW(registry.counter("trailing.dot."), PanicError);
    EXPECT_THROW(registry.counter(".leading.dot"), PanicError);
    EXPECT_THROW(registry.counter("two..dots"), PanicError);
    EXPECT_THROW(registry.counter("bad.char-here"), PanicError);
    EXPECT_THROW(registry.gauge("bad name.space"), PanicError);
    EXPECT_THROW(registry.histogram("BAD.ns"), PanicError);
}

TEST(Metrics, ValidNameFollowsConvention)
{
    EXPECT_TRUE(obs::Registry::validName("runner.cell_ns"));
    EXPECT_TRUE(obs::Registry::validName("trace.cache.hits"));
    EXPECT_TRUE(obs::Registry::validName("coding.window8.dict_hits"));
    EXPECT_FALSE(obs::Registry::validName("single"));
    EXPECT_FALSE(obs::Registry::validName("has.Upper"));
    EXPECT_FALSE(obs::Registry::validName("has.da-sh"));
}

TEST(Metrics, KindConflictPanics)
{
    obs::Registry registry;
    registry.counter("test.kind.conflict");
    EXPECT_THROW(registry.gauge("test.kind.conflict"), PanicError);
    EXPECT_THROW(registry.histogram("test.kind.conflict"), PanicError);
}

TEST(Metrics, SnapshotsAreSortedByName)
{
    obs::Registry registry;
    registry.counter("test.z.last");
    registry.counter("test.a.first");
    registry.counter("test.m.middle");
    const auto counters = registry.counters();
    ASSERT_EQ(counters.size(), 3u);
    EXPECT_TRUE(std::is_sorted(
        counters.begin(), counters.end(),
        [](const auto &a, const auto &b) { return a.first < b.first; }));
}

TEST(Metrics, SegmentSanitizesArbitraryLabels)
{
    EXPECT_EQ(obs::metricSegment("Window-8"), "window_8");
    EXPECT_EQ(obs::metricSegment("ctx value"), "ctx_value");
    EXPECT_EQ(obs::metricSegment("inv2"), "inv2");
    EXPECT_EQ(obs::metricSegment(""), "_");
    EXPECT_TRUE(obs::Registry::validName(
        "coding." + obs::metricSegment("Any Codec!") + ".hits"));
}

TEST(Tracing, ScopedTimerNestingRecordsBothSpans)
{
    obs::TraceBuffer buffer(16);
    buffer.setEnabled(true);
    {
        const obs::ScopedTimer outer("outer", &buffer);
        {
            const obs::ScopedTimer inner("inner", &buffer);
        }
    }
    const auto events = buffer.events();
    ASSERT_EQ(events.size(), 2u);
    // Destruction order records inner first.
    EXPECT_EQ(events[0].name, "inner");
    EXPECT_EQ(events[1].name, "outer");
    // The child span nests inside the parent's interval.
    EXPECT_GE(events[0].start_ns, events[1].start_ns);
    EXPECT_LE(events[0].start_ns + events[0].dur_ns,
              events[1].start_ns + events[1].dur_ns);
}

TEST(Tracing, DisabledBufferRecordsNothing)
{
    obs::TraceBuffer buffer(16);
    {
        const obs::ScopedTimer timer("ignored", &buffer);
    }
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 0u);
}

TEST(Tracing, BoundedBufferCountsDrops)
{
    obs::TraceBuffer buffer(4);
    buffer.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        buffer.record("span", 0, 1);
    EXPECT_EQ(buffer.size(), 4u);
    EXPECT_EQ(buffer.dropped(), 6u);
}

TEST(Tracing, TimerFeedsHistogramWithoutBuffer)
{
    obs::Registry registry;
    obs::Histogram &h = registry.histogram("test.timer.dur_ns");
    obs::TraceBuffer buffer(16);  // stays disabled
    {
        const obs::ScopedTimer timer("timed", &buffer, &h);
    }
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Tracing, ChromeJsonIsValidAndComplete)
{
    obs::TraceBuffer buffer(8);
    buffer.setEnabled(true);
    {
        const obs::ScopedTimer a("phase \"quoted\"\\slash", &buffer);
        const obs::ScopedTimer b("phase:two", &buffer);
    }
    for (int i = 0; i < 20; ++i)
        buffer.record("overflow", 0, 1);
    std::ostringstream os;
    buffer.writeChromeJson(os);
    const std::string json = os.str();
    EXPECT_EQ(obs::jsonSyntaxError(json), std::nullopt)
        << obs::jsonSyntaxError(json).value_or("") << "\n"
        << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"droppedSpans\""), std::string::npos);
}

TEST(JsonCheck, AcceptsValidDocuments)
{
    EXPECT_EQ(obs::jsonSyntaxError("{}"), std::nullopt);
    EXPECT_EQ(obs::jsonSyntaxError("[1, 2.5, -3e4, 1e-2]"),
              std::nullopt);
    EXPECT_EQ(obs::jsonSyntaxError(
                  R"({"a": [true, false, null], "b": "x\n\"y\""})"),
              std::nullopt);
    EXPECT_EQ(obs::jsonSyntaxError(R"("é")"), std::nullopt);
}

TEST(JsonCheck, RejectsInvalidDocuments)
{
    EXPECT_NE(obs::jsonSyntaxError(""), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("{"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("{\"a\": }"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("[1, ]"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("[1] trailing"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("nul"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("01"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("\"unterminated"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError("NaN"), std::nullopt);
}

/** Key set (sorted names) of every metric in @p registry. */
std::set<std::string>
metricNames(const obs::Registry &registry)
{
    std::set<std::string> names;
    for (const auto &[name, value] : registry.counters())
        names.insert(name);
    for (const auto &[name, value] : registry.gauges())
        names.insert(name);
    for (const auto &[name, stats] : registry.histograms())
        names.insert(name);
    return names;
}

TEST(Report, StructureIdenticalAcrossJobCounts)
{
    // The same grid through one- and eight-job runners must register
    // the same metric names — report structure is scheduling-free.
    obs::Registry reg1, reg8;
    const analysis::Runner one(1, &reg1);
    const analysis::Runner eight(8, &reg8);
    const auto work = [](std::size_t i) {
        volatile double x = 0;
        for (std::size_t k = 0; k < 100 * (i % 7 + 1); ++k)
            x = x + static_cast<double>(k);
    };
    one.forEachIndex(64, work);
    eight.forEachIndex(64, work);
    EXPECT_EQ(metricNames(reg1), metricNames(reg8));

    // Values agree where scheduling can't matter.
    const auto counter = [](const obs::Registry &r,
                            const std::string &name) {
        for (const auto &[n, v] : r.counters())
            if (n == name)
                return v;
        return u64{0};
    };
    EXPECT_EQ(counter(reg1, "runner.cells_done"), 64u);
    EXPECT_EQ(counter(reg8, "runner.cells_done"), 64u);
    EXPECT_EQ(counter(reg1, "runner.cells_failed"), 0u);
    EXPECT_EQ(counter(reg8, "runner.cells_failed"), 0u);
}

TEST(Report, JsonIsValidAndCarriesManifest)
{
    obs::Registry registry;
    registry.counter("test.report.hits").inc(7);
    registry.gauge("test.report.jobs").set(4);
    registry.histogram("test.report.cell_ns").record(1234.5);

    obs::ReportContext ctx;
    ctx.tool = "test_obs";
    ctx.config = {{"filters", "smoke*"}, {"jobs", "4"}};
    ctx.experiment_wall_ms = {{"smoke_engine", 12.5}};

    std::ostringstream os;
    obs::writeMetricsReport(os, ctx, registry);
    const std::string json = os.str();

    EXPECT_EQ(obs::jsonSyntaxError(json), std::nullopt)
        << obs::jsonSyntaxError(json).value_or("") << "\n"
        << json;
    for (const char *needle :
         {"\"schema\"", "\"predbus.metrics.v1\"", "\"build\"",
          "\"compiler\"", "\"flags\"", "\"git\"", "\"config\"",
          "\"experiments\"", "\"smoke_engine\"",
          "\"test.report.hits\": 7", "\"test.report.jobs\": 4",
          "\"test.report.cell_ns\"", "\"p50\"", "\"p95\"",
          "\"p99\""}) {
        EXPECT_NE(json.find(needle), std::string::npos)
            << "missing " << needle << " in\n"
            << json;
    }
    EXPECT_FALSE(obs::buildInfo().compiler.empty());
}

TEST(Report, FormatOutputByteIdenticalWithObservabilityOn)
{
    // Turning on tracing and flushing metrics must not perturb the
    // experiment emitters: rendered output is byte-identical.
    const analysis::Experiment *exp =
        analysis::Registry::instance().find("smoke_engine");
    ASSERT_NE(exp, nullptr);
    const analysis::Runner runner(2);

    const auto render = [&](analysis::Format format) {
        std::ostringstream os;
        analysis::emitExperiment(os, exp->name, exp->run(runner),
                                 format);
        return os.str();
    };

    const std::string table_off = render(analysis::Format::Table);
    const std::string csv_off = render(analysis::Format::Csv);
    const std::string json_off = render(analysis::Format::Json);

    obs::TraceBuffer::global().setEnabled(true);
    const std::string table_on = render(analysis::Format::Table);
    const std::string csv_on = render(analysis::Format::Csv);
    const std::string json_on = render(analysis::Format::Json);
    obs::TraceBuffer::global().setEnabled(false);
    obs::TraceBuffer::global().clear();

    EXPECT_EQ(table_off, table_on);
    EXPECT_EQ(csv_off, csv_on);
    EXPECT_EQ(json_off, json_on);
}

TEST(RunnerFailures, SingleFailureRethrownUnchanged)
{
    obs::Registry registry;
    const analysis::Runner runner(4, &registry);
    try {
        runner.forEachIndex(100, [](std::size_t i) {
            if (i == 37)
                fatal("cell ", i, " failed");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "cell 37 failed");
    }
}

TEST(RunnerFailures, MultiFailureReportsCountAndIndices)
{
    obs::Registry registry;
    const analysis::Runner runner(4, &registry);
    try {
        runner.forEachIndex(100, [](std::size_t i) {
            if (i % 10 == 3)
                fatal("cell ", i, " failed");
        });
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        // First failure by index leads; the summary names the rest.
        EXPECT_NE(msg.find("cell 3 failed"), std::string::npos) << msg;
        EXPECT_NE(msg.find("10 of 100 cells failed"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("indices: 3, 13, 23"), std::string::npos)
            << msg;
    }
    u64 failed = 0;
    for (const auto &[name, value] : registry.counters())
        if (name == "runner.cells_failed")
            failed = value;
    EXPECT_EQ(failed, 10u);
}

TEST(RunnerFailures, PanicTypePreservedInAggregate)
{
    obs::Registry registry;
    const analysis::Runner runner(4, &registry);
    EXPECT_THROW(runner.forEachIndex(
                     20,
                     [](std::size_t i) {
                         if (i % 2 == 0)
                             panic("invariant broke at ", i);
                     }),
                 PanicError);
}

TEST(Metrics, TranscoderResetRebaselinesStatsSink)
{
    // Regression: reset() used to clear op_counts without touching
    // the publish baseline, so a reused transcoder's next
    // flushStats() computed current - baseline with baseline >
    // current and published a garbage (or, with the wraparound
    // guard, double-counted) delta unless the caller remembered to
    // call syncStatsBaseline() too. reset() now re-baselines itself.
    obs::Registry registry;
    auto codec = coding::makeFromSpec("window:8");
    codec->setStatsSink(registry, "w8");
    obs::Counter &cycles = registry.counter("coding.w8.cycles");

    Rng rng(4242);
    const auto run = [&](std::size_t n) {
        for (std::size_t i = 0; i < n; ++i)
            codec->encode(rng.next32());
    };

    run(1000);
    codec->flushStats();
    EXPECT_EQ(cycles.value(), 1000u);

    codec->reset();  // no syncStatsBaseline() — must not matter
    run(1500);
    codec->flushStats();
    EXPECT_EQ(cycles.value(), 2500u) << "stale baseline after reset";

    codec->reset();
    run(200);
    codec->flushStats();
    EXPECT_EQ(cycles.value(), 2700u);
}

TEST(Metrics, HistogramBucketBoundsEncloseValues)
{
    // Spot values across the full range land in a bucket whose
    // bounds enclose them, and the bounds keep the documented
    // 2^-kSubBits relative width (quantile error <= +/-1.6%).
    for (const double v :
         {1.0, 1.5, 2.0, 3.14159, 1000.0, 1e6, 123456789.0, 1e15,
          9e18}) {
        const std::size_t idx = obs::Histogram::bucketIndex(v);
        ASSERT_GT(idx, 0u) << v;
        ASSERT_LT(idx, obs::Histogram::kBuckets) << v;
        const double lo = obs::Histogram::bucketLowerBound(idx);
        const double hi = obs::Histogram::bucketUpperBound(idx);
        EXPECT_LE(lo, v) << v;
        EXPECT_GT(hi, v) << v;
        EXPECT_LE((hi - lo) / lo,
                  1.0 / obs::Histogram::kSubBuckets + 1e-9)
            << v;
    }
    // Everything below 1 (negatives, zero, NaN) shares bucket 0;
    // everything at or above 2^64 clamps into the top bucket.
    EXPECT_EQ(obs::Histogram::bucketIndex(0.99), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(0.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(-5.0), 0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(
                  std::numeric_limits<double>::quiet_NaN()),
              0u);
    EXPECT_EQ(obs::Histogram::bucketIndex(0x1p64),
              obs::Histogram::kBuckets - 1);
    EXPECT_EQ(obs::Histogram::bucketIndex(1e300),
              obs::Histogram::kBuckets - 1);
    EXPECT_EQ(obs::Histogram::bucketIndex(1.0), 1u);
}

TEST(Metrics, HistogramHammerMatchesSingleThreadedReference)
{
    // The same multiset of samples recorded by 8 racing threads and
    // by one thread must produce identical snapshots: exact count,
    // sum, min, max, and bucket-for-bucket equality. Integer-valued
    // samples keep the CAS-accumulated sum order-independent.
    obs::Registry registry;
    obs::Histogram &hammered =
        registry.histogram("test.hammer.dur_ns");
    obs::Histogram &reference =
        registry.histogram("test.reference.dur_ns");

    constexpr unsigned kThreads = 8;
    constexpr u64 kPerThread = 50000;
    const auto sample = [](unsigned t, u64 i) {
        return static_cast<double>((t * kPerThread + i) % 9973 + 1);
    };

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&hammered, &sample, t] {
            for (u64 i = 0; i < kPerThread; ++i)
                hammered.record(sample(t, i));
        });
    }
    for (unsigned t = 0; t < kThreads; ++t)
        for (u64 i = 0; i < kPerThread; ++i)
            reference.record(sample(t, i));
    for (auto &t : threads)
        t.join();

    const obs::HistogramSnapshot a = hammered.snapshot();
    const obs::HistogramSnapshot b = reference.snapshot();
    EXPECT_EQ(a.count, kThreads * kPerThread);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.sum, b.sum);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.buckets, b.buckets);

    const obs::HistogramStats sa = a.stats();
    const obs::HistogramStats sb = b.stats();
    EXPECT_EQ(sa.p50, sb.p50);
    EXPECT_EQ(sa.p95, sb.p95);
    EXPECT_EQ(sa.p99, sb.p99);
    // Percentiles stay within the documented bucket tolerance of the
    // true order statistics of 1..9973 (uniform).
    EXPECT_NEAR(sa.p50, 9973 * 0.50, 9973 * 0.017);
    EXPECT_NEAR(sa.p95, 9973 * 0.95, 9973 * 0.017);
    EXPECT_NEAR(sa.p99, 9973 * 0.99, 9973 * 0.017);
}

TEST(Metrics, HistogramSnapshotDuringWritesIsConsistent)
{
    // Snapshots taken while writers are mid-record must always be
    // internally consistent: monotonically growing totals, ordered
    // quantiles inside [min, max], and no torn values.
    obs::Registry registry;
    obs::Histogram &h = registry.histogram("test.live.dur_ns");
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < 4; ++t) {
        writers.emplace_back([&h, &stop] {
            u64 i = 1;
            while (!stop.load(std::memory_order_relaxed))
                h.record(static_cast<double>(i++ % 100000 + 1));
        });
    }

    u64 prev_total = 0;
    u64 prev_count = 0;
    for (int round = 0; round < 200; ++round) {
        const obs::HistogramSnapshot snap = h.snapshot();
        u64 total = 0;
        for (const u64 b : snap.buckets)
            total += b;
        EXPECT_GE(total, prev_total);
        EXPECT_GE(snap.count, prev_count);
        prev_total = total;
        prev_count = snap.count;
        if (total == 0)
            continue;
        const obs::HistogramStats stats = snap.stats();
        EXPECT_LE(stats.p50, stats.p95);
        EXPECT_LE(stats.p95, stats.p99);
        EXPECT_GE(stats.p50, snap.min);
        EXPECT_LE(stats.p99, snap.max);
    }
    stop.store(true);
    for (auto &t : writers)
        t.join();
}

TEST(Metrics, HistogramSnapshotMergeIsAssociative)
{
    obs::Registry registry;
    obs::Histogram &ha = registry.histogram("test.merge.a_ns");
    obs::Histogram &hb = registry.histogram("test.merge.b_ns");
    obs::Histogram &hc = registry.histogram("test.merge.c_ns");
    for (int i = 1; i <= 100; ++i)
        ha.record(static_cast<double>(i));
    for (int i = 500; i <= 600; ++i)
        hb.record(static_cast<double>(i));
    hc.record(7.0);

    // (a+b)+c == a+(b+c), and both see every sample exactly once.
    obs::HistogramSnapshot left = ha.snapshot();
    left.merge(hb.snapshot());
    left.merge(hc.snapshot());
    obs::HistogramSnapshot bc = hb.snapshot();
    bc.merge(hc.snapshot());
    obs::HistogramSnapshot right = ha.snapshot();
    right.merge(bc);

    EXPECT_EQ(left.count, 202u);
    EXPECT_EQ(left.count, right.count);
    EXPECT_EQ(left.sum, right.sum);
    EXPECT_EQ(left.min, 1.0);
    EXPECT_EQ(left.max, 600.0);
    EXPECT_EQ(left.min, right.min);
    EXPECT_EQ(left.max, right.max);
    EXPECT_EQ(left.buckets, right.buckets);

    // Merging an empty snapshot is the identity (count==0 min/max
    // must not poison the result).
    obs::HistogramSnapshot empty;
    empty.buckets.resize(obs::Histogram::kBuckets, 0);
    obs::HistogramSnapshot merged = ha.snapshot();
    merged.merge(empty);
    EXPECT_EQ(merged.min, 1.0);
    EXPECT_EQ(merged.max, 100.0);
    EXPECT_EQ(merged.count, 100u);
}

TEST(Metrics, HistogramDeltaSinceIsolatesTheInterval)
{
    obs::Registry registry;
    obs::Histogram &h = registry.histogram("test.delta.dur_ns");
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    const obs::HistogramSnapshot before = h.snapshot();
    for (int i = 0; i < 500; ++i)
        h.record(42.0);
    const obs::HistogramSnapshot after = h.snapshot();

    const obs::HistogramSnapshot delta = after.deltaSince(before);
    EXPECT_EQ(delta.count, 500u);
    EXPECT_EQ(delta.sum, 500 * 42.0);
    const obs::HistogramStats stats = delta.stats();
    // Every interval sample is 42: the quantiles collapse onto its
    // bucket (midpoint within the 3.1% bucket width).
    EXPECT_NEAR(stats.p50, 42.0, 42.0 * 0.032);
    EXPECT_EQ(stats.p50, stats.p99);
}

TEST(Metrics, RegistryDeltaSnapshotSubtractsCountersKeepsGauges)
{
    obs::Registry registry;
    obs::Counter &hits = registry.counter("test.window.hits");
    obs::Gauge &depth = registry.gauge("test.window.depth");
    obs::Histogram &lat = registry.histogram("test.window.lat_ns");

    hits.inc(10);
    depth.set(3);
    lat.record(100.0);
    const obs::RegistrySnapshot before = registry.snapshot();

    hits.inc(7);
    depth.set(9);
    lat.record(200.0);
    registry.counter("test.window.fresh").inc(2);  // new mid-interval
    const obs::RegistrySnapshot now = registry.snapshot();

    const obs::RegistrySnapshot delta = deltaSnapshot(before, now);
    const auto counter = [&](const std::string &name) {
        for (const auto &[n, v] : delta.counters)
            if (n == name)
                return v;
        return u64{0};
    };
    EXPECT_EQ(counter("test.window.hits"), 7u);
    EXPECT_EQ(counter("test.window.fresh"), 2u);
    ASSERT_EQ(delta.gauges.size(), 1u);
    EXPECT_EQ(delta.gauges[0].second, 9);  // gauges carry "now"
    ASSERT_EQ(delta.histograms.size(), 1u);
    EXPECT_EQ(delta.histograms[0].second.count, 1u);
    EXPECT_EQ(delta.histograms[0].second.sum, 200.0);
}

TEST(Metrics, RegistrySnapshotWhileWritersRace)
{
    obs::Registry registry;
    obs::Counter &c = registry.counter("test.race.counter");
    obs::Histogram &h = registry.histogram("test.race.dur_ns");
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            c.inc();
            h.record(5.0);
        }
    });
    u64 prev = 0;
    for (int round = 0; round < 100; ++round) {
        const obs::RegistrySnapshot snap = registry.snapshot();
        ASSERT_EQ(snap.counters.size(), 1u);
        EXPECT_GE(snap.counters[0].second, prev);
        prev = snap.counters[0].second;
    }
    stop.store(true);
    writer.join();
}

TEST(JsonCheck, FlattenProducesDottedScalarPaths)
{
    std::vector<obs::JsonScalar> rows;
    const std::string doc =
        R"({"a": {"b": 1, "c": "x\"y"}, "list": [true, {"d": null}],)"
        R"( "n": -2.5e3})";
    ASSERT_EQ(obs::jsonFlatten(doc, rows), std::nullopt);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].path, "a.b");
    EXPECT_EQ(rows[0].value, "1");
    EXPECT_EQ(rows[1].path, "a.c");
    EXPECT_EQ(rows[1].value, "x\"y");  // unescaped
    EXPECT_EQ(rows[2].path, "list.0");
    EXPECT_EQ(rows[2].value, "true");
    EXPECT_EQ(rows[3].path, "list.1.d");
    EXPECT_EQ(rows[3].value, "null");
    EXPECT_EQ(rows[4].path, "n");
    EXPECT_EQ(rows[4].value, "-2.5e3");
}

TEST(JsonCheck, FlattenKeysWithDotsQuotesAndBackslashes)
{
    // Keys are emitted unescaped and joined with '.': a key that
    // itself contains a dot is indistinguishable from nesting in the
    // joined path (documented table-rendering tradeoff), but the
    // escape processing must still be exact.
    std::vector<obs::JsonScalar> rows;
    const std::string doc =
        R"({"a.b": 1, "q\"k": 2, "b\\s": 3, "t\tn\nr\r": "v\\x",)"
        R"( "": 5})";
    ASSERT_EQ(obs::jsonSyntaxError(doc), std::nullopt);
    ASSERT_EQ(obs::jsonFlatten(doc, rows), std::nullopt);
    ASSERT_EQ(rows.size(), 5u);
    EXPECT_EQ(rows[0].path, "a.b");  // same path a nested {"a":{"b":
    EXPECT_EQ(rows[0].value, "1");
    EXPECT_EQ(rows[1].path, "q\"k");
    EXPECT_EQ(rows[1].value, "2");
    EXPECT_EQ(rows[2].path, "b\\s");  // single backslash, unescaped
    EXPECT_EQ(rows[2].value, "3");
    EXPECT_EQ(rows[3].path, "t\tn\nr\r");
    EXPECT_EQ(rows[3].value, "v\\x");
    EXPECT_EQ(rows[4].path, "");  // empty key is legal JSON
    EXPECT_EQ(rows[4].value, "5");

    // A dotted key inside nesting joins just like real nesting does.
    const std::string nested = R"({"outer": {"a.b": true}})";
    ASSERT_EQ(obs::jsonFlatten(nested, rows), std::nullopt);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].path, "outer.a.b");
}

TEST(JsonCheck, FlattenEmptyObjectsAndArraysEmitNothing)
{
    // Empty containers are valid JSON but have no scalar leaves, so
    // they vanish from the flattened view — including when they are
    // the whole document or buried in live siblings.
    std::vector<obs::JsonScalar> rows;
    for (const std::string doc : {"{}", "[]", "[[], {}]",
                                  R"({"a": {}, "b": []})"}) {
        ASSERT_EQ(obs::jsonSyntaxError(doc), std::nullopt) << doc;
        ASSERT_EQ(obs::jsonFlatten(doc, rows), std::nullopt) << doc;
        EXPECT_TRUE(rows.empty()) << doc;
    }

    const std::string mixed =
        R"({"before": 1, "hole": {"deep": []}, "after": [2, {}, 3]})";
    ASSERT_EQ(obs::jsonFlatten(mixed, rows), std::nullopt);
    ASSERT_EQ(rows.size(), 3u);
    EXPECT_EQ(rows[0].path, "before");
    // The empty slot still consumes an array index.
    EXPECT_EQ(rows[1].path, "after.0");
    EXPECT_EQ(rows[1].value, "2");
    EXPECT_EQ(rows[2].path, "after.2");
    EXPECT_EQ(rows[2].value, "3");
}

TEST(JsonCheck, FlattenUnicodeEscapesKeptVerbatim)
{
    // \uXXXX stays verbatim in both keys and values (path/label
    // rendering does not need code-point decoding), and malformed
    // unicode escapes are syntax errors, not passthrough.
    std::vector<obs::JsonScalar> rows;
    const std::string doc =
        "{\"k\\u00e9y\": \"va\\u0041l\"}";
    ASSERT_EQ(obs::jsonFlatten(doc, rows), std::nullopt);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].path, "k\\u00e9y");
    EXPECT_EQ(rows[0].value, "va\\u0041l");

    EXPECT_NE(obs::jsonSyntaxError(R"({"k\u00g9": 1})"),
              std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError(R"({"k\u00e": 1})"), std::nullopt);
    EXPECT_NE(obs::jsonSyntaxError(R"({"k\x41": 1})"), std::nullopt);
}

TEST(JsonCheck, FlattenRejectsInvalidAndClearsOutput)
{
    std::vector<obs::JsonScalar> rows;
    rows.push_back({"stale", "1"});
    EXPECT_NE(obs::jsonFlatten("{\"a\": }", rows), std::nullopt);
    EXPECT_TRUE(rows.empty());
}

TEST(Tracing, DroppedSpansMirrorIntoCounter)
{
    obs::Registry registry;
    obs::Counter &dropped = registry.counter("obs.trace.dropped");
    obs::TraceBuffer buffer(4);
    buffer.attachDropCounter(&dropped);
    buffer.setEnabled(true);
    for (int i = 0; i < 10; ++i)
        buffer.record("span", 0, 1);
    EXPECT_EQ(buffer.dropped(), 6u);
    EXPECT_EQ(dropped.value(), 6u);
}

TEST(Log, LevelGatesRecords)
{
    const LogLevel saved = logLevel();
    setLogLevel(LogLevel::Warn);
    EXPECT_TRUE(logEnabled(LogLevel::Error));
    EXPECT_TRUE(logEnabled(LogLevel::Warn));
    EXPECT_FALSE(logEnabled(LogLevel::Info));
    EXPECT_FALSE(logEnabled(LogLevel::Debug));
    setLogLevel(LogLevel::Debug);
    EXPECT_TRUE(logEnabled(LogLevel::Debug));
    setLogLevel(saved);
}

} // namespace
