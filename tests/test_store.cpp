/**
 * @file
 * Unit tests for the sharded session store and its disk spill tier:
 * LRU eviction against the resident-bytes budget, lazy resume with
 * byte-identical continuation, the desync latch surviving a spill
 * cycle, segment rotation/reclamation, and the serve.store.* metrics.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/suite.h"
#include "coding/factory.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "store/session_store.h"
#include "store/spill_cache.h"

using namespace predbus;
using coding::CodecSession;
using store::ShardedSessionStore;
using store::SpillCache;
using store::StoredSession;

namespace
{

/** Key with the affinity tag (serve's connection serial) in the high
 * half, mirroring how the serve layer forms keys. */
u64
key(u32 conn, u32 session)
{
    return (static_cast<u64>(conn) << 32) | session;
}

StoredSession
freshSession(const std::string &spec = "window:8")
{
    return StoredSession{CodecSession(spec), false};
}

std::size_t
snapshotBytes(const std::string &spec = "window:8")
{
    return CodecSession(spec).snapshot().size() + 1;  // + flags byte
}

template <typename Pairs>
auto
metricValue(const Pairs &pairs, const std::string &name)
{
    for (const auto &[key, value] : pairs)
        if (key == name)
            return value;
    ADD_FAILURE() << "metric '" << name << "' not found";
    return decltype(pairs.front().second){};
}

} // namespace

TEST(SpillCache, PutTakeEraseAndRotation)
{
    SpillCache cache("", /*segment_bytes=*/256);
    EXPECT_EQ(cache.count(), 0u);
    EXPECT_EQ(cache.segmentCount(), 1u);

    std::vector<u8> rec(100);
    for (std::size_t i = 0; i < rec.size(); ++i)
        rec[i] = static_cast<u8>(i * 7);
    for (u64 k = 1; k <= 8; ++k) {
        rec[0] = static_cast<u8>(k);
        cache.put(k, rec);
    }
    EXPECT_EQ(cache.count(), 8u);
    EXPECT_EQ(cache.bytes(), 800u);
    // 8 × ~128-byte records against a 256-byte segment limit must
    // have rotated several times.
    EXPECT_GT(cache.segmentCount(), 2u);

    std::vector<u8> out;
    for (u64 k = 1; k <= 8; ++k) {
        ASSERT_TRUE(cache.take(k, out));
        EXPECT_EQ(out.size(), rec.size());
        EXPECT_EQ(out[0], static_cast<u8>(k));
        EXPECT_FALSE(cache.take(k, out));  // take is destructive
    }
    EXPECT_EQ(cache.count(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
    // Every fully-dead, non-active segment was unlinked.
    EXPECT_EQ(cache.segmentCount(), 1u);

    cache.put(42, rec);
    EXPECT_TRUE(cache.contains(42));
    EXPECT_TRUE(cache.erase(42));
    EXPECT_FALSE(cache.erase(42));
}

TEST(SpillCache, ReplacingAKeyDropsTheOldRecord)
{
    SpillCache cache("", 4096);
    const std::vector<u8> a(50, 0xaa);
    const std::vector<u8> b(70, 0xbb);
    cache.put(7, a);
    cache.put(7, b);
    EXPECT_EQ(cache.count(), 1u);
    EXPECT_EQ(cache.bytes(), 70u);
    std::vector<u8> out;
    ASSERT_TRUE(cache.take(7, out));
    EXPECT_EQ(out, b);
}

TEST(SessionStore, PutGetEraseBasics)
{
    obs::Registry registry;
    store::StoreOptions opt;
    opt.shards = 2;
    ShardedSessionStore s(opt, &registry);

    const u64 k = key(1, 1);
    EXPECT_EQ(s.get(k), nullptr);
    StoredSession *stored = s.put(k, freshSession());
    ASSERT_NE(stored, nullptr);
    EXPECT_EQ(s.get(k), stored);
    EXPECT_TRUE(s.contains(k));
    EXPECT_EQ(s.residentCount(), 1u);
    EXPECT_GT(s.residentBytes(), 0u);

    EXPECT_TRUE(s.erase(k));
    EXPECT_FALSE(s.erase(k));
    EXPECT_EQ(s.get(k), nullptr);
    EXPECT_EQ(s.residentCount(), 0u);
}

TEST(SessionStore, ShardAffinityFollowsTheHighHalf)
{
    store::StoreOptions opt;
    opt.shards = 4;
    ShardedSessionStore s(opt);
    for (u32 conn = 0; conn < 16; ++conn)
        for (u32 sess = 1; sess < 4; ++sess)
            EXPECT_EQ(s.shardOf(key(conn, sess)), conn % 4);
}

TEST(SessionStore, EvictsLruPastTheBudgetAndResumesLazily)
{
    obs::Registry registry;
    store::StoreOptions opt;
    opt.shards = 1;
    opt.resident_bytes = 3 * snapshotBytes();  // room for ~3 sessions
    ShardedSessionStore s(opt, &registry);

    std::vector<store::StoreEvent> events;
    store::StoreHooks hooks;
    hooks.on_event = [&](const store::StoreEvent &e) {
        events.push_back(e);
    };
    s.setHooks(std::move(hooks));

    for (u32 i = 1; i <= 10; ++i)
        s.put(key(0, i), freshSession());

    EXPECT_LE(s.residentBytes(), opt.resident_bytes);
    EXPECT_LT(s.residentCount(), 10u);
    EXPECT_GT(s.spilledCount(), 0u);
    EXPECT_EQ(s.residentCount() + s.spilledCount(), 10u);

    const auto snap = registry.snapshot();
    EXPECT_GT(metricValue(snap.counters, "serve.store.spills"), 0u);
    EXPECT_EQ(metricValue(snap.counters, "serve.store.spills"),
              metricValue(snap.counters, "serve.store.evictions"));
    EXPECT_EQ(static_cast<std::size_t>(metricValue(
                  snap.gauges, "serve.store.resident_sessions")),
              s.residentCount());
    EXPECT_EQ(static_cast<std::size_t>(metricValue(
                  snap.gauges, "serve.store.spilled_sessions")),
              s.spilledCount());

    // The oldest session was spilled first; touching it resumes it
    // (and pushes something else out).
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events[0].kind, store::StoreEventKind::Spill);
    EXPECT_EQ(events[0].key, key(0, 1));

    events.clear();
    StoredSession *revived = s.get(key(0, 1));
    ASSERT_NE(revived, nullptr);
    EXPECT_EQ(revived->session.spec(), "window:8");
    // The resume event lands first; the shard then sheds a new
    // victim to stay inside the budget.
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().kind, store::StoreEventKind::Resume);
    EXPECT_EQ(events.front().key, key(0, 1));
    EXPECT_EQ(metricValue(registry.snapshot().counters,
                          "serve.store.resumes"),
              1u);

    // Erase reaches both tiers.
    for (u32 i = 1; i <= 10; ++i)
        EXPECT_TRUE(s.erase(key(0, i)));
    EXPECT_EQ(s.residentCount(), 0u);
    EXPECT_EQ(s.spilledCount(), 0u);
}

TEST(SessionStore, SpillCyclesPreserveStreamsByteIdentically)
{
    store::StoreOptions opt;
    opt.shards = 1;
    opt.resident_bytes = 2 * snapshotBytes("ctx:28+8");
    ShardedSessionStore s(opt);

    const std::vector<Word> stream = analysis::randomValues(900, 99);
    CodecSession reference("ctx:28+8");
    const u64 hot = key(0, 1);
    s.put(hot, freshSession("ctx:28+8"));

    std::vector<u64> ref_states;
    std::vector<u64> got_states;
    for (std::size_t pos = 0; pos < stream.size(); pos += 300) {
        const std::span<const Word> batch(stream.data() + pos, 300);
        ref_states.clear();
        reference.encodeBatch(batch, ref_states);

        StoredSession *stored = s.get(hot);
        ASSERT_NE(stored, nullptr);
        got_states.clear();
        stored->session.encodeBatch(batch, got_states);
        ASSERT_EQ(got_states, ref_states);
        ASSERT_EQ(stored->session.checksum(), reference.checksum());

        // Churn enough filler sessions through the shard to force
        // the hot session to disk before its next batch.
        for (u32 f = 0; f < 6; ++f)
            s.put(key(0, 100 + static_cast<u32>(pos) + f),
                  freshSession("ctx:28+8"));
        EXPECT_FALSE(s.contains(hot) && s.residentCount() == 0);
    }
    // The hot session really did cycle through the spill tier.
    EXPECT_GT(s.spilledCount(), 0u);
}

TEST(SessionStore, DesyncLatchAndHooksSurviveSpill)
{
    store::StoreOptions opt;
    opt.shards = 1;
    ShardedSessionStore s(opt);

    int before_spills = 0;
    int after_resumes = 0;
    store::StoreHooks hooks;
    hooks.before_spill = [&](u64, StoredSession &) { ++before_spills; };
    hooks.after_resume = [&](u64, StoredSession &stored) {
        ++after_resumes;
        EXPECT_TRUE(stored.desynced);
    };
    s.setHooks(std::move(hooks));

    const u64 k = key(3, 1);
    StoredSession *stored = s.put(k, freshSession());
    stored->desynced = true;
    s.spillAllForTest();
    EXPECT_EQ(s.residentCount(), 0u);
    EXPECT_EQ(before_spills, 1);

    StoredSession *revived = s.get(k);
    ASSERT_NE(revived, nullptr);
    EXPECT_TRUE(revived->desynced);
    EXPECT_EQ(after_resumes, 1);
}

TEST(SessionStore, RejectsSpeclessSessionsAndDuplicateKeys)
{
    store::StoreOptions opt;
    ShardedSessionStore s(opt);
    EXPECT_THROW(
        s.put(key(0, 1),
              StoredSession{
                  CodecSession(coding::makeFromSpec("window:8")),
                  false}),
        FatalError);
    s.put(key(0, 2), freshSession());
    EXPECT_THROW(s.put(key(0, 2), freshSession()), PanicError);
}
