#include "wires/wire_model.h"

#include <gtest/gtest.h>

#include "common/log.h"
#include "wires/technology.h"

namespace predbus::wires
{
namespace
{

TEST(Technology, ThreeNodes)
{
    EXPECT_EQ(allTechnologies().size(), 3u);
    EXPECT_EQ(technology("0.13um").feature_um, 0.13);
    EXPECT_EQ(technology("0.10um").vdd, 1.1);
    EXPECT_EQ(technology("0.07um").vdd, 0.9);
    EXPECT_THROW(technology("0.09um"), FatalError);
}

TEST(Technology, UnbufferedLambdaMatchesTable1)
{
    // Paper Table 1: 14.0 / 16.6 / 14.5.
    EXPECT_NEAR(tech013().unbufferedLambda(), 14.0, 0.2);
    EXPECT_NEAR(tech010().unbufferedLambda(), 16.6, 0.2);
    EXPECT_NEAR(tech007().unbufferedLambda(), 14.5, 0.2);
}

TEST(WireModel, BufferedLambdaMatchesTable1)
{
    // Paper Table 1: 0.670 / 0.576 / 0.591 with repeaters.
    EXPECT_NEAR(WireModel(tech013(), 20.0, true).effectiveLambda(),
                0.670, 0.03);
    EXPECT_NEAR(WireModel(tech010(), 20.0, true).effectiveLambda(),
                0.576, 0.03);
    EXPECT_NEAR(WireModel(tech007(), 20.0, true).effectiveLambda(),
                0.591, 0.03);
}

TEST(WireModel, EffectiveLambdaRoughlyLengthIndependent)
{
    const double l5 = WireModel(tech013(), 5.0, true).effectiveLambda();
    const double l30 =
        WireModel(tech013(), 30.0, true).effectiveLambda();
    EXPECT_NEAR(l5, l30, 0.08);
}

TEST(WireModel, EnergyScalesLinearlyWithLength)
{
    const WireModel w10(tech013(), 10.0, false);
    const WireModel w20(tech013(), 20.0, false);
    EXPECT_NEAR(w20.energyPerTransition(),
                2.0 * w10.energyPerTransition(), 1e-18);
    EXPECT_NEAR(w20.energyPerCoupling(), 2.0 * w10.energyPerCoupling(),
                1e-18);
}

TEST(WireModel, Fig5EnergyMagnitudes)
{
    // 30mm, 0.13um: unbuffered isolated transition ~2-3 pJ, buffered
    // higher (repeater loading), both under the figure's 6 pJ axis.
    const double unbuf =
        WireModel(tech013(), 30.0, false).isolatedTransitionEnergy();
    const double buf =
        WireModel(tech013(), 30.0, true).isolatedTransitionEnergy();
    EXPECT_GT(unbuf, 1.5e-12);
    EXPECT_LT(unbuf, 3.5e-12);
    EXPECT_GT(buf, unbuf);
    EXPECT_LT(buf, 6.0e-12);
}

TEST(WireModel, EnergyOrderedByTechnology)
{
    // Smaller nodes burn less energy per transition (V^2 shrinks).
    for (const bool buffered : {false, true}) {
        const double e13 = WireModel(tech013(), 10, buffered)
                               .isolatedTransitionEnergy();
        const double e10 = WireModel(tech010(), 10, buffered)
                               .isolatedTransitionEnergy();
        const double e07 = WireModel(tech007(), 10, buffered)
                               .isolatedTransitionEnergy();
        EXPECT_GT(e13, e10);
        EXPECT_GT(e10, e07);
    }
}

TEST(WireModel, Fig6DelayShapes)
{
    // Unbuffered delay is quadratic, buffered roughly linear, and
    // buffered wins at long lengths.
    const double u10 = WireModel(tech013(), 10, false).delay();
    const double u20 = WireModel(tech013(), 20, false).delay();
    const double u30 = WireModel(tech013(), 30, false).delay();
    EXPECT_GT(u20 / u10, 3.0);   // ~4x for pure quadratic
    EXPECT_GT(u30, 2.0e-9);      // paper: ~3ns+ at 30mm
    EXPECT_LT(u30, 4.5e-9);

    const double b10 = WireModel(tech013(), 10, true).delay();
    const double b30 = WireModel(tech013(), 30, true).delay();
    EXPECT_LT(b30 / b10, 3.6);   // near-linear
    EXPECT_LT(b30, u30);         // repeaters help at 30mm
    EXPECT_GT(b30, 0.5e-9);
    EXPECT_LT(b30, 2.0e-9);      // paper: ~1-1.5ns at 30mm
}

TEST(WireModel, RepeaterSizesMatchPaperRange)
{
    // Paper §3.2: repeaters are 40-50x minimum size; count grows
    // linearly with length.
    const RepeaterDesign d10 = optimalRepeaters(tech013(), 10.0);
    const RepeaterDesign d30 = optimalRepeaters(tech013(), 30.0);
    EXPECT_GE(d10.size, 35.0);
    EXPECT_LE(d10.size, 60.0);
    EXPECT_NEAR(static_cast<double>(d30.count),
                3.0 * static_cast<double>(d10.count), 2.0);
}

TEST(WireModel, EnergyAccounting)
{
    const WireModel w(tech013(), 10.0, true);
    const double e =
        w.energy(100, 50);
    EXPECT_NEAR(e,
                100 * w.energyPerTransition() +
                    50 * w.energyPerCoupling(),
                1e-18);
    EXPECT_EQ(w.energy(0, 0), 0.0);
}

TEST(WireModel, InvalidLengthRejected)
{
    EXPECT_THROW(WireModel(tech013(), 0.0, false), FatalError);
    EXPECT_THROW(WireModel(tech013(), -1.0, true), FatalError);
}

} // namespace
} // namespace predbus::wires
