#include "sim/cache.h"

#include <gtest/gtest.h>

#include "common/log.h"

namespace predbus::sim
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 16B lines = 128 bytes.
    return CacheConfig{"test", 128, 16, 2, 1};
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache(), nullptr, 50);
    EXPECT_EQ(c.access(0x100, false), 51u);  // hit latency + memory
    EXPECT_EQ(c.access(0x100, false), 1u);   // now resident
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    Cache c(smallCache(), nullptr, 50);
    c.access(0x100, false);
    EXPECT_EQ(c.access(0x10f, false), 1u);
    EXPECT_EQ(c.access(0x104, true), 1u);
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache(), nullptr, 50);
    // Three lines mapping to the same set (stride = sets*line = 64).
    c.access(0x000, false);
    c.access(0x040, false);
    c.access(0x000, false);  // touch 0x000 so 0x040 is LRU
    c.access(0x080, false);  // evicts 0x040
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
    EXPECT_TRUE(c.probe(0x080));
}

TEST(Cache, DirtyEvictionChargesWriteback)
{
    Cache c(smallCache(), nullptr, 50);
    c.access(0x000, true);   // dirty
    c.access(0x040, false);
    // Evicting dirty 0x000 requires a write-back plus the fill.
    const u32 lat = c.access(0x080, false);
    EXPECT_EQ(lat, 1u + 50u + 50u);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallCache(), nullptr, 50);
    c.access(0x000, false);
    c.access(0x040, false);
    const u32 lat = c.access(0x080, false);
    EXPECT_EQ(lat, 51u);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, TwoLevelChaining)
{
    CacheConfig l2cfg{"l2", 512, 16, 4, 4};
    Cache l2(l2cfg, nullptr, 50);
    Cache l1(smallCache(), &l2, 50);
    // L1 miss + L2 miss: 1 + (4 + 50).
    EXPECT_EQ(l1.access(0x100, false), 55u);
    // L1 hit.
    EXPECT_EQ(l1.access(0x100, false), 1u);
    // Evict from L1 only; L2 still holds the line: 1 + 4.
    l1.access(0x140, false);
    l1.access(0x180, false);  // 0x100 evicted from L1 set 0? (set of 0x100 is 0)
    // Re-access 0x100: may be L1 miss but must hit in L2.
    const u32 lat = l1.access(0x100, false);
    EXPECT_TRUE(lat == 1u || lat == 5u);
    EXPECT_EQ(l2.stats().misses, l2.stats().accesses > 0
                                     ? l2.stats().misses
                                     : 0u);
}

TEST(Cache, FlushDropsLines)
{
    Cache c(smallCache(), nullptr, 50);
    c.access(0x100, false);
    EXPECT_TRUE(c.probe(0x100));
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, BadGeometryRejected)
{
    EXPECT_THROW(Cache(CacheConfig{"x", 100, 24, 2, 1}, nullptr, 10),
                 FatalError);
    EXPECT_THROW(Cache(CacheConfig{"x", 128, 16, 0, 1}, nullptr, 10),
                 FatalError);
    EXPECT_THROW(Cache(CacheConfig{"x", 96, 16, 2, 1}, nullptr, 10),
                 FatalError);
}

TEST(Cache, MissRateStatistic)
{
    Cache c(smallCache(), nullptr, 50);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    c.access(0x0, false);
    EXPECT_DOUBLE_EQ(c.stats().missRate(), 0.25);
}

} // namespace
} // namespace predbus::sim
