/**
 * @file
 * Malformed-input hardening for the serving protocol: the framing
 * parser and the server must reject truncated, oversized, and garbage
 * frames cleanly — an error response or a closed connection, never a
 * crash, a hang, or a leaked session. Includes a deterministic
 * fuzz-style sweep of random byte streams and mutated valid frames.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace predbus;
using namespace predbus::serve;
using protocol::ErrCode;
using protocol::Frame;
using protocol::MsgType;

namespace
{

std::string
socketPath()
{
    static std::atomic<int> counter{0};
    return "/tmp/predbus_proto_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock";
}

/** Poll until @p done returns true (teardown is asynchronous). */
template <typename F>
bool
eventually(F done, int timeout_ms = 5000)
{
    for (int waited = 0; waited < timeout_ms; waited += 10) {
        if (done())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return done();
}

class ServeProtocol : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = socketPath();
        ServerOptions opt;
        opt.unix_path = path;
        opt.workers = 2;
        server = std::make_unique<Server>(opt, registry);
    }

    Client
    connect()
    {
        return Client::connectUnixSocket(path);
    }

    /** The server still serves: a fresh connection can open a session
     * and push a batch through it. */
    void
    expectServerHealthy()
    {
        Client client = connect();
        ClientSession session = client.openOrThrow("window:4");
        const std::vector<Word> words{1, 2, 3, 2, 1};
        const auto result = session.encode(words);
        ASSERT_TRUE(result.ok());
        const auto decoded =
            client.openOrThrow("window:4").decode(result.data);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded.data, words);
    }

    /** No leaked sessions/connections once peers are gone. */
    void
    expectNoLeaks()
    {
        EXPECT_TRUE(eventually([&] {
            return registry.gauge("serve.sessions_active").value() ==
                       0 &&
                   registry.gauge("serve.connections_active")
                           .value() == 0 &&
                   registry.gauge("serve.queue_depth").value() == 0;
        })) << "sessions="
            << registry.gauge("serve.sessions_active").value()
            << " conns="
            << registry.gauge("serve.connections_active").value()
            << " queue="
            << registry.gauge("serve.queue_depth").value();
    }

    obs::Registry registry;
    std::string path;
    std::unique_ptr<Server> server;
};

/** Read frames until the peer closes; returns them. */
std::vector<Frame>
drainResponses(int fd)
{
    std::vector<Frame> frames;
    for (;;) {
        Frame frame;
        if (readFrame(fd, frame) != ReadResult::Ok)
            return frames;
        frames.push_back(std::move(frame));
    }
}

} // namespace

// ---------------------------------------------------------------
// Pure parser properties (no sockets).
// ---------------------------------------------------------------

TEST(ServeFraming, HeaderRoundTrip)
{
    protocol::FrameHeader hdr;
    hdr.type = static_cast<u8>(MsgType::Encode);
    hdr.session = 0xABCD;
    hdr.payload_len = 123;
    hdr.seq = 0x1122334455667788ull;

    std::vector<u8> bytes;
    protocol::writeHeader(bytes, hdr);
    ASSERT_EQ(bytes.size(), protocol::kHeaderSize);

    protocol::FrameHeader parsed;
    ASSERT_EQ(protocol::parseHeader(bytes, parsed),
              protocol::HeaderStatus::Ok);
    EXPECT_EQ(parsed.type, hdr.type);
    EXPECT_EQ(parsed.session, hdr.session);
    EXPECT_EQ(parsed.payload_len, hdr.payload_len);
    EXPECT_EQ(parsed.seq, hdr.seq);
}

TEST(ServeFraming, HeaderRejectsGarbage)
{
    protocol::FrameHeader hdr;
    std::vector<u8> bytes;
    protocol::writeHeader(bytes, hdr);

    std::vector<u8> bad_magic = bytes;
    bad_magic[0] ^= 0xFF;
    EXPECT_EQ(protocol::parseHeader(bad_magic, hdr),
              protocol::HeaderStatus::BadMagic);

    std::vector<u8> bad_version = bytes;
    bad_version[4] = 99;
    EXPECT_EQ(protocol::parseHeader(bad_version, hdr),
              protocol::HeaderStatus::BadVersion);

    std::vector<u8> oversized = bytes;
    oversized[12] = 0xFF;
    oversized[13] = 0xFF;
    oversized[14] = 0xFF;
    oversized[15] = 0x7F;
    EXPECT_EQ(protocol::parseHeader(oversized, hdr),
              protocol::HeaderStatus::TooLarge);
}

TEST(ServeFraming, PayloadParsersRoundTrip)
{
    const std::vector<Word> words{0, 1, 0xFFFFFFFF, 42};
    const std::vector<u64> states{7, 0, u64{1} << 33};

    Frame enc = protocol::makeEncode(3, 9, 0xAA, words);
    u64 sum = 0;
    std::vector<Word> got_words;
    ASSERT_TRUE(protocol::parseEncode(enc, sum, got_words));
    EXPECT_EQ(sum, 0xAAu);
    EXPECT_EQ(got_words, words);

    Frame dec = protocol::makeDecode(3, 9, 0xBB, states);
    std::vector<u64> got_states;
    ASSERT_TRUE(protocol::parseDecode(dec, sum, got_states));
    EXPECT_EQ(got_states, states);

    Frame open = protocol::makeOpenSession("window:8");
    std::string spec;
    ASSERT_TRUE(protocol::parseOpenSession(open, spec));
    EXPECT_EQ(spec, "window:8");

    Frame err = protocol::makeError(1, 2, ErrCode::Desync, "boom");
    ErrCode code{};
    std::string message;
    ASSERT_TRUE(protocol::parseError(err, code, message));
    EXPECT_EQ(code, ErrCode::Desync);
    EXPECT_EQ(message, "boom");
}

TEST(ServeFraming, TraceContextRoundTrip)
{
    const std::vector<Word> words{4, 8, 15, 16, 23, 42};
    const std::vector<u64> states{9, 0, u64{5} << 40};
    protocol::TraceContext trace;
    trace.trace_id = 0x0123456789ABCDEFull;
    trace.span_id = 0xFEDCBA9876543210ull;

    // Stamped frames set the flag bit and carry the 16-byte prefix.
    const Frame enc = protocol::makeEncode(3, 9, 0xAA, words, &trace);
    EXPECT_EQ(enc.hdr.flags & protocol::kFlagTraceContext,
              protocol::kFlagTraceContext);
    u64 sum = 0;
    std::vector<Word> got_words;
    std::optional<protocol::TraceContext> got_trace;
    ASSERT_TRUE(protocol::parseEncode(enc, sum, got_words, got_trace));
    EXPECT_EQ(got_words, words);
    ASSERT_TRUE(got_trace.has_value());
    EXPECT_EQ(got_trace->trace_id, trace.trace_id);
    EXPECT_EQ(got_trace->span_id, trace.span_id);

    const Frame dec = protocol::makeDecode(3, 9, 0xBB, states, &trace);
    std::vector<u64> got_states;
    got_trace.reset();
    ASSERT_TRUE(
        protocol::parseDecode(dec, sum, got_states, got_trace));
    EXPECT_EQ(got_states, states);
    ASSERT_TRUE(got_trace.has_value());
    EXPECT_EQ(got_trace->trace_id, trace.trace_id);

    // Unstamped frames parse with the optional disengaged, through
    // both the trace-aware and the legacy overloads.
    const Frame plain = protocol::makeEncode(3, 9, 0xAA, words);
    EXPECT_EQ(plain.hdr.flags & protocol::kFlagTraceContext, 0u);
    got_trace.reset();
    ASSERT_TRUE(
        protocol::parseEncode(plain, sum, got_words, got_trace));
    EXPECT_FALSE(got_trace.has_value());
    ASSERT_TRUE(protocol::parseEncode(enc, sum, got_words));
    EXPECT_EQ(got_words, words);
}

TEST(ServeFraming, TraceContextRejectsTruncatedPrefix)
{
    protocol::TraceContext trace;
    trace.trace_id = 1;
    trace.span_id = 2;
    Frame enc = protocol::makeEncode(
        1, 1, 0, std::vector<Word>{1, 2}, &trace);

    // Flag set but fewer than 16 prefix bytes available: malformed.
    enc.payload.resize(protocol::kTraceContextSize - 1);
    enc.hdr.payload_len = static_cast<u32>(enc.payload.size());
    u64 sum = 0;
    std::vector<Word> words;
    std::optional<protocol::TraceContext> got;
    EXPECT_FALSE(protocol::parseEncode(enc, sum, words, got));
}

TEST(ServeFraming, UnknownHeaderFlagBitsAreIgnored)
{
    // Reserved header flag bits pass through the parser untouched so
    // a newer peer's frames still interoperate; only bit 0 is
    // interpreted today.
    const std::vector<Word> words{7, 7, 7};
    Frame enc = protocol::makeEncode(2, 5, 0xCC, words);
    enc.hdr.flags = 0xFF00;  // reserved bits only

    std::vector<u8> bytes;
    protocol::writeHeader(bytes, enc.hdr);
    protocol::FrameHeader parsed;
    ASSERT_EQ(protocol::parseHeader(bytes, parsed),
              protocol::HeaderStatus::Ok);
    EXPECT_EQ(parsed.flags, 0xFF00u);

    u64 sum = 0;
    std::vector<Word> got_words;
    std::optional<protocol::TraceContext> got_trace;
    ASSERT_TRUE(
        protocol::parseEncode(enc, sum, got_words, got_trace));
    EXPECT_EQ(got_words, words);
    EXPECT_FALSE(got_trace.has_value());
}

TEST(ServeFraming, StatsOkCarriesEnergyFields)
{
    protocol::SessionStats stats;
    stats.base_energy = {123456, 7890};
    stats.coded_energy = {1111, 22};
    stats.metered_words = 4096;

    const Frame frame = protocol::makeStatsOk(9, stats);
    protocol::SessionStats parsed;
    ASSERT_TRUE(protocol::parseStatsOk(frame, parsed));
    EXPECT_EQ(parsed.base_energy.tau, 123456u);
    EXPECT_EQ(parsed.base_energy.kappa, 7890u);
    EXPECT_EQ(parsed.coded_energy.tau, 1111u);
    EXPECT_EQ(parsed.coded_energy.kappa, 22u);
    EXPECT_EQ(parsed.metered_words, 4096u);
}

TEST(ServeFraming, PayloadParsersRejectTruncationAndTrailingBytes)
{
    const std::vector<Word> words{1, 2, 3};
    Frame enc = protocol::makeEncode(1, 1, 0, words);

    Frame truncated = enc;
    truncated.payload.pop_back();
    u64 sum = 0;
    std::vector<Word> out;
    EXPECT_FALSE(protocol::parseEncode(truncated, sum, out));

    Frame trailing = enc;
    trailing.payload.push_back(0);
    EXPECT_FALSE(protocol::parseEncode(trailing, sum, out));

    // Count field claiming more words than the payload holds.
    Frame lying = enc;
    lying.payload[8] = 0xFF;
    EXPECT_FALSE(protocol::parseEncode(lying, sum, out));

    // Batch count over the protocol bound.
    Frame oversized = enc;
    oversized.payload[8] = 0xFF;
    oversized.payload[9] = 0xFF;
    oversized.payload[10] = 0xFF;
    oversized.payload[11] = 0x7F;
    EXPECT_FALSE(protocol::parseEncode(oversized, sum, out));
}

// Deterministic fuzz of the pure parsers: random payloads must never
// crash and must be rejected or parsed without reading out of bounds.
TEST(ServeFraming, FuzzPayloadParsers)
{
    Rng rng(0xF0220);
    for (int i = 0; i < 2000; ++i) {
        Frame frame;
        frame.hdr.type = static_cast<u8>(rng.below(256));
        frame.payload.resize(rng.below(200));
        for (u8 &b : frame.payload)
            b = static_cast<u8>(rng.below(256));

        u64 sum = 0;
        u32 a = 0;
        u32 b = 0;
        std::vector<Word> words;
        std::vector<u64> states;
        std::string text;
        protocol::SessionStats stats;
        ErrCode code{};
        protocol::parseOpenSession(frame, text);
        protocol::parseEncode(frame, sum, words);
        protocol::parseDecode(frame, sum, states);
        protocol::parseOpenOk(frame, a, b);
        protocol::parseEncodeOk(frame, sum, states);
        protocol::parseDecodeOk(frame, sum, words);
        protocol::parseStatsOk(frame, stats);
        protocol::parseResyncOk(frame, a);
        protocol::parseError(frame, code, text);
    }
    SUCCEED();
}

// ---------------------------------------------------------------
// Server hardening over real sockets.
// ---------------------------------------------------------------

TEST_F(ServeProtocol, GarbageStreamIsRejectedCleanly)
{
    Client client = connect();
    const std::string garbage = "GET / HTTP/1.1\r\nHost: nope\r\n\r\n";
    ASSERT_TRUE(sendAll(client.fd(), garbage.data(), garbage.size()));

    const std::vector<Frame> responses = drainResponses(client.fd());
    ASSERT_EQ(responses.size(), 1u);
    ErrCode code{};
    std::string message;
    ASSERT_TRUE(protocol::parseError(responses[0], code, message));
    EXPECT_EQ(code, ErrCode::BadFrame);

    expectServerHealthy();
    expectNoLeaks();
}

TEST_F(ServeProtocol, OversizedFrameIsRejectedUnread)
{
    Client client = connect();
    protocol::FrameHeader hdr;
    hdr.type = static_cast<u8>(MsgType::Encode);
    hdr.payload_len = 0;
    std::vector<u8> bytes;
    protocol::writeHeader(bytes, hdr);
    // Patch payload_len over the limit after serialization (the
    // builder APIs cannot produce this frame).
    bytes[12] = 0xFF;
    bytes[13] = 0xFF;
    bytes[14] = 0xFF;
    bytes[15] = 0x7F;
    ASSERT_TRUE(sendAll(client.fd(), bytes.data(), bytes.size()));

    const std::vector<Frame> responses = drainResponses(client.fd());
    ASSERT_EQ(responses.size(), 1u);
    ErrCode code{};
    std::string message;
    ASSERT_TRUE(protocol::parseError(responses[0], code, message));
    EXPECT_EQ(code, ErrCode::TooLarge);

    expectServerHealthy();
    expectNoLeaks();
}

TEST_F(ServeProtocol, TruncatedHeaderDisconnect)
{
    {
        Client client = connect();
        const u8 partial[5] = {0x50, 0x42, 0x53, 0x31, 0x01};
        ASSERT_TRUE(
            sendAll(client.fd(), partial, sizeof(partial)));
        // Destructor closes mid-header.
    }
    expectServerHealthy();
    expectNoLeaks();
}

TEST_F(ServeProtocol, MidBatchDisconnectDoesNotLeakSessions)
{
    {
        Client client = connect();
        ClientSession session = client.openOrThrow("window:8");
        ASSERT_EQ(
            registry.gauge("serve.sessions_active").value(), 1);

        // A frame header promising a 4 KiB batch, then only a sliver
        // of it, then a hard disconnect.
        protocol::FrameHeader hdr;
        hdr.type = static_cast<u8>(MsgType::Encode);
        hdr.session = session.id();
        hdr.seq = 1;
        hdr.payload_len = 4096;
        std::vector<u8> bytes;
        protocol::writeHeader(bytes, hdr);
        bytes.resize(bytes.size() + 100, 0xAB);
        ASSERT_TRUE(sendAll(client.fd(), bytes.data(), bytes.size()));
    }
    expectServerHealthy();
    expectNoLeaks();
}

TEST_F(ServeProtocol, MalformedPayloadGetsErrorNotDisconnect)
{
    {
        Client client = connect();
        // Well-framed OPEN_SESSION whose payload lies about its spec
        // length.
        Frame open = protocol::makeOpenSession("window:8");
        open.payload[0] = 0xFF;
        open.payload[1] = 0x00;
        client.send(open);
        Frame response = client.recv();
        ErrCode code{};
        std::string message;
        ASSERT_TRUE(protocol::parseError(response, code, message));
        EXPECT_EQ(code, ErrCode::BadFrame);

        // Same connection still works afterwards.
        ClientSession session = client.openOrThrow("window:8");
        EXPECT_TRUE(session.encode(std::vector<Word>{1, 2, 3}).ok());
    }
    expectNoLeaks();
}

TEST_F(ServeProtocol, UnknownSessionAndBadSpec)
{
    {
        Client client = connect();
        client.send(protocol::makeEncode(
            777, 1, coding::kChecksumSeed, std::vector<Word>{1}));
        Frame response = client.recv();
        ErrCode code{};
        std::string message;
        ASSERT_TRUE(protocol::parseError(response, code, message));
        EXPECT_EQ(code, ErrCode::NoSession);

        std::optional<ServeError> error;
        EXPECT_FALSE(
            client.open("flux-capacitor:88", error).has_value());
        ASSERT_TRUE(error.has_value());
        EXPECT_EQ(error->code, ErrCode::BadSpec);
    }
    expectNoLeaks();
}

TEST_F(ServeProtocol, SessionLimitEnforced)
{
    ServerOptions opt;
    opt.unix_path = socketPath();
    opt.max_sessions = 2;
    obs::Registry local;
    Server limited(opt, local);

    Client client = Client::connectUnixSocket(opt.unix_path);
    client.openOrThrow("raw");
    client.openOrThrow("raw");
    std::optional<ServeError> error;
    EXPECT_FALSE(client.open("raw", error).has_value());
    ASSERT_TRUE(error.has_value());
    EXPECT_EQ(error->code, ErrCode::SessionLimit);
}

TEST_F(ServeProtocol, UnknownRequestTypeGetsError)
{
    Client client = connect();
    Frame weird;
    weird.hdr.type = 0x5E;
    client.send(weird);
    Frame response = client.recv();
    ErrCode code{};
    std::string message;
    ASSERT_TRUE(protocol::parseError(response, code, message));
    EXPECT_EQ(code, ErrCode::BadFrame);
    expectServerHealthy();
}

TEST_F(ServeProtocol, EmptyBatchIsValid)
{
    Client client = connect();
    ClientSession session = client.openOrThrow("window:8");
    const auto result = session.encode(std::span<const Word>{});
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.data.empty());
    EXPECT_EQ(session.seq(), 1u);
}

// Deterministic fuzz against the live server: random byte streams on
// fresh connections, then mutated-but-valid frames. The server must
// stay healthy and leak-free through all of it.
TEST_F(ServeProtocol, FuzzRandomStreamsAgainstServer)
{
    Rng rng(0x5EED5);
    for (int round = 0; round < 40; ++round) {
        Client client = connect();
        std::vector<u8> blob(rng.below(300) + 1);
        for (u8 &b : blob)
            b = static_cast<u8>(rng.below(256));
        if (!sendAll(client.fd(), blob.data(), blob.size()))
            continue;  // server already slammed the door — fine
        // Half-close: a blob shorter than a header would otherwise
        // leave the server waiting for more bytes forever.
        ::shutdown(client.fd(), SHUT_WR);
        drainResponses(client.fd());
    }

    Rng mut(0xA17E);
    for (int round = 0; round < 40; ++round) {
        Client client = connect();
        std::vector<u8> bytes = protocol::serialize(
            protocol::makeOpenSession("window:8"));
        const std::vector<u8> enc_bytes = protocol::serialize(
            protocol::makeEncode(1, 1, coding::kChecksumSeed,
                                 std::vector<Word>{1, 2, 3, 4}));
        bytes.insert(bytes.end(), enc_bytes.begin(),
                     enc_bytes.end());
        // Flip a couple of random bytes somewhere in the stream.
        for (int flips = 0; flips < 2; ++flips)
            bytes[mut.below(bytes.size())] ^=
                static_cast<u8>(1 + mut.below(255));
        if (!sendAll(client.fd(), bytes.data(), bytes.size()))
            continue;
        ::shutdown(client.fd(), SHUT_WR);
        drainResponses(client.fd());
    }

    expectServerHealthy();
    expectNoLeaks();
}
