/**
 * End-to-end workload validation: every SPEC95-like kernel, run on the
 * out-of-order machine, must produce exactly the OUT values computed
 * by its host-side reference implementation (including bit-exact FP),
 * and must generate non-trivial traffic on both traced buses.
 */

#include "workloads/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "common/log.h"
#include "sim/machine.h"

namespace predbus::workloads
{
namespace
{

class WorkloadMatchesReference
    : public ::testing::TestWithParam<WorkloadInfo>
{
};

TEST_P(WorkloadMatchesReference, GuestOutputEqualsHostReference)
{
    const WorkloadInfo &wl = GetParam();
    const isa::Program program = build(wl.name, 1);
    sim::Machine machine(program);
    const sim::RunResult result = machine.run(100'000'000);
    ASSERT_TRUE(result.halted) << wl.name << " did not halt";
    EXPECT_EQ(result.output, reference(wl.name, 1)) << wl.name;
}

TEST_P(WorkloadMatchesReference, ProducesBusTraffic)
{
    const WorkloadInfo &wl = GetParam();
    sim::Machine machine(build(wl.name, 1));
    const sim::RunResult result = machine.run(200'000);
    EXPECT_GT(result.reg_bus.size(), 10'000u) << wl.name;
    EXPECT_GT(result.mem_bus.size(), 1'000u) << wl.name;

    // Traces must not be constant.
    std::set<Word> reg_values, mem_values;
    for (const auto &e : result.reg_bus)
        reg_values.insert(e.value);
    for (const auto &e : result.mem_bus)
        mem_values.insert(e.value);
    EXPECT_GT(reg_values.size(), 16u) << wl.name;
    // go's memory traffic is board bytes {0,1,2}; every other workload
    // moves a much richer value set.
    EXPECT_GE(mem_values.size(), 3u) << wl.name;
}

TEST_P(WorkloadMatchesReference, ScaleExtendsRun)
{
    const WorkloadInfo &wl = GetParam();
    sim::Machine m1(build(wl.name, 1));
    sim::Machine m2(build(wl.name, 2));
    const auto r1 = m1.run(100'000'000);
    const auto r2 = m2.run(100'000'000);
    ASSERT_TRUE(r1.halted);
    ASSERT_TRUE(r2.halted);
    EXPECT_GT(r2.stats.instructions, r1.stats.instructions) << wl.name;
    // Scale-2 output must equal the scale-2 reference too.
    EXPECT_EQ(r2.output, reference(wl.name, 2)) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadMatchesReference, ::testing::ValuesIn(all()),
    [](const ::testing::TestParamInfo<WorkloadInfo> &info) {
        return info.param.name;
    });

TEST(WorkloadRegistry, SeventeenBenchmarks)
{
    EXPECT_EQ(all().size(), 17u);
    EXPECT_EQ(intNames().size(), 7u);
    EXPECT_EQ(fpNames().size(), 10u);
}

TEST(WorkloadRegistry, PaperSuiteNamesPresent)
{
    for (const char *name :
         {"ijpeg", "m88ksim", "go", "gcc", "compress", "perl", "li",
          "hydro2d", "fpppp", "apsi", "applu", "wave5", "turb3d",
          "tomcatv", "swim", "su2cor", "mgrid"}) {
        EXPECT_NO_THROW(info(name)) << name;
    }
}

TEST(WorkloadRegistry, IntFpSplitMatchesInfo)
{
    for (const auto &name : intNames())
        EXPECT_FALSE(info(name).is_fp) << name;
    for (const auto &name : fpNames())
        EXPECT_TRUE(info(name).is_fp) << name;
}

TEST(WorkloadRegistry, UnknownNameFatal)
{
    EXPECT_THROW(build("nonesuch", 1), FatalError);
    EXPECT_THROW(reference("nonesuch", 1), FatalError);
    EXPECT_THROW(info("nonesuch"), FatalError);
}

TEST(WorkloadRegistry, ZeroScaleFatal)
{
    EXPECT_THROW(build("gcc", 0), FatalError);
    EXPECT_THROW(reference("gcc", 0), FatalError);
}

TEST(WorkloadRegistry, DeterministicBuilds)
{
    const isa::Program p1 = build("compress", 1);
    const isa::Program p2 = build("compress", 1);
    EXPECT_EQ(p1.code, p2.code);
    ASSERT_EQ(p1.data.size(), p2.data.size());
    for (std::size_t i = 0; i < p1.data.size(); ++i) {
        EXPECT_EQ(p1.data[i].base, p2.data[i].base);
        EXPECT_EQ(p1.data[i].bytes, p2.data[i].bytes);
    }
}

} // namespace
} // namespace predbus::workloads
