/**
 * Bus timing-generator semantics: the properties the paper's §4.1
 * methodology needs from the traces — time ordering, latency
 * re-timing of memory values, value/memory consistency, and
 * double-precision beat splitting.
 */

#include <gtest/gtest.h>

#include <map>

#include "isa/assembler.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace predbus::sim
{
namespace
{

using namespace isa;
using namespace isa::regs;

TEST(BusSemantics, AllTracesTimeOrdered)
{
    Asm a("t");
    a.li(r1, 0x20000000);
    a.li(r2, 200);
    a.label("loop");
    a.sw(r2, r1, 0);
    a.lw(r3, r1, 0);
    a.addi(r1, r1, 64);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(1'000'000);
    ASSERT_TRUE(r.halted);
    for (const auto *bus :
         {&r.reg_bus, &r.mem_bus, &r.addr_bus, &r.wb_bus}) {
        for (std::size_t i = 1; i < bus->size(); ++i)
            EXPECT_LE((*bus)[i - 1].cycle, (*bus)[i].cycle);
    }
}

TEST(BusSemantics, MemoryValuesArriveAfterAddresses)
{
    // A load's data appears on the memory bus at least one cache-hit
    // latency after its address appears on the address bus, and cache
    // misses are re-timed further into the future.
    Asm a("t");
    a.li(r1, 0x20000000);
    a.li(r2, 64);
    a.label("loop");
    a.lw(r3, r1, 0);
    a.addi(r1, r1, 4096);   // page stride: all L1 misses
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(1'000'000);
    ASSERT_TRUE(r.halted);
    ASSERT_EQ(r.addr_bus.size(), r.mem_bus.size());
    u64 max_gap = 0;
    for (std::size_t i = 0; i < r.addr_bus.size(); ++i) {
        EXPECT_GT(r.mem_bus[i].cycle, r.addr_bus[i].cycle);
        max_gap = std::max(max_gap,
                           r.mem_bus[i].cycle - r.addr_bus[i].cycle);
    }
    // Cold misses to memory re-time values by ~memory latency.
    EXPECT_GT(max_gap, 50u);
}

TEST(BusSemantics, LoadValuesMatchStoredData)
{
    // Memory-bus data for loads must equal what was functionally
    // stored there.
    Asm a("t");
    a.li(r1, 0x20000000);
    a.li(r2, 1);
    a.li(r4, 100);
    a.label("loop");
    a.mul(r3, r2, r2);
    a.sw(r3, r1, 0);
    a.lw(r5, r1, 0);
    a.addi(r1, r1, 4);
    a.addi(r2, r2, 1);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "loop");
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(1'000'000);
    ASSERT_TRUE(r.halted);
    // Count occurrences: every square 1..100 appears exactly twice
    // (store beat + load beat).
    std::map<Word, int> freq;
    for (const auto &e : r.mem_bus)
        ++freq[e.value];
    for (u32 k = 1; k <= 100; ++k)
        EXPECT_EQ(freq[k * k], 2) << k;
}

TEST(BusSemantics, DoubleBeatsAreConsecutiveHalves)
{
    Asm a("t");
    a.li(r1, 0x20000000);
    a.fli(f1, 1.0, r9);
    a.fli(f2, 2.0, r9);
    a.fadd(f3, f1, f2);   // 3.0 = 0x4008000000000000
    a.fsd(f3, r1, 0);
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(100'000);
    ASSERT_TRUE(r.halted);
    // Find the store's two beats: lo then hi of 3.0.
    bool found = false;
    for (std::size_t i = 0; i + 1 < r.mem_bus.size(); ++i) {
        if (r.mem_bus[i].value == 0x00000000u &&
            r.mem_bus[i + 1].value == 0x40080000u &&
            r.mem_bus[i + 1].cycle == r.mem_bus[i].cycle + 1) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(BusSemantics, RegisterBusOnePostPerCycle)
{
    Machine m(workloads::build("perl", 1));
    const RunResult r = m.run(50'000);
    for (std::size_t i = 1; i < r.reg_bus.size(); ++i)
        EXPECT_LT(r.reg_bus[i - 1].cycle, r.reg_bus[i].cycle);
}

TEST(BusSemantics, WritebackCarriesResults)
{
    // A chain of known results must all appear on the writeback bus.
    Asm a("t");
    a.li(r1, 0);
    for (int i = 0; i < 20; ++i)
        a.addi(r1, r1, 1000);
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(100'000);
    ASSERT_TRUE(r.halted);
    std::map<Word, int> seen;
    for (const auto &e : r.wb_bus)
        ++seen[e.value];
    for (int k = 1; k <= 20; ++k)
        EXPECT_GE(seen[static_cast<Word>(k * 1000)], 1) << k;
}

TEST(BusSemantics, StoreForwardingStillPostsBothAccesses)
{
    // Forwarded loads bypass the cache for latency but the bus
    // tracers still see both the store and the load transfers.
    Asm a("t");
    a.li(r1, 0x20000000);
    a.li(r2, 0xabcd);
    a.sw(r2, r1, 0);
    a.lw(r3, r1, 0);
    a.out(r3);
    a.halt();
    Machine m(a.finish());
    const RunResult r = m.run(100'000);
    ASSERT_TRUE(r.halted);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 0xabcdu);
    int count = 0;
    for (const auto &e : r.mem_bus)
        count += (e.value == 0xabcdu);
    EXPECT_EQ(count, 2);
}

} // namespace
} // namespace predbus::sim
