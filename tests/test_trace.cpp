#include "trace/trace.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "trace/trace_io.h"
#include "trace/trace_stats.h"

namespace predbus::trace
{
namespace
{

TEST(ValueTrace, PostAndIterate)
{
    ValueTrace t;
    t.post(1, 10);
    t.post(2, 20);
    t.finalize();
    ASSERT_EQ(t.size(), 2u);
    EXPECT_EQ(t[0].value, 10u);
    EXPECT_EQ(t[1].cycle, 2u);
    EXPECT_EQ(t.values(), (std::vector<Word>{10, 20}));
}

TEST(ValueTrace, FinalizeSortsStably)
{
    ValueTrace t;
    t.post(5, 1);
    t.post(3, 2);
    t.post(5, 3);   // same cycle as first: must stay after it? no —
                    // first posting at cycle 5 came before, stable sort
                    // keeps (5,1) before (5,3).
    t.post(4, 4);
    t.finalize();
    EXPECT_EQ(t[0].cycle, 3u);
    EXPECT_EQ(t[1].cycle, 4u);
    EXPECT_EQ(t[2].value, 1u);
    EXPECT_EQ(t[3].value, 3u);
}

TEST(TraceIo, RoundTrip)
{
    ValueTrace t;
    for (u32 i = 0; i < 1000; ++i)
        t.post(i * 3, i * 0x01010101u);
    t.finalize();
    const std::string path = "/tmp/predbus_test_trace.pbtr";
    saveTrace(path, t);
    const auto loaded = loadTrace(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->size(), t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        EXPECT_TRUE((*loaded)[i] == t[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsNullopt)
{
    EXPECT_FALSE(loadTrace("/tmp/predbus_no_such_file.pbtr").has_value());
}

TEST(TraceIo, CorruptFileRejected)
{
    const std::string path = "/tmp/predbus_corrupt.pbtr";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
    EXPECT_FALSE(loadTrace(path).has_value());
    std::remove(path.c_str());
}

TEST(TraceIo, TruncatedFileRejected)
{
    ValueTrace t;
    t.post(1, 2);
    t.post(3, 4);
    const std::string path = "/tmp/predbus_trunc.pbtr";
    saveTrace(path, t);
    // Truncate to 20 bytes (header + partial record).
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(ftruncate(fileno(f), 20), 0);
    std::fclose(f);
    EXPECT_FALSE(loadTrace(path).has_value());
    std::remove(path.c_str());
}

TEST(TraceIo, BusNames)
{
    EXPECT_STREQ(busName(BusKind::Register), "register");
    EXPECT_STREQ(busName(BusKind::Memory), "memory");
}

TEST(TraceStats, UniqueValueCdf)
{
    // 6x A, 3x B, 1x C.
    std::vector<Word> v;
    for (int i = 0; i < 6; ++i) v.push_back(0xA);
    for (int i = 0; i < 3; ++i) v.push_back(0xB);
    v.push_back(0xC);
    const auto cdf = uniqueValueCdf(v);
    ASSERT_EQ(cdf.size(), 3u);
    EXPECT_DOUBLE_EQ(cdf[0], 0.6);
    EXPECT_DOUBLE_EQ(cdf[1], 0.9);
    EXPECT_DOUBLE_EQ(cdf[2], 1.0);
}

TEST(TraceStats, CdfEmptyTrace)
{
    EXPECT_TRUE(uniqueValueCdf({}).empty());
}

TEST(TraceStats, CdfMonotonic)
{
    std::vector<Word> v;
    for (u32 i = 0; i < 1000; ++i)
        v.push_back(i % 37);
    const auto cdf = uniqueValueCdf(v);
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
    EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
}

TEST(TraceStats, WindowUniqueAllSame)
{
    std::vector<Word> v(100, 42);
    EXPECT_DOUBLE_EQ(windowUniqueFraction(v, 10), 0.1);
}

TEST(TraceStats, WindowUniqueAllDistinct)
{
    std::vector<Word> v;
    for (u32 i = 0; i < 100; ++i)
        v.push_back(i);
    EXPECT_DOUBLE_EQ(windowUniqueFraction(v, 10), 1.0);
}

TEST(TraceStats, WindowUniqueDecreasingInWindowSize)
{
    // A trace with a small working set: bigger windows see
    // proportionally fewer unique values.
    std::vector<Word> v;
    for (u32 i = 0; i < 4096; ++i)
        v.push_back(i % 16);
    EXPECT_GT(windowUniqueFraction(v, 8),
              windowUniqueFraction(v, 64));
    EXPECT_GT(windowUniqueFraction(v, 64),
              windowUniqueFraction(v, 1024));
}

TEST(TraceStats, WindowEdgeCases)
{
    EXPECT_DOUBLE_EQ(windowUniqueFraction({1, 2, 3}, 0), 0.0);
    EXPECT_DOUBLE_EQ(windowUniqueFraction({1, 2, 3}, 10), 0.0);
}

TEST(TraceStats, UniqueValueCount)
{
    EXPECT_EQ(uniqueValueCount({}), 0u);
    EXPECT_EQ(uniqueValueCount({1, 1, 2, 3, 3, 3}), 3u);
}

} // namespace
} // namespace predbus::trace
