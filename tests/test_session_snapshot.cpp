/**
 * @file
 * Differential snapshot/restore suite: for every factory spec, a
 * session serialized mid-stream and restored into a fresh process
 * image must continue *byte-identically* — same wire states, same
 * rolling checksums, same OpCounts, same energy totals — as the
 * session that was never interrupted. This is the correctness
 * foundation of the session store (src/store): spill + resume must be
 * invisible to the protocol.
 */

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "analysis/suite.h"
#include "coding/factory.h"
#include "coding/session.h"
#include "coding/snapshot.h"
#include "common/log.h"

using namespace predbus;
using coding::CodecSession;

namespace
{

/** Every factory family, each config dimension exercised at least
 * once (mirrors the spec grammar in coding/factory.h). */
const std::vector<std::string> kAllSpecs = {
    "raw",          "window:8",     "window:8:ca", "window:64",
    "ctx:28+8",     "ctx:28+8:trans", "ctx:16+4:d16", "stride:4",
    "stride:8",     "inv:2",        "inv:8:l1.5",  "pbi:4",
    "wze:4",        "spatial:12",
};

/** Mixed random/strided/repeating stream; spatial:12 needs values
 * inside 12 bits, so mask accordingly per spec. */
std::vector<Word>
testStream(std::size_t n, const std::string &spec)
{
    std::vector<Word> values = analysis::randomValues(n, 0x5AB5);
    for (std::size_t i = n / 2; i < n; ++i) {
        values[i] = static_cast<Word>(0x2000'0000 + 8 * i);
        if (i % 5 == 0)
            values[i] = values[i / 2];
    }
    if (spec.rfind("spatial", 0) == 0)
        for (Word &v : values)
            v &= 0xfffu;
    return values;
}

void
expectSessionsEqual(CodecSession &a, CodecSession &b,
                    std::span<const Word> tail)
{
    EXPECT_EQ(a.seq(), b.seq());
    EXPECT_EQ(a.checksum(), b.checksum());
    EXPECT_EQ(a.epoch(), b.epoch());
    EXPECT_EQ(a.codec().ops(), b.codec().ops());

    const coding::SessionEnergy ea = a.energy();
    const coding::SessionEnergy eb = b.energy();
    EXPECT_EQ(ea.base.tau, eb.base.tau);
    EXPECT_EQ(ea.base.kappa, eb.base.kappa);
    EXPECT_EQ(ea.coded.tau, eb.coded.tau);
    EXPECT_EQ(ea.coded.kappa, eb.coded.kappa);
    EXPECT_EQ(ea.words, eb.words);

    // The decisive part: both continue the stream with identical
    // wire states and checksums, batch after batch.
    std::vector<u64> states_a;
    std::vector<u64> states_b;
    constexpr std::size_t kBatch = 96;
    for (std::size_t pos = 0; pos < tail.size(); pos += kBatch) {
        const std::size_t len = std::min(kBatch, tail.size() - pos);
        states_a.clear();
        states_b.clear();
        a.encodeBatch(tail.subspan(pos, len), states_a);
        b.encodeBatch(tail.subspan(pos, len), states_b);
        ASSERT_EQ(states_a, states_b);
        ASSERT_EQ(a.checksum(), b.checksum());
    }
    EXPECT_EQ(a.codec().ops(), b.codec().ops());
}

} // namespace

TEST(SessionSnapshot, EverySpecRestoresByteIdentically)
{
    for (const std::string &spec : kAllSpecs) {
        SCOPED_TRACE(spec);
        const std::vector<Word> stream = testStream(1024, spec);
        const std::span<const Word> head(stream.data(), 512);
        const std::span<const Word> tail(stream.data() + 512, 512);

        CodecSession uninterrupted(spec);
        uninterrupted.enableEnergyMetering();
        CodecSession original(spec);
        original.enableEnergyMetering();

        std::vector<u64> sink;
        uninterrupted.encodeBatch(head, sink);
        sink.clear();
        original.encodeBatch(head, sink);

        const std::vector<u8> image = original.snapshot();
        CodecSession restored = CodecSession::restore(image);
        EXPECT_EQ(restored.spec(), spec);
        expectSessionsEqual(uninterrupted, restored, tail);
    }
}

// Snapshot points that straddle internal FSM structure: mid-span (a
// batch boundary that is not a power of two, leaving partial dict
// fills and ring offsets), and immediately after a RESYNC (fresh FSMs
// but a bumped epoch).
TEST(SessionSnapshot, MidSpanAndPostResyncPoints)
{
    for (const std::string &spec : kAllSpecs) {
        SCOPED_TRACE(spec);
        const std::vector<Word> stream = testStream(1200, spec);

        for (const std::size_t cut : {1ul, 37ul, 1001ul}) {
            SCOPED_TRACE(cut);
            CodecSession reference(spec);
            CodecSession snap_me(spec);
            std::vector<u64> sink;
            reference.encodeBatch(
                std::span(stream.data(), cut), sink);
            sink.clear();
            snap_me.encodeBatch(std::span(stream.data(), cut), sink);

            CodecSession restored =
                CodecSession::restore(snap_me.snapshot());
            expectSessionsEqual(
                reference, restored,
                std::span(stream.data() + cut, stream.size() - cut));
        }

        // Post-RESYNC: epoch and restarted counters must survive.
        CodecSession reference(spec);
        CodecSession snap_me(spec);
        std::vector<u64> sink;
        reference.encodeBatch(std::span(stream.data(), 300), sink);
        sink.clear();
        snap_me.encodeBatch(std::span(stream.data(), 300), sink);
        reference.resync();
        snap_me.resync();
        EXPECT_EQ(snap_me.epoch(), 1u);

        CodecSession restored =
            CodecSession::restore(snap_me.snapshot());
        EXPECT_EQ(restored.epoch(), 1u);
        expectSessionsEqual(reference, restored,
                            std::span(stream.data(), 300));
    }
}

// Decode-side state must survive too: a restored decoder session
// recovers the same values from states produced by a continuous
// encoder.
TEST(SessionSnapshot, DecoderStateSurvives)
{
    for (const std::string spec :
         {"window:8", "ctx:28+8", "stride:4", "inv:2", "wze:4"}) {
        SCOPED_TRACE(spec);
        const std::vector<Word> stream = testStream(800, spec);
        CodecSession encoder(spec);
        std::vector<u64> states;
        encoder.encodeBatch(stream, states);

        CodecSession dec_ref(spec);
        CodecSession dec_snap(spec);
        std::vector<Word> words;
        const std::span<const u64> head(states.data(), 400);
        const std::span<const u64> tail(states.data() + 400, 400);
        dec_ref.decodeBatch(head, words);
        words.clear();
        dec_snap.decodeBatch(head, words);

        CodecSession restored =
            CodecSession::restore(dec_snap.snapshot());
        std::vector<Word> out_ref;
        std::vector<Word> out_restored;
        dec_ref.decodeBatch(tail, out_ref);
        restored.decodeBatch(tail, out_restored);
        EXPECT_EQ(out_ref, out_restored);
        EXPECT_EQ(out_restored,
                  std::vector<Word>(stream.begin() + 400,
                                    stream.end()));
        EXPECT_EQ(dec_ref.checksum(), restored.checksum());
    }
}

TEST(SessionSnapshot, RejectsCorruptAndTruncatedImages)
{
    CodecSession session("window:8");
    const std::vector<Word> stream = testStream(256, "window:8");
    std::vector<u64> sink;
    session.encodeBatch(stream, sink);
    const std::vector<u8> image = session.snapshot();

    // Pristine image restores.
    EXPECT_NO_THROW(CodecSession::restore(image));

    // Any single flipped bit fails the integrity checksum (flip a
    // spread of positions including header, payload, and the checksum
    // itself).
    for (const std::size_t at :
         {std::size_t{0}, std::size_t{5}, image.size() / 2,
          image.size() - 1}) {
        std::vector<u8> bad = image;
        bad[at] ^= 0x40;
        EXPECT_THROW(CodecSession::restore(bad), FatalError)
            << "flipped byte " << at;
    }

    // Every truncation length is rejected.
    for (std::size_t n = 0; n < image.size(); n += 7) {
        const std::vector<u8> cut(image.begin(),
                                  image.begin() +
                                      static_cast<std::ptrdiff_t>(n));
        EXPECT_THROW(CodecSession::restore(cut), FatalError)
            << "truncated to " << n;
    }

    // A wrong version number is rejected even with a valid checksum:
    // rebuild the trailer after patching the version field.
    std::vector<u8> wrong_version = image;
    wrong_version[4] = 0x7f;
    wrong_version.resize(wrong_version.size() - 8);
    const u64 fixed = coding::snapshotChecksum(wrong_version.data(),
                                               wrong_version.size());
    for (int i = 0; i < 8; ++i)
        wrong_version.push_back(static_cast<u8>(fixed >> (8 * i)));
    EXPECT_THROW(CodecSession::restore(wrong_version), FatalError);

    // Snapshots require a spec (a transcoder-adopting session has no
    // way to name its factory config).
    CodecSession adopted(coding::makeFromSpec("window:8"));
    EXPECT_THROW(adopted.snapshot(), FatalError);
}

// Restored sessions keep restoring: a snapshot of a restored session
// equals a snapshot of the uninterrupted one (serialization is a
// fixed point, which the store relies on for repeated spill cycles).
TEST(SessionSnapshot, RepeatedSpillCyclesAreStable)
{
    const std::string spec = "ctx:28+8";
    const std::vector<Word> stream = testStream(900, spec);
    CodecSession reference(spec);
    reference.enableEnergyMetering();
    CodecSession cycled(spec);
    cycled.enableEnergyMetering();

    std::vector<u64> sink;
    for (std::size_t pos = 0; pos < stream.size(); pos += 300) {
        const std::span<const Word> batch(stream.data() + pos, 300);
        sink.clear();
        reference.encodeBatch(batch, sink);
        sink.clear();
        cycled.encodeBatch(batch, sink);
        cycled = CodecSession::restore(cycled.snapshot());
    }
    EXPECT_EQ(reference.snapshot(), cycled.snapshot());
}
