#include "sim/machine.h"

#include <gtest/gtest.h>

#include "isa/assembler.h"

namespace predbus::sim
{
namespace
{

using namespace isa;
using namespace isa::regs;

RunResult
runProgram(Asm &a, const SimConfig &cfg = SimConfig{},
           u64 max_cycles = 1000000)
{
    Machine m(a.finish(), cfg);
    return m.run(max_cycles);
}

/** Sum 1..n with a simple loop. */
Asm
sumLoop(u32 n)
{
    Asm a("sum");
    a.li(r1, static_cast<u32>(n));
    a.li(r2, 0);
    a.label("loop");
    a.add(r2, r2, r1);
    a.addi(r1, r1, -1);
    a.bgtz(r1, "loop");
    a.out(r2);
    a.halt();
    return a;
}

TEST(Machine, RunsToHaltWithCorrectOutput)
{
    Asm a = sumLoop(100);
    const RunResult r = runProgram(a);
    EXPECT_TRUE(r.halted);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 5050u);
    EXPECT_GT(r.stats.cycles, 0u);
    EXPECT_GT(r.stats.instructions, 300u);
}

TEST(Machine, MatchesFunctionalSemantics)
{
    // The OoO machine must produce the same architectural results as
    // pure functional execution (functional-execute-at-dispatch).
    Asm a("mix");
    a.li(r1, 0x100000);
    a.li(r2, 17);
    a.li(r3, 0);
    a.label("loop");
    a.mul(r4, r2, r2);
    a.sw(r4, r1, 0);
    a.lw(r5, r1, 0);
    a.add(r3, r3, r5);
    a.addi(r1, r1, 4);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.out(r3);
    a.halt();
    const RunResult r = runProgram(a);
    // Sum of squares 1..17 = 17*18*35/6 = 1785.
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 1785u);
}

TEST(Machine, IpcWithinPhysicalBounds)
{
    Asm a = sumLoop(1000);
    const RunResult r = runProgram(a);
    const double ipc = r.stats.ipc();
    EXPECT_GT(ipc, 0.1);
    EXPECT_LE(ipc, 4.0);  // issue width
}

TEST(Machine, SuperscalarBeatsScalarConfig)
{
    // Independent work should run faster with more issue slots.
    Asm wide("wide");
    wide.li(r10, 2000);
    wide.label("loop");
    wide.addi(r1, r1, 1);
    wide.addi(r2, r2, 1);
    wide.addi(r3, r3, 1);
    wide.addi(r4, r4, 1);
    wide.addi(r10, r10, -1);
    wide.bgtz(r10, "loop");
    wide.halt();
    Program p = wide.finish();

    SimConfig scalar;
    scalar.fetch_width = scalar.decode_width = scalar.issue_width =
        scalar.commit_width = 1;
    scalar.int_alus = 1;
    Machine m1(p, scalar);
    const RunResult r1 = m1.run(10000000);

    Machine m4(p, SimConfig{});
    const RunResult r4 = m4.run(10000000);

    EXPECT_EQ(r1.stats.instructions, r4.stats.instructions);
    EXPECT_LT(r4.stats.cycles, r1.stats.cycles);
}

TEST(Machine, BranchStatsTracked)
{
    Asm a = sumLoop(500);
    const RunResult r = runProgram(a);
    EXPECT_GE(r.stats.branches, 500u);
    // A tight countdown loop predicts almost perfectly.
    EXPECT_LT(r.stats.mispredicts, r.stats.branches / 10);
}

TEST(Machine, AlternatingBranchMispredicts)
{
    // Branch alternates taken/not-taken: a bimodal predictor does
    // poorly. Verify mispredictions are actually modeled (slower than
    // the well-predicted loop of the same length).
    Asm a("alt");
    a.li(r1, 2000);
    a.li(r2, 0);
    a.label("loop");
    a.andi(r3, r1, 1);
    a.beq(r3, r0, "skip");
    a.addi(r2, r2, 1);
    a.label("skip");
    a.addi(r1, r1, -1);
    a.bgtz(r1, "loop");
    a.out(r2);
    a.halt();
    const RunResult r = runProgram(a);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 1000u);
    EXPECT_GT(r.stats.mispredicts, 400u);
}

TEST(Machine, DCacheMissesCostCycles)
{
    // Stride through a large array (bigger than L1+L2) twice; compare
    // against the same instruction count hitting one line.
    auto build = [](u32 stride) {
        Asm a("strides");
        a.li(r1, 0x100000);
        a.li(r2, 4000);
        a.li(r4, static_cast<u32>(stride));
        a.label("loop");
        a.lw(r3, r1, 0);
        a.add(r1, r1, r4);
        a.addi(r2, r2, -1);
        a.bgtz(r2, "loop");
        a.halt();
        return a;
    };
    Asm hot = build(0);
    Asm cold = build(512);
    const RunResult rh = runProgram(hot);
    const RunResult rc = runProgram(cold);
    EXPECT_EQ(rh.stats.instructions, rc.stats.instructions);
    EXPECT_GT(rc.stats.cycles, rh.stats.cycles * 2);
    EXPECT_GT(rc.stats.dl1.misses, 3000u);
}

TEST(Machine, StoreLoadForwarding)
{
    // A load immediately after a store to the same address must not
    // wait for memory; and must return the stored value.
    Asm a("fwd");
    a.li(r1, 0x100000);
    a.li(r5, 1000);
    a.li(r6, 0);
    a.label("loop");
    a.sw(r5, r1, 0);
    a.lw(r2, r1, 0);
    a.add(r6, r6, r2);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "loop");
    a.out(r6);
    a.halt();
    const RunResult r = runProgram(a);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 500500u);
}

TEST(Machine, RegisterBusTraceNonEmpty)
{
    Asm a = sumLoop(200);
    const RunResult r = runProgram(a);
    EXPECT_GT(r.reg_bus.size(), 200u);
    // One post per cycle at most.
    for (std::size_t i = 1; i < r.reg_bus.size(); ++i)
        EXPECT_LT(r.reg_bus[i - 1].cycle, r.reg_bus[i].cycle);
}

TEST(Machine, MemoryBusTraceOrderedAndPlausible)
{
    Asm a("mem");
    a.li(r1, 0x100000);
    a.li(r2, 100);
    a.label("loop");
    a.sw(r2, r1, 0);
    a.lw(r3, r1, 0);
    a.addi(r1, r1, 4);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "loop");
    a.halt();
    const RunResult r = runProgram(a);
    // 100 stores + 100 loads = 200 memory bus events.
    EXPECT_EQ(r.mem_bus.size(), 200u);
    for (std::size_t i = 1; i < r.mem_bus.size(); ++i)
        EXPECT_LE(r.mem_bus[i - 1].cycle, r.mem_bus[i].cycle);
}

TEST(Machine, DoubleTransfersTakeTwoBeats)
{
    Asm a("dbl");
    a.li(r1, 0x100000);
    a.fli(f1, 1.5, r9);
    a.fsd(f1, r1, 0);
    a.fld(f2, r1, 0);
    a.halt();
    const RunResult r = runProgram(a);
    // fli does one fld (2 beats), then fsd (2) + fld (2) = 6 beats.
    EXPECT_EQ(r.mem_bus.size(), 6u);
}

TEST(Machine, MaxCyclesBoundsRun)
{
    // An infinite loop must stop at max_cycles without halting.
    Asm a("inf");
    a.label("spin");
    a.j("spin");
    Machine m(a.finish(), SimConfig{});
    const RunResult r = m.run(5000);
    EXPECT_FALSE(r.halted);
    EXPECT_LE(r.stats.cycles, 5001u);
}

TEST(Machine, FpPipelineCorrectness)
{
    // Dot product of two small vectors.
    Asm a("dot");
    const Addr va = 0x100000, vb = 0x101000;
    a.la(r1, va);
    a.la(r2, vb);
    a.li(r3, 16);
    a.fli(f1, 0.0, r9);
    a.label("loop");
    a.fld(f2, r1, 0);
    a.fld(f3, r2, 0);
    a.fmul(f4, f2, f3);
    a.fadd(f1, f1, f4);
    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r3, r3, -1);
    a.bgtz(r3, "loop");
    a.cvtfi(r4, f1);
    a.out(r4);
    a.halt();
    Program p = a.finish();
    std::vector<double> xs, ys;
    for (int i = 0; i < 16; ++i) {
        xs.push_back(i + 1);
        ys.push_back(2.0);
    }
    p.addDoubles(va, xs);
    p.addDoubles(vb, ys);
    Machine m(p, SimConfig{});
    const RunResult r = m.run(1000000);
    ASSERT_EQ(r.output.size(), 1u);
    // 2 * (1+..+16) = 272.
    EXPECT_EQ(r.output[0], 272u);
}

TEST(Machine, TracesAreDeterministic)
{
    Asm a1 = sumLoop(300);
    Asm a2 = sumLoop(300);
    Program p1 = a1.finish();
    Program p2 = a2.finish();
    Machine m1(p1), m2(p2);
    const RunResult r1 = m1.run(1000000);
    const RunResult r2 = m2.run(1000000);
    ASSERT_EQ(r1.reg_bus.size(), r2.reg_bus.size());
    for (std::size_t i = 0; i < r1.reg_bus.size(); ++i)
        EXPECT_TRUE(r1.reg_bus[i] == r2.reg_bus[i]);
    EXPECT_EQ(r1.stats.cycles, r2.stats.cycles);
}

TEST(Machine, SmallRuuStillCorrect)
{
    SimConfig cfg;
    cfg.ruu_size = 4;
    cfg.lsq_size = 2;
    cfg.ifq_size = 2;
    cfg.fetch_width = 1;
    cfg.decode_width = 1;
    cfg.issue_width = 1;
    cfg.commit_width = 1;
    Asm a = sumLoop(50);
    const RunResult r = runProgram(a, cfg);
    ASSERT_EQ(r.output.size(), 1u);
    EXPECT_EQ(r.output[0], 1275u);
}

TEST(Machine, IcacheMissesTracked)
{
    Asm a = sumLoop(10);
    const RunResult r = runProgram(a);
    EXPECT_GT(r.stats.il1.accesses, 0u);
    EXPECT_GT(r.stats.il1.misses, 0u);  // at least the cold miss
}

} // namespace
} // namespace predbus::sim
