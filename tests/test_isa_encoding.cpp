#include "isa/isa.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace predbus::isa
{
namespace
{

Instruction
makeR(Opcode op, u8 rd, u8 rs, u8 rt, u8 shamt = 0)
{
    Instruction i;
    i.op = op;
    i.rd = rd;
    i.rs = rs;
    i.rt = rt;
    i.shamt = shamt;
    return i;
}

Instruction
makeI(Opcode op, u8 rt, u8 rs, s32 imm)
{
    Instruction i;
    i.op = op;
    i.rt = rt;
    i.rs = rs;
    i.imm = imm;
    return i;
}

TEST(IsaEncoding, RtypeRoundTrip)
{
    for (Opcode op : {Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::DIV,
                      Opcode::REM, Opcode::AND, Opcode::OR, Opcode::XOR,
                      Opcode::NOR, Opcode::SLT, Opcode::SLTU}) {
        const Instruction in = makeR(op, 3, 1, 2);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
}

TEST(IsaEncoding, ShiftRoundTrip)
{
    for (unsigned sh : {0u, 1u, 15u, 31u}) {
        const Instruction in =
            makeR(Opcode::SLL, 5, 0, 7, static_cast<u8>(sh));
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
}

TEST(IsaEncoding, ItypeSignedImmediates)
{
    for (s32 imm : {0, 1, -1, 32767, -32768, 100, -12345}) {
        const Instruction in = makeI(Opcode::ADDI, 4, 2, imm);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->imm, imm) << "imm=" << imm;
        EXPECT_EQ(*out, in);
    }
}

TEST(IsaEncoding, ItypeZeroExtendedImmediates)
{
    for (u32 imm : {0u, 1u, 0x8000u, 0xffffu}) {
        const Instruction in =
            makeI(Opcode::ORI, 4, 2, static_cast<s32>(imm));
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(static_cast<u32>(out->imm), imm);
    }
}

TEST(IsaEncoding, LoadsStoresRoundTrip)
{
    for (Opcode op : {Opcode::LB, Opcode::LBU, Opcode::LH, Opcode::LHU,
                      Opcode::LW, Opcode::SB, Opcode::SH, Opcode::SW,
                      Opcode::FLD, Opcode::FSD}) {
        const Instruction in = makeI(op, 9, 10, -64);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
}

TEST(IsaEncoding, BranchesRoundTrip)
{
    for (Opcode op : {Opcode::BEQ, Opcode::BNE}) {
        const Instruction in = makeI(op, 2, 1, -5);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
    for (Opcode op : {Opcode::BLEZ, Opcode::BGTZ, Opcode::BLTZ,
                      Opcode::BGEZ}) {
        Instruction in = makeI(op, 0, 6, 12);
        // REGIMM encodings reuse rt as a selector; decoder must still
        // yield rt as written here (0 for BLEZ/BGTZ).
        if (op == Opcode::BGEZ || op == Opcode::BLTZ)
            in.rt = 0;
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->op, op);
        EXPECT_EQ(out->rs, 6);
        EXPECT_EQ(out->imm, 12);
    }
}

TEST(IsaEncoding, JumpsRoundTrip)
{
    for (Opcode op : {Opcode::J, Opcode::JAL}) {
        Instruction in;
        in.op = op;
        in.target = 0x123456;
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(out->op, op);
        EXPECT_EQ(out->target, 0x123456u);
    }
}

TEST(IsaEncoding, FpRoundTrip)
{
    for (Opcode op : {Opcode::FADD, Opcode::FSUB, Opcode::FMUL,
                      Opcode::FDIV, Opcode::FSQRT, Opcode::FABS,
                      Opcode::FNEG, Opcode::FMOV, Opcode::CVTIF,
                      Opcode::CVTFI, Opcode::FCLT, Opcode::FCLE,
                      Opcode::FCEQ, Opcode::FMIN, Opcode::FMAX}) {
        const Instruction in = makeR(op, 11, 12, 13);
        const auto out = decode(encode(in));
        ASSERT_TRUE(out.has_value());
        EXPECT_EQ(*out, in);
    }
}

TEST(IsaEncoding, HarnessOpsRoundTrip)
{
    const Instruction halt = makeR(Opcode::HALT, 0, 0, 0);
    const Instruction out_insn = makeR(Opcode::OUT, 0, 14, 0);
    EXPECT_EQ(*decode(encode(halt)), halt);
    EXPECT_EQ(*decode(encode(out_insn)), out_insn);
}

TEST(IsaEncoding, IllegalWordsRejected)
{
    // Unknown primary opcode.
    EXPECT_FALSE(decode(u32{63} << 26).has_value());
    // Unknown R-type funct.
    EXPECT_FALSE(decode(u32{1} << 0 | 63).has_value());
    // Unknown REGIMM selector.
    EXPECT_FALSE(decode((u32{1} << 26) | (u32{5} << 16)).has_value());
}

TEST(IsaEncoding, DistinctOpcodesEncodeDistinctly)
{
    // Every opcode with fixed register fields must produce a unique
    // machine word (injective encoding).
    std::vector<u32> words;
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        Instruction in;
        in.op = static_cast<Opcode>(i);
        in.rs = 1;
        in.rt = 2;
        in.rd = 3;
        in.shamt = 0;
        in.imm = 4;
        in.target = 4;
        // REGIMM encodes the condition in rt; keep rt legal.
        if (in.op == Opcode::BLTZ || in.op == Opcode::BGEZ)
            in.rt = 0;
        words.push_back(encode(in));
    }
    for (std::size_t i = 0; i < words.size(); ++i)
        for (std::size_t j = i + 1; j < words.size(); ++j)
            EXPECT_NE(words[i], words[j]) << i << " vs " << j;
}

TEST(IsaEncoding, RandomWordsEitherRejectOrRoundTrip)
{
    Rng rng(77);
    for (int i = 0; i < 20000; ++i) {
        const u32 word = rng.next32();
        const auto inst = decode(word);
        if (!inst.has_value())
            continue;
        // decode is not injective over raw words (don't-care fields),
        // but encode(decode(w)) must itself be decodable to the same
        // instruction (canonical round-trip).
        const auto again = decode(encode(*inst));
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, *inst);
    }
}

TEST(IsaInfo, OpInfoConsistency)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(Opcode::NumOpcodes); ++i) {
        const Opcode op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        ASSERT_NE(info.mnemonic, nullptr);
        EXPECT_GT(info.latency, 0) << info.mnemonic;
        EXPECT_FALSE(info.is_load && info.is_store) << info.mnemonic;
        if (info.is_load) {
            EXPECT_EQ(info.fu, FuClass::MemRead) << info.mnemonic;
        }
        if (info.is_store) {
            EXPECT_EQ(info.fu, FuClass::MemWrite) << info.mnemonic;
        }
    }
}

TEST(IsaInfo, DestsAndSources)
{
    const Instruction add = makeR(Opcode::ADD, 3, 1, 2);
    EXPECT_EQ(intDest(add), u8{3});
    EXPECT_FALSE(fpDest(add).has_value());
    const SourceRegs s = sources(add);
    EXPECT_EQ(s.int0, u8{1});
    EXPECT_EQ(s.int1, u8{2});
    EXPECT_FALSE(s.fp0.has_value());

    // Writes to r0 are discarded: no destination.
    const Instruction addz = makeR(Opcode::ADD, 0, 1, 2);
    EXPECT_FALSE(intDest(addz).has_value());

    // r0 sources never create dependencies.
    const Instruction addi0 = makeI(Opcode::ADDI, 5, 0, 1);
    EXPECT_FALSE(sources(addi0).int0.has_value());

    const Instruction fadd = makeR(Opcode::FADD, 4, 5, 6);
    EXPECT_EQ(fpDest(fadd), u8{4});
    EXPECT_FALSE(intDest(fadd).has_value());
    const SourceRegs fs = sources(fadd);
    EXPECT_EQ(fs.fp0, u8{5});
    EXPECT_EQ(fs.fp1, u8{6});

    // FP f0 is a real register (unlike r0).
    const Instruction fadd0 = makeR(Opcode::FADD, 0, 0, 0);
    EXPECT_EQ(fpDest(fadd0), u8{0});
    EXPECT_EQ(sources(fadd0).fp0, u8{0});

    const Instruction jal = makeI(Opcode::JAL, 0, 0, 0);
    EXPECT_EQ(intDest(jal), u8{31});

    const Instruction sw = makeI(Opcode::SW, 7, 8, 4);
    EXPECT_FALSE(intDest(sw).has_value());
    const SourceRegs ss = sources(sw);
    EXPECT_EQ(ss.int0, u8{8});
    EXPECT_EQ(ss.int1, u8{7});

    const Instruction fsd = makeI(Opcode::FSD, 9, 10, 8);
    const SourceRegs fss = sources(fsd);
    EXPECT_EQ(fss.int0, u8{10});
    EXPECT_EQ(fss.fp0, u8{9});
}

TEST(IsaDisasm, Spotchecks)
{
    EXPECT_EQ(disassemble(makeR(Opcode::ADD, 3, 1, 2)), "add r3, r1, r2");
    EXPECT_EQ(disassemble(makeI(Opcode::ADDI, 4, 2, -7)),
              "addi r4, r2, -7");
    EXPECT_EQ(disassemble(makeI(Opcode::LW, 5, 6, 16)), "lw r5, 16(r6)");
    EXPECT_EQ(disassemble(makeR(Opcode::FADD, 1, 2, 3)),
              "fadd f1, f2, f3");
    EXPECT_EQ(disassemble(makeI(Opcode::FLD, 2, 7, -8)),
              "fld f2, -8(r7)");
    EXPECT_EQ(disassemble(makeR(Opcode::HALT, 0, 0, 0)), "halt");
    EXPECT_EQ(disassemble(makeR(Opcode::SLL, 1, 0, 1, 4)),
              "sll r1, r1, 4");
}

} // namespace
} // namespace predbus::isa
