#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace predbus
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResets)
{
    Rng a(7);
    const u64 first = a.next64();
    a.next64();
    a.reseed(7);
    EXPECT_EQ(a.next64(), first);
}

TEST(Rng, BelowInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng rng(9);
    std::set<u64> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const s64 v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformBounds)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ZipfSkewed)
{
    Rng rng(23);
    int rank0 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const u64 r = rng.zipf(100, 1.3);
        EXPECT_LT(r, 100u);
        rank0 += (r == 0);
    }
    // Rank 0 must dominate a uniform draw (which would give ~200).
    EXPECT_GT(rank0, n / 10);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

} // namespace
} // namespace predbus
