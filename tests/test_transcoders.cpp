/**
 * Behavior tests for every coding scheme: round-trip correctness over
 * adversarial and random streams, energy properties the paper relies
 * on (LAST-value costs nothing, dictionary hits cost one wire flip),
 * and the context sorting invariants.
 */

#include <gtest/gtest.h>

#include <vector>

#include "coding/bus_energy.h"
#include "coding/context.h"
#include "coding/factory.h"
#include "coding/inversion.h"
#include "coding/protocol.h"
#include "coding/spatial.h"
#include "coding/stride.h"
#include "coding/window.h"
#include "common/log.h"
#include "common/rng.h"

namespace predbus::coding
{
namespace
{

std::vector<Word>
randomStream(std::size_t n, u64 seed, u32 working_set = 0)
{
    Rng rng(seed);
    std::vector<Word> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (working_set)
            out.push_back(static_cast<Word>(rng.below(working_set)) *
                          0x9e3779b9u);
        else
            out.push_back(rng.next32());
    }
    return out;
}

void
expectRoundTrip(Transcoder &codec, const std::vector<Word> &values)
{
    // evaluate() with verify_decode panics on any mismatch.
    EXPECT_NO_THROW(evaluate(codec, values, true)) << codec.name();
}

TEST(Window, RoundTripRandom)
{
    auto w = makeWindow(8);
    expectRoundTrip(*w, randomStream(20000, 1));
}

TEST(Window, RoundTripSmallWorkingSet)
{
    auto w = makeWindow(8);
    expectRoundTrip(*w, randomStream(20000, 2, 6));
}

TEST(Window, RepeatCodesAreFree)
{
    auto w = makeWindow(8);
    std::vector<Word> values(500, 0x12345678u);
    const CodingResult r = evaluate(*w, values, true);
    // The first word raw-installs the value; the meter's initial
    // state is that first wire state (matching the unencoded meter's
    // convention), so the 499 LAST-value repeats cost nothing at all.
    EXPECT_EQ(r.coded.tau, 0u);
    EXPECT_EQ(r.coded.kappa, 0u);
    EXPECT_EQ(r.ops.last_hits, 499u);
    EXPECT_EQ(r.ops.raw_sends, 1u);
}

TEST(Window, DictionaryHitCostsOneFlip)
{
    auto w = makeWindow(8);
    // Alternate between two values: after both are resident, each
    // change is a dictionary hit = 1 wire flip (plus coupling).
    std::vector<Word> warm = {1, 2, 1, 2};
    std::vector<Word> values;
    for (int i = 0; i < 100; ++i)
        values.push_back(i % 2 ? 2 : 1);
    const CodingResult r = evaluate(*w, values, true);
    // 2 raw sends to install, then 98 one-flip hits (at most; coupling
    // varies).
    EXPECT_EQ(r.ops.raw_sends, 2u);
    EXPECT_EQ(r.ops.hits + r.ops.last_hits, 98u);
    EXPECT_LE(r.coded.tau,
              2u * 33u + 98u);  // raws bounded by 33 flips each
}

TEST(Window, EvictsOldestUniqueValue)
{
    WindowDict d(4);
    OpCounts ops;
    for (Word v : {1, 2, 3, 4})
        d.access(v, &ops);
    EXPECT_TRUE(d.contains(1));
    d.access(5, &ops);  // evicts 1 (oldest)
    EXPECT_FALSE(d.contains(1));
    EXPECT_TRUE(d.contains(2));
    // Hitting 2 does not reorder; inserting 6 evicts 2.
    d.access(2, &ops);
    d.access(6, &ops);
    EXPECT_FALSE(d.contains(2));
    EXPECT_TRUE(d.contains(3));
}

TEST(Window, OpCountsPlausible)
{
    auto w = makeWindow(8);
    const auto values = randomStream(1000, 3, 100);
    const CodingResult r = evaluate(*w, values, false);
    EXPECT_EQ(r.ops.cycles, 1000u);
    EXPECT_EQ(r.ops.matches, 1000u);
    EXPECT_EQ(r.ops.hits + r.ops.last_hits + r.ops.raw_sends, 1000u);
    EXPECT_EQ(r.ops.shifts, r.ops.raw_sends);
}

TEST(Window, BadSizesRejected)
{
    EXPECT_THROW(makeWindow(0), FatalError);
    EXPECT_THROW(makeWindow(94), FatalError);
}

TEST(ContextValue, RoundTripRandom)
{
    auto c = makeContext(ContextConfig{});
    expectRoundTrip(*c, randomStream(20000, 4));
}

TEST(ContextValue, RoundTripSkewed)
{
    auto c = makeContext(ContextConfig{});
    expectRoundTrip(*c, randomStream(30000, 5, 40));
}

TEST(ContextTransition, RoundTrip)
{
    ContextConfig cfg;
    cfg.transition_based = true;
    auto c = makeContext(cfg);
    expectRoundTrip(*c, randomStream(30000, 6, 40));
}

TEST(ContextValue, InvariantsHoldUnderLoad)
{
    ContextConfig cfg;
    cfg.table_size = 12;
    cfg.sr_size = 4;
    cfg.divide_period = 256;
    ContextDict d(cfg);
    Rng rng(7);
    OpCounts ops;
    for (int i = 0; i < 50000; ++i) {
        d.access(static_cast<Word>(rng.below(30)), &ops);
        ASSERT_TRUE(d.sortedByCount()) << "at access " << i;
    }
    // Invariant 1: unique tags among valid entries.
    for (unsigned i = 0; i < d.validCount(); ++i)
        for (unsigned j = i + 1; j < d.validCount(); ++j)
            EXPECT_NE(d.tableKey(i), d.tableKey(j));
    EXPECT_GT(ops.swaps, 0u);
    EXPECT_GT(ops.counter_incs, 0u);
    EXPECT_GT(ops.divisions, 100u);
}

TEST(ContextValue, PendingBitWorkedExample)
{
    // Paper Fig 27: table (top to bottom) 0xFFEE:9, 0x1122:8,
    // 0x5438:7, 0x9988:6, 0x3344:6, 0x7788:6. A hit on 0x7788 sets
    // its pending bit; over successive cycles it swaps past the two
    // equal-count entries above it and only then increments, ending
    // with counter 7 directly below 0x5438.
    ContextConfig cfg;
    cfg.table_size = 6;
    cfg.sr_size = 1;
    cfg.divide_period = 0;
    ContextDict d(cfg);

    // Install the 6 entries with the example's counts. Each value
    // first passes through the SR (count accumulates there), then is
    // promoted when displaced. We instead build the exact state by
    // feeding values with hit counts shaping the same order, then
    // assert the algorithm's *step behavior* on an equal-count run,
    // which is the property Fig 27 demonstrates.
    const Word vals[] = {0xFFEE, 0x1122, 0x5438, 0x9988, 0x3344,
                         0x7788};
    OpCounts ops;
    // Install all six: each new value displaces the previous one out
    // of the 1-entry SR, promoting it into the table; a trailing
    // noise value flushes the last one.
    for (Word v : vals)
        d.access(v, &ops);
    d.access(0xAAAA, &ops);
    ASSERT_EQ(d.validCount(), 6u);
    ASSERT_TRUE(d.sortedByCount());

    // Now create an equal-count plateau and hit the bottom entry.
    // Find the bottom entry's key and hit it repeatedly: each hit can
    // bubble it at most one position per cycle, and counts stay
    // sorted throughout (Invariant 2) — the heart of §5.3.1.
    const u64 bottom = d.tableKey(5);
    for (int i = 0; i < 40; ++i) {
        d.access(static_cast<Word>(bottom), &ops);
        ASSERT_TRUE(d.sortedByCount()) << i;
    }
    // The hit entry must now rank strictly above at least one of the
    // formerly-equal entries.
    unsigned pos = 99;
    for (unsigned i = 0; i < 6; ++i)
        if (d.tableKey(i) == bottom)
            pos = i;
    EXPECT_LT(pos, 5u);
    EXPECT_GT(ops.swaps, 0u);
}

TEST(ContextValue, CounterDivisionAdapts)
{
    // With division, a stale hot value decays and a new phase's value
    // overtakes it; without division the stale value stays on top.
    auto run = [](u32 divide_period) {
        ContextConfig cfg;
        cfg.table_size = 4;
        cfg.sr_size = 2;
        cfg.divide_period = divide_period;
        ContextDict d(cfg);
        OpCounts ops;
        // Values only enter the table when displaced from the SR, so
        // interleave a stream of one-shot noise values to keep the SR
        // churning (as real traffic does).
        for (u32 i = 0; i < 3000; ++i) {
            d.access(111, &ops);
            d.access(5000 + i % 64, &ops);
        }
        for (u32 i = 0; i < 1500; ++i) {
            d.access(222, &ops);
            d.access(9000 + i % 64, &ops);
        }
        return d.tableKey(0);
    };
    EXPECT_EQ(run(0), 111u);      // no division: stale winner sticks
    EXPECT_EQ(run(256), 222u);    // division: adapts to the new phase
}

TEST(ContextValue, BadConfigRejected)
{
    ContextConfig bad;
    bad.table_size = 1;
    EXPECT_THROW(ContextDict{bad}, FatalError);
    bad.table_size = 90;
    bad.sr_size = 8;
    EXPECT_THROW(ContextDict{bad}, FatalError);
}

TEST(Stride, RoundTripRandom)
{
    auto s = makeStride(8);
    expectRoundTrip(*s, randomStream(20000, 8));
}

TEST(Stride, PerfectStrideCodesCheaply)
{
    auto s = makeStride(4);
    std::vector<Word> values;
    for (u32 i = 0; i < 1000; ++i)
        values.push_back(0x1000 + 4 * i);  // constant stride 4
    const CodingResult r = evaluate(*s, values, true);
    // After warmup the stride-1 predictor hits every word.
    EXPECT_GT(r.ops.hits, 990u);
    EXPECT_LT(r.ops.raw_sends, 5u);
    // Each hit flips one wire (tau 1, kappa 1): about half the cost
    // of the unencoded counter-like stream (tau ~2, kappa ~2).
    EXPECT_GT(r.removedFraction(1.0), 0.4);
}

TEST(Stride, InterleavedStreamsNeedHigherStrides)
{
    // Two interleaved arithmetic sequences: stride-2 predicts both,
    // stride-1 sees garbage.
    std::vector<Word> values;
    for (u32 i = 0; i < 1000; ++i)
        values.push_back(i % 2 ? 0x9000 + 8 * (i / 2)
                               : 0x100 + 4 * (i / 2));
    auto s1 = makeStride(1);
    auto s2 = makeStride(2);
    const CodingResult r1 = evaluate(*s1, values, true);
    const CodingResult r2 = evaluate(*s2, values, true);
    EXPECT_GT(r2.ops.hits, r1.ops.hits + 800);
    EXPECT_GT(r2.removedFraction(1.0), r1.removedFraction(1.0));
}

TEST(Stride, RepeatIsCodeZero)
{
    auto s = makeStride(4);
    std::vector<Word> values(200, 7u);
    const CodingResult r = evaluate(*s, values, true);
    EXPECT_EQ(r.ops.last_hits, 199u);
}

TEST(Inversion, RoundTrip)
{
    for (unsigned n : {2u, 4u, 16u, 64u}) {
        InversionCoder coder(n, 1.0);
        expectRoundTrip(coder, randomStream(10000, 9 + n));
    }
}

TEST(Inversion, NeverWorseThanRawOnTau)
{
    // With the identity pattern always available and lambda=0
    // selection, coded tau on the data wires can't exceed the raw
    // transition count by more than the signal-bit overhead.
    auto values = randomStream(5000, 10);
    InversionCoder coder(2, 0.0);
    const CodingResult r = evaluate(coder, values, true);
    EXPECT_LE(r.coded.tau, r.base.tau + 5000u);
    // And it must actually help on average vs. plain transmission.
    EXPECT_LT(r.coded.tau, r.base.tau);
}

TEST(Inversion, ClassicBusInvertBoundsRowWeight)
{
    // With patterns {0, ~0} chosen on tau alone, each word flips at
    // most 16 data wires (+1 signal wire).
    InversionCoder coder(2, 0.0);
    coder.reset();
    Rng rng(11);
    u64 prev = 0;
    for (int i = 0; i < 2000; ++i) {
        const u64 state = coder.encode(rng.next32());
        EXPECT_LE(hammingDistance(prev & kDataMask, state & kDataMask),
                  16);
        prev = state;
    }
}

TEST(Inversion, MorePatternsRemoveMoreTau)
{
    auto values = randomStream(20000, 12);
    InversionCoder c2(2, 0.0), c16(16, 0.0);
    const CodingResult r2 = evaluate(c2, values, false);
    const CodingResult r16 = evaluate(c16, values, false);
    EXPECT_LT(r16.coded.tau, r2.coded.tau);
}

TEST(Inversion, BadPatternCountsRejected)
{
    EXPECT_THROW(InversionCoder(1, 0.0), FatalError);
    EXPECT_THROW(InversionCoder(3, 0.0), FatalError);
    EXPECT_THROW(InversionCoder(128, 0.0), FatalError);
}

TEST(Spatial, RoundTrip)
{
    SpatialCoder coder(8);
    std::vector<Word> values;
    Rng rng(13);
    for (int i = 0; i < 5000; ++i)
        values.push_back(static_cast<Word>(rng.below(256)));
    expectRoundTrip(coder, values);
}

TEST(Spatial, AtMostTwoTransitionsPerWord)
{
    SpatialCoder coder(10);
    std::vector<Word> values;
    Rng rng(14);
    for (int i = 0; i < 3000; ++i)
        values.push_back(static_cast<Word>(rng.below(1024)));
    const CodingResult r = evaluate(coder, values, true);
    EXPECT_LE(r.coded.tau, 2 * values.size());
    // Repeats are free: a constant tail adds nothing.
    SpatialCoder coder2(10);
    std::vector<Word> rep(3000, 55);
    const CodingResult r2 = evaluate(coder2, rep, true);
    EXPECT_EQ(r2.coded.tau, 0u);
    EXPECT_EQ(r2.coded.kappa, 0u);
}

TEST(Spatial, MetersMatchExplicitSimulationAt6Bits)
{
    // 2^6 = 64 wires fits the generic meter: cross-check the analytic
    // tau/kappa against brute-force one-hot wire states.
    SpatialCoder coder(6);
    BusEnergyMeter meter(64);
    Rng rng(15);
    coder.reset();
    for (int i = 0; i < 5000; ++i) {
        const Word v = static_cast<Word>(rng.below(64));
        coder.encode(v);
        meter.observe(u64{1} << v);
    }
    EXPECT_EQ(coder.internalCount().tau, meter.count().tau);
    EXPECT_EQ(coder.internalCount().kappa, meter.count().kappa);
}

TEST(Spatial, RejectsOutOfRange)
{
    SpatialCoder coder(4);
    coder.encode(15);
    EXPECT_THROW(coder.encode(16), PanicError);
    EXPECT_THROW(SpatialCoder(0), FatalError);
    EXPECT_THROW(SpatialCoder(21), FatalError);
}

class AllSchemesRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(AllSchemesRoundTrip, AdversarialStreams)
{
    // A battery of nasty streams every scheme must survive.
    std::vector<std::vector<Word>> streams;
    streams.push_back(std::vector<Word>(100, 0));
    streams.push_back({0xffffffffu, 0, 0xffffffffu, 0, 0xffffffffu});
    streams.push_back(randomStream(5000, 20));
    streams.push_back(randomStream(5000, 21, 3));
    {
        std::vector<Word> ramp;
        for (u32 i = 0; i < 3000; ++i)
            ramp.push_back(i * 0x10001u);
        streams.push_back(std::move(ramp));
    }
    {
        // Alternating repeats and novelties.
        std::vector<Word> mix;
        Rng rng(22);
        Word cur = 0;
        for (int i = 0; i < 4000; ++i) {
            if (rng.chance(0.6))
                cur = rng.next32();
            mix.push_back(cur);
        }
        streams.push_back(std::move(mix));
    }

    auto make = [&]() -> std::unique_ptr<Transcoder> {
        switch (GetParam()) {
          case 0: return makeRaw();
          case 1: return makeWindow(8);
          case 2: return makeWindow(1);
          case 3: return makeWindow(64);
          case 4: return makeContext(ContextConfig{});
          case 5: {
            ContextConfig c;
            c.transition_based = true;
            return makeContext(c);
          }
          case 6: {
            ContextConfig c;
            c.table_size = 64;
            c.sr_size = 16;
            c.divide_period = 64;
            return makeContext(c);
          }
          case 7: return makeStride(1);
          case 8: return makeStride(30);
          case 9: return makeInversion(2, 0.0);
          case 10: return makeInversion(64, 1.0);
          default: return makeStride(4);
        }
    };
    for (const auto &stream : streams) {
        auto codec = make();
        expectRoundTrip(*codec, stream);
    }
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemesRoundTrip,
                         ::testing::Range(0, 12));

} // namespace
} // namespace predbus::coding
