# fibonacci.s — P32 sample program for predbus-asm / bus_explorer.
# Computes fib(0..24) into a table, then OUTs fib(24).

    .data 0x30000000
    .space 128              # fib table (25 words + pad)

    .text
    li r1, 0x30000000       # table base
    li r2, 0                # fib(0)
    li r3, 1                # fib(1)
    sw r2, 0(r1)
    sw r3, 4(r1)
    li r4, 23               # remaining entries
    addi r1, r1, 8
loop:
    add r5, r2, r3          # next = a + b
    sw r5, 0(r1)
    move r2, r3
    move r3, r5
    addi r1, r1, 4
    addi r4, r4, -1
    bgtz r4, loop
    out r3                  # fib(24) = 46368
    halt
