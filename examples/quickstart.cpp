/**
 * Quickstart: the core predbus flow in ~60 lines.
 *
 *  1. Build one of the SPEC95-like workloads.
 *  2. Simulate it on the out-of-order machine, capturing the register
 *     bus trace.
 *  3. Run the paper's 8-entry window transcoder over the trace.
 *  4. Combine wire-event savings with the circuit model to find the
 *     break-even wire length at 0.13um.
 */

#include <cstdio>

#include "analysis/energy_eval.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "sim/machine.h"
#include "wires/technology.h"
#include "workloads/workload.h"

using namespace predbus;

int
main()
{
    // 1. A guest program: the gcc-like IR evaluation kernel.
    const isa::Program program = workloads::build("gcc", /*scale=*/4);

    // 2. Simulate; the machine halts or we stop after 200k cycles.
    sim::Machine machine(program);
    const sim::RunResult run = machine.run(200'000);
    std::printf("simulated %llu cycles, %llu instructions (IPC %.2f)\n",
                static_cast<unsigned long long>(run.stats.cycles),
                static_cast<unsigned long long>(run.stats.instructions),
                run.stats.ipc());
    std::printf("register bus carried %zu values\n",
                run.reg_bus.size());

    // 3. Encode the register-bus values with the window-8 transcoder.
    auto codec = coding::makeWindow(8);
    const coding::CodingResult result =
        coding::evaluate(*codec, run.reg_bus.values());
    std::printf("window-8: %.1f%% of wire energy removed "
                "(hits %.0f%%, repeats %.0f%%)\n",
                100.0 * result.removedFraction(1.0),
                100.0 * static_cast<double>(result.ops.hits) /
                    static_cast<double>(result.ops.cycles),
                100.0 * static_cast<double>(result.ops.last_hits) /
                    static_cast<double>(result.ops.cycles));

    // 4. Where does the transcoder pay for itself at 0.13um?
    const circuit::ImplEstimate impl =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    const double crossover = analysis::crossoverLengthMm(
        result, impl, wires::tech013());
    std::printf("encoder+decoder cost %.2f pJ per word; break-even "
                "bus length: %.1f mm\n",
                impl.energyFor(result.ops) * 1e12 /
                    static_cast<double>(result.words),
                crossover);

    const analysis::LengthEval at15 =
        analysis::evalAtLength(result, impl, wires::tech013(), 15.0);
    std::printf("at 15 mm the coded bus uses %.0f%% of the unencoded "
                "bus energy\n",
                100.0 * at15.normalized());
    return 0;
}
