/**
 * bus_explorer: write your own guest program, see what every coding
 * scheme does to its bus traffic.
 *
 * This example assembles a program from P32 assembly *text* (the same
 * syntax the disassembler prints), runs it on the machine, and
 * compares all the paper's schemes on both traced buses. Pass a .s
 * file path to explore your own program; without arguments it uses a
 * built-in matrix-sum kernel.
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "coding/bus_energy.h"
#include "coding/context.h"
#include "coding/factory.h"
#include "common/table.h"
#include "isa/asm_parser.h"
#include "sim/machine.h"

using namespace predbus;

namespace
{

const char *kDefaultSource = R"(
    # Sum a 64x64 word matrix by rows, accumulating into r10.
    .data 0x20000000
    .space 16384
    .text
    li r1, 0x20000000     # matrix base
    li r2, 64             # rows
    li r10, 0
rows:
    li r3, 64             # cols
cols:
    lw r4, 0(r1)
    add r10, r10, r4
    addi r4, r4, 7        # mutate so later passes differ
    sw r4, 0(r1)
    addi r1, r1, 4
    addi r3, r3, -1
    bgtz r3, cols
    addi r2, r2, -1
    bgtz r2, rows
    out r10
    halt
)";

} // namespace

int
main(int argc, char **argv)
{
    const isa::Program program =
        (argc > 1) ? isa::assembleFile(argv[1])
                   : isa::assembleText(kDefaultSource, "matrix_sum");

    sim::Machine machine(program);
    const sim::RunResult run = machine.run(2'000'000);
    std::printf("%s: %llu cycles, %llu instructions, halted=%d\n",
                program.name.c_str(),
                static_cast<unsigned long long>(run.stats.cycles),
                static_cast<unsigned long long>(run.stats.instructions),
                run.halted ? 1 : 0);
    for (u32 v : run.output)
        std::printf("  OUT: 0x%08x (%u)\n", v, v);

    coding::ContextConfig ctx_value;
    coding::ContextConfig ctx_trans;
    ctx_trans.transition_based = true;

    struct Scheme
    {
        const char *label;
        std::unique_ptr<coding::Transcoder> codec;
    };
    auto schemes = [&] {
        std::vector<Scheme> out;
        out.push_back({"window-8", coding::makeWindow(8)});
        out.push_back({"window-16", coding::makeWindow(16)});
        out.push_back({"context-value", coding::makeContext(ctx_value)});
        out.push_back(
            {"context-transition", coding::makeContext(ctx_trans)});
        out.push_back({"stride-8", coding::makeStride(8)});
        out.push_back({"businvert", coding::makeInversion(2, 0.0)});
        out.push_back({"inversion-8", coding::makeInversion(8, 1.0)});
        return out;
    };

    for (const auto bus : {&run.reg_bus, &run.mem_bus}) {
        const bool is_reg = (bus == &run.reg_bus);
        std::printf("\n=== %s bus (%zu values) ===\n",
                    is_reg ? "register" : "memory", bus->size());
        Table table({"scheme", "removed_%", "hit_%", "repeat_%",
                     "raw_%"});
        for (auto &scheme : schemes()) {
            const coding::CodingResult r =
                coding::evaluate(*scheme.codec, bus->values());
            const double n = static_cast<double>(
                std::max<u64>(1, r.ops.cycles));
            table.row()
                .cell(scheme.label)
                .cell(100.0 * r.removedFraction(1.0), 2)
                .cell(100.0 * static_cast<double>(r.ops.hits) / n, 1)
                .cell(100.0 * static_cast<double>(r.ops.last_hits) / n,
                      1)
                .cell(100.0 * static_cast<double>(r.ops.raw_sends) / n,
                      1);
        }
        table.print(std::cout);
    }
    return 0;
}
