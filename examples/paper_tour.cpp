/**
 * paper_tour: the whole paper in one run.
 *
 * A miniature end-to-end pass over the paper's argument, printed as a
 * narrative: wire model (§3) → bus traces (§4.1-4.2) → coding schemes
 * (§4.3-4.4) → silicon cost (§5) → break-even verdict (§5.4.3). Uses
 * short traces so it finishes in seconds; the bench/ binaries do the
 * full-scale versions of each step.
 */

#include <cstdio>

#include "analysis/energy_eval.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "sim/machine.h"
#include "trace/trace_stats.h"
#include "wires/wire_model.h"
#include "workloads/workload.h"

using namespace predbus;

int
main()
{
    std::puts("== 1. Wires (paper section 3) ==");
    const wires::Technology tech = wires::tech013();
    const wires::WireModel wire(tech, 15.0, true);
    std::printf(
        "A 15 mm buffered wire at %s: %u repeaters (%.0fx min size),\n"
        "%.2f pJ per isolated transition, %.0f ps delay, "
        "effective lambda %.2f\n"
        "(bare wire lambda would be %.1f - repeaters are what make\n"
        "coupling manageable).\n\n",
        tech.name.c_str(), wire.repeaters().count,
        wire.repeaters().size,
        wire.isolatedTransitionEnergy() * 1e12, wire.delay() * 1e12,
        wire.effectiveLambda(), tech.unbufferedLambda());

    std::puts("== 2. Bus traffic (sections 4.1-4.2) ==");
    sim::Machine machine(workloads::build("swim", 8));
    const sim::RunResult run = machine.run(120'000);
    const std::vector<Word> values = run.reg_bus.values();
    std::printf(
        "Simulated swim for %llu cycles (IPC %.2f): %zu register-bus "
        "values,\n%zu unique; within any 10-word window only %.0f%% "
        "of values are\nunique - small dictionaries can work.\n\n",
        static_cast<unsigned long long>(run.stats.cycles),
        run.stats.ipc(), values.size(),
        trace::uniqueValueCount(values),
        100.0 * trace::windowUniqueFraction(values, 10));

    std::puts("== 3. Coding schemes (sections 4.3-4.4) ==");
    struct Row
    {
        const char *spec;
        const char *note;
    };
    const Row rows[] = {
        {"inv:2", "classic bus-invert [23]"},
        {"pbi:4", "partial bus-invert [20]"},
        {"stride:8", "multi-stride predictor"},
        {"window:8", "window transcoder (the silicon design)"},
        {"ctx:28+8", "context transcoder (value-based)"},
    };
    coding::CodingResult window_result;
    for (const Row &row : rows) {
        auto codec = coding::makeFromSpec(row.spec);
        const coding::CodingResult r = coding::evaluate(*codec, values);
        if (std::string(row.spec) == "window:8")
            window_result = r;
        std::printf("  %-10s removes %6.2f%% of wire events  (%s)\n",
                    row.spec, 100.0 * r.removedFraction(1.0),
                    row.note);
    }

    std::puts("\n== 4. Silicon cost (section 5) ==");
    const circuit::ImplEstimate impl =
        circuit::estimate(circuit::window8(), circuit::circuit013());
    std::printf(
        "The 8-entry window encoder in 0.13um: %.0f um^2, %llu\n"
        "transistors, %.1f ns delay; on this traffic it burns %.2f pJ "
        "per\nword (encoder+decoder %.2f pJ).\n\n",
        impl.area_um2, static_cast<unsigned long long>(impl.transistors),
        impl.delay * 1e9,
        impl.opEnergyPerCycle(window_result.ops) * 1e12,
        impl.energyFor(window_result.ops) * 1e12 /
            static_cast<double>(window_result.words));

    std::puts("== 5. The verdict (section 5.4.3) ==");
    const double crossover =
        analysis::crossoverLengthMm(window_result, impl, tech);
    for (double len : {5.0, 15.0, 30.0}) {
        const analysis::LengthEval e =
            analysis::evalAtLength(window_result, impl, tech, len);
        std::printf("  at %4.1f mm: coded bus uses %5.1f%% of the "
                    "unencoded bus energy\n",
                    len, 100.0 * e.normalized());
    }
    std::printf(
        "\nBreak-even length for swim on this design: %.1f mm.\n"
        "Longer buses save energy; shorter ones shouldn't bother.\n"
        "Smaller technology pulls this in (run table3_crossover_"
        "medians).\n",
        crossover);
    return 0;
}
