/**
 * sorting_walkthrough: the paper's Fig 27 pending-bit sorting
 * algorithm, narrated step by step.
 *
 * Builds a small context dictionary, engineers an equal-count plateau
 * like the one in the figure, hits the bottom entry, and prints the
 * table after every cycle so you can watch the entry bubble up one
 * neighbor swap at a time while Invariant 2 (sorted counters) holds
 * throughout.
 */

#include <cstdio>

#include "coding/context.h"

using namespace predbus;

namespace
{

void
dump(const coding::ContextDict &dict, const char *note)
{
    std::printf("%-34s |", note);
    for (unsigned i = 0; i < dict.validCount(); ++i) {
        std::printf(" %04llx:%-2u",
                    static_cast<unsigned long long>(dict.tableKey(i)),
                    dict.tableCount(i));
    }
    std::printf("  %s\n", dict.sortedByCount() ? "(sorted ok)"
                                               : "(INVARIANT BROKEN)");
}

} // namespace

int
main()
{
    coding::ContextConfig cfg;
    cfg.table_size = 6;
    cfg.sr_size = 1;
    cfg.divide_period = 0;
    coding::ContextDict dict(cfg);
    coding::OpCounts ops;

    // Install six values (the 1-entry SR promotes each displaced
    // value into the table).
    const Word vals[] = {0xFFEE, 0x1122, 0x5438, 0x9988, 0x3344,
                         0x7788};
    for (Word v : vals)
        dict.access(v, &ops);
    dict.access(0xAAAA, &ops);  // flush the last one into the table
    dump(dict, "installed (equal-count plateau)");

    // Paper Fig 27: a hit on the bottom entry sets its pending bit;
    // each later cycle it swaps past one equal-count neighbor, and
    // only increments when the entry above holds a greater count.
    const Word target = 0x7788;
    std::printf("\nhit 0x7788 three times, then idle cycles:\n");
    for (int step = 0; step < 3; ++step) {
        dict.access(target, &ops);
        dump(dict, "after hit + 1 sort cycle");
    }
    for (int step = 0; step < 4; ++step) {
        dict.access(0xAAAA, &ops);  // unrelated traffic
        dump(dict, "after idle sort cycle");
    }

    std::printf("\nswaps performed: %llu, counter increments: %llu\n",
                static_cast<unsigned long long>(ops.swaps),
                static_cast<unsigned long long>(ops.counter_incs));
    std::printf("The hit entry rose without ever breaking the sorted "
                "order —\nexactly the property §5.3.1's pending bit "
                "exists to protect.\n");
    return 0;
}
