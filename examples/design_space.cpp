/**
 * design_space: "should I put a transcoder on this bus?"
 *
 * The question an SoC designer would ask of this library: given a bus
 * length (mm) and a technology node, which transcoder design — if any
 * — saves energy, and how much? Sweeps window sizes and the context
 * design across the workload suite and prints the verdict.
 *
 * Usage: design_space [length_mm] [technology]
 *        design_space 8 0.10um
 */

#include <cmath>
#include <functional>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/energy_eval.h"
#include "analysis/suite.h"
#include "circuit/transcoder_impl.h"
#include "coding/factory.h"
#include "common/stats.h"
#include "common/table.h"
#include "wires/technology.h"
#include "workloads/workload.h"

using namespace predbus;

int
main(int argc, char **argv)
{
    const double length_mm = (argc > 1) ? std::atof(argv[1]) : 10.0;
    const std::string tech_name = (argc > 2) ? argv[2] : "0.13um";
    const wires::Technology &wire_tech = wires::technology(tech_name);
    const circuit::CircuitTech &ckt_tech =
        circuit::circuitTech(tech_name);

    std::printf("Design space for a %.1f mm register-class bus at %s\n"
                "(suite medians over %zu workloads; < 1.000 saves "
                "energy)\n\n",
                length_mm, tech_name.c_str(),
                workloads::all().size());

    struct Candidate
    {
        std::string label;
        circuit::DesignConfig impl_cfg;
        std::function<std::unique_ptr<coding::Transcoder>()> make;
    };
    std::vector<Candidate> candidates;
    for (unsigned entries : {4u, 8u, 16u, 32u}) {
        circuit::DesignConfig cfg = circuit::window8();
        cfg.entries = entries;
        candidates.push_back(
            {"window-" + std::to_string(entries), cfg, [entries] {
                 return coding::makeWindow(entries);
             }});
    }
    {
        circuit::DesignConfig cfg = circuit::context28();
        candidates.push_back({"context-28+4", cfg, [] {
                                  coding::ContextConfig c;
                                  c.table_size = 28;
                                  c.sr_size = 4;
                                  return coding::makeContext(c);
                              }});
    }
    {
        circuit::DesignConfig cfg = circuit::invertCoder();
        candidates.push_back({"bus-invert", cfg, [] {
                                  return coding::makeInversion(2, 0.0);
                              }});
    }

    Table table({"design", "area_um2", "median_normalized",
                 "median_crossover_mm", "verdict"});
    std::string best;
    double best_norm = 1.0;
    for (const auto &cand : candidates) {
        const circuit::ImplEstimate impl =
            circuit::estimate(cand.impl_cfg, ckt_tech);
        std::vector<double> norms, crossovers;
        for (const auto &info : workloads::all()) {
            auto codec = cand.make();
            const coding::CodingResult r = coding::evaluate(
                *codec,
                analysis::busValues(info.name,
                                    trace::BusKind::Register));
            norms.push_back(
                analysis::evalAtLength(r, impl, wire_tech, length_mm)
                    .normalized());
            crossovers.push_back(
                analysis::crossoverLengthMm(r, impl, wire_tech));
        }
        const double med_norm = median(norms);
        const double med_cross = median(crossovers);
        table.row()
            .cell(cand.label)
            .cell(impl.area_um2, 0)
            .cell(med_norm, 3)
            .cell(std::isfinite(med_cross) ? std::to_string(med_cross)
                                               .substr(0, 5)
                                           : "inf")
            .cell(med_norm < 1.0 ? "saves energy" : "not worth it");
        if (med_norm < best_norm) {
            best_norm = med_norm;
            best = cand.label;
        }
    }
    table.print(std::cout);
    if (best.empty()) {
        std::printf("\nVerdict: leave this bus unencoded at %.1f mm.\n",
                    length_mm);
    } else {
        std::printf("\nVerdict: %s, saving %.1f%% of total bus energy "
                    "at %.1f mm.\n",
                    best.c_str(), 100.0 * (1.0 - best_norm), length_mm);
    }
    return 0;
}
