/**
 * @file
 * Implementation estimates for transcoder designs (paper §5.3-5.4,
 * Table 2): transistor count, area, per-operation energies, leakage,
 * and timing, for the Window, Context, and Inversion designs.
 *
 * Per-operation energies are budgets of "unit events" (elementary
 * switched nodes) derived from the circuit structure the paper
 * describes: selective-precharge CAM matching [26], pointer-based
 * shift entries, Johnson counters, XOR counter comparators, and
 * neighbor-swap cells (Figs 28-31).
 */

#ifndef PREDBUS_CIRCUIT_TRANSCODER_IMPL_H
#define PREDBUS_CIRCUIT_TRANSCODER_IMPL_H

#include "circuit/circuit_tech.h"
#include "coding/codec.h"

namespace predbus::circuit
{

/** Which hardware design is being estimated. */
enum class DesignKind
{
    Window,
    ContextValue,
    ContextTransition,
    Inversion,
};

/** Structural parameters of a transcoder implementation. */
struct DesignConfig
{
    DesignKind kind = DesignKind::Window;
    unsigned width = 32;        ///< bus width W_B
    unsigned entries = 8;       ///< window entries
    unsigned table_size = 28;   ///< context frequency table
    unsigned sr_size = 8;       ///< context staging shift register
    unsigned patterns = 2;      ///< inversion constant patterns
    unsigned counter_bits = 12; ///< context Johnson counter width
    /** Ablation: disable selective precharge — every CAM comparator
     * evaluates fully on every probe (paper ref [26] motivates the
     * selective design). */
    bool full_precharge = false;
};

/** The canonical silicon design of the paper (§5.4.1, Fig 33). */
DesignConfig window8();
/** The projected larger design (Table 3's 16-entry rows). */
DesignConfig window16();
/** The laid-out context design (Fig 32: 28 table + 4 SR). */
DesignConfig context28();
/** The base-case inversion coder (§5.2). */
DesignConfig invertCoder();

/** Everything Table 2 reports, plus per-op energies. */
struct ImplEstimate
{
    DesignConfig config;
    std::string tech_name;
    u64 transistors = 0;
    double area_um2 = 0;

    // Per-operation dynamic energies (J), encoder side.
    double e_clock = 0;     ///< per cycle (clock tree + idle control)
    double e_match = 0;     ///< per CAM probe
    double e_shift = 0;     ///< per shift-register insert
    double e_count = 0;     ///< per counter increment
    double e_compare = 0;   ///< per adjacent counter comparison
    double e_swap = 0;      ///< per neighbor entry swap
    double e_divide = 0;    ///< per whole-table counter division
    double e_raw = 0;       ///< per raw (unencoded) send

    /** Decoder-side costs: the decoder never searches the CAM — a
     * received code is an *indexed* entry read — and its raw path is
     * a pass-through latch. */
    double e_dec_read = 0;  ///< per received dictionary code
    double e_dec_raw = 0;   ///< per received raw word

    double leak_per_cycle = 0;  ///< J of leakage per cycle
    double delay = 0;           ///< s, data-ready to bus-out
    double cycle_time = 0;      ///< s

    /**
     * Dynamic + leakage energy (J) for a run with the given encoder
     * operation counts. With @p include_decoder the decoder FSM is
     * charged too: it mirrors the encoder's dictionary updates and
     * clocking (same area, §5.4.1) but replaces every CAM search with
     * an indexed entry read and every raw-path encode with a
     * pass-through latch.
     */
    double energyFor(const coding::OpCounts &ops,
                     bool include_decoder = true) const;

    /** Average energy per cycle (J) for the given counts. */
    double
    opEnergyPerCycle(const coding::OpCounts &ops) const
    {
        return ops.cycles
                   ? energyFor(ops, false) / static_cast<double>(
                                                 ops.cycles)
                   : 0.0;
    }
};

/** Build the estimate for @p config at @p tech. */
ImplEstimate estimate(const DesignConfig &config,
                      const CircuitTech &tech);

} // namespace predbus::circuit

#endif // PREDBUS_CIRCUIT_TRANSCODER_IMPL_H
