/**
 * @file
 * Event-level switched-capacitance accounting for the window encoder.
 *
 * The paper validates its statistical (operation-count × per-op
 * energy) model against a full netlist simulation of a short trace
 * (§5.4.2, within 6%). This is our analogue: instead of fixed per-op
 * event budgets, walk the trace through a bit-exact model of the
 * window encoder and charge only the nodes that actually switch —
 * input bits that change, CAM comparators whose selective precharge
 * actually extends past the low nibble, shift-cell bits that actually
 * flip on replacement, and the actual output transitions.
 */

#ifndef PREDBUS_CIRCUIT_NETLIST_SIM_H
#define PREDBUS_CIRCUIT_NETLIST_SIM_H

#include <span>

#include "circuit/circuit_tech.h"
#include "common/types.h"

namespace predbus::circuit
{

/** Per-run result of the event-level accounting. */
struct NetlistEnergy
{
    double total = 0.0;       ///< J, encoder side
    u64 events = 0;           ///< unit switching events charged
    u64 cycles = 0;
};

/**
 * Run the bit-exact window-encoder accounting over @p values.
 * @p entries is the window size (paper: 8).
 */
NetlistEnergy detailedWindowEnergy(std::span<const Word> values,
                                   unsigned entries,
                                   const CircuitTech &tech);

} // namespace predbus::circuit

#endif // PREDBUS_CIRCUIT_NETLIST_SIM_H
