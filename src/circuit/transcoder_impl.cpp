#include "circuit/transcoder_impl.h"

#include <cmath>

#include "common/log.h"

namespace predbus::circuit
{

DesignConfig
window8()
{
    DesignConfig c;
    c.kind = DesignKind::Window;
    c.entries = 8;
    return c;
}

DesignConfig
window16()
{
    DesignConfig c;
    c.kind = DesignKind::Window;
    c.entries = 16;
    return c;
}

DesignConfig
context28()
{
    DesignConfig c;
    c.kind = DesignKind::ContextValue;
    c.table_size = 28;
    c.sr_size = 4;
    return c;
}

DesignConfig
invertCoder()
{
    DesignConfig c;
    c.kind = DesignKind::Inversion;
    c.patterns = 2;
    return c;
}

namespace
{

double
log2d(double x)
{
    return std::log2(std::max(2.0, x));
}

} // namespace

ImplEstimate
estimate(const DesignConfig &config, const CircuitTech &tech)
{
    ImplEstimate est;
    est.config = config;
    est.tech_name = tech.name;
    const double W = config.width;
    const double eu = tech.unitEnergy();

    double dict_entries = 0;  // for the match-tree delay model

    switch (config.kind) {
      case DesignKind::Window: {
        const double E = config.entries;
        dict_entries = E;
        est.transistors = static_cast<u64>(E * W * 12 + W * 34 +
                                           E * 24 + 300);
        est.e_clock = (E * 2 + W + 20) * eu;
        const double ext = config.full_precharge ? 1.0 : 0.25;
        est.e_match = (E * 4 + E * (W - 4) * ext + E + W) * eu;
        est.e_shift = (W + E) * eu;
        est.e_raw = 2 * W * eu;
        est.e_dec_read = (W + E) * eu;   // wordline + entry readout
        est.e_dec_raw = W * eu;          // pass-through latch
        break;
      }
      case DesignKind::ContextValue:
      case DesignKind::ContextTransition: {
        // Transition-based tags are value pairs: double the CAM width.
        const double tag_w =
            (config.kind == DesignKind::ContextTransition) ? 2 * W : W;
        const double T = config.table_size;
        const double S = config.sr_size;
        const double B = config.counter_bits;
        dict_entries = T + S;
        est.transistors = static_cast<u64>(
            (T + S) * tag_w * 12 + T * (B * 10 + 96) + S * (B * 10) +
            W * 34 + 500);
        est.e_clock = ((T + S) * 2 + W + T + 30) * eu;
        const double ext = config.full_precharge ? 1.0 : 0.25;
        est.e_match = ((T + S) * 4 + (T + S) * (tag_w - 4) * ext +
                       (T + S) + tag_w) *
                      eu;
        est.e_shift = (tag_w + S) * eu;
        est.e_count = 3 * eu;              // Johnson: one bit flips
        est.e_compare = (B / 2.0) * eu;    // XOR equality comparator
        est.e_swap = 2 * (tag_w + B) * eu; // both entries rewritten
        est.e_divide = (T + S) * B * eu;
        est.e_raw = 2 * W * eu;
        est.e_dec_read = (tag_w + T + S) * eu;
        est.e_dec_raw = W * eu;
        break;
      }
      case DesignKind::Inversion: {
        const double P = config.patterns;
        dict_entries = 2;
        est.transistors =
            static_cast<u64>(W * 36 + P * W * 4 + 350);
        est.e_clock = (W + 10) * eu;
        // Every cycle: P transition-vector XOR trees plus a carry-save
        // popcount and the final selection (paper §5.4.1). The decoder
        // is a single XOR with the selected pattern.
        est.e_raw = (P * W * 1.2 + W * 6.9) * eu;
        est.e_dec_raw = W * 1.5 * eu;
        break;
      }
    }

    est.area_um2 =
        static_cast<double>(est.transistors) * tech.area_per_tr_um2;

    if (config.kind == DesignKind::Inversion) {
        est.delay = tech.match_mu * tech.t0 * (2 * log2d(W) + 3.4);
        est.cycle_time = est.delay;  // paper Table 2: 2.2ns / 2.2ns
    } else {
        est.delay = tech.match_mu * tech.t0 *
                    (W / 2.0 + log2d(dict_entries));
        est.cycle_time = est.delay * tech.cycle_margin;
    }

    est.leak_per_cycle = static_cast<double>(est.transistors) *
                         tech.leak_per_tr * est.cycle_time;
    return est;
}

double
ImplEstimate::energyFor(const coding::OpCounts &ops,
                        bool include_decoder) const
{
    // Dictionary-maintenance energy is common to both FSMs (the
    // decoder replays the same updates to stay synchronized).
    const double maintenance =
        static_cast<double>(ops.cycles) * e_clock +
        static_cast<double>(ops.shifts) * e_shift +
        static_cast<double>(ops.counter_incs) * e_count +
        static_cast<double>(ops.compares) * e_compare +
        static_cast<double>(ops.swaps) * e_swap +
        static_cast<double>(ops.divisions) * e_divide;
    const double leak =
        static_cast<double>(ops.cycles) * leak_per_cycle;

    const double encoder =
        maintenance + static_cast<double>(ops.matches) * e_match +
        static_cast<double>(ops.raw_sends) * e_raw + leak;
    if (!include_decoder)
        return encoder;
    const double decoder =
        maintenance +
        static_cast<double>(ops.hits + ops.last_hits) * e_dec_read +
        static_cast<double>(ops.raw_sends) * e_dec_raw + leak;
    return encoder + decoder;
}

} // namespace predbus::circuit
