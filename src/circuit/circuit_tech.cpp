#include "circuit/circuit_tech.h"

#include "common/log.h"

namespace predbus::circuit
{

// Fitted to Table 2 (window-8 encoder):
//   node    area(um2)  op energy  leakage/cyc  delay  cycle
//   0.13um  12400      1.39 pJ    0.00088 pJ   3.1ns  4.0ns
//   0.10um   7340      1.07 pJ    0.00338 pJ   2.4ns  3.2ns
//   0.07um   3600      0.55 pJ    0.00787 pJ   2.0ns  2.7ns
// Unit capacitances shrink slower than pure feature scaling because
// local interconnect dominates cell load at smaller nodes (the same
// effect the paper sees between its measured and scaled designs).

CircuitTech
circuit013()
{
    CircuitTech t;
    t.name = "0.13um";
    t.feature_um = 0.13;
    t.vdd = 1.2;
    t.unit_cap = 3.62e-15;
    t.leak_per_tr = 4.8e-11;
    t.area_per_tr_um2 = 2.666;
    t.t0 = 15.0e-12;
    t.match_mu = 10.9;
    t.cycle_margin = 1.29;
    return t;
}

CircuitTech
circuit010()
{
    CircuitTech t;
    t.name = "0.10um";
    t.feature_um = 0.10;
    t.vdd = 1.1;
    t.unit_cap = 3.29e-15;
    t.leak_per_tr = 2.3e-10;
    t.area_per_tr_um2 = 2.666 * (0.10 / 0.13) * (0.10 / 0.13);
    t.t0 = 11.0e-12;
    t.match_mu = 11.5;
    t.cycle_margin = 1.33;
    return t;
}

CircuitTech
circuit007()
{
    CircuitTech t;
    t.name = "0.07um";
    t.feature_um = 0.07;
    t.vdd = 0.9;
    t.unit_cap = 2.54e-15;
    t.leak_per_tr = 6.3e-10;
    t.area_per_tr_um2 = 2.666 * (0.07 / 0.13) * (0.07 / 0.13);
    t.t0 = 8.0e-12;
    t.match_mu = 13.2;
    t.cycle_margin = 1.35;
    return t;
}

const std::vector<CircuitTech> &
allCircuitTechs()
{
    static const std::vector<CircuitTech> techs = {
        circuit013(), circuit010(), circuit007()};
    return techs;
}

const CircuitTech &
circuitTech(const std::string &name)
{
    for (const CircuitTech &t : allCircuitTechs())
        if (t.name == name)
            return t;
    fatal("unknown circuit technology '", name, "'");
}

} // namespace predbus::circuit
