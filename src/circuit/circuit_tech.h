/**
 * @file
 * Circuit-level technology parameters for the transcoder
 * implementation model (paper §5.4).
 *
 * The paper lays the transcoder out in ST 0.13µm, extracts it, and
 * characterizes per-operation energies in HSPICE, scaling to 0.10 and
 * 0.07µm with BPTM. We substitute a switched-capacitance model: every
 * elementary circuit event (a CAM bitcell evaluation, a shift-cell
 * write, a Johnson counter step...) charges a node of roughly one
 * "unit" capacitance, and operations are budgets of unit events. The
 * per-node unit capacitance, leakage, area and timing constants below
 * are fitted so the canonical 8-entry window encoder reproduces the
 * paper's Table 2 anchors; everything else (other sizes, the context
 * design, the inversion coder) follows from structure.
 */

#ifndef PREDBUS_CIRCUIT_CIRCUIT_TECH_H
#define PREDBUS_CIRCUIT_CIRCUIT_TECH_H

#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::circuit
{

struct CircuitTech
{
    std::string name;        ///< matches wires::Technology names
    double feature_um;
    double vdd;              ///< V
    double unit_cap;         ///< F switched per elementary event
    double leak_per_tr;      ///< W static leakage per transistor
    double area_per_tr_um2;  ///< layout area per transistor
    double t0;               ///< s, unit logic stage delay
    double match_mu;         ///< stages-to-delay multiplier (NAND tree)
    double cycle_margin;     ///< cycle time = delay * cycle_margin

    /** J per elementary switching event. */
    double
    unitEnergy() const
    {
        return unit_cap * vdd * vdd;
    }
};

/** The three nodes of the paper (Table 2 rows). */
CircuitTech circuit013();
CircuitTech circuit010();
CircuitTech circuit007();

const std::vector<CircuitTech> &allCircuitTechs();
const CircuitTech &circuitTech(const std::string &name);

} // namespace predbus::circuit

#endif // PREDBUS_CIRCUIT_CIRCUIT_TECH_H
