#include "circuit/netlist_sim.h"

#include <vector>

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::circuit
{

NetlistEnergy
detailedWindowEnergy(std::span<const Word> values, unsigned entries,
                     const CircuitTech &tech)
{
    panicIf(entries == 0, "window entries must be nonzero");
    constexpr unsigned W = 32;

    std::vector<Word> vals(entries, 0);
    std::vector<bool> valid(entries, false);
    unsigned head = 0;
    Word prev_in = 0;
    bool has_prev = false;
    Word last_value = 0;
    u64 out_state = 0;

    NetlistEnergy result;
    u64 events = 0;

    for (Word v : values) {
        ++result.cycles;

        // Clock tree: sequential cells that receive an edge whether or
        // not they change — per-entry clock headers, pointer and
        // control flops, and the input/output latch banks.
        events += entries * 3 + 36;

        // Input buffer and its latch stage: only bits that differ
        // from the previous word switch, in both stages.
        events += 2 * (has_prev ? static_cast<u64>(hammingDistance(
                                      prev_in, v))
                                : static_cast<u64>(popcount(v)));

        // Selective-precharge CAM probe: the low nibble comparators of
        // every entry evaluate; comparators for the remaining bits are
        // charged only when the low nibble matched [26]. One matchline
        // event per entry.
        bool hit = false;
        unsigned hit_index = 0;
        for (unsigned i = 0; i < entries; ++i) {
            events += 4 + 1;
            if (!valid[i])
                continue;
            if ((vals[i] & 0xf) == (v & 0xf)) {
                events += W - 4;
                if (vals[i] == v) {
                    hit = true;
                    hit_index = i;
                }
            }
        }
        (void)hit_index;

        // Encode outcome mirrors the WindowDict + protocol logic.
        const bool is_repeat = has_prev && v == last_value;
        u64 new_state = out_state;
        if (!hit) {
            // Pointer-based shift: only the replaced entry's changed
            // bits toggle, plus the tail pointer.
            events += static_cast<u64>(
                          hammingDistance(vals[head], v)) +
                      static_cast<u64>(std::bit_width(entries));
            vals[head] = v;
            valid[head] = true;
            head = (head + 1) % entries;
        }
        if (is_repeat) {
            // Code 0: nothing moves on the output.
        } else if (hit) {
            new_state = out_state ^ (u64{1} << (hit_index % W));
        } else {
            // Raw send through the MuxXorLatch: mux select lines plus
            // the actual output bit flips, twice (mux + latch stage).
            const u64 cand = out_state ^ v;
            events +=
                2 * static_cast<u64>(hammingDistance(out_state, cand));
            new_state = cand;
        }
        // Output latch transitions.
        events +=
            static_cast<u64>(hammingDistance(out_state, new_state));
        out_state = new_state;

        prev_in = v;
        has_prev = true;
        last_value = v;
    }

    result.events = events;
    result.total = static_cast<double>(events) * tech.unitEnergy();
    return result;
}

} // namespace predbus::circuit
