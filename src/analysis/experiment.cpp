#include "analysis/experiment.h"

#include <ostream>

#include "common/log.h"

namespace predbus::analysis
{

std::optional<Format>
parseFormat(const std::string &name)
{
    if (name == "table")
        return Format::Table;
    if (name == "csv")
        return Format::Csv;
    if (name == "json")
        return Format::Json;
    return std::nullopt;
}

const char *
formatExtension(Format format)
{
    switch (format) {
      case Format::Table: return "txt";
      case Format::Csv: return "csv";
      case Format::Json: return "json";
    }
    return "txt";
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(Experiment experiment)
{
    const auto [it, inserted] =
        experiments.emplace(experiment.name, std::move(experiment));
    if (!inserted)
        fatal("duplicate experiment name '", it->first, "'");
}

std::vector<const Experiment *>
Registry::all() const
{
    std::vector<const Experiment *> out;
    out.reserve(experiments.size());
    for (const auto &[name, exp] : experiments)
        out.push_back(&exp);
    return out;
}

std::vector<const Experiment *>
Registry::match(const std::string &glob) const
{
    std::vector<const Experiment *> out;
    for (const auto &[name, exp] : experiments)
        if (globMatch(glob, name))
            out.push_back(&exp);
    return out;
}

const Experiment *
Registry::find(const std::string &name) const
{
    const auto it = experiments.find(name);
    return it == experiments.end() ? nullptr : &it->second;
}

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative '*'/'?' matcher with backtracking to the last star.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

std::vector<const Experiment *>
selectByGlobs(const Registry &registry,
              const std::vector<std::string> &globs,
              std::vector<std::string> *unmatched)
{
    std::vector<bool> hit(globs.size(), false);
    std::vector<const Experiment *> selected;
    for (const Experiment *exp : registry.all()) {
        bool taken = false;
        for (std::size_t i = 0; i < globs.size(); ++i) {
            if (globMatch(globs[i], exp->name)) {
                hit[i] = true;
                if (!taken) {
                    selected.push_back(exp);
                    taken = true;
                }
            }
        }
    }
    if (unmatched) {
        for (std::size_t i = 0; i < globs.size(); ++i)
            if (!hit[i])
                unmatched->push_back(globs[i]);
    }
    return selected;
}

namespace
{

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(ch >> 4) & 0xf]
                   << hex[ch & 0xf];
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

void
emitReportJson(std::ostream &os, const Report &report,
               const char *indent)
{
    os << indent << "{\n";
    os << indent << "  \"title\": ";
    jsonEscape(os, report.title);
    os << ",\n" << indent << "  \"header\": [";
    for (std::size_t c = 0; c < report.table.columnCount(); ++c) {
        if (c)
            os << ", ";
        jsonEscape(os, report.table.headerAt(c));
    }
    os << "],\n" << indent << "  \"rows\": [\n";
    for (std::size_t r = 0; r < report.table.rowCount(); ++r) {
        os << indent << "    [";
        for (std::size_t c = 0; c < report.table.columnCount(); ++c) {
            if (c)
                os << ", ";
            jsonEscape(os, report.table.at(r, c));
        }
        os << ']' << (r + 1 < report.table.rowCount() ? "," : "")
           << '\n';
    }
    os << indent << "  ],\n" << indent << "  \"notes\": [";
    for (std::size_t i = 0; i < report.notes.size(); ++i) {
        if (i)
            os << ", ";
        jsonEscape(os, report.notes[i]);
    }
    os << "]\n" << indent << "}";
}

} // namespace

void
emitReport(std::ostream &os, const Report &report, Format format)
{
    switch (format) {
      case Format::Table:
        os << "# " << report.title << "\n\n";
        report.table.print(os);
        for (const auto &note : report.notes)
            os << note << '\n';
        os << '\n';
        break;
      case Format::Csv:
        // Matches the pre-engine bench --csv output: data rows only,
        // one trailing blank line per table.
        report.table.printCsv(os);
        os << '\n';
        break;
      case Format::Json:
        emitReportJson(os, report, "");
        os << '\n';
        break;
    }
}

void
emitExperiment(std::ostream &os, const std::string &name,
               const std::vector<Report> &reports, Format format)
{
    if (format == Format::Json) {
        os << "{\n  \"experiment\": ";
        jsonEscape(os, name);
        os << ",\n  \"reports\": [\n";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            emitReportJson(os, reports[i], "    ");
            os << (i + 1 < reports.size() ? "," : "") << '\n';
        }
        os << "  ]\n}\n";
        return;
    }
    for (const auto &report : reports)
        emitReport(os, report, format);
}

} // namespace predbus::analysis
