/**
 * @file
 * Suite trace provider: simulator-generated bus traces for every
 * workload, cached on disk so the 20+ bench binaries don't each re-run
 * the simulator.
 */

#ifndef PREDBUS_ANALYSIS_SUITE_H
#define PREDBUS_ANALYSIS_SUITE_H

#include <string>
#include <vector>

#include "common/types.h"
#include "trace/trace_io.h"

namespace predbus::analysis
{

/** Trace capture options (environment-overridable). */
struct SuiteOptions
{
    /** Machine cycles to simulate per workload (PREDBUS_CYCLES). */
    u64 cycles = 400'000;
    /** Trace cache directory (PREDBUS_TRACE_DIR). */
    std::string cache_dir = "traces";

    /** Defaults overridden by the environment. */
    static SuiteOptions fromEnv();
};

/**
 * Bus values for (workload, bus). Loads from the trace cache, running
 * the simulator (and populating the cache) on first use. Also cached
 * in memory for the life of the process.
 */
const std::vector<Word> &busValues(const std::string &workload,
                                   trace::BusKind bus,
                                   const SuiteOptions &opt =
                                       SuiteOptions::fromEnv());

/** Uniform random values — the paper's "random" series. */
std::vector<Word> randomValues(std::size_t n, u64 seed = 0xD1CE);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_SUITE_H
