/**
 * @file
 * Suite trace provider: simulator-generated bus traces for every
 * workload, cached on disk so experiments don't each re-run the
 * simulator. All entry points are thread-safe: the experiment engine
 * fans (workload, scheme) cells across cores, and concurrent callers
 * may request the same trace. Generation happens once per trace
 * (per-trace lock) and cache files are written atomically, so parallel
 * runs can neither corrupt the cache nor duplicate simulator work.
 */

#ifndef PREDBUS_ANALYSIS_SUITE_H
#define PREDBUS_ANALYSIS_SUITE_H

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/trace_io.h"
#include "trace/trace_source.h"

namespace predbus::analysis
{

/** Trace capture options (environment-overridable). */
struct SuiteOptions
{
    /** Machine cycles to simulate per workload (PREDBUS_CYCLES). */
    u64 cycles = 400'000;
    /** Trace cache directory (PREDBUS_TRACE_DIR). */
    std::string cache_dir = "traces";

    /** Defaults overridden by the environment. */
    static SuiteOptions fromEnv();
};

/**
 * Streaming access to the (workload, bus) trace: ensures the cache
 * file exists (running the simulator under a per-trace lock on first
 * use) and returns a chunked source over it. This is the preferred
 * contract for new code — it does not pin the whole trace in memory.
 */
std::unique_ptr<trace::TraceSource>
openTrace(const std::string &workload, trace::BusKind bus,
          const SuiteOptions &opt = SuiteOptions::fromEnv());

/**
 * Whole-vector adapter over openTrace(): loads from the trace cache,
 * running the simulator (and populating the cache) on first use. Also
 * memoized in memory for the life of the process; the returned
 * reference stays valid until exit. Thread-safe.
 */
const std::vector<Word> &busValues(const std::string &workload,
                                   trace::BusKind bus,
                                   const SuiteOptions &opt =
                                       SuiteOptions::fromEnv());

/** Uniform random values — the paper's "random" series. */
std::vector<Word> randomValues(std::size_t n, u64 seed = 0xD1CE);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_SUITE_H
