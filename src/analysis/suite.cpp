#include "analysis/suite.h"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/log.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace predbus::analysis
{

namespace
{

// Trace-cache accounting; file-scope so every metrics report carries
// the names even when the cache is never touched (smoke runs).
obs::Counter &cache_hits =
    obs::Registry::global().counter("trace.cache.hits");
obs::Counter &cache_misses =
    obs::Registry::global().counter("trace.cache.misses");
obs::Counter &cache_generated =
    obs::Registry::global().counter("trace.cache.generated");
obs::Counter &memo_hits =
    obs::Registry::global().counter("trace.memo.hits");
obs::Counter &memo_misses =
    obs::Registry::global().counter("trace.memo.misses");
obs::Histogram &generate_ns =
    obs::Registry::global().histogram("trace.cache.generate_ns");

} // namespace

SuiteOptions
SuiteOptions::fromEnv()
{
    SuiteOptions opt;
    if (const char *cycles = std::getenv("PREDBUS_CYCLES")) {
        const long long v = std::atoll(cycles);
        if (v > 0)
            opt.cycles = static_cast<u64>(v);
    }
    if (const char *dir = std::getenv("PREDBUS_TRACE_DIR"))
        opt.cache_dir = dir;
    return opt;
}

namespace
{

std::string
cachePath(const SuiteOptions &opt, const std::string &workload,
          trace::BusKind bus)
{
    return opt.cache_dir + "/" + workload + "_" +
           trace::busName(bus) + "_" + std::to_string(opt.cycles) +
           ".pbtr";
}

/** Simulate @p workload for the option's cycle budget and write both
 * bus traces into the cache (atomically, via saveTrace). */
void
generateTraces(const SuiteOptions &opt, const std::string &workload)
{
    obs::ScopedTimer span("generate:" + workload, nullptr,
                          &generate_ns);
    cache_generated.inc();
    // Scale the workload so the cycle budget, not program length,
    // bounds the trace (workload passes are >= ~30k instructions).
    const u32 scale =
        static_cast<u32>(opt.cycles / 20'000 + 2);
    sim::Machine machine(workloads::build(workload, scale));
    sim::RunResult run = machine.run(opt.cycles);

    // Finalize (time-sort) before saving so cache files stream in
    // order without the sorting fallback.
    run.reg_bus.finalize();
    run.mem_bus.finalize();
    run.addr_bus.finalize();
    run.wb_bus.finalize();

    std::filesystem::create_directories(opt.cache_dir);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Register),
                     run.reg_bus);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Memory),
                     run.mem_bus);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Address),
                     run.addr_bus);
    trace::saveTrace(
        cachePath(opt, workload, trace::BusKind::Writeback),
        run.wb_bus);
}

/**
 * Serialize trace generation per (workload, cycles): concurrent
 * requests for the same missing trace run the simulator exactly once;
 * requests for different workloads proceed in parallel.
 */
class GenerationLocks
{
  public:
    std::mutex &
    forKey(const std::string &workload, u64 cycles)
    {
        const std::string key =
            workload + "#" + std::to_string(cycles);
        std::lock_guard<std::mutex> g(registry_mutex);
        return locks[key];  // std::map: stable node addresses
    }

  private:
    std::mutex registry_mutex;
    std::map<std::string, std::mutex> locks;
};

GenerationLocks generation_locks;

/** Ensure the cache file for (workload, bus) exists; returns its path.
 * Thread-safe; at most one simulator run per (workload, cycles). */
std::string
ensureCached(const SuiteOptions &opt, const std::string &workload,
             trace::BusKind bus)
{
    const std::string path = cachePath(opt, workload, bus);
    if (std::filesystem::exists(path)) {
        cache_hits.inc();
        return path;
    }
    std::lock_guard<std::mutex> g(
        generation_locks.forKey(workload, opt.cycles));
    // Re-check under the lock: another thread may have generated it.
    if (std::filesystem::exists(path)) {
        cache_hits.inc();
        return path;
    }
    cache_misses.inc();
    generateTraces(opt, workload);
    if (!std::filesystem::exists(path))
        fatal("failed to generate trace for ", workload);
    return path;
}

} // namespace

std::unique_ptr<trace::TraceSource>
openTrace(const std::string &workload, trace::BusKind bus,
          const SuiteOptions &opt)
{
    return std::make_unique<trace::FileTraceSource>(
        ensureCached(opt, workload, bus));
}

const std::vector<Word> &
busValues(const std::string &workload, trace::BusKind bus,
          const SuiteOptions &opt)
{
    using Key = std::tuple<std::string, int, u64>;
    static std::mutex memo_mutex;
    static std::map<Key, std::vector<Word>> memo;
    const Key key{workload, static_cast<int>(bus), opt.cycles};
    {
        std::lock_guard<std::mutex> g(memo_mutex);
        if (const auto it = memo.find(key); it != memo.end()) {
            memo_hits.inc();
            return it->second;
        }
    }
    memo_misses.inc();

    // Load (possibly generating) outside the memo lock so concurrent
    // misses on different traces overlap; the per-trace generation
    // lock inside ensureCached prevents duplicate simulator runs.
    auto source = openTrace(workload, bus, opt);
    std::vector<Word> values = trace::drain(*source);

    std::lock_guard<std::mutex> g(memo_mutex);
    // std::map never invalidates references; if another thread won the
    // race, emplace is a no-op returning the existing entry.
    return memo.emplace(key, std::move(values)).first->second;
}

std::vector<Word>
randomValues(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    for (auto &v : out)
        v = rng.next32();
    return out;
}

} // namespace predbus::analysis
