#include "analysis/suite.h"

#include <cstdlib>
#include <filesystem>
#include <map>

#include "common/log.h"
#include "common/rng.h"
#include "sim/machine.h"
#include "workloads/workload.h"

namespace predbus::analysis
{

SuiteOptions
SuiteOptions::fromEnv()
{
    SuiteOptions opt;
    if (const char *cycles = std::getenv("PREDBUS_CYCLES")) {
        const long long v = std::atoll(cycles);
        if (v > 0)
            opt.cycles = static_cast<u64>(v);
    }
    if (const char *dir = std::getenv("PREDBUS_TRACE_DIR"))
        opt.cache_dir = dir;
    return opt;
}

namespace
{

std::string
cachePath(const SuiteOptions &opt, const std::string &workload,
          trace::BusKind bus)
{
    return opt.cache_dir + "/" + workload + "_" +
           trace::busName(bus) + "_" + std::to_string(opt.cycles) +
           ".pbtr";
}

/** Simulate @p workload for the option's cycle budget and write both
 * bus traces into the cache. */
void
generateTraces(const SuiteOptions &opt, const std::string &workload)
{
    // Scale the workload so the cycle budget, not program length,
    // bounds the trace (workload passes are >= ~30k instructions).
    const u32 scale =
        static_cast<u32>(opt.cycles / 20'000 + 2);
    sim::Machine machine(workloads::build(workload, scale));
    sim::RunResult run = machine.run(opt.cycles);

    std::filesystem::create_directories(opt.cache_dir);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Register),
                     run.reg_bus);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Memory),
                     run.mem_bus);
    trace::saveTrace(cachePath(opt, workload, trace::BusKind::Address),
                     run.addr_bus);
    trace::saveTrace(
        cachePath(opt, workload, trace::BusKind::Writeback),
        run.wb_bus);
}

} // namespace

const std::vector<Word> &
busValues(const std::string &workload, trace::BusKind bus,
          const SuiteOptions &opt)
{
    using Key = std::tuple<std::string, int, u64>;
    static std::map<Key, std::vector<Word>> memo;
    const Key key{workload, static_cast<int>(bus), opt.cycles};
    if (const auto it = memo.find(key); it != memo.end())
        return it->second;

    const std::string path = cachePath(opt, workload, bus);
    auto loaded = trace::loadTrace(path);
    if (!loaded) {
        generateTraces(opt, workload);
        loaded = trace::loadTrace(path);
        if (!loaded)
            fatal("failed to generate trace for ", workload);
    }
    return memo.emplace(key, loaded->values()).first->second;
}

std::vector<Word>
randomValues(std::size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<Word> out(n);
    for (auto &v : out)
        v = rng.next32();
    return out;
}

} // namespace predbus::analysis
