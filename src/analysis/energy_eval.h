/**
 * @file
 * End-to-end energy evaluation: coding results (wire-event counts and
 * operation counts) combined with the wire model and the transcoder
 * circuit model, producing the paper's §5 metrics — total normalized
 * energy vs length (Figs 35-36), energy budget (Fig 26), and the
 * crossover length (Figs 37-38, Table 3).
 */

#ifndef PREDBUS_ANALYSIS_ENERGY_EVAL_H
#define PREDBUS_ANALYSIS_ENERGY_EVAL_H

#include "circuit/transcoder_impl.h"
#include "coding/bus_energy.h"
#include "wires/wire_model.h"

namespace predbus::analysis
{

/** Energy breakdown of a run at one wire length. */
struct LengthEval
{
    double wire_base = 0;   ///< J on the unencoded bus
    double wire_coded = 0;  ///< J on the coded bus wires
    double codec = 0;       ///< J in encoder+decoder (dynamic+leak)

    double totalCoded() const { return wire_coded + codec; }

    /** Total coded energy normalized to the unencoded bus (the y-axis
     * of Figs 35-36; < 1 means the transcoder saves energy). */
    double
    normalized() const
    {
        return wire_base > 0 ? totalCoded() / wire_base : 1.0;
    }
};

/**
 * Evaluate a coding run on a bus of @p length_mm built from buffered
 * wires of @p tech.
 */
LengthEval evalAtLength(const coding::CodingResult &run,
                        const circuit::ImplEstimate &impl,
                        const wires::Technology &tech,
                        double length_mm,
                        bool include_decoder = true);

/**
 * Crossover length (paper footnote 4): the wire length at which the
 * transcoder's energy equals the wire energy it saves; beyond it the
 * transcoder wins. Returns +infinity when the coding never saves wire
 * events at this λ.
 */
double crossoverLengthMm(const coding::CodingResult &run,
                         const circuit::ImplEstimate &impl,
                         const wires::Technology &tech,
                         bool include_decoder = true);

/**
 * Energy budget (paper §5.1, Fig 26): wire energy saved per bus word
 * at @p length_mm — what an implementation may spend per word and
 * still break even.
 */
double energyBudgetPerWord(const coding::CodingResult &run,
                           const wires::Technology &tech,
                           double length_mm);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_ENERGY_EVAL_H
