#include "analysis/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <string>
#include <thread>

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace predbus::analysis
{

namespace
{

// Pre-register the runner metrics so every report carries them (at 0
// if nothing ran) and --jobs 1 / --jobs N reports have identical keys.
[[maybe_unused]] obs::Counter &g_cells_total =
    obs::Registry::global().counter("runner.cells_total");
[[maybe_unused]] obs::Counter &g_cells_done =
    obs::Registry::global().counter("runner.cells_done");
[[maybe_unused]] obs::Counter &g_cells_failed =
    obs::Registry::global().counter("runner.cells_failed");
[[maybe_unused]] obs::Histogram &g_cell_ns =
    obs::Registry::global().histogram("runner.cell_ns");
[[maybe_unused]] obs::Histogram &g_queue_ns =
    obs::Registry::global().histogram("runner.queue_ns");
[[maybe_unused]] obs::Gauge &g_jobs = obs::Registry::global().gauge("runner.jobs");

/** Resolved per forEachIndex call so injected registries work. */
struct RunnerMetrics
{
    obs::Counter &cells_total;
    obs::Counter &cells_done;
    obs::Counter &cells_failed;
    obs::Histogram &cell_ns;
    obs::Histogram &queue_ns;
    obs::Gauge &jobs;

    explicit RunnerMetrics(obs::Registry &reg)
        : cells_total(reg.counter("runner.cells_total")),
          cells_done(reg.counter("runner.cells_done")),
          cells_failed(reg.counter("runner.cells_failed")),
          cell_ns(reg.histogram("runner.cell_ns")),
          queue_ns(reg.histogram("runner.queue_ns")),
          jobs(reg.gauge("runner.jobs"))
    {
    }
};

struct CellFailure
{
    std::size_t index;
    std::string message;
};

/** Run one cell with timing, metrics, and optional tracing. */
void
runCell(const std::function<void(std::size_t)> &fn, std::size_t i,
        u64 fan_start_ns, const RunnerMetrics &m)
{
    const bool tracing = obs::TraceBuffer::global().enabled();
    const u64 t0 = obs::nowNs();
    m.queue_ns.record(static_cast<double>(t0 - fan_start_ns));
    fn(i);
    const u64 dur = obs::nowNs() - t0;
    m.cell_ns.record(static_cast<double>(dur));
    m.cells_done.inc();
    if (tracing)
        obs::TraceBuffer::global().record(
            "cell:" + std::to_string(i), t0, dur);
}

/**
 * Surface every failure, not just the first: a single failing cell
 * rethrows its original exception unchanged; multiple failures
 * rethrow the first-by-index exception's message augmented with the
 * failure count and the failed indices (type preserved for the
 * library's own error classes).
 */
[[noreturn]] void
rethrowFailures(std::exception_ptr first,
                std::vector<CellFailure> failures, std::size_t n)
{
    std::sort(failures.begin(), failures.end(),
              [](const CellFailure &a, const CellFailure &b) {
                  return a.index < b.index;
              });
    if (failures.size() == 1)
        std::rethrow_exception(first);

    constexpr std::size_t kMaxListed = 16;
    std::string indices;
    for (std::size_t i = 0;
         i < std::min(failures.size(), kMaxListed); ++i) {
        if (i)
            indices += ", ";
        indices += std::to_string(failures[i].index);
    }
    if (failures.size() > kMaxListed)
        indices += ", +" +
                   std::to_string(failures.size() - kMaxListed) +
                   " more";
    const std::string summary =
        failures.front().message + " [" +
        std::to_string(failures.size()) + " of " +
        std::to_string(n) + " cells failed; indices: " + indices +
        "]";

    try {
        std::rethrow_exception(first);
    } catch (const PanicError &) {
        throw PanicError(summary);
    } catch (const FatalError &) {
        throw FatalError(summary);
    } catch (...) {
        throw std::runtime_error(summary);
    }
}

} // namespace

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Runner::Runner(unsigned jobs, obs::Registry *metrics)
    : job_count(resolveJobs(jobs)),
      metrics(metrics ? metrics : &obs::Registry::global())
{
}

void
Runner::forEachIndex(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    const RunnerMetrics m(*metrics);
    m.jobs.set(static_cast<s64>(job_count));
    m.cells_total.inc(n);
    const u64 fan_start = obs::nowNs();

    std::exception_ptr first_error;
    std::size_t first_error_index = n;
    std::vector<CellFailure> failures;
    std::mutex error_mutex;

    auto guarded = [&](std::size_t i) {
        try {
            runCell(fn, i, fan_start, m);
        } catch (...) {
            std::string message;
            try {
                throw;
            } catch (const std::exception &e) {
                message = e.what();
            } catch (...) {
                message = "unknown error";
            }
            m.cells_failed.inc();
            std::lock_guard<std::mutex> g(error_mutex);
            failures.push_back(CellFailure{i, std::move(message)});
            if (i < first_error_index) {
                first_error_index = i;
                first_error = std::current_exception();
            }
        }
    };

    if (job_count <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            guarded(i);
    } else {
        // Work-stealing by shared atomic counter: threads pull the
        // next index until exhausted. Results are written by index by
        // the caller, so scheduling order never affects output.
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                guarded(i);
            }
        };

        const std::size_t thread_count =
            std::min<std::size_t>(job_count, n);
        std::vector<std::thread> pool;
        pool.reserve(thread_count - 1);
        for (std::size_t t = 1; t < thread_count; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
    }

    if (first_error)
        rethrowFailures(first_error, std::move(failures), n);
}

} // namespace predbus::analysis
