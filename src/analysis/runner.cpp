#include "analysis/runner.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace predbus::analysis
{

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

Runner::Runner(unsigned jobs) : job_count(resolveJobs(jobs)) {}

void
Runner::forEachIndex(std::size_t n,
                     const std::function<void(std::size_t)> &fn) const
{
    if (n == 0)
        return;

    if (job_count <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Work-stealing by shared atomic counter: threads pull the next
    // index until exhausted. Results are written by index by the
    // caller, so scheduling order never affects output.
    std::atomic<std::size_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    std::size_t first_error_index = n;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(error_mutex);
                if (i < first_error_index) {
                    first_error_index = i;
                    first_error = std::current_exception();
                }
            }
        }
    };

    const std::size_t thread_count =
        std::min<std::size_t>(job_count, n);
    std::vector<std::thread> pool;
    pool.reserve(thread_count - 1);
    for (std::size_t t = 1; t < thread_count; ++t)
        pool.emplace_back(worker);
    worker();
    for (auto &th : pool)
        th.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace predbus::analysis
