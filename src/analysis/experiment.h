/**
 * @file
 * The experiment registry and structured result emitters.
 *
 * Every paper figure/table reproduction, ablation, and extension is a
 * registered Experiment: a name (the former standalone binary's name),
 * a one-line description, and a producer that builds one or more
 * Reports, parallelizing its (workload, scheme, parameter) grid
 * through the supplied Runner. One driver binary (predbus_bench)
 * lists, filters, and runs them; tools and tests reuse the same
 * registry and emitters.
 */

#ifndef PREDBUS_ANALYSIS_EXPERIMENT_H
#define PREDBUS_ANALYSIS_EXPERIMENT_H

#include <functional>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/runner.h"
#include "common/table.h"

namespace predbus::analysis
{

/** Output encodings understood by every emitter. */
enum class Format
{
    Table,  ///< aligned human-readable text
    Csv,    ///< RFC-4180-ish CSV, one table per report
    Json,   ///< one JSON object per experiment
};

/** Parse "table" | "csv" | "json" (nullopt otherwise). */
std::optional<Format> parseFormat(const std::string &name);

/** File extension (without dot) for --out files. */
const char *formatExtension(Format format);

/** One table of results plus free-form footnote lines. */
struct Report
{
    std::string title;               ///< heading, e.g. the figure caption
    Table table;                     ///< the rows/series grid
    std::vector<std::string> notes;  ///< headline summaries etc.

    explicit Report(std::string title, Table table,
                    std::vector<std::string> notes = {})
        : title(std::move(title)),
          table(std::move(table)),
          notes(std::move(notes))
    {
    }
};

/** A registered experiment. */
struct Experiment
{
    /** Registry key; kept equal to the pre-engine binary name
     * (e.g. "fig19_window_regbus") so published commands survive. */
    std::string name;
    /** One-line description for --list. */
    std::string description;
    /** Produce the reports, fanning grid cells through @p runner. */
    std::function<std::vector<Report>(const Runner &runner)> run;
};

/**
 * Process-wide experiment registry. Experiments self-register at
 * static-init time via RegisterExperiment; iteration is sorted by
 * name so listings and full-registry runs are deterministic.
 */
class Registry
{
  public:
    static Registry &instance();

    /** Throws FatalError on duplicate names. */
    void add(Experiment experiment);

    /** All experiments, sorted by name. */
    std::vector<const Experiment *> all() const;

    /** Experiments whose name matches @p glob (sorted by name). */
    std::vector<const Experiment *>
    match(const std::string &glob) const;

    /** Exact-name lookup; nullptr when absent. */
    const Experiment *find(const std::string &name) const;

  private:
    std::map<std::string, Experiment> experiments;
};

/** Static registrar: declare one per experiment at namespace scope. */
struct RegisterExperiment
{
    RegisterExperiment(
        std::string name, std::string description,
        std::function<std::vector<Report>(const Runner &)> run)
    {
        Registry::instance().add(Experiment{
            std::move(name), std::move(description), std::move(run)});
    }
};

/** Shell-style glob match supporting '*' and '?'. */
bool globMatch(const std::string &pattern, const std::string &text);

/**
 * Union of experiments matching any of @p globs, deduped, in registry
 * (sorted) order. Globs that match no experiment at all are collected
 * into @p unmatched (when non-null) so callers can refuse typo'd
 * filters instead of silently ignoring them.
 */
std::vector<const Experiment *>
selectByGlobs(const Registry &registry,
              const std::vector<std::string> &globs,
              std::vector<std::string> *unmatched = nullptr);

/** Render one report in @p format. CSV omits title and notes (data
 * only, matching the pre-engine --csv output byte for byte). */
void emitReport(std::ostream &os, const Report &report,
                Format format);

/** Render a whole experiment's reports; JSON wraps them in a single
 * object keyed by the experiment name. */
void emitExperiment(std::ostream &os, const std::string &name,
                    const std::vector<Report> &reports, Format format);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_EXPERIMENT_H
