#include "analysis/energy_eval.h"

#include <limits>

namespace predbus::analysis
{

LengthEval
evalAtLength(const coding::CodingResult &run,
             const circuit::ImplEstimate &impl,
             const wires::Technology &tech, double length_mm,
             bool include_decoder)
{
    const wires::WireModel wire(tech, length_mm, /*buffered=*/true);
    LengthEval out;
    out.wire_base = wire.energy(run.base.tau, run.base.kappa);
    out.wire_coded = wire.energy(run.coded.tau, run.coded.kappa);
    out.codec = impl.energyFor(run.ops, include_decoder);
    return out;
}

double
crossoverLengthMm(const coding::CodingResult &run,
                  const circuit::ImplEstimate &impl,
                  const wires::Technology &tech, bool include_decoder)
{
    // Wire energy is linear in length: savings(L) = rate * L with
    // rate in J/mm. Crossover solves savings(L) = codec energy.
    const wires::WireModel per_mm(tech, 1.0, /*buffered=*/true);
    const double d_tau = static_cast<double>(run.base.tau) -
                         static_cast<double>(run.coded.tau);
    const double d_kappa = static_cast<double>(run.base.kappa) -
                           static_cast<double>(run.coded.kappa);
    const double rate = per_mm.energyPerTransition() * d_tau +
                        per_mm.energyPerCoupling() * d_kappa;
    if (rate <= 0.0)
        return std::numeric_limits<double>::infinity();
    return impl.energyFor(run.ops, include_decoder) / rate;
}

double
energyBudgetPerWord(const coding::CodingResult &run,
                    const wires::Technology &tech, double length_mm)
{
    if (run.words == 0)
        return 0.0;
    const wires::WireModel wire(tech, length_mm, /*buffered=*/true);
    const double saved =
        wire.energy(run.base.tau, run.base.kappa) -
        wire.energy(run.coded.tau, run.coded.kappa);
    return saved / static_cast<double>(run.words);
}

} // namespace predbus::analysis
