/**
 * @file
 * Parallel grid runner for the experiment engine.
 *
 * Experiments decompose into independent cells — typically one
 * (workload, scheme, parameter) coding run each. The runner fans cells
 * across a pool of worker threads and collects results *by index*, so
 * the assembled output is deterministic and byte-identical regardless
 * of the job count: --jobs 1 and --jobs N produce the same tables.
 */

#ifndef PREDBUS_ANALYSIS_RUNNER_H
#define PREDBUS_ANALYSIS_RUNNER_H

#include <cstddef>
#include <functional>
#include <vector>

namespace predbus::obs
{
class Registry;
}

namespace predbus::analysis
{

/**
 * Executes indexed tasks on up to @p jobs threads. jobs == 1 runs
 * inline on the calling thread (no pool), which is also the fallback
 * when hardware_concurrency is unknown.
 *
 * Exceptions thrown by tasks are captured and rethrown on the calling
 * thread: a single failure is rethrown as-is (first by index); when
 * several cells fail, the rethrown message additionally reports the
 * failure count and the failed indices, so a grid-wide breakage is
 * not mistaken for a single bad cell.
 *
 * Every forEachIndex call publishes runner.* metrics (cells done,
 * failures, per-cell wall time, queue wait) into @p metrics — the
 * process-wide obs registry by default, an injected instance in
 * tests. When the global trace buffer is enabled, each cell also
 * records a "cell:<index>" span.
 */
class Runner
{
  public:
    /** @p jobs 0 means one job per hardware thread; @p metrics
     * nullptr means obs::Registry::global(). */
    explicit Runner(unsigned jobs = 0,
                    obs::Registry *metrics = nullptr);

    unsigned jobs() const { return job_count; }

    /** Run fn(0) .. fn(n-1), fanned across the pool; returns when all
     * are done. Tasks must be independent. */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

    /**
     * Map @p items through @p fn in parallel; results arrive in input
     * order (result[i] == fn(items[i])) independent of scheduling.
     */
    template <typename T, typename F>
    auto
    map(const std::vector<T> &items, F &&fn) const
        -> std::vector<decltype(fn(items[0]))>
    {
        using R = decltype(fn(items[0]));
        std::vector<R> results(items.size());
        forEachIndex(items.size(), [&](std::size_t i) {
            results[i] = fn(items[i]);
        });
        return results;
    }

    /** Map over indices 0..n-1; result[i] == fn(i). */
    template <typename F>
    auto
    mapIndex(std::size_t n, F &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<R> results(n);
        forEachIndex(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    unsigned job_count;
    obs::Registry *metrics;
};

/** Resolve a --jobs style request: 0 -> hardware threads (min 1). */
unsigned resolveJobs(unsigned requested);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_RUNNER_H
