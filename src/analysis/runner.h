/**
 * @file
 * Parallel grid runner for the experiment engine.
 *
 * Experiments decompose into independent cells — typically one
 * (workload, scheme, parameter) coding run each. The runner fans cells
 * across a pool of worker threads and collects results *by index*, so
 * the assembled output is deterministic and byte-identical regardless
 * of the job count: --jobs 1 and --jobs N produce the same tables.
 */

#ifndef PREDBUS_ANALYSIS_RUNNER_H
#define PREDBUS_ANALYSIS_RUNNER_H

#include <cstddef>
#include <functional>
#include <vector>

namespace predbus::analysis
{

/**
 * Executes indexed tasks on up to @p jobs threads. jobs == 1 runs
 * inline on the calling thread (no pool), which is also the fallback
 * when hardware_concurrency is unknown. Exceptions thrown by tasks are
 * captured and rethrown on the calling thread (first by index).
 */
class Runner
{
  public:
    /** @p jobs 0 means one job per hardware thread. */
    explicit Runner(unsigned jobs = 0);

    unsigned jobs() const { return job_count; }

    /** Run fn(0) .. fn(n-1), fanned across the pool; returns when all
     * are done. Tasks must be independent. */
    void forEachIndex(std::size_t n,
                      const std::function<void(std::size_t)> &fn) const;

    /**
     * Map @p items through @p fn in parallel; results arrive in input
     * order (result[i] == fn(items[i])) independent of scheduling.
     */
    template <typename T, typename F>
    auto
    map(const std::vector<T> &items, F &&fn) const
        -> std::vector<decltype(fn(items[0]))>
    {
        using R = decltype(fn(items[0]));
        std::vector<R> results(items.size());
        forEachIndex(items.size(), [&](std::size_t i) {
            results[i] = fn(items[i]);
        });
        return results;
    }

    /** Map over indices 0..n-1; result[i] == fn(i). */
    template <typename F>
    auto
    mapIndex(std::size_t n, F &&fn) const
        -> std::vector<decltype(fn(std::size_t{0}))>
    {
        using R = decltype(fn(std::size_t{0}));
        std::vector<R> results(n);
        forEachIndex(n, [&](std::size_t i) { results[i] = fn(i); });
        return results;
    }

  private:
    unsigned job_count;
};

/** Resolve a --jobs style request: 0 -> hardware threads (min 1). */
unsigned resolveJobs(unsigned requested);

} // namespace predbus::analysis

#endif // PREDBUS_ANALYSIS_RUNNER_H
