#include "store/session_store.h"

#include "common/log.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace predbus::store
{

ShardedSessionStore::ShardedSessionStore(StoreOptions options,
                                         obs::Registry *registry)
    : opt(std::move(options)),
      n_shards(opt.shards > 0 ? opt.shards : 1),
      shard_budget(
          std::max<std::size_t>(1, opt.resident_bytes / n_shards)),
      shard_vec(n_shards),
      cache(opt.spill_dir, opt.segment_bytes)
{
    if (registry) {
        g_resident_sessions =
            &registry->gauge("serve.store.resident_sessions");
        g_resident_bytes =
            &registry->gauge("serve.store.resident_bytes");
        g_spilled_sessions =
            &registry->gauge("serve.store.spilled_sessions");
        g_spilled_bytes = &registry->gauge("serve.store.spilled_bytes");
        c_spills = &registry->counter("serve.store.spills");
        c_resumes = &registry->counter("serve.store.resumes");
        c_evictions = &registry->counter("serve.store.evictions");
        h_resume_ns = &registry->histogram("serve.store.resume_ns");
    }
}

ShardedSessionStore::~ShardedSessionStore() = default;

void
ShardedSessionStore::setHooks(StoreHooks h)
{
    hooks = std::move(h);
}

void
ShardedSessionStore::publishGauges() const
{
    if (!g_resident_sessions)
        return;
    g_resident_sessions->set(static_cast<s64>(
        total_sessions.load(std::memory_order_relaxed)));
    g_resident_bytes->set(static_cast<s64>(
        total_bytes.load(std::memory_order_relaxed)));
    g_spilled_sessions->set(static_cast<s64>(cache.count()));
    g_spilled_bytes->set(static_cast<s64>(cache.bytes()));
}

void
ShardedSessionStore::spillOne(Shard &shard, unsigned shard_id,
                              u64 key)
{
    auto it = shard.map.find(key);
    panicIf(it == shard.map.end(), "spill of a non-resident session");
    Resident &res = it->second;
    if (hooks.before_spill)
        hooks.before_spill(key, res.stored);

    // Spill record: one flags byte (bit0 = desynced latch) followed
    // by the versioned, checksummed session snapshot.
    const std::vector<u8> snap = res.stored.session.snapshot();
    std::vector<u8> record;
    record.reserve(1 + snap.size());
    record.push_back(res.stored.desynced ? 1 : 0);
    record.insert(record.end(), snap.begin(), snap.end());
    cache.put(key, record);

    total_sessions.fetch_sub(1, std::memory_order_relaxed);
    total_bytes.fetch_sub(res.bytes, std::memory_order_relaxed);
    shard.resident_bytes -= res.bytes;
    shard.lru.erase(res.lru_it);
    shard.map.erase(it);

    if (c_spills) {
        c_spills->inc();
        c_evictions->inc();
    }
    if (hooks.on_event)
        hooks.on_event(StoreEvent{StoreEventKind::Spill, key,
                                  shard_id, snap.size()});
}

void
ShardedSessionStore::enforceBudget(Shard &shard, unsigned shard_id,
                                   u64 protect)
{
    // Evict from the cold end; never spill the session the caller is
    // about to use (it sits at the LRU front, so meeting it at the
    // tail means it is the only resident entry — an oversized
    // singleton stays resident rather than thrash).
    while (shard.resident_bytes > shard_budget && !shard.lru.empty()) {
        const u64 victim = shard.lru.back();
        if (victim == protect)
            break;
        spillOne(shard, shard_id, victim);
    }
    publishGauges();
}

StoredSession *
ShardedSessionStore::put(u64 key, StoredSession session)
{
    if (session.session.spec().empty())
        fatal("session store requires spec-constructed sessions");
    const unsigned shard_id = shardOf(key);
    Shard &shard = shard_vec[shard_id];
    panicIf(shard.map.count(key) != 0 || cache.contains(key),
            "session store put() over an existing key");

    const std::size_t snap_bytes = session.session.snapshot().size();
    Resident res{std::move(session), snap_bytes, {}};
    shard.lru.push_front(key);
    res.lru_it = shard.lru.begin();
    shard.resident_bytes += res.bytes;
    total_sessions.fetch_add(1, std::memory_order_relaxed);
    total_bytes.fetch_add(res.bytes, std::memory_order_relaxed);
    auto [it, inserted] = shard.map.emplace(key, std::move(res));
    panicIf(!inserted, "session store map insert raced");

    enforceBudget(shard, shard_id, key);
    return &it->second.stored;
}

StoredSession *
ShardedSessionStore::get(u64 key)
{
    const unsigned shard_id = shardOf(key);
    Shard &shard = shard_vec[shard_id];

    if (auto it = shard.map.find(key); it != shard.map.end()) {
        Resident &res = it->second;
        shard.lru.splice(shard.lru.begin(), shard.lru, res.lru_it);
        return &res.stored;
    }

    // Not resident: lazily resume from the disk tier.
    std::vector<u8> record;
    const u64 t0 = obs::nowNs();
    if (!cache.take(key, record))
        return nullptr;
    if (record.empty())
        fatal("spilled session record is empty");
    StoredSession revived{coding::CodecSession::restore(
                              std::span<const u8>(record).subspan(1)),
                          (record[0] & 1) != 0};
    Resident res{std::move(revived), record.size() - 1, {}};

    shard.lru.push_front(key);
    res.lru_it = shard.lru.begin();
    shard.resident_bytes += res.bytes;
    total_sessions.fetch_add(1, std::memory_order_relaxed);
    total_bytes.fetch_add(res.bytes, std::memory_order_relaxed);
    auto [it, inserted] = shard.map.emplace(key, std::move(res));
    panicIf(!inserted, "session store resume insert raced");

    StoredSession &stored = it->second.stored;
    if (hooks.after_resume)
        hooks.after_resume(key, stored);
    const u64 dt = obs::nowNs() - t0;
    if (c_resumes) {
        c_resumes->inc();
        h_resume_ns->record(dt);
    }
    if (hooks.on_event)
        hooks.on_event(StoreEvent{StoreEventKind::Resume, key,
                                  shard_id, record.size() - 1});

    enforceBudget(shard, shard_id, key);
    return &stored;
}

bool
ShardedSessionStore::contains(u64 key) const
{
    const Shard &shard = shard_vec[shardOf(key)];
    return shard.map.count(key) != 0 || cache.contains(key);
}

bool
ShardedSessionStore::erase(u64 key)
{
    Shard &shard = shard_vec[shardOf(key)];
    if (auto it = shard.map.find(key); it != shard.map.end()) {
        Resident &res = it->second;
        shard.resident_bytes -= res.bytes;
        total_sessions.fetch_sub(1, std::memory_order_relaxed);
        total_bytes.fetch_sub(res.bytes, std::memory_order_relaxed);
        shard.lru.erase(res.lru_it);
        shard.map.erase(it);
        publishGauges();
        return true;
    }
    const bool hit = cache.erase(key);
    if (hit)
        publishGauges();
    return hit;
}

void
ShardedSessionStore::spillAllForTest()
{
    for (unsigned s = 0; s < n_shards; ++s) {
        Shard &shard = shard_vec[s];
        while (!shard.lru.empty())
            spillOne(shard, s, shard.lru.back());
    }
    publishGauges();
}

std::size_t
ShardedSessionStore::residentCount() const
{
    return total_sessions.load(std::memory_order_relaxed);
}

std::size_t
ShardedSessionStore::residentBytes() const
{
    return total_bytes.load(std::memory_order_relaxed);
}

} // namespace predbus::store
