/**
 * @file
 * Sharded session store with a RAM-resident working set and a tiered
 * spill to disk.
 *
 * The serve path needs to hold many more logical codec sessions than
 * fit in memory: a session is tiny on the wire (one OPEN frame) but
 * its FSM state — dictionaries, stride rings, energy meters — is not
 * free, and idle sessions must not pin it. The store keeps sessions in
 * N shards; each shard has a private hash map, an LRU list, and a
 * resident-bytes budget. When a shard exceeds its budget, the
 * least-recently-used sessions are serialized (CodecSession::snapshot)
 * and pushed down to the SpillCache; the next request for a spilled
 * session lazily restores it — byte-identically, so spill and resume
 * are invisible to the protocol.
 *
 * Concurrency contract: every operation on a key MUST be performed by
 * the thread that owns shardOf(key). Shard maps take no lock — the
 * single-owner discipline (shard-affine execution in serve::Server) is
 * what makes lookup lock-free. Only the disk tier and the metric
 * gauges are shared, and they synchronize internally.
 *
 * The key's high 32 bits are the affinity tag (the serve layer puts
 * the connection serial there), so every session of one connection
 * lands in one shard and in-order per-session semantics need no
 * cross-shard coordination.
 */

#ifndef PREDBUS_STORE_SESSION_STORE_H
#define PREDBUS_STORE_SESSION_STORE_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "coding/session.h"
#include "store/spill_cache.h"

namespace predbus::obs
{
class Counter;
class Gauge;
class Histogram;
class Registry;
}

namespace predbus::store
{

struct StoreOptions
{
    unsigned shards = 4;
    /** Whole-store resident budget, split evenly across shards. */
    std::size_t resident_bytes = 64u << 20;
    /** Spill directory; empty = private temp dir (see SpillCache). */
    std::string spill_dir;
    std::size_t segment_bytes = 4u << 20;
};

/** One stored session: the codec plus the serve-level flags that must
 * survive a spill cycle. */
struct StoredSession
{
    coding::CodecSession session;
    bool desynced = false;
};

enum class StoreEventKind : u8
{
    Spill = 0,   ///< session serialized and pushed to the disk tier
    Resume = 1,  ///< session restored from the disk tier
};

struct StoreEvent
{
    StoreEventKind kind;
    u64 key;
    unsigned shard;
    std::size_t bytes;  ///< snapshot size
};

/** Integration points for the serve layer. All hooks run on the
 * calling shard thread. */
struct StoreHooks
{
    /** Runs just before a session is serialized for spill — the place
     * to flush externally-published deltas so the snapshot and the
     * published baselines agree. */
    std::function<void(u64 key, StoredSession &)> before_spill;
    /** Runs after a spilled session is restored, before get()
     * returns it — re-attach metrics, re-baseline publishers. */
    std::function<void(u64 key, StoredSession &)> after_resume;
    /** Every spill/resume, e.g. for the flight recorder. */
    std::function<void(const StoreEvent &)> on_event;
};

class ShardedSessionStore
{
  public:
    /** @p registry, when given, wires the serve.store.* gauges,
     * counters, and the resume-latency histogram. */
    explicit ShardedSessionStore(StoreOptions opt,
                                 obs::Registry *registry = nullptr);
    ~ShardedSessionStore();

    ShardedSessionStore(const ShardedSessionStore &) = delete;
    ShardedSessionStore &operator=(const ShardedSessionStore &) =
        delete;

    void setHooks(StoreHooks hooks);

    unsigned shards() const { return static_cast<unsigned>(n_shards); }

    /** Shard owning @p key: the high 32 bits are the affinity tag. */
    unsigned
    shardOf(u64 key) const
    {
        return static_cast<unsigned>((key >> 32) % n_shards);
    }

    /**
     * Insert a new session under @p key (which must not be present in
     * any tier). Returns a pointer valid until the session is spilled
     * or erased; inserting may spill *other* sessions past the shard
     * budget. The session must be spec-constructed (snapshot()
     * requires it).
     */
    StoredSession *put(u64 key, StoredSession session);

    /**
     * Look up @p key: touches the LRU when resident, lazily resumes
     * from the spill tier when not (counting a resume + latency), and
     * returns nullptr when the key is in neither tier. The pointer is
     * valid until the session is spilled or erased — i.e. until the
     * next put/get on this shard.
     */
    StoredSession *get(u64 key);

    /** True when @p key is resident or spilled (never resumes). */
    bool contains(u64 key) const;

    /** Remove @p key from whichever tier holds it. */
    bool erase(u64 key);

    /** Force every resident session of every shard down to the spill
     * tier (test/maintenance; caller must own ALL shards, i.e. be the
     * only thread touching the store). */
    void spillAllForTest();

    std::size_t residentCount() const;
    std::size_t residentBytes() const;
    std::size_t spilledCount() const { return cache.count(); }
    std::size_t spilledBytes() const { return cache.bytes(); }

    SpillCache &spillCache() { return cache; }

  private:
    struct Resident
    {
        StoredSession stored;
        std::size_t bytes = 0;  ///< snapshot size (constant per spec)
        std::list<u64>::iterator lru_it;
    };

    struct Shard
    {
        std::unordered_map<u64, Resident> map;
        std::list<u64> lru;  ///< front = most recent
        std::size_t resident_bytes = 0;
    };

    void spillOne(Shard &shard, unsigned shard_id, u64 key);
    void enforceBudget(Shard &shard, unsigned shard_id, u64 protect);
    void publishGauges() const;

    StoreOptions opt;
    std::size_t n_shards;
    std::size_t shard_budget;
    std::vector<Shard> shard_vec;
    SpillCache cache;
    StoreHooks hooks;

    // Cross-shard totals for the gauges: shards are single-owner, so
    // the only shared mutable state is these relaxed counters.
    std::atomic<std::size_t> total_sessions{0};
    std::atomic<std::size_t> total_bytes{0};

    obs::Gauge *g_resident_sessions = nullptr;
    obs::Gauge *g_resident_bytes = nullptr;
    obs::Gauge *g_spilled_sessions = nullptr;
    obs::Gauge *g_spilled_bytes = nullptr;
    obs::Counter *c_spills = nullptr;
    obs::Counter *c_resumes = nullptr;
    obs::Counter *c_evictions = nullptr;
    obs::Histogram *h_resume_ns = nullptr;
};

} // namespace predbus::store

#endif // PREDBUS_STORE_SESSION_STORE_H
