/**
 * @file
 * Disk tier of the session store: an append-only segment-file cache
 * for spilled session snapshots.
 *
 * Records are appended to a small number of segment files with a
 * per-record header and payload checksum; an in-memory index maps key
 * to (segment, offset, length). Reads verify the checksum before the
 * bytes reach CodecSession::restore, so a torn or bit-rotted record is
 * detected here rather than as a mystery desync later. Segments
 * rotate at a configurable size, and a segment whose records have all
 * been taken or erased is unlinked — disk usage tracks the *live*
 * spilled population, not the historical churn.
 *
 * The cache is internally locked (one coarse mutex): the disk tier is
 * orders of magnitude slower than the lock, and sharing one cache
 * across all store shards keeps segment rotation simple.
 */

#ifndef PREDBUS_STORE_SPILL_CACHE_H
#define PREDBUS_STORE_SPILL_CACHE_H

#include <cstddef>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace predbus::store
{

class SpillCache
{
  public:
    /**
     * @param dir  Directory for segment files. Empty means "create a
     *             private temporary directory" (removed, with every
     *             segment in it, on destruction). A caller-provided
     *             directory is created if missing; only the segments
     *             this cache wrote are removed on destruction.
     * @param segment_bytes  Rotation threshold for the active segment.
     */
    explicit SpillCache(std::string dir, std::size_t segment_bytes);
    ~SpillCache();

    SpillCache(const SpillCache &) = delete;
    SpillCache &operator=(const SpillCache &) = delete;

    /** Append @p record under @p key, replacing any previous record
     * for the key. Throws FatalError on I/O failure. */
    void put(u64 key, std::span<const u8> record);

    /** Move the record for @p key out of the cache into @p out.
     * Returns false when the key is absent; throws FatalError when
     * the stored record fails its checksum (disk corruption). */
    bool take(u64 key, std::vector<u8> &out);

    /** Drop the record for @p key, if any. */
    bool erase(u64 key);

    bool contains(u64 key) const;

    /** Live records / live payload bytes currently spilled. */
    std::size_t count() const;
    std::size_t bytes() const;

    /** Segment files currently on disk (for tests). */
    std::size_t segmentCount() const;

    const std::string &directory() const { return dir; }

  private:
    struct Location
    {
        u32 segment = 0;
        u64 offset = 0;  ///< payload offset within the segment
        u32 len = 0;     ///< payload length
    };

    struct Segment
    {
        int fd = -1;
        std::string path;
        u64 append_off = 0;
        std::size_t live_records = 0;
        u64 live_bytes = 0;
    };

    void openActiveLocked();
    void dropRecordLocked(u64 key, const Location &loc);

    mutable std::mutex mu;
    std::string dir;
    bool own_dir = false;
    std::size_t segment_limit;
    u32 next_segment_id = 0;
    u32 active_id = 0;
    std::unordered_map<u32, Segment> segments;
    std::unordered_map<u64, Location> index;
    std::size_t live_bytes_total = 0;
};

} // namespace predbus::store

#endif // PREDBUS_STORE_SPILL_CACHE_H
