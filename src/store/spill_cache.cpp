#include "store/spill_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "coding/snapshot.h"
#include "common/log.h"

namespace predbus::store
{

namespace
{

/** On-disk record header: magic, key, payload length. The payload is
 * followed by its own 8-byte FNV-1a checksum (coding::snapshotChecksum),
 * so every field a restore depends on is covered. */
constexpr u32 kRecordMagic = 0x52534250u;  // "PBSR"
constexpr std::size_t kHeaderBytes = 4 + 8 + 4;

void
packU32(u8 *p, u32 v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

void
packU64(u8 *p, u64 v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<u8>(v >> (8 * i));
}

u32
unpackU32(const u8 *p)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return v;
}

u64
unpackU64(const u8 *p)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

void
pwriteAll(int fd, const u8 *data, std::size_t n, u64 off,
          const std::string &path)
{
    while (n > 0) {
        const ssize_t w =
            ::pwrite(fd, data, n, static_cast<off_t>(off));
        if (w < 0) {
            if (errno == EINTR)
                continue;
            fatal("spill cache write to '", path,
                  "' failed: ", std::strerror(errno));
        }
        data += w;
        n -= static_cast<std::size_t>(w);
        off += static_cast<u64>(w);
    }
}

bool
preadAll(int fd, u8 *data, std::size_t n, u64 off)
{
    while (n > 0) {
        const ssize_t r =
            ::pread(fd, data, n, static_cast<off_t>(off));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (r == 0)
            return false;
        data += r;
        n -= static_cast<std::size_t>(r);
        off += static_cast<u64>(r);
    }
    return true;
}

} // namespace

SpillCache::SpillCache(std::string directory, std::size_t segment_bytes)
    : dir(std::move(directory)), segment_limit(segment_bytes)
{
    if (dir.empty()) {
        char tmpl[] = "/tmp/predbus-store-XXXXXX";
        if (!::mkdtemp(tmpl))
            fatal("cannot create spill directory: ",
                  std::strerror(errno));
        dir = tmpl;
        own_dir = true;
    } else if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
        fatal("cannot create spill directory '", dir,
              "': ", std::strerror(errno));
    }
    std::lock_guard lock(mu);
    openActiveLocked();
}

SpillCache::~SpillCache()
{
    std::lock_guard lock(mu);
    for (auto &[id, seg] : segments) {
        if (seg.fd >= 0)
            ::close(seg.fd);
        ::unlink(seg.path.c_str());
    }
    segments.clear();
    if (own_dir)
        ::rmdir(dir.c_str());
}

void
SpillCache::openActiveLocked()
{
    Segment seg;
    seg.path =
        dir + "/seg-" + std::to_string(next_segment_id) + ".spill";
    seg.fd = ::open(seg.path.c_str(),
                    O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (seg.fd < 0)
        fatal("cannot open spill segment '", seg.path,
              "': ", std::strerror(errno));
    active_id = next_segment_id++;
    segments.emplace(active_id, std::move(seg));
}

void
SpillCache::dropRecordLocked(u64 key, const Location &loc)
{
    auto seg_it = segments.find(loc.segment);
    panicIf(seg_it == segments.end(),
            "spill index points at a missing segment");
    Segment &seg = seg_it->second;
    --seg.live_records;
    seg.live_bytes -= loc.len;
    live_bytes_total -= loc.len;
    index.erase(key);
    // A fully-dead, non-active segment is reclaimed immediately.
    if (seg.live_records == 0 && loc.segment != active_id) {
        ::close(seg.fd);
        ::unlink(seg.path.c_str());
        segments.erase(seg_it);
    }
}

void
SpillCache::put(u64 key, std::span<const u8> record)
{
    std::lock_guard lock(mu);
    if (auto it = index.find(key); it != index.end())
        dropRecordLocked(key, it->second);

    Segment &seg = segments.at(active_id);
    const u32 len = static_cast<u32>(record.size());
    std::vector<u8> buf(kHeaderBytes + record.size() + 8);
    packU32(buf.data(), kRecordMagic);
    packU64(buf.data() + 4, key);
    packU32(buf.data() + 12, len);
    std::copy(record.begin(), record.end(),
              buf.begin() + kHeaderBytes);
    packU64(buf.data() + kHeaderBytes + record.size(),
            coding::snapshotChecksum(record.data(), record.size()));
    pwriteAll(seg.fd, buf.data(), buf.size(), seg.append_off,
              seg.path);

    index[key] = Location{active_id,
                          seg.append_off + kHeaderBytes, len};
    seg.append_off += buf.size();
    ++seg.live_records;
    seg.live_bytes += len;
    live_bytes_total += len;

    if (seg.append_off >= segment_limit)
        openActiveLocked();
}

bool
SpillCache::take(u64 key, std::vector<u8> &out)
{
    std::lock_guard lock(mu);
    const auto it = index.find(key);
    if (it == index.end())
        return false;
    const Location loc = it->second;
    const Segment &seg = segments.at(loc.segment);

    std::vector<u8> buf(static_cast<std::size_t>(loc.len) + 8);
    if (!preadAll(seg.fd, buf.data(), buf.size(), loc.offset))
        fatal("spill cache read from '", seg.path,
              "' failed: ", std::strerror(errno));
    const u64 stored = unpackU64(buf.data() + loc.len);
    if (coding::snapshotChecksum(buf.data(), loc.len) != stored)
        fatal("spilled session record failed its checksum in '",
              seg.path, "'");

    // Cross-check the header too: catches an index pointing at the
    // wrong record after a logic bug, not just media corruption.
    u8 hdr[kHeaderBytes];
    if (!preadAll(seg.fd, hdr, sizeof hdr, loc.offset - kHeaderBytes)
        || unpackU32(hdr) != kRecordMagic
        || unpackU64(hdr + 4) != key || unpackU32(hdr + 12) != loc.len)
        fatal("spilled session record header mismatch in '", seg.path,
              "'");

    buf.resize(loc.len);
    out = std::move(buf);
    dropRecordLocked(key, loc);
    return true;
}

bool
SpillCache::erase(u64 key)
{
    std::lock_guard lock(mu);
    const auto it = index.find(key);
    if (it == index.end())
        return false;
    dropRecordLocked(key, it->second);
    return true;
}

bool
SpillCache::contains(u64 key) const
{
    std::lock_guard lock(mu);
    return index.count(key) != 0;
}

std::size_t
SpillCache::count() const
{
    std::lock_guard lock(mu);
    return index.size();
}

std::size_t
SpillCache::bytes() const
{
    std::lock_guard lock(mu);
    return live_bytes_total;
}

std::size_t
SpillCache::segmentCount() const
{
    std::lock_guard lock(mu);
    return segments.size();
}

} // namespace predbus::store
