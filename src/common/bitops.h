/**
 * @file
 * Bit-manipulation helpers shared by the ISA, coding, and circuit layers.
 *
 * All functions are constexpr-friendly and operate on explicit-width
 * unsigned types so behaviour is identical across hosts.
 */

#ifndef PREDBUS_COMMON_BITOPS_H
#define PREDBUS_COMMON_BITOPS_H

#include <bit>
#include <cstdint>

#include "common/types.h"

namespace predbus
{

/** Number of set bits (Hamming weight) of @p x. */
constexpr int
popcount(u64 x)
{
    return std::popcount(x);
}

/** Hamming distance between two words: bits that differ. */
constexpr int
hammingDistance(u64 a, u64 b)
{
    return std::popcount(a ^ b);
}

/** Extract bit @p pos (0 = LSB) of @p x. */
constexpr u32
bit(u64 x, unsigned pos)
{
    return static_cast<u32>((x >> pos) & 1u);
}

/** Extract the bit field [lo, lo+len) of @p x. */
constexpr u64
bits(u64 x, unsigned lo, unsigned len)
{
    return (len >= 64) ? (x >> lo) : ((x >> lo) & ((u64{1} << len) - 1));
}

/** Insert @p value into the bit field [lo, lo+len) of @p x. */
constexpr u64
insertBits(u64 x, unsigned lo, unsigned len, u64 value)
{
    const u64 mask = (len >= 64) ? ~u64{0} : ((u64{1} << len) - 1);
    return (x & ~(mask << lo)) | ((value & mask) << lo);
}

/** Sign-extend the low @p width bits of @p x to 64 bits. */
constexpr s64
signExtend(u64 x, unsigned width)
{
    const unsigned shift = 64 - width;
    return static_cast<s64>(x << shift) >> shift;
}

/** Sign-extend the low @p width bits of @p x to 32 bits. */
constexpr s32
signExtend32(u32 x, unsigned width)
{
    const unsigned shift = 32 - width;
    return static_cast<s32>(x << shift) >> shift;
}

/** A mask with the low @p n bits set (n may be 0..64). */
constexpr u64
maskLow(unsigned n)
{
    return (n >= 64) ? ~u64{0} : ((u64{1} << n) - 1);
}

/** One-hot word with only bit @p pos set. */
constexpr u64
oneHot(unsigned pos)
{
    return u64{1} << pos;
}

/** True if @p x has exactly zero or one bit set. */
constexpr bool
isOneHotOrZero(u64 x)
{
    return (x & (x - 1)) == 0;
}

/**
 * Number of adjacent-pair "coupling" boundaries whose relative state
 * changed between two samples of an @p n_wires -wide bus.
 *
 * This is the per-step summand of the paper's Eq. 3: for every adjacent
 * wire pair (i, i+1), count 1 when (W_i XOR W_{i+1}) differs between the
 * previous and the current bus state.
 */
constexpr int
couplingEvents(u64 prev, u64 cur, unsigned n_wires)
{
    const u64 prev_rel = prev ^ (prev >> 1);
    const u64 cur_rel = cur ^ (cur >> 1);
    // Pairs (0,1)..(n-2,n-1) live in bits 0..n-2 of the relative views.
    return std::popcount((prev_rel ^ cur_rel) & maskLow(n_wires - 1));
}

/** Reverse the low @p width bits of @p x. */
constexpr u32
reverseBits(u32 x, unsigned width)
{
    u32 out = 0;
    for (unsigned i = 0; i < width; ++i)
        out |= bit(x, i) << (width - 1 - i);
    return out;
}

} // namespace predbus

#endif // PREDBUS_COMMON_BITOPS_H
