/**
 * @file
 * Small statistics helpers: running moments, percentiles, histograms.
 */

#ifndef PREDBUS_COMMON_STATS_H
#define PREDBUS_COMMON_STATS_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace predbus
{

/**
 * Single-pass accumulator for count / mean / variance / min / max
 * (Welford's algorithm).
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double x);

    u64 count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    u64 n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    double total = 0.0;
};

/**
 * Percentile of a sample set with linear interpolation between order
 * statistics. @p q is in [0, 1]. The input vector is copied; callers on
 * hot paths should sort once and use percentileSorted.
 */
double percentile(std::vector<double> values, double q);

/** Percentile of an already ascending-sorted sample set. */
double percentileSorted(const std::vector<double> &sorted, double q);

/** Median (50th percentile). */
double median(std::vector<double> values);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

/** Geometric mean; 0 for an empty vector; requires positive samples. */
double geomean(const std::vector<double> &values);

} // namespace predbus

#endif // PREDBUS_COMMON_STATS_H
