/**
 * @file
 * Error-reporting helpers in the gem5 spirit: fatal() for user-caused
 * conditions (bad configuration, malformed input), panic() for internal
 * invariant violations (library bugs).
 */

#ifndef PREDBUS_COMMON_LOG_H
#define PREDBUS_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace predbus
{

/** Thrown for user-correctable errors (bad config, malformed files). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown for internal invariant violations — a predbus bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream ss;
    (ss << ... << args);
    return ss.str();
}

} // namespace detail

/** Abort the operation with a user-facing error message. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the operation due to an internal inconsistency. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Check an internal invariant; panic with context on failure. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

} // namespace predbus

#endif // PREDBUS_COMMON_LOG_H
