/**
 * @file
 * Error-reporting helpers in the gem5 spirit — fatal() for user-caused
 * conditions (bad configuration, malformed input), panic() for internal
 * invariant violations (library bugs) — plus a leveled diagnostic
 * logger (error/warn/info/debug) writing thread-safe, line-buffered
 * records to stderr. The level defaults to info and is overridable
 * with PREDBUS_LOG_LEVEL (name or 0-3).
 */

#ifndef PREDBUS_COMMON_LOG_H
#define PREDBUS_COMMON_LOG_H

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace predbus
{

/** Thrown for user-correctable errors (bad config, malformed files). */
class FatalError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** Thrown for internal invariant violations — a predbus bug. */
class PanicError : public std::logic_error
{
  public:
    using std::logic_error::logic_error;
};

namespace detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream ss;
    (ss << ... << args);
    return ss.str();
}

} // namespace detail

/** Abort the operation with a user-facing error message. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Abort the operation due to an internal inconsistency. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Check an internal invariant; panic with context on failure. */
template <typename... Args>
void
panicIf(bool condition, Args &&...args)
{
    if (condition)
        panic(std::forward<Args>(args)...);
}

/** Diagnostic severities, most severe first. */
enum class LogLevel
{
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/** Current threshold (records above it are dropped). First call reads
 * PREDBUS_LOG_LEVEL ("error"|"warn"|"info"|"debug" or 0-3);
 * unset/unparsable means Info. */
LogLevel logLevel();

/** Override the threshold for this process (tests, CLI flags). */
void setLogLevel(LogLevel level);

/** True iff a record at @p level would be emitted. */
bool logEnabled(LogLevel level);

/** Emit one record: "predbus [level] message\n" to stderr as a single
 * write, safe against interleaving from concurrent threads. */
void logLine(LogLevel level, const std::string &message);

template <typename... Args>
void
logError(Args &&...args)
{
    if (logEnabled(LogLevel::Error))
        logLine(LogLevel::Error,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args &&...args)
{
    if (logEnabled(LogLevel::Warn))
        logLine(LogLevel::Warn,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logInfo(Args &&...args)
{
    if (logEnabled(LogLevel::Info))
        logLine(LogLevel::Info,
                detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logDebug(Args &&...args)
{
    if (logEnabled(LogLevel::Debug))
        logLine(LogLevel::Debug,
                detail::concat(std::forward<Args>(args)...));
}

} // namespace predbus

#endif // PREDBUS_COMMON_LOG_H
