#include "common/table.h"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace predbus
{

Table::Table(std::vector<std::string> header) : header(std::move(header)) {}

Table &
Table::row()
{
    rows.emplace_back();
    return *this;
}

Table &
Table::cell(std::string value)
{
    if (rows.empty())
        throw std::logic_error("Table::cell called before Table::row");
    rows.back().push_back(std::move(value));
    return *this;
}

Table &
Table::cell(long long value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream ss;
    ss.setf(std::ios::fixed);
    ss.precision(precision);
    ss << value;
    return cell(ss.str());
}

const std::string &
Table::at(std::size_t r, std::size_t c) const
{
    return rows.at(r).at(c);
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size(), 0);
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size() && c < width.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < width.size(); ++c) {
            const std::string &v = (c < cells.size()) ? cells[c] : "";
            os << v << std::string(width[c] - v.size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(header);
    std::size_t total = 0;
    for (std::size_t w : width)
        total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto &r : rows)
        emit_row(r);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit_row(header);
    for (const auto &r : rows)
        emit_row(r);
}

bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    return false;
}

} // namespace predbus
