#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace predbus
{

namespace
{

LogLevel
parseLevel(const char *text, LogLevel fallback)
{
    if (!text)
        return fallback;
    const struct
    {
        const char *name;
        LogLevel level;
    } names[] = {
        {"error", LogLevel::Error}, {"0", LogLevel::Error},
        {"warn", LogLevel::Warn},   {"1", LogLevel::Warn},
        {"info", LogLevel::Info},   {"2", LogLevel::Info},
        {"debug", LogLevel::Debug}, {"3", LogLevel::Debug},
    };
    for (const auto &entry : names)
        if (std::strcmp(text, entry.name) == 0)
            return entry.level;
    return fallback;
}

std::atomic<int> &
levelStore()
{
    static std::atomic<int> level{static_cast<int>(
        parseLevel(std::getenv("PREDBUS_LOG_LEVEL"),
                   LogLevel::Info))};
    return level;
}

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "error";
      case LogLevel::Warn: return "warn";
      case LogLevel::Info: return "info";
      case LogLevel::Debug: return "debug";
    }
    return "?";
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelStore().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelStore().store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <=
           static_cast<int>(logLevel());
}

void
logLine(LogLevel level, const std::string &message)
{
    // Assemble the whole record first and emit it with one fwrite
    // under a mutex: concurrent threads cannot interleave fragments,
    // and a parallel run's log stays line-parseable.
    std::string line;
    line.reserve(message.size() + 24);
    line += "predbus [";
    line += levelName(level);
    line += "] ";
    line += message;
    line += '\n';

    static std::mutex mutex;
    std::lock_guard<std::mutex> g(mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace predbus
