/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256++).
 *
 * predbus needs bit-for-bit reproducible workload data and random
 * traces across hosts, so we avoid std::mt19937 distribution quirks and
 * implement the generator plus the few distributions we use directly.
 */

#ifndef PREDBUS_COMMON_RNG_H
#define PREDBUS_COMMON_RNG_H

#include <cmath>

#include "common/types.h"

namespace predbus
{

/**
 * xoshiro256++ generator (Blackman & Vigna). Deterministically seeded
 * via splitmix64 so any 64-bit seed yields a well-mixed state.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Reset the generator state from a 64-bit seed. */
    void
    reseed(u64 seed)
    {
        // splitmix64 to expand the seed into 256 bits of state.
        auto next_seed = [&seed]() {
            u64 z = (seed += 0x9e3779b97f4a7c15ull);
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            return z ^ (z >> 31);
        };
        for (auto &word : state)
            word = next_seed();
    }

    /** Next raw 64-bit output. */
    u64
    next64()
    {
        const u64 result = rotl(state[0] + state[3], 23) + state[0];
        const u64 t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Next 32-bit output. */
    u32 next32() { return static_cast<u32>(next64() >> 32); }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        // Rejection-free multiply-shift (Lemire); bias is < 2^-64.
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next64()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    s64
    range(s64 lo, s64 hi)
    {
        return lo + static_cast<s64>(below(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /** Standard normal via Box-Muller (uses two uniforms per call). */
    double
    gaussian()
    {
        double u1 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.283185307179586 * u2);
    }

    /** Bernoulli draw with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Zipf-like draw over [0, n): rank r selected with probability
     * proportional to 1/(r+1)^s. Used to synthesize skewed value
     * popularity similar to real bus traffic.
     */
    u64
    zipf(u64 n, double s)
    {
        // Inverse-CDF on a harmonic prefix table would need memory; use
        // rejection sampling with the standard envelope instead. The
        // envelope requires s > 1.
        if (s <= 1.0)
            s = 1.0 + 1e-4;
        const double b = std::pow(2.0, s - 1.0);
        while (true) {
            const double u = uniform();
            const double v = uniform();
            const double x = std::floor(std::pow(u, -1.0 / (s - 1.0)));
            const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
            if (v * x * (t - 1.0) / (b - 1.0) <= t / b &&
                x <= static_cast<double>(n)) {
                return static_cast<u64>(x) - 1;
            }
        }
    }

  private:
    static constexpr u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state[4];
};

} // namespace predbus

#endif // PREDBUS_COMMON_RNG_H
