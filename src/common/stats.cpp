#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace predbus
{

void
RunningStat::add(double x)
{
    ++n;
    total += x;
    if (n == 1) {
        mu = lo = hi = x;
        m2 = 0.0;
        return;
    }
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

double
RunningStat::variance() const
{
    return (n > 1) ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    if (sorted.size() == 1)
        return sorted.front();
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto idx = static_cast<std::size_t>(pos);
    const double frac = pos - static_cast<double>(idx);
    if (idx + 1 >= sorted.size())
        return sorted.back();
    return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double
percentile(std::vector<double> values, double q)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, q);
}

double
median(std::vector<double> values)
{
    return percentile(std::move(values), 0.5);
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace predbus
