/**
 * @file
 * Fundamental fixed-width type aliases used throughout predbus.
 */

#ifndef PREDBUS_COMMON_TYPES_H
#define PREDBUS_COMMON_TYPES_H

#include <cstddef>
#include <cstdint>

namespace predbus
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using s8 = std::int8_t;
using s16 = std::int16_t;
using s32 = std::int32_t;
using s64 = std::int64_t;

/** A 32-bit value as it appears on a bus. */
using Word = u32;

/** Simulator cycle count. */
using Cycle = u64;

/** Guest physical/virtual address (flat 32-bit address space). */
using Addr = u32;

} // namespace predbus

#endif // PREDBUS_COMMON_TYPES_H
