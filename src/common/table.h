/**
 * @file
 * Aligned console tables with optional CSV output.
 *
 * Every bench binary reproduces one of the paper's tables or figures as
 * rows/series; this class provides the uniform rendering for them.
 */

#ifndef PREDBUS_COMMON_TABLE_H
#define PREDBUS_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace predbus
{

/**
 * A rectangular table of strings with a header row. Numeric helpers
 * format doubles with a fixed precision. Render as aligned text (for
 * humans) or CSV (for plotting scripts).
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Begin a new row; subsequent cell() calls append to it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(std::string value);

    /** Append an integer cell. */
    Table &cell(long long value);

    /** Append a floating-point cell with @p precision digits. */
    Table &cell(double value, int precision = 3);

    std::size_t rowCount() const { return rows.size(); }
    std::size_t columnCount() const { return header.size(); }

    /** The string contents of row @p r, column @p c. */
    const std::string &at(std::size_t r, std::size_t c) const;

    /** The header label of column @p c. */
    const std::string &headerAt(std::size_t c) const
    {
        return header.at(c);
    }

    /** Render with space-padded, column-aligned formatting. */
    void print(std::ostream &os) const;

    /** Render as RFC-4180-ish CSV (no quoting; cells must be clean). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Parse bench-binary command-line conventions: returns true if
 * "--csv" appears in (argc, argv).
 */
bool wantCsv(int argc, char **argv);

} // namespace predbus

#endif // PREDBUS_COMMON_TABLE_H
