/**
 * @file
 * Run manifest + metrics report: one JSON document tying results to
 * the build that produced them (compiler, flags, git describe), the
 * run configuration, per-experiment wall times, and every metric in a
 * Registry — the structured artifact trajectory tracking consumes.
 * Schema: docs/OBSERVABILITY.md.
 */

#ifndef PREDBUS_OBS_REPORT_H
#define PREDBUS_OBS_REPORT_H

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace predbus::obs
{

class Registry;

/** Toolchain/build identity captured at compile/configure time. */
struct BuildInfo
{
    std::string compiler;    ///< e.g. "gcc 13.2.0"
    std::string flags;       ///< CMAKE_CXX_FLAGS (+ per-config)
    std::string build_type;  ///< CMAKE_BUILD_TYPE
    std::string git;         ///< git describe --always --dirty
};

/** Build info of this binary. */
BuildInfo buildInfo();

/** What the report describes beyond the registry contents. */
struct ReportContext
{
    std::string tool = "predbus";
    /** Config key/value pairs, emitted in the given order. */
    std::vector<std::pair<std::string, std::string>> config;
    /** (experiment name, wall milliseconds), in run order. */
    std::vector<std::pair<std::string, double>> experiment_wall_ms;
};

/**
 * Emit the metrics report JSON: manifest (tool, build, config),
 * experiment wall times, and the registry's counters, gauges, and
 * histogram summaries sorted by name. Structure depends only on which
 * metrics exist, never on their values, so reports from --jobs 1 and
 * --jobs N have identical key sets.
 */
void writeMetricsReport(std::ostream &os, const ReportContext &ctx,
                        const Registry &registry);

} // namespace predbus::obs

#endif // PREDBUS_OBS_REPORT_H
