#include "obs/report.h"

#include <ostream>

#include "obs/json_util.h"
#include "obs/metrics.h"

#ifndef PREDBUS_GIT_DESCRIBE
#define PREDBUS_GIT_DESCRIBE "unknown"
#endif
#ifndef PREDBUS_BUILD_TYPE
#define PREDBUS_BUILD_TYPE "unknown"
#endif
#ifndef PREDBUS_CXX_FLAGS
#define PREDBUS_CXX_FLAGS ""
#endif

namespace predbus::obs
{

namespace
{

std::string
compilerString()
{
#if defined(__clang__)
    return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
    return std::string("gcc ") + __VERSION__;
#else
    return "unknown";
#endif
}

void
writeHistogram(std::ostream &os, const HistogramStats &h,
               const char *indent)
{
    os << "{\n" << indent << "  \"count\": " << h.count;
    const std::pair<const char *, double> fields[] = {
        {"min", h.min},   {"max", h.max}, {"mean", h.mean},
        {"p50", h.p50},   {"p95", h.p95}, {"p99", h.p99},
    };
    for (const auto &[key, value] : fields) {
        os << ",\n" << indent << "  \"" << key << "\": ";
        jsonNumber(os, value);
    }
    os << '\n' << indent << '}';
}

} // namespace

BuildInfo
buildInfo()
{
    BuildInfo info;
    info.compiler = compilerString();
    info.flags = PREDBUS_CXX_FLAGS;
    info.build_type = PREDBUS_BUILD_TYPE;
    info.git = PREDBUS_GIT_DESCRIBE;
    return info;
}

void
writeMetricsReport(std::ostream &os, const ReportContext &ctx,
                   const Registry &registry)
{
    const BuildInfo build = buildInfo();

    os << "{\n  \"schema\": \"predbus.metrics.v1\",\n  \"tool\": ";
    jsonEscape(os, ctx.tool);

    os << ",\n  \"build\": {\n    \"compiler\": ";
    jsonEscape(os, build.compiler);
    os << ",\n    \"flags\": ";
    jsonEscape(os, build.flags);
    os << ",\n    \"build_type\": ";
    jsonEscape(os, build.build_type);
    os << ",\n    \"git\": ";
    jsonEscape(os, build.git);
    os << "\n  },\n  \"config\": {";
    for (std::size_t i = 0; i < ctx.config.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, ctx.config[i].first);
        os << ": ";
        jsonEscape(os, ctx.config[i].second);
    }
    os << (ctx.config.empty() ? "" : "\n  ") << "},\n";

    os << "  \"experiments\": [";
    for (std::size_t i = 0; i < ctx.experiment_wall_ms.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << "{\"name\": ";
        jsonEscape(os, ctx.experiment_wall_ms[i].first);
        os << ", \"wall_ms\": ";
        jsonNumber(os, ctx.experiment_wall_ms[i].second);
        os << '}';
    }
    os << (ctx.experiment_wall_ms.empty() ? "" : "\n  ") << "],\n";

    const auto counters = registry.counters();
    os << "  \"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, counters[i].first);
        os << ": " << counters[i].second;
    }
    os << (counters.empty() ? "" : "\n  ") << "},\n";

    const auto gauges = registry.gauges();
    os << "  \"gauges\": {";
    for (std::size_t i = 0; i < gauges.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, gauges[i].first);
        os << ": " << gauges[i].second;
    }
    os << (gauges.empty() ? "" : "\n  ") << "},\n";

    const auto histograms = registry.histograms();
    os << "  \"histograms\": {";
    for (std::size_t i = 0; i < histograms.size(); ++i) {
        os << (i ? ",\n    " : "\n    ");
        jsonEscape(os, histograms[i].first);
        os << ": ";
        writeHistogram(os, histograms[i].second, "    ");
    }
    os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
}

} // namespace predbus::obs
