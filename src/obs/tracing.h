/**
 * @file
 * Phase tracing: RAII scoped timers recording (name, start, duration,
 * thread) spans into a bounded in-memory buffer, exportable as Chrome
 * trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
 *
 * Tracing is off by default and costs one relaxed atomic load per
 * ScopedTimer when disabled — no clock reads, no allocation. The
 * predbus_bench --trace-out flag enables the global buffer for the
 * run and writes the JSON at exit.
 */

#ifndef PREDBUS_OBS_TRACING_H
#define PREDBUS_OBS_TRACING_H

#include <atomic>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"

namespace predbus::obs
{

class Counter;
class Histogram;

/** Nanoseconds of steady time since the first obs clock use. */
u64 nowNs();

/** One completed span. */
struct SpanEvent
{
    std::string name;
    u64 start_ns = 0;
    u64 dur_ns = 0;
    u32 tid = 0;  ///< small dense thread number, 0 = first seen
};

/**
 * Bounded span store. Thread-safe; once @p capacity spans are held,
 * further spans are counted as dropped rather than recorded (a trace
 * that silently self-truncates would misrepresent the run, so the
 * drop count is exported in the JSON metadata).
 */
class TraceBuffer
{
  public:
    explicit TraceBuffer(std::size_t capacity = 1u << 16);

    /** The process-wide buffer ScopedTimer uses by default. */
    static TraceBuffer &global();

    void setEnabled(bool enabled);
    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Record a completed span (no-op while disabled). */
    void record(std::string name, u64 start_ns, u64 dur_ns);

    /**
     * Mirror every future drop into @p counter (the global buffer
     * attaches "obs.trace.dropped" from the global registry, so
     * overflow shows up in metrics reports instead of being silent).
     */
    void attachDropCounter(Counter *counter);

    std::size_t size() const;
    u64 dropped() const;
    std::vector<SpanEvent> events() const;
    void clear();

    /**
     * Chrome trace-event JSON: {"traceEvents": [...]} with complete
     * ("ph":"X") events, timestamps in microseconds.
     */
    void writeChromeJson(std::ostream &os) const;

  private:
    u32 tidOf(std::thread::id id);

    std::atomic<bool> on{false};
    std::atomic<u64> drops{0};
    std::atomic<Counter *> drop_counter{nullptr};
    mutable std::mutex mutex;
    std::vector<SpanEvent> spans;
    std::size_t capacity;
    std::map<std::thread::id, u32> tids;
};

/**
 * RAII span: measures construction-to-destruction and records it into
 * a TraceBuffer (the global one by default) and/or an optional
 * Histogram. When the buffer is disabled and no histogram is given,
 * the timer takes no clock readings at all.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string name,
                         TraceBuffer *buffer = nullptr,
                         Histogram *histogram = nullptr);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Nanoseconds since construction (0 when inactive). */
    u64 elapsedNs() const;

  private:
    std::string name;
    TraceBuffer *buffer;
    Histogram *histogram;
    u64 start = 0;
    bool active = false;
};

} // namespace predbus::obs

#endif // PREDBUS_OBS_TRACING_H
