#include "obs/metrics.h"

#include <algorithm>
#include <cctype>

#include "common/log.h"
#include "common/stats.h"

namespace predbus::obs
{

void
Histogram::record(double value)
{
    std::lock_guard<std::mutex> g(mutex);
    if (n == 0) {
        lo = hi = value;
    } else {
        lo = std::min(lo, value);
        hi = std::max(hi, value);
    }
    ++n;
    sum += value;
    if (samples.size() < kMaxSamples)
        samples.push_back(value);
}

u64
Histogram::count() const
{
    std::lock_guard<std::mutex> g(mutex);
    return n;
}

HistogramStats
Histogram::stats() const
{
    std::lock_guard<std::mutex> g(mutex);
    HistogramStats s;
    s.count = n;
    if (n == 0)
        return s;
    s.min = lo;
    s.max = hi;
    s.mean = sum / static_cast<double>(n);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    s.p50 = percentileSorted(sorted, 0.50);
    s.p95 = percentileSorted(sorted, 0.95);
    s.p99 = percentileSorted(sorted, 0.99);
    return s;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

bool
Registry::validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool saw_dot = false;
    char prev = '.';
    for (char ch : name) {
        if (ch == '.') {
            if (prev == '.')
                return false;  // empty segment
            saw_dot = true;
        } else if (!((ch >= 'a' && ch <= 'z') ||
                     (ch >= '0' && ch <= '9') || ch == '_')) {
            return false;
        }
        prev = ch;
    }
    return saw_dot;
}

void
Registry::checkName(const std::string &name, const char *kind) const
{
    panicIf(!validName(name), "invalid metric name '", name,
            "' (want lowercase dotted segments, e.g. trace.cache.hits)");
    // A name belongs to exactly one metric kind.
    const bool clash =
        (kind != std::string("counter") &&
         counter_map.count(name) != 0) ||
        (kind != std::string("gauge") && gauge_map.count(name) != 0) ||
        (kind != std::string("histogram") &&
         histogram_map.count(name) != 0);
    panicIf(clash, "metric '", name, "' already registered as a ",
            "different kind than ", kind);
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = counter_map.find(name);
    if (it == counter_map.end()) {
        checkName(name, "counter");
        it = counter_map.emplace(name, std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = gauge_map.find(name);
    if (it == gauge_map.end()) {
        checkName(name, "gauge");
        it = gauge_map.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = histogram_map.find(name);
    if (it == histogram_map.end()) {
        checkName(name, "histogram");
        it = histogram_map.emplace(name, std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, u64>>
Registry::counters() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counter_map.size());
    for (const auto &[name, c] : counter_map)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, s64>>
Registry::gauges() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, s64>> out;
    out.reserve(gauge_map.size());
    for (const auto &[name, gauge] : gauge_map)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::pair<std::string, HistogramStats>>
Registry::histograms() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, HistogramStats>> out;
    out.reserve(histogram_map.size());
    for (const auto &[name, h] : histogram_map)
        out.emplace_back(name, h->stats());
    return out;
}

std::string
metricSegment(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char ch : label) {
        const unsigned char u = static_cast<unsigned char>(ch);
        if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
            ch == '_')
            out.push_back(ch);
        else if (ch >= 'A' && ch <= 'Z')
            out.push_back(
                static_cast<char>(std::tolower(u)));
        else
            out.push_back('_');
    }
    if (out.empty())
        out = "_";
    return out;
}

} // namespace predbus::obs
