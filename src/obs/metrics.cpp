#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <limits>

#include "common/log.h"

namespace predbus::obs
{

namespace
{

u64
doubleBits(double v)
{
    return std::bit_cast<u64>(v);
}

double
bitsDouble(u64 bits)
{
    return std::bit_cast<double>(bits);
}

/** Relaxed CAS-add of a double stored as bits in @p target. */
void
atomicAddDouble(std::atomic<u64> &target, double delta)
{
    u64 old = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(
        old, doubleBits(bitsDouble(old) + delta),
        std::memory_order_relaxed)) {
    }
}

/** Relaxed CAS toward the smaller / larger of the held double. */
template <typename Better>
void
atomicExtremeDouble(std::atomic<u64> &target, double candidate,
                    Better better)
{
    u64 old = target.load(std::memory_order_relaxed);
    while (better(candidate, bitsDouble(old)) &&
           !target.compare_exchange_weak(old, doubleBits(candidate),
                                         std::memory_order_relaxed)) {
    }
}

} // namespace

std::size_t
Histogram::bucketIndex(double value)
{
    if (!(value >= 1.0))  // NaN, negatives, and [0, 1) share bucket 0
        return 0;
    if (value >= 0x1p64)
        return kBuckets - 1;
    // Finite, in [1, 2^64): the biased exponent selects the octave,
    // the mantissa's top kSubBits bits the linear sub-bucket. Exact
    // equivalent of floor((v/2^e - 1) * kSubBuckets) with no FP ops.
    const u64 bits = doubleBits(value);
    const unsigned e =
        (static_cast<unsigned>(bits >> 52) & 0x7ff) - 1023;
    const unsigned sub = static_cast<unsigned>(
        (bits >> (52 - kSubBits)) & (kSubBuckets - 1));
    return 1 + std::size_t{e} * kSubBuckets + sub;
}

double
Histogram::bucketLowerBound(std::size_t index)
{
    if (index == 0)
        return 0.0;
    const std::size_t lin = index - 1;
    const int e = static_cast<int>(lin / kSubBuckets);
    const double sub = static_cast<double>(lin % kSubBuckets);
    return std::ldexp(1.0 + sub / kSubBuckets, e);
}

double
Histogram::bucketUpperBound(std::size_t index)
{
    if (index == 0)
        return 1.0;
    if (index >= kBuckets - 1)
        return 0x1p64;
    return bucketLowerBound(index + 1);
}

Histogram::Histogram()
    : sum_bits(doubleBits(0.0)),
      min_bits(doubleBits(std::numeric_limits<double>::infinity())),
      max_bits(doubleBits(-std::numeric_limits<double>::infinity())),
      buckets(std::make_unique<std::atomic<u64>[]>(kBuckets))
{
}

void
Histogram::record(double value)
{
    // Two atomic RMWs (bucket add, exact-sum CAS); min/max are a
    // relaxed load each unless the extreme actually moves. The total
    // count is not kept separately — it is the bucket sum, so count
    // and buckets can never disagree.
    buckets[bucketIndex(value)].fetch_add(1,
                                          std::memory_order_relaxed);
    atomicAddDouble(sum_bits, value);
    atomicExtremeDouble(min_bits, value,
                        [](double a, double b) { return a < b; });
    atomicExtremeDouble(max_bits, value,
                        [](double a, double b) { return a > b; });
}

u64
Histogram::count() const
{
    u64 total = 0;
    for (std::size_t i = 0; i < kBuckets; ++i)
        total += buckets[i].load(std::memory_order_relaxed);
    return total;
}

HistogramSnapshot
Histogram::snapshot() const
{
    HistogramSnapshot s;
    s.sum = bitsDouble(sum_bits.load(std::memory_order_relaxed));
    s.min = bitsDouble(min_bits.load(std::memory_order_relaxed));
    s.max = bitsDouble(max_bits.load(std::memory_order_relaxed));
    s.buckets.resize(kBuckets);
    for (std::size_t i = 0; i < kBuckets; ++i)
        s.buckets[i] = buckets[i].load(std::memory_order_relaxed);
    for (const u64 b : s.buckets)
        s.count += b;
    return s;
}

HistogramStats
Histogram::stats() const
{
    return snapshot().stats();
}

void
HistogramSnapshot::merge(const HistogramSnapshot &other)
{
    if (other.count == 0 && other.buckets.empty())
        return;
    if (count == 0) {
        min = other.min;
        max = other.max;
    } else if (other.count > 0) {
        min = std::min(min, other.min);
        max = std::max(max, other.max);
    }
    count += other.count;
    sum += other.sum;
    if (buckets.empty())
        buckets.resize(Histogram::kBuckets);
    for (std::size_t i = 0;
         i < buckets.size() && i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
}

HistogramSnapshot
HistogramSnapshot::deltaSince(const HistogramSnapshot &prev) const
{
    HistogramSnapshot d;
    d.count = count > prev.count ? count - prev.count : 0;
    d.sum = sum > prev.sum ? sum - prev.sum : 0.0;
    d.min = min;
    d.max = max;
    d.buckets.resize(buckets.size());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        const u64 before =
            i < prev.buckets.size() ? prev.buckets[i] : 0;
        d.buckets[i] =
            buckets[i] > before ? buckets[i] - before : 0;
    }
    return d;
}

HistogramStats
HistogramSnapshot::stats() const
{
    HistogramStats s;
    s.count = count;
    if (count == 0)
        return s;
    s.min = min;
    s.max = max;
    s.mean = sum / static_cast<double>(count);

    // Quantiles against the buckets' own total: a record() racing the
    // snapshot may make `count` and the bucket sum differ by a few,
    // but rank lookups stay internally consistent this way.
    u64 total = 0;
    for (const u64 b : buckets)
        total += b;
    if (total == 0) {
        s.p50 = s.p95 = s.p99 = s.max;
        return s;
    }
    const auto quantile = [&](double q) {
        const double rank =
            q * static_cast<double>(total - 1);
        u64 cum = 0;
        for (std::size_t i = 0; i < buckets.size(); ++i) {
            cum += buckets[i];
            if (static_cast<double>(cum) > rank) {
                const double mid =
                    (Histogram::bucketLowerBound(i) +
                     Histogram::bucketUpperBound(i)) /
                    2.0;
                return std::clamp(mid, min, max);
            }
        }
        return max;
    };
    s.p50 = quantile(0.50);
    s.p95 = quantile(0.95);
    s.p99 = quantile(0.99);
    return s;
}

RegistrySnapshot
deltaSnapshot(const RegistrySnapshot &prev,
              const RegistrySnapshot &now)
{
    RegistrySnapshot d;
    d.gauges = now.gauges;

    d.counters.reserve(now.counters.size());
    {
        auto p = prev.counters.begin();
        for (const auto &[name, value] : now.counters) {
            while (p != prev.counters.end() && p->first < name)
                ++p;
            const u64 before =
                (p != prev.counters.end() && p->first == name)
                    ? p->second
                    : 0;
            d.counters.emplace_back(
                name, value > before ? value - before : 0);
        }
    }

    d.histograms.reserve(now.histograms.size());
    {
        auto p = prev.histograms.begin();
        for (const auto &[name, snap] : now.histograms) {
            while (p != prev.histograms.end() && p->first < name)
                ++p;
            if (p != prev.histograms.end() && p->first == name)
                d.histograms.emplace_back(name,
                                          snap.deltaSince(p->second));
            else
                d.histograms.emplace_back(name, snap);
        }
    }
    return d;
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

bool
Registry::validName(const std::string &name)
{
    if (name.empty() || name.front() == '.' || name.back() == '.')
        return false;
    bool saw_dot = false;
    char prev = '.';
    for (char ch : name) {
        if (ch == '.') {
            if (prev == '.')
                return false;  // empty segment
            saw_dot = true;
        } else if (!((ch >= 'a' && ch <= 'z') ||
                     (ch >= '0' && ch <= '9') || ch == '_')) {
            return false;
        }
        prev = ch;
    }
    return saw_dot;
}

void
Registry::checkName(const std::string &name, const char *kind) const
{
    panicIf(!validName(name), "invalid metric name '", name,
            "' (want lowercase dotted segments, e.g. trace.cache.hits)");
    // A name belongs to exactly one metric kind.
    const bool clash =
        (kind != std::string("counter") &&
         counter_map.count(name) != 0) ||
        (kind != std::string("gauge") && gauge_map.count(name) != 0) ||
        (kind != std::string("histogram") &&
         histogram_map.count(name) != 0);
    panicIf(clash, "metric '", name, "' already registered as a ",
            "different kind than ", kind);
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = counter_map.find(name);
    if (it == counter_map.end()) {
        checkName(name, "counter");
        it = counter_map.emplace(name, std::make_unique<Counter>())
                 .first;
    }
    return *it->second;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = gauge_map.find(name);
    if (it == gauge_map.end()) {
        checkName(name, "gauge");
        it = gauge_map.emplace(name, std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> g(mutex);
    auto it = histogram_map.find(name);
    if (it == histogram_map.end()) {
        checkName(name, "histogram");
        it = histogram_map.emplace(name, std::make_unique<Histogram>())
                 .first;
    }
    return *it->second;
}

std::vector<std::pair<std::string, u64>>
Registry::counters() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, u64>> out;
    out.reserve(counter_map.size());
    for (const auto &[name, c] : counter_map)
        out.emplace_back(name, c->value());
    return out;
}

std::vector<std::pair<std::string, s64>>
Registry::gauges() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, s64>> out;
    out.reserve(gauge_map.size());
    for (const auto &[name, gauge] : gauge_map)
        out.emplace_back(name, gauge->value());
    return out;
}

std::vector<std::pair<std::string, HistogramStats>>
Registry::histograms() const
{
    std::lock_guard<std::mutex> g(mutex);
    std::vector<std::pair<std::string, HistogramStats>> out;
    out.reserve(histogram_map.size());
    for (const auto &[name, h] : histogram_map)
        out.emplace_back(name, h->stats());
    return out;
}

RegistrySnapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> g(mutex);
    RegistrySnapshot s;
    s.counters.reserve(counter_map.size());
    for (const auto &[name, c] : counter_map)
        s.counters.emplace_back(name, c->value());
    s.gauges.reserve(gauge_map.size());
    for (const auto &[name, gauge] : gauge_map)
        s.gauges.emplace_back(name, gauge->value());
    s.histograms.reserve(histogram_map.size());
    for (const auto &[name, h] : histogram_map)
        s.histograms.emplace_back(name, h->snapshot());
    return s;
}

std::string
metricSegment(const std::string &label)
{
    std::string out;
    out.reserve(label.size());
    for (char ch : label) {
        const unsigned char u = static_cast<unsigned char>(ch);
        if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
            ch == '_')
            out.push_back(ch);
        else if (ch >= 'A' && ch >= 'A' && ch <= 'Z')
            out.push_back(
                static_cast<char>(std::tolower(u)));
        else
            out.push_back('_');
    }
    if (out.empty())
        out = "_";
    return out;
}

} // namespace predbus::obs
