/**
 * @file
 * Shared helpers for the hand-written JSON emitters (reports, trace
 * export, serve stats). Kept tiny on purpose: escaping and number
 * formatting are the only two things every emitter must agree on so
 * that the in-tree checker (json_check.h) accepts all of them.
 */

#ifndef PREDBUS_OBS_JSON_UTIL_H
#define PREDBUS_OBS_JSON_UTIL_H

#include <cmath>
#include <cstdio>
#include <ostream>
#include <string>

namespace predbus::obs
{

/** Write @p s as a quoted, escaped JSON string. */
inline void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                const char *hex = "0123456789abcdef";
                os << "\\u00" << hex[(ch >> 4) & 0xf]
                   << hex[ch & 0xf];
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

/** Fixed-point JSON number (never exponent form, never NaN/Inf). */
inline void
jsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    os << buf;
}

} // namespace predbus::obs

#endif // PREDBUS_OBS_JSON_UTIL_H
