#include "obs/tracing.h"

#include <chrono>
#include <cstdio>
#include <ostream>

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace predbus::obs
{

u64
nowNs()
{
    using clock = std::chrono::steady_clock;
    // Anchor at first use so span timestamps are small and the Chrome
    // viewer's timeline starts near zero.
    static const clock::time_point anchor = clock::now();
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            clock::now() - anchor)
            .count());
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity(capacity) {}

TraceBuffer &
TraceBuffer::global()
{
    static TraceBuffer buffer;
    static const bool attached = [] {
        buffer.attachDropCounter(
            &Registry::global().counter("obs.trace.dropped"));
        return true;
    }();
    (void)attached;
    return buffer;
}

void
TraceBuffer::attachDropCounter(Counter *counter)
{
    drop_counter.store(counter, std::memory_order_relaxed);
}

void
TraceBuffer::setEnabled(bool enabled)
{
    on.store(enabled, std::memory_order_relaxed);
}

void
TraceBuffer::record(std::string name, u64 start_ns, u64 dur_ns)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> g(mutex);
    if (spans.size() >= capacity) {
        drops.fetch_add(1, std::memory_order_relaxed);
        if (Counter *c =
                drop_counter.load(std::memory_order_relaxed))
            c->inc();
        return;
    }
    SpanEvent ev;
    ev.name = std::move(name);
    ev.start_ns = start_ns;
    ev.dur_ns = dur_ns;
    ev.tid = tidOf(std::this_thread::get_id());
    spans.push_back(std::move(ev));
}

u32
TraceBuffer::tidOf(std::thread::id id)
{
    // Called with the buffer mutex held.
    const auto it = tids.find(id);
    if (it != tids.end())
        return it->second;
    const u32 tid = static_cast<u32>(tids.size());
    tids.emplace(id, tid);
    return tid;
}

std::size_t
TraceBuffer::size() const
{
    std::lock_guard<std::mutex> g(mutex);
    return spans.size();
}

u64
TraceBuffer::dropped() const
{
    return drops.load(std::memory_order_relaxed);
}

std::vector<SpanEvent>
TraceBuffer::events() const
{
    std::lock_guard<std::mutex> g(mutex);
    return spans;
}

void
TraceBuffer::clear()
{
    std::lock_guard<std::mutex> g(mutex);
    spans.clear();
    tids.clear();
    drops.store(0, std::memory_order_relaxed);
}

namespace
{

/** Microseconds with sub-ns-safe fixed formatting ("12.345"). */
void
writeMicros(std::ostream &os, u64 ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned long long>(ns % 1000));
    os << buf;
}

} // namespace

void
TraceBuffer::writeChromeJson(std::ostream &os) const
{
    std::vector<SpanEvent> snapshot = events();
    os << "{\n  \"displayTimeUnit\": \"ms\",\n"
          "  \"droppedSpans\": "
       << dropped() << ",\n  \"traceEvents\": [\n";
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
        const SpanEvent &ev = snapshot[i];
        os << "    {\"name\": ";
        jsonEscape(os, ev.name);
        os << ", \"cat\": \"predbus\", \"ph\": \"X\", \"pid\": 1, "
              "\"tid\": "
           << ev.tid << ", \"ts\": ";
        writeMicros(os, ev.start_ns);
        os << ", \"dur\": ";
        writeMicros(os, ev.dur_ns);
        os << '}' << (i + 1 < snapshot.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

ScopedTimer::ScopedTimer(std::string name, TraceBuffer *buffer,
                         Histogram *histogram)
    : name(std::move(name)),
      buffer(buffer ? buffer : &TraceBuffer::global()),
      histogram(histogram)
{
    active = this->buffer->enabled() || this->histogram;
    if (active)
        start = nowNs();
}

ScopedTimer::~ScopedTimer()
{
    if (!active)
        return;
    const u64 dur = nowNs() - start;
    if (histogram)
        histogram->record(static_cast<double>(dur));
    buffer->record(std::move(name), start, dur);
}

u64
ScopedTimer::elapsedNs() const
{
    return active ? nowNs() - start : 0;
}

} // namespace predbus::obs
