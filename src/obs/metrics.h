/**
 * @file
 * Metrics registry: named, thread-safe counters / gauges / histograms
 * with hierarchical dotted names ("trace.cache.hits",
 * "runner.cell_ns"). Increments on the hot path are single relaxed
 * atomic adds; name resolution is a mutex-protected map lookup meant
 * to happen once (cache the returned reference).
 *
 * There is one process-wide default registry (Registry::global()) that
 * the instrumented layers publish into, plus freely constructible
 * instances for tests. Registered objects live as long as the registry
 * and their addresses are stable, so references may be kept at file
 * scope:
 *
 *   namespace { auto &hits =
 *       obs::Registry::global().counter("trace.cache.hits"); }
 *
 * File-scope references double as pre-registration: the name appears
 * in every metrics report (value 0) even if the event never fires,
 * which keeps report *structure* independent of the run.
 *
 * Naming convention (enforced — invalid names panic): two or more
 * lowercase [a-z0-9_] segments joined by dots, `<subsystem>.<topic>`
 * or `<subsystem>.<object>.<event>`. Histogram names carry their unit
 * as a suffix ("_ns", "_bytes"). tools/check_metrics_names.sh lints
 * the convention and docs/OBSERVABILITY.md registers every name.
 *
 * Everything here is readable *live*: Registry::snapshot() takes a
 * point-in-time copy of every metric while writers keep writing
 * (lock-free value reads; the only lock is the name map, which
 * writers on the hot path never touch), so a long-lived daemon can be
 * scraped at any moment, not just at exit.
 */

#ifndef PREDBUS_OBS_METRICS_H
#define PREDBUS_OBS_METRICS_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace predbus::obs
{

/** Monotonic event count. Increment cost: one relaxed atomic add. */
class Counter
{
  public:
    void
    inc(u64 n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    u64 value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> v{0};
};

/** Last-written value (job counts, sizes). */
class Gauge
{
  public:
    void set(s64 value) { v.store(value, std::memory_order_relaxed); }

    void
    add(s64 delta)
    {
        v.fetch_add(delta, std::memory_order_relaxed);
    }

    s64 value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<s64> v{0};
};

/** Summary of a histogram's samples. Count, sum-derived mean, and
 * min/max are exact; percentiles are read off the log-bucket
 * boundaries (≤ ±1.6% relative — see Histogram). */
struct HistogramStats
{
    u64 count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Point-in-time copy of one histogram: exact count/sum/min/max plus
 * the full bucket array. Snapshots are plain values — merge them
 * across registries (merge is associative and commutative), subtract
 * consecutive ones for interval views (deltaSince), and derive
 * quantiles at any time with stats(). Taken while writers are
 * recording, a snapshot is a consistent *sample*: every bucket value
 * is a real count that was current at some instant during the copy,
 * and quantiles are computed against the buckets' own total so a
 * record() racing the copy can never misplace a percentile.
 */
struct HistogramSnapshot
{
    u64 count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< meaningless when count == 0
    double max = 0.0;
    std::vector<u64> buckets;  ///< Histogram::kBuckets entries

    /** Fold @p other in: buckets/count/sum add, min/max widen. */
    void merge(const HistogramSnapshot &other);

    /**
     * Buckets/count/sum since @p prev (clamped at zero if @p prev is
     * not actually older). min/max cannot be deltaed and keep this
     * snapshot's lifetime values.
     */
    HistogramSnapshot deltaSince(const HistogramSnapshot &prev) const;

    /** Summary statistics (quantiles from the buckets). */
    HistogramStats stats() const;
};

/**
 * Sample distribution (timings, sizes) in fixed memory, safe for hot
 * paths and long-lived daemons. record() is lock-free and wait-free
 * on the bucket path: one relaxed atomic add into a log-scaled bucket
 * plus CAS loops for the exact sum/min/max — no mutex, no allocation,
 * no unbounded growth (the old implementation kept every raw sample
 * under a mutex and could not be read while a run was in flight).
 *
 * Bucketing: values in [1, 2^64) land in 64 octaves × kSubBuckets
 * linear sub-buckets each (sub-bucket = the mantissa's top kSubBits
 * bits), so the relative bucket width is 2^-kSubBits ≈ 3.1% and any
 * quantile read off a bucket midpoint is within ±1.6% of the true
 * order statistic. Values below 1 (including ≤ 0) share bucket 0;
 * values ≥ 2^64 clamp into the top bucket. Memory: kBuckets
 * (= 2049) × 8 bytes ≈ 16 KiB per histogram, forever.
 */
class Histogram
{
  public:
    static constexpr unsigned kSubBits = 5;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    static constexpr unsigned kOctaves = 64;
    static constexpr std::size_t kBuckets =
        1 + std::size_t{kOctaves} * kSubBuckets;

    /** Bucket index for @p value (total order, clamped at both ends). */
    static std::size_t bucketIndex(double value);

    /** Inclusive lower bound of bucket @p index (0 for bucket 0). */
    static double bucketLowerBound(std::size_t index);

    /** Exclusive upper bound of bucket @p index. */
    static double bucketUpperBound(std::size_t index);

    Histogram();

    /** Lock-free; safe from any number of threads concurrently. */
    void record(double value);

    /** Exact total samples (the bucket sum — no separate counter). */
    u64 count() const;

    /** Point-in-time copy; safe concurrently with record(). */
    HistogramSnapshot snapshot() const;

    /** Summary statistics (= snapshot().stats()). */
    HistogramStats stats() const;

  private:
    std::atomic<u64> sum_bits;  ///< double bits, CAS-added
    std::atomic<u64> min_bits;  ///< double bits, CAS-min
    std::atomic<u64> max_bits;  ///< double bits, CAS-max
    std::unique_ptr<std::atomic<u64>[]> buckets;
};

/**
 * Point-in-time copy of a whole registry, sorted by name. Take one at
 * any moment (writers are never blocked), diff two for an interval
 * view, serialize for a scrape.
 */
struct RegistrySnapshot
{
    std::vector<std::pair<std::string, u64>> counters;
    std::vector<std::pair<std::string, s64>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

/**
 * What happened between two snapshots: counters and histogram
 * buckets/counts/sums are subtracted (names missing from @p prev keep
 * their full value; values that shrank clamp at zero), gauges carry
 * @p now's current value (a gauge has no meaningful delta).
 */
RegistrySnapshot deltaSnapshot(const RegistrySnapshot &prev,
                               const RegistrySnapshot &now);

/**
 * Named metric container. Thread-safe; metric objects have stable
 * addresses for the registry's lifetime. A name identifies exactly one
 * kind — asking for an existing name as a different kind panics.
 */
class Registry
{
  public:
    /** The process-wide default registry. */
    static Registry &global();

    /** True iff @p name follows the dotted-name convention. */
    static bool validName(const std::string &name);

    /** Find-or-create. Panics on invalid names or kind conflicts. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Sorted-by-name snapshots for report emission. */
    std::vector<std::pair<std::string, u64>> counters() const;
    std::vector<std::pair<std::string, s64>> gauges() const;
    std::vector<std::pair<std::string, HistogramStats>>
    histograms() const;

    /** Copy every metric at this instant; writers are not blocked. */
    RegistrySnapshot snapshot() const;

  private:
    void checkName(const std::string &name, const char *kind) const;

    mutable std::mutex mutex;
    // std::map: stable node addresses across inserts.
    std::map<std::string, std::unique_ptr<Counter>> counter_map;
    std::map<std::string, std::unique_ptr<Gauge>> gauge_map;
    std::map<std::string, std::unique_ptr<Histogram>> histogram_map;
};

/**
 * Make an arbitrary label (a codec name, a workload) usable as one
 * metric-name segment: lowercased, every other character mapped to
 * '_'. Never empty ("_" for an empty input).
 */
std::string metricSegment(const std::string &label);

} // namespace predbus::obs

#endif // PREDBUS_OBS_METRICS_H
