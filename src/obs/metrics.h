/**
 * @file
 * Metrics registry: named, thread-safe counters / gauges / histograms
 * with hierarchical dotted names ("trace.cache.hits",
 * "runner.cell_ns"). Increments on the hot path are single relaxed
 * atomic adds; name resolution is a mutex-protected map lookup meant
 * to happen once (cache the returned reference).
 *
 * There is one process-wide default registry (Registry::global()) that
 * the instrumented layers publish into, plus freely constructible
 * instances for tests. Registered objects live as long as the registry
 * and their addresses are stable, so references may be kept at file
 * scope:
 *
 *   namespace { auto &hits =
 *       obs::Registry::global().counter("trace.cache.hits"); }
 *
 * File-scope references double as pre-registration: the name appears
 * in every metrics report (value 0) even if the event never fires,
 * which keeps report *structure* independent of the run.
 *
 * Naming convention (enforced — invalid names panic): two or more
 * lowercase [a-z0-9_] segments joined by dots, `<subsystem>.<topic>`
 * or `<subsystem>.<object>.<event>`. Histogram names carry their unit
 * as a suffix ("_ns", "_bytes"). tools/check_metrics_names.sh lints
 * the convention and docs/OBSERVABILITY.md registers every name.
 */

#ifndef PREDBUS_OBS_METRICS_H
#define PREDBUS_OBS_METRICS_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace predbus::obs
{

/** Monotonic event count. Increment cost: one relaxed atomic add. */
class Counter
{
  public:
    void
    inc(u64 n = 1)
    {
        v.fetch_add(n, std::memory_order_relaxed);
    }

    u64 value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<u64> v{0};
};

/** Last-written value (job counts, sizes). */
class Gauge
{
  public:
    void set(s64 value) { v.store(value, std::memory_order_relaxed); }

    void
    add(s64 delta)
    {
        v.fetch_add(delta, std::memory_order_relaxed);
    }

    s64 value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<s64> v{0};
};

/** Summary of a histogram's samples (percentiles interpolated). */
struct HistogramStats
{
    u64 count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/**
 * Sample distribution (timings, sizes). record() takes a mutex — fine
 * for per-cell / per-run events, not for per-word hot loops (use a
 * Counter there). Raw samples are retained up to kMaxSamples so
 * percentiles are exact for any realistic grid; count/min/max/mean
 * stay exact beyond that.
 */
class Histogram
{
  public:
    static constexpr std::size_t kMaxSamples = 1u << 20;

    void record(double value);

    u64 count() const;

    /** Consistent snapshot of all summary statistics. */
    HistogramStats stats() const;

  private:
    mutable std::mutex mutex;
    std::vector<double> samples;
    u64 n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Named metric container. Thread-safe; metric objects have stable
 * addresses for the registry's lifetime. A name identifies exactly one
 * kind — asking for an existing name as a different kind panics.
 */
class Registry
{
  public:
    /** The process-wide default registry. */
    static Registry &global();

    /** True iff @p name follows the dotted-name convention. */
    static bool validName(const std::string &name);

    /** Find-or-create. Panics on invalid names or kind conflicts. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Sorted-by-name snapshots for report emission. */
    std::vector<std::pair<std::string, u64>> counters() const;
    std::vector<std::pair<std::string, s64>> gauges() const;
    std::vector<std::pair<std::string, HistogramStats>>
    histograms() const;

  private:
    void checkName(const std::string &name, const char *kind) const;

    mutable std::mutex mutex;
    // std::map: stable node addresses across inserts.
    std::map<std::string, std::unique_ptr<Counter>> counter_map;
    std::map<std::string, std::unique_ptr<Gauge>> gauge_map;
    std::map<std::string, std::unique_ptr<Histogram>> histogram_map;
};

/**
 * Make an arbitrary label (a codec name, a workload) usable as one
 * metric-name segment: lowercased, every other character mapped to
 * '_'. Never empty ("_" for an empty input).
 */
std::string metricSegment(const std::string &label);

} // namespace predbus::obs

#endif // PREDBUS_OBS_METRICS_H
