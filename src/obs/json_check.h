/**
 * @file
 * Minimal JSON syntax checker for the observability artifacts. The
 * emitters hand-write JSON (no third-party dependency), so the tests
 * and tools need an in-tree way to assert the output actually parses.
 * Validation only — no DOM is built.
 */

#ifndef PREDBUS_OBS_JSON_CHECK_H
#define PREDBUS_OBS_JSON_CHECK_H

#include <optional>
#include <string>
#include <vector>

namespace predbus::obs
{

/**
 * Parse @p text as one JSON value (RFC 8259 syntax, nesting capped at
 * 64). Returns std::nullopt when valid, otherwise a message with the
 * character offset of the first error.
 */
std::optional<std::string> jsonSyntaxError(const std::string &text);

/** One scalar leaf of a JSON document. */
struct JsonScalar
{
    std::string path;   ///< dotted keys, array elements by index
    std::string value;  ///< strings unescaped; numbers/bools/null raw
};

/**
 * Validate @p text exactly like jsonSyntaxError and, when valid, fill
 * @p out with every scalar leaf in document order keyed by its dotted
 * path ("gauges.serve.sessions", "events.3.type"). Enough structure
 * for table rendering without building a DOM.
 */
std::optional<std::string> jsonFlatten(const std::string &text,
                                       std::vector<JsonScalar> &out);

} // namespace predbus::obs

#endif // PREDBUS_OBS_JSON_CHECK_H
