/**
 * @file
 * Minimal JSON syntax checker for the observability artifacts. The
 * emitters hand-write JSON (no third-party dependency), so the tests
 * and tools need an in-tree way to assert the output actually parses.
 * Validation only — no DOM is built.
 */

#ifndef PREDBUS_OBS_JSON_CHECK_H
#define PREDBUS_OBS_JSON_CHECK_H

#include <optional>
#include <string>

namespace predbus::obs
{

/**
 * Parse @p text as one JSON value (RFC 8259 syntax, nesting capped at
 * 64). Returns std::nullopt when valid, otherwise a message with the
 * character offset of the first error.
 */
std::optional<std::string> jsonSyntaxError(const std::string &text);

} // namespace predbus::obs

#endif // PREDBUS_OBS_JSON_CHECK_H
