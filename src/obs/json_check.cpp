#include "obs/json_check.h"

#include <cctype>

namespace predbus::obs
{

namespace
{

constexpr int kMaxDepth = 64;

class Checker
{
  public:
    explicit Checker(const std::string &text) : s(text) {}

    std::optional<std::string>
    check()
    {
        skipWs();
        if (!value(0))
            return fail();
        skipWs();
        if (pos != s.size())
            error = "trailing characters";
        return error.empty()
                   ? std::nullopt
                   : std::optional<std::string>(fail());
    }

  private:
    std::string
    fail() const
    {
        return error + " at offset " + std::to_string(pos);
    }

    bool
    setError(const char *message)
    {
        if (error.empty())
            error = message;
        return false;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i]) {
            if (pos + i >= s.size() || s[pos + i] != word[i])
                return setError("bad literal");
            ++i;
        }
        pos += i;
        return true;
    }

    bool
    string()
    {
        if (peek() != '"')
            return setError("expected string");
        ++pos;
        while (pos < s.size()) {
            const unsigned char ch =
                static_cast<unsigned char>(s[pos]);
            if (ch == '"') {
                ++pos;
                return true;
            }
            if (ch < 0x20)
                return setError("control character in string");
            if (ch == '\\') {
                ++pos;
                const char esc = peek();
                if (esc == 'u') {
                    ++pos;
                    for (int i = 0; i < 4; ++i, ++pos)
                        if (!std::isxdigit(static_cast<unsigned char>(
                                peek())))
                            return setError("bad \\u escape");
                    continue;
                }
                if (esc != '"' && esc != '\\' && esc != '/' &&
                    esc != 'b' && esc != 'f' && esc != 'n' &&
                    esc != 'r' && esc != 't')
                    return setError("bad escape");
                ++pos;
                continue;
            }
            ++pos;
        }
        return setError("unterminated string");
    }

    bool
    number()
    {
        if (peek() == '-')
            ++pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return setError("bad number");
        if (peek() == '0') {
            ++pos;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == '.') {
            ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return setError("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return setError("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    bool
    value(int depth)
    {
        if (depth > kMaxDepth)
            return setError("nesting too deep");
        switch (peek()) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return setError("expected ':'");
            ++pos;
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return setError("expected ',' or '}'");
        }
    }

    bool
    array(int depth)
    {
        ++pos;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return setError("expected ',' or ']'");
        }
    }

    const std::string &s;
    std::size_t pos = 0;
    std::string error;
};

} // namespace

std::optional<std::string>
jsonSyntaxError(const std::string &text)
{
    return Checker(text).check();
}

} // namespace predbus::obs
