#include "obs/json_check.h"

#include <cctype>

namespace predbus::obs
{

namespace
{

constexpr int kMaxDepth = 64;

class Checker
{
  public:
    explicit Checker(const std::string &text,
                     std::vector<JsonScalar> *out = nullptr)
        : s(text), out(out)
    {
    }

    std::optional<std::string>
    check()
    {
        skipWs();
        if (!value(0))
            return fail();
        skipWs();
        if (pos != s.size())
            error = "trailing characters";
        return error.empty()
                   ? std::nullopt
                   : std::optional<std::string>(fail());
    }

  private:
    std::string
    fail() const
    {
        return error + " at offset " + std::to_string(pos);
    }

    bool
    setError(const char *message)
    {
        if (error.empty())
            error = message;
        return false;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i]) {
            if (pos + i >= s.size() || s[pos + i] != word[i])
                return setError("bad literal");
            ++i;
        }
        pos += i;
        return true;
    }

    bool
    string(std::string *decoded = nullptr)
    {
        if (peek() != '"')
            return setError("expected string");
        ++pos;
        while (pos < s.size()) {
            const unsigned char ch =
                static_cast<unsigned char>(s[pos]);
            if (ch == '"') {
                ++pos;
                return true;
            }
            if (ch < 0x20)
                return setError("control character in string");
            if (ch == '\\') {
                ++pos;
                const char esc = peek();
                if (esc == 'u') {
                    ++pos;
                    for (int i = 0; i < 4; ++i, ++pos)
                        if (!std::isxdigit(static_cast<unsigned char>(
                                peek())))
                            return setError("bad \\u escape");
                    if (decoded) {
                        // Keep \uXXXX verbatim; good enough for
                        // path/label rendering.
                        decoded->append(s, pos - 6, 6);
                    }
                    continue;
                }
                if (esc != '"' && esc != '\\' && esc != '/' &&
                    esc != 'b' && esc != 'f' && esc != 'n' &&
                    esc != 'r' && esc != 't')
                    return setError("bad escape");
                if (decoded) {
                    switch (esc) {
                      case 'b': decoded->push_back('\b'); break;
                      case 'f': decoded->push_back('\f'); break;
                      case 'n': decoded->push_back('\n'); break;
                      case 'r': decoded->push_back('\r'); break;
                      case 't': decoded->push_back('\t'); break;
                      default: decoded->push_back(esc);
                    }
                }
                ++pos;
                continue;
            }
            if (decoded)
                decoded->push_back(static_cast<char>(ch));
            ++pos;
        }
        return setError("unterminated string");
    }

    bool
    number()
    {
        if (peek() == '-')
            ++pos;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return setError("bad number");
        if (peek() == '0') {
            ++pos;
        } else {
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == '.') {
            ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return setError("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos;
            if (peek() == '+' || peek() == '-')
                ++pos;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return setError("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos;
        }
        return true;
    }

    /** Emit a scalar leaf at the current path (flatten mode only). */
    void
    emit(std::string value_text)
    {
        if (!out)
            return;
        std::string joined;
        for (std::size_t i = 0; i < path.size(); ++i) {
            if (i)
                joined.push_back('.');
            joined += path[i];
        }
        out->push_back({std::move(joined), std::move(value_text)});
    }

    bool
    value(int depth)
    {
        if (depth > kMaxDepth)
            return setError("nesting too deep");
        switch (peek()) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': {
            std::string decoded;
            if (!string(out ? &decoded : nullptr))
                return false;
            emit(std::move(decoded));
            return true;
          }
          case 't':
          case 'f':
          case 'n': {
            const char *word = peek() == 't'   ? "true"
                               : peek() == 'f' ? "false"
                                               : "null";
            if (!literal(word))
                return false;
            emit(word);
            return true;
          }
          default: {
            const std::size_t start = pos;
            if (!number())
                return false;
            emit(s.substr(start, pos - start));
            return true;
          }
        }
    }

    bool
    object(int depth)
    {
        ++pos;  // '{'
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(out ? &key : nullptr))
                return false;
            if (out)
                path.push_back(std::move(key));
            skipWs();
            if (peek() != ':')
                return setError("expected ':'");
            ++pos;
            skipWs();
            if (!value(depth + 1))
                return false;
            if (out)
                path.pop_back();
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return setError("expected ',' or '}'");
        }
    }

    bool
    array(int depth)
    {
        ++pos;  // '['
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (std::size_t index = 0;; ++index) {
            skipWs();
            if (out)
                path.push_back(std::to_string(index));
            if (!value(depth + 1))
                return false;
            if (out)
                path.pop_back();
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return setError("expected ',' or ']'");
        }
    }

    const std::string &s;
    std::vector<JsonScalar> *out = nullptr;
    std::vector<std::string> path;
    std::size_t pos = 0;
    std::string error;
};

} // namespace

std::optional<std::string>
jsonSyntaxError(const std::string &text)
{
    return Checker(text).check();
}

std::optional<std::string>
jsonFlatten(const std::string &text, std::vector<JsonScalar> &out)
{
    out.clear();
    auto err = Checker(text, &out).check();
    if (err)
        out.clear();
    return err;
}

} // namespace predbus::obs
