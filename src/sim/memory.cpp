#include "sim/memory.h"

#include <cstring>

namespace predbus::sim
{

const Memory::Page *
Memory::findPage(Addr addr) const
{
    const auto it = pages.find(addr >> kPageBits);
    return (it == pages.end()) ? nullptr : it->second.get();
}

Memory::Page &
Memory::touchPage(Addr addr)
{
    auto &slot = pages[addr >> kPageBits];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

u8
Memory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

u16
Memory::read16(Addr addr) const
{
    // Fast path: fully inside one page and aligned.
    const Addr off = addr & (kPageSize - 1);
    if (const Page *page = findPage(addr); page && off + 2 <= kPageSize) {
        u16 v;
        std::memcpy(&v, page->data() + off, 2);
        return v;
    }
    return static_cast<u16>(read8(addr)) |
           (static_cast<u16>(read8(addr + 1)) << 8);
}

u32
Memory::read32(Addr addr) const
{
    const Addr off = addr & (kPageSize - 1);
    if (const Page *page = findPage(addr); page && off + 4 <= kPageSize) {
        u32 v;
        std::memcpy(&v, page->data() + off, 4);
        return v;
    }
    u32 v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | read8(addr + static_cast<Addr>(i));
    return v;
}

u64
Memory::read64(Addr addr) const
{
    return static_cast<u64>(read32(addr)) |
           (static_cast<u64>(read32(addr + 4)) << 32);
}

double
Memory::readDouble(Addr addr) const
{
    const u64 raw = read64(addr);
    double d;
    std::memcpy(&d, &raw, 8);
    return d;
}

void
Memory::write8(Addr addr, u8 value)
{
    touchPage(addr)[addr & (kPageSize - 1)] = value;
}

void
Memory::write16(Addr addr, u16 value)
{
    const Addr off = addr & (kPageSize - 1);
    if (off + 2 <= kPageSize) {
        std::memcpy(touchPage(addr).data() + off, &value, 2);
        return;
    }
    write8(addr, static_cast<u8>(value));
    write8(addr + 1, static_cast<u8>(value >> 8));
}

void
Memory::write32(Addr addr, u32 value)
{
    const Addr off = addr & (kPageSize - 1);
    if (off + 4 <= kPageSize) {
        std::memcpy(touchPage(addr).data() + off, &value, 4);
        return;
    }
    for (int i = 0; i < 4; ++i)
        write8(addr + static_cast<Addr>(i),
               static_cast<u8>(value >> (8 * i)));
}

void
Memory::write64(Addr addr, u64 value)
{
    write32(addr, static_cast<u32>(value));
    write32(addr + 4, static_cast<u32>(value >> 32));
}

void
Memory::writeDouble(Addr addr, double value)
{
    u64 raw;
    std::memcpy(&raw, &value, 8);
    write64(addr, raw);
}

void
Memory::load(const isa::Program &program)
{
    Addr pc = program.code_base;
    for (u32 word : program.code) {
        write32(pc, word);
        pc += 4;
    }
    for (const isa::Segment &seg : program.data) {
        Addr addr = seg.base;
        for (u8 byte : seg.bytes)
            write8(addr++, byte);
    }
}

} // namespace predbus::sim
