/**
 * @file
 * The out-of-order superscalar machine (SimpleScalar sim-outorder
 * style) with the paper's two bus timing generators.
 *
 * Pipeline model:
 *  - fetch: along the predicted path from the I-cache into the IFQ;
 *  - dispatch: in program order; instructions execute *functionally*
 *    here (correct path only), allocate RUU/LSQ entries, and resolve
 *    branch predictions (mispredictions flush the IFQ and stall fetch
 *    until the branch's writeback plus a redirect penalty);
 *  - issue: oldest-first from the RUU when operands and a functional
 *    unit are available; loads access the D-cache or forward from an
 *    older in-flight store;
 *  - writeback: completion wakes dependents;
 *  - commit: in order; stores perform their D-cache write here.
 *
 * Bus timing generators (paper §4.1):
 *  - register bus: the first integer operand value read by the first
 *    instruction issued each cycle (one register-file output port);
 *  - memory bus: load data is posted at issue + access latency; store
 *    data at commit + access latency; doubles take two beats.
 */

#ifndef PREDBUS_SIM_MACHINE_H
#define PREDBUS_SIM_MACHINE_H

#include <deque>
#include <memory>
#include <vector>

#include "common/types.h"
#include "isa/program.h"
#include "sim/bpred.h"
#include "sim/cache.h"
#include "sim/functional.h"
#include "sim/memory.h"
#include "trace/trace.h"

namespace predbus::sim
{

/** Machine configuration (SimpleScalar-like defaults). */
struct SimConfig
{
    u32 fetch_width = 4;
    u32 decode_width = 4;
    u32 issue_width = 4;
    u32 commit_width = 4;
    u32 ifq_size = 16;
    u32 ruu_size = 64;
    u32 lsq_size = 32;

    u32 int_alus = 4;
    u32 int_mult_divs = 1;
    u32 fp_alus = 2;
    u32 fp_mult_divs = 1;
    u32 mem_ports = 2;

    /** Extra redirect cycles after a mispredicted branch resolves. */
    u32 mispredict_penalty = 2;

    /**
     * Where the register-bus timing generator samples its port:
     * at dispatch (program order — where sim-outorder reads
     * operands, the default) or at issue (out-of-order).
     */
    bool reg_bus_at_issue = false;

    u32 memory_latency = 80;
    bool use_l2 = true;
    CacheConfig il1{"il1", 16 * 1024, 32, 1, 1};
    CacheConfig dl1{"dl1", 16 * 1024, 32, 4, 1};
    CacheConfig l2{"ul2", 256 * 1024, 64, 4, 6};
    BpredConfig bpred;
};

/** Aggregate run statistics. */
struct SimStats
{
    u64 cycles = 0;
    u64 instructions = 0;
    u64 branches = 0;
    u64 mispredicts = 0;
    u64 loads = 0;
    u64 stores = 0;
    CacheStats il1, dl1, l2;
    BpredStats bpred;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Everything a run produces. */
struct RunResult
{
    SimStats stats;
    std::vector<u32> output;        ///< OUT values, program order
    trace::ValueTrace reg_bus;      ///< register-file output port
    trace::ValueTrace mem_bus;      ///< data bus to caches/memory
    trace::ValueTrace addr_bus;     ///< address bus (extension)
    trace::ValueTrace wb_bus;       ///< result/writeback bus (extension)
    bool halted = false;            ///< guest executed HALT
};

/** A loaded machine ready to run one program. */
class Machine
{
  public:
    explicit Machine(const isa::Program &program,
                     const SimConfig &config = SimConfig{});
    ~Machine();

    Machine(const Machine &) = delete;
    Machine &operator=(const Machine &) = delete;

    /**
     * Simulate until the guest halts, the pipeline drains, or
     * @p max_cycles elapse. Returns the collected result.
     */
    RunResult run(u64 max_cycles);

    /** Architectural state access (for tests). */
    ArchState &arch() { return *arch_state; }
    Memory &memory() { return mem; }

  private:
    struct RuuEntry;
    struct IfqEntry;

    void doCommit();
    void doWriteback();
    void doIssue();
    void doDispatch();
    void doFetch();

    bool depsReady(const RuuEntry &entry) const;
    bool olderStoreBlocks(std::size_t index, bool &forward) const;

    SimConfig cfg;
    Memory mem;
    std::unique_ptr<ArchState> arch_state;
    std::unique_ptr<Cache> l2_cache;   ///< may be null
    std::unique_ptr<Cache> il1_cache;
    std::unique_ptr<Cache> dl1_cache;
    std::unique_ptr<Bpred> bpred;

    // Pipeline state.
    Cycle cycle = 0;
    u64 next_seq = 0;
    u64 head_seq = 0;
    std::deque<RuuEntry> ruu;
    std::deque<IfqEntry> ifq;
    u32 lsq_count = 0;
    Addr fetch_pc = 0;
    Cycle fetch_avail_cycle = 0;
    static constexpr u64 kNoSeq = ~u64{0};
    u64 blocked_branch_seq = kNoSeq;
    bool dispatch_halted = false;

    /** Seq of the most recent in-flight writer per register. */
    u64 last_int_writer[isa::kNumIntRegs];
    u64 last_fp_writer[isa::kNumFpRegs];

    // Per-cycle resource counters.
    u32 mem_ports_used = 0;
    u32 alu_used = 0;
    u32 muldiv_used = 0;
    u32 fpalu_used = 0;
    u32 fpmuldiv_used = 0;
    u32 issued_this_cycle = 0;
    bool reg_bus_posted = false;

    // Results under construction.
    SimStats stat;
    trace::ValueTrace reg_bus;
    trace::ValueTrace mem_bus;
    trace::ValueTrace addr_bus;
    trace::ValueTrace wb_bus;
};

} // namespace predbus::sim

#endif // PREDBUS_SIM_MACHINE_H
