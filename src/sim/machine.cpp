#include "sim/machine.h"

#include <string>

#include "common/log.h"
#include "obs/metrics.h"

namespace predbus::sim
{

using isa::FuClass;
using isa::Opcode;

/** One in-flight instruction in the register update unit. */
struct Machine::RuuEntry
{
    ExecInfo info;
    u64 seq = 0;
    u64 deps[3] = {kNoSeq, kNoSeq, kNoSeq};
    unsigned ndeps = 0;
    bool issued = false;
    bool completed = false;
    Cycle complete_cycle = 0;
    u8 mem_size = 0;       ///< bytes touched (loads/stores)
};

/** One fetched (possibly wrong-path) instruction awaiting dispatch. */
struct Machine::IfqEntry
{
    Addr pc = 0;
    isa::Instruction inst;
    Addr predicted_next = 0;
};

namespace
{

u8
memSize(Opcode op)
{
    switch (op) {
      case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
      case Opcode::LH: case Opcode::LHU: case Opcode::SH: return 2;
      case Opcode::LW: case Opcode::SW: return 4;
      case Opcode::FLD: case Opcode::FSD: return 8;
      default: return 0;
    }
}

/** Export one run's SimStats into the process metrics registry, so a
 * metrics report records how much simulation backed the traces. */
void
publishSimStats(const SimStats &stats)
{
    auto &reg = obs::Registry::global();
    reg.counter("sim.machine.runs").inc();
    reg.counter("sim.machine.cycles").inc(stats.cycles);
    reg.counter("sim.machine.instructions").inc(stats.instructions);
    reg.counter("sim.machine.branches").inc(stats.branches);
    reg.counter("sim.machine.mispredicts").inc(stats.mispredicts);
    reg.counter("sim.machine.loads").inc(stats.loads);
    reg.counter("sim.machine.stores").inc(stats.stores);
    const struct
    {
        const char *name;
        const CacheStats &cache;
    } caches[] = {
        {"il1", stats.il1}, {"dl1", stats.dl1}, {"l2", stats.l2}};
    for (const auto &[name, cache] : caches) {
        const std::string base = std::string("sim.cache.") + name;
        reg.counter(base + ".accesses").inc(cache.accesses);
        reg.counter(base + ".misses").inc(cache.misses);
        reg.counter(base + ".writebacks").inc(cache.writebacks);
    }
    reg.counter("sim.bpred.lookups").inc(stats.bpred.lookups);
    reg.counter("sim.bpred.dir_hits").inc(stats.bpred.dir_hits);
    reg.counter("sim.bpred.target_hits").inc(stats.bpred.target_hits);
}

} // namespace

Machine::Machine(const isa::Program &program, const SimConfig &config)
    : cfg(config)
{
    mem.load(program);
    arch_state = std::make_unique<ArchState>(mem);
    arch_state->pc = program.entry;
    fetch_pc = program.entry;

    if (cfg.use_l2)
        l2_cache =
            std::make_unique<Cache>(cfg.l2, nullptr, cfg.memory_latency);
    il1_cache = std::make_unique<Cache>(cfg.il1, l2_cache.get(),
                                        cfg.memory_latency);
    dl1_cache = std::make_unique<Cache>(cfg.dl1, l2_cache.get(),
                                        cfg.memory_latency);
    bpred = std::make_unique<Bpred>(cfg.bpred);

    for (u64 &w : last_int_writer)
        w = kNoSeq;
    for (u64 &w : last_fp_writer)
        w = kNoSeq;
}

Machine::~Machine() = default;

bool
Machine::depsReady(const RuuEntry &entry) const
{
    for (unsigned i = 0; i < entry.ndeps; ++i) {
        const u64 dep = entry.deps[i];
        if (dep < head_seq)
            continue;  // producer already committed
        if (dep >= head_seq + ruu.size())
            continue;  // defensive; should not happen
        const RuuEntry &producer =
            ruu[static_cast<std::size_t>(dep - head_seq)];
        if (!producer.completed)
            return false;
    }
    return true;
}

/**
 * Memory-dependence check for the load at RUU position @p index.
 * Returns true when an older store blocks issue. Sets @p forward when
 * the youngest conflicting store fully covers the load and has issued
 * (store-to-load forwarding, 1-cycle latency).
 */
bool
Machine::olderStoreBlocks(std::size_t index, bool &forward) const
{
    forward = false;
    const RuuEntry &load = ruu[index];
    const Addr lo = load.info.mem_addr;
    const Addr hi = lo + load.mem_size;
    for (std::size_t i = index; i-- > 0;) {
        const RuuEntry &older = ruu[i];
        if (!opInfo(older.info.inst.op).is_store)
            continue;
        const Addr s_lo = older.info.mem_addr;
        const Addr s_hi = s_lo + older.mem_size;
        const bool overlap = (lo < s_hi) && (s_lo < hi);
        if (!overlap)
            continue;
        const bool covers = (s_lo <= lo) && (hi <= s_hi);
        if (covers && older.issued) {
            forward = true;
            return false;
        }
        return true;  // partial overlap or store not ready: stall
    }
    return false;
}

void
Machine::doCommit()
{
    u32 committed = 0;
    while (committed < cfg.commit_width && !ruu.empty()) {
        RuuEntry &head = ruu.front();
        if (!head.completed)
            break;
        const isa::OpInfo &info = opInfo(head.info.inst.op);
        if (info.is_store) {
            if (mem_ports_used >= cfg.mem_ports)
                break;
            ++mem_ports_used;
            const u32 latency =
                dl1_cache->access(head.info.mem_addr, true);
            addr_bus.post(cycle, head.info.mem_addr);
            mem_bus.post(cycle + latency, head.info.mem_lo);
            if (head.info.mem_is_double)
                mem_bus.post(cycle + latency + 1, head.info.mem_hi);
            --lsq_count;
        } else if (info.is_load) {
            --lsq_count;
        }
        ++stat.instructions;
        ++committed;
        ruu.pop_front();
        ++head_seq;
    }
}

void
Machine::doWriteback()
{
    // Writeback bus timing generator (extension): the result value of
    // the first (oldest) instruction completing this cycle.
    bool wb_posted = false;
    for (RuuEntry &entry : ruu) {
        if (entry.issued && !entry.completed &&
            entry.complete_cycle <= cycle) {
            entry.completed = true;
            if (!wb_posted && entry.info.has_int_result) {
                wb_bus.post(cycle, entry.info.int_result);
                wb_posted = true;
            }
            if (entry.seq == blocked_branch_seq) {
                blocked_branch_seq = kNoSeq;
                fetch_avail_cycle =
                    std::max<Cycle>(fetch_avail_cycle,
                                    cycle + 1 + cfg.mispredict_penalty);
            }
        }
    }
}

void
Machine::doIssue()
{
    for (std::size_t i = 0;
         i < ruu.size() && issued_this_cycle < cfg.issue_width; ++i) {
        RuuEntry &entry = ruu[i];
        if (entry.issued || !depsReady(entry))
            continue;

        const isa::OpInfo &info = opInfo(entry.info.inst.op);
        u32 latency = info.latency;

        // Functional unit availability.
        switch (info.fu) {
          case FuClass::IntAlu:
            if (alu_used >= cfg.int_alus)
                continue;
            break;
          case FuClass::IntMul:
          case FuClass::IntDiv:
            if (muldiv_used >= cfg.int_mult_divs)
                continue;
            break;
          case FuClass::FpAdd:
            if (fpalu_used >= cfg.fp_alus)
                continue;
            break;
          case FuClass::FpMul:
          case FuClass::FpDiv:
            if (fpmuldiv_used >= cfg.fp_mult_divs)
                continue;
            break;
          case FuClass::MemRead:
            if (mem_ports_used >= cfg.mem_ports)
                continue;
            break;
          case FuClass::MemWrite:
          case FuClass::None:
            break;
        }

        if (info.is_load) {
            bool forward = false;
            if (olderStoreBlocks(i, forward))
                continue;
            if (forward) {
                latency = 1;
            } else {
                latency = dl1_cache->access(entry.info.mem_addr, false);
            }
            ++mem_ports_used;
            addr_bus.post(cycle, entry.info.mem_addr);
            mem_bus.post(cycle + latency, entry.info.mem_lo);
            if (entry.info.mem_is_double)
                mem_bus.post(cycle + latency + 1, entry.info.mem_hi);
        }

        // Claim the functional unit.
        switch (info.fu) {
          case FuClass::IntAlu: ++alu_used; break;
          case FuClass::IntMul:
          case FuClass::IntDiv: ++muldiv_used; break;
          case FuClass::FpAdd: ++fpalu_used; break;
          case FuClass::FpMul:
          case FuClass::FpDiv: ++fpmuldiv_used; break;
          default: break;
        }

        entry.issued = true;
        entry.complete_cycle = cycle + latency;
        ++issued_this_cycle;

        // Register bus timing generator (issue-order variant): one
        // output port, first integer operand of the first instruction
        // issued this cycle.
        if (cfg.reg_bus_at_issue && !reg_bus_posted &&
            entry.info.has_int_operand) {
            reg_bus.post(cycle, entry.info.int_operand);
            reg_bus_posted = true;
        }
    }
}

void
Machine::doDispatch()
{
    u32 dispatched = 0;
    while (dispatched < cfg.decode_width && !ifq.empty() &&
           ruu.size() < cfg.ruu_size && !dispatch_halted) {
        const IfqEntry fe = ifq.front();
        if (fe.pc != arch_state->pc) {
            // Stale wrong-path instructions past an undetected
            // redirect; resynchronize the front end.
            ifq.clear();
            fetch_pc = arch_state->pc;
            break;
        }
        const isa::OpInfo &info = opInfo(fe.inst.op);
        if ((info.is_load || info.is_store) && lsq_count >= cfg.lsq_size)
            break;
        ifq.pop_front();

        const ExecInfo exec = arch_state->step();

        // Register bus timing generator (default): the port value of
        // the first instruction through the dispatch stage each cycle
        // — sim-outorder reads operands here (program order).
        if (!cfg.reg_bus_at_issue && !reg_bus_posted &&
            exec.has_int_operand) {
            reg_bus.post(cycle, exec.int_operand);
            reg_bus_posted = true;
        }

        RuuEntry entry;
        entry.info = exec;
        entry.seq = next_seq++;
        entry.mem_size = memSize(exec.inst.op);

        // Register dependencies via the most recent in-flight writers.
        const isa::SourceRegs srcs = isa::sources(exec.inst);
        auto add_dep = [&entry](u64 producer) {
            if (producer == kNoSeq)
                return;
            for (unsigned i = 0; i < entry.ndeps; ++i)
                if (entry.deps[i] == producer)
                    return;
            entry.deps[entry.ndeps++] = producer;
        };
        if (srcs.int0)
            add_dep(last_int_writer[*srcs.int0]);
        if (srcs.int1)
            add_dep(last_int_writer[*srcs.int1]);
        if (srcs.fp0)
            add_dep(last_fp_writer[*srcs.fp0]);
        if (srcs.fp1)
            add_dep(last_fp_writer[*srcs.fp1]);
        if (const auto d = isa::intDest(exec.inst))
            last_int_writer[*d] = entry.seq;
        if (const auto d = isa::fpDest(exec.inst))
            last_fp_writer[*d] = entry.seq;

        if (info.is_load || info.is_store) {
            ++lsq_count;
            if (info.is_load)
                ++stat.loads;
            else
                ++stat.stores;
        }

        // FuClass::None ops (J, JAL, HALT) never visit a functional
        // unit: complete at dispatch.
        if (info.fu == FuClass::None) {
            entry.issued = true;
            entry.completed = true;
            entry.complete_cycle = cycle;
        }

        const bool was_control = exec.is_control;
        ruu.push_back(entry);
        ++dispatched;

        if (was_control) {
            ++stat.branches;
            const bool is_conditional = info.is_branch;
            bpred->update(exec.pc, exec.taken, exec.next_pc,
                          is_conditional);
            const bool correct = fe.predicted_next == exec.next_pc;
            bpred->recordOutcome(correct, correct);
            if (!correct) {
                ++stat.mispredicts;
                ifq.clear();
                fetch_pc = exec.next_pc;
                RuuEntry &placed = ruu.back();
                if (placed.completed) {
                    // Unconditional direct jumps resolve immediately.
                    fetch_avail_cycle = std::max<Cycle>(
                        fetch_avail_cycle,
                        cycle + 1 + cfg.mispredict_penalty);
                } else {
                    blocked_branch_seq = placed.seq;
                }
                break;
            }
        }

        if (exec.halted) {
            dispatch_halted = true;
            ifq.clear();
            break;
        }
    }
}

void
Machine::doFetch()
{
    if (dispatch_halted || blocked_branch_seq != kNoSeq ||
        cycle < fetch_avail_cycle)
        return;

    u64 last_line = ~u64{0};
    for (u32 fetched = 0;
         fetched < cfg.fetch_width && ifq.size() < cfg.ifq_size;
         ++fetched) {
        const u64 line = fetch_pc / cfg.il1.line_bytes;
        if (line != last_line) {
            const u32 latency = il1_cache->access(fetch_pc, false);
            if (latency > cfg.il1.hit_latency) {
                // I-cache miss: the front end refills; nothing else is
                // fetched until the line returns.
                fetch_avail_cycle = cycle + latency;
                return;
            }
            last_line = line;
        }

        const u32 raw = mem.read32(fetch_pc);
        const auto decoded = isa::decode(raw);
        if (!decoded)
            return;  // wrong-path garbage: emit nothing, await redirect
        const isa::Instruction inst = *decoded;

        IfqEntry fe;
        fe.pc = fetch_pc;
        fe.inst = inst;

        Addr next = fetch_pc + 4;
        bool taken_transfer = false;
        switch (inst.op) {
          case Opcode::J:
          case Opcode::JAL:
            next = inst.target << 2;
            taken_transfer = true;
            if (inst.op == Opcode::JAL)
                bpred->pushReturn(fetch_pc + 4);
            break;
          case Opcode::JR:
          case Opcode::JALR: {
            const bool is_return =
                inst.op == Opcode::JR && inst.rs == 31;
            const Prediction p =
                bpred->predict(fetch_pc, true, is_return);
            if (p.target_valid)
                next = p.target;
            taken_transfer = true;
            if (inst.op == Opcode::JALR)
                bpred->pushReturn(fetch_pc + 4);
            break;
          }
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLEZ:
          case Opcode::BGTZ: case Opcode::BLTZ: case Opcode::BGEZ: {
            const Prediction p =
                bpred->predict(fetch_pc, false, false);
            if (p.taken) {
                next = fetch_pc + 4 +
                       (static_cast<u32>(inst.imm) << 2);
                taken_transfer = true;
            }
            break;
          }
          default:
            break;
        }

        fe.predicted_next = next;
        ifq.push_back(fe);
        fetch_pc = next;
        if (taken_transfer)
            break;  // one taken transfer per fetch cycle
        if (inst.op == Opcode::HALT)
            break;
    }
}

RunResult
Machine::run(u64 max_cycles)
{
    Cycle last_commit_cycle = 0;
    u64 last_committed = 0;

    while (cycle < max_cycles) {
        mem_ports_used = 0;
        alu_used = 0;
        muldiv_used = 0;
        fpalu_used = 0;
        fpmuldiv_used = 0;
        issued_this_cycle = 0;
        reg_bus_posted = false;

        doCommit();
        doWriteback();
        doIssue();
        doDispatch();
        doFetch();

        if (stat.instructions != last_committed) {
            last_committed = stat.instructions;
            last_commit_cycle = cycle;
        } else if (cycle - last_commit_cycle > 100000) {
            panic("machine deadlock: no commit in 100000 cycles at "
                  "cycle ",
                  cycle);
        }

        ++cycle;
        if (dispatch_halted && ruu.empty())
            break;
    }

    stat.cycles = cycle;
    stat.il1 = il1_cache->stats();
    stat.dl1 = dl1_cache->stats();
    if (l2_cache)
        stat.l2 = l2_cache->stats();
    stat.bpred = bpred->stats();

    RunResult result;
    result.stats = stat;
    result.output = arch_state->output();
    reg_bus.finalize();
    mem_bus.finalize();
    addr_bus.finalize();
    wb_bus.finalize();
    result.reg_bus = std::move(reg_bus);
    result.mem_bus = std::move(mem_bus);
    result.addr_bus = std::move(addr_bus);
    result.wb_bus = std::move(wb_bus);
    result.halted = dispatch_halted;
    publishSimStats(result.stats);
    return result;
}

} // namespace predbus::sim
