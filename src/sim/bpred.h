/**
 * @file
 * Branch prediction: bimodal 2-bit counters + direct-mapped BTB and a
 * small return-address stack, in the SimpleScalar style.
 */

#ifndef PREDBUS_SIM_BPRED_H
#define PREDBUS_SIM_BPRED_H

#include <vector>

#include "common/types.h"

namespace predbus::sim
{

/** Direction predictor flavor. */
enum class BpredKind
{
    Bimodal,   ///< PC-indexed 2-bit counters (SimpleScalar default)
    Gshare,    ///< global-history XOR PC indexed (two-level)
};

struct BpredConfig
{
    BpredKind kind = BpredKind::Bimodal;
    u32 bimodal_entries = 2048;   ///< 2-bit counters (power of two)
    u32 btb_entries = 512;        ///< direct-mapped, tagged
    u32 ras_entries = 8;          ///< return-address stack depth
    u32 history_bits = 8;         ///< gshare global history length
};

struct BpredStats
{
    u64 lookups = 0;
    u64 dir_hits = 0;       ///< direction predicted correctly
    u64 target_hits = 0;    ///< taken branches with correct target

    double
    accuracy() const
    {
        return lookups ? static_cast<double>(dir_hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

/** A combined direction + target prediction. */
struct Prediction
{
    bool taken = false;
    bool target_valid = false;
    Addr target = 0;
};

class Bpred
{
  public:
    explicit Bpred(const BpredConfig &config);

    /**
     * Predict a conditional branch or jump at @p pc.
     * @p is_unconditional short-circuits direction to taken.
     * @p is_return pops the RAS for the target.
     */
    Prediction predict(Addr pc, bool is_unconditional, bool is_return);

    /** Record the resolved outcome of the branch at @p pc. */
    void update(Addr pc, bool taken, Addr target, bool is_conditional);

    /** Push a return address (on call dispatch). */
    void pushReturn(Addr return_addr);

    const BpredStats &stats() const { return stat; }

    /** Account a correct/incorrect resolution (for stats only). */
    void recordOutcome(bool dir_correct, bool target_correct);

  private:
    u32 counterIndex(Addr pc) const;

    BpredConfig cfg;
    u64 history = 0;               ///< gshare global history
    std::vector<u8> counters;      ///< 2-bit saturating
    struct BtbEntry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
    };
    std::vector<BtbEntry> btb;
    std::vector<Addr> ras;
    u32 ras_top = 0;               ///< number of valid entries
    BpredStats stat;
};

} // namespace predbus::sim

#endif // PREDBUS_SIM_BPRED_H
