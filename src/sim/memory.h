/**
 * @file
 * Sparse byte-addressable guest memory (flat 32-bit address space).
 *
 * Backed by 4 KiB pages allocated on first touch, so guest programs can
 * scatter data anywhere in the address space without host cost.
 * Little-endian, like the P32 ISA.
 */

#ifndef PREDBUS_SIM_MEMORY_H
#define PREDBUS_SIM_MEMORY_H

#include <array>
#include <memory>
#include <unordered_map>

#include "common/types.h"
#include "isa/program.h"

namespace predbus::sim
{

class Memory
{
  public:
    static constexpr unsigned kPageBits = 12;
    static constexpr Addr kPageSize = 1u << kPageBits;

    u8 read8(Addr addr) const;
    u16 read16(Addr addr) const;
    u32 read32(Addr addr) const;
    u64 read64(Addr addr) const;
    double readDouble(Addr addr) const;

    void write8(Addr addr, u8 value);
    void write16(Addr addr, u16 value);
    void write32(Addr addr, u32 value);
    void write64(Addr addr, u64 value);
    void writeDouble(Addr addr, double value);

    /** Copy a program's code and data segments into memory. */
    void load(const isa::Program &program);

    /** Number of pages currently allocated (for tests/telemetry). */
    std::size_t pageCount() const { return pages.size(); }

  private:
    using Page = std::array<u8, kPageSize>;

    const Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<u32, std::unique_ptr<Page>> pages;
};

} // namespace predbus::sim

#endif // PREDBUS_SIM_MEMORY_H
