#include "sim/cache.h"

#include <bit>

#include "common/log.h"

namespace predbus::sim
{

Cache::Cache(const CacheConfig &config, Cache *next_level,
             u32 memory_latency)
    : cfg(config), next(next_level), mem_latency(memory_latency)
{
    if (cfg.line_bytes == 0 || !std::has_single_bit(cfg.line_bytes))
        fatal(cfg.name, ": line size must be a power of two");
    if (cfg.assoc == 0)
        fatal(cfg.name, ": associativity must be nonzero");
    if (cfg.size_bytes % (cfg.line_bytes * cfg.assoc) != 0)
        fatal(cfg.name, ": size must be a multiple of line*assoc");
    num_sets = cfg.size_bytes / (cfg.line_bytes * cfg.assoc);
    if (!std::has_single_bit(num_sets))
        fatal(cfg.name, ": set count must be a power of two");
    offset_bits = static_cast<unsigned>(std::countr_zero(cfg.line_bytes));
    lines.resize(static_cast<std::size_t>(num_sets) * cfg.assoc);
}

u32
Cache::access(Addr addr, bool is_write)
{
    ++stat.accesses;
    const u64 block = addr >> offset_bits;
    const u32 set = static_cast<u32>(block) & (num_sets - 1);
    const u64 tag = block >> std::countr_zero(num_sets);
    Line *set_base = &lines[static_cast<std::size_t>(set) * cfg.assoc];

    // Hit?
    for (u32 w = 0; w < cfg.assoc; ++w) {
        Line &line = set_base[w];
        if (line.valid && line.tag == tag) {
            line.lru = ++use_counter;
            line.dirty = line.dirty || is_write;
            return cfg.hit_latency;
        }
    }

    // Miss: pick victim (invalid first, else true-LRU).
    ++stat.misses;
    Line *victim = set_base;
    for (u32 w = 0; w < cfg.assoc; ++w) {
        Line &line = set_base[w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }

    u32 latency = cfg.hit_latency;
    if (victim->valid && victim->dirty) {
        ++stat.writebacks;
        // Write the dirty block back one level down. The write-back is
        // charged to this request for simplicity (no write buffer).
        const Addr victim_addr = static_cast<Addr>(
            ((victim->tag << std::countr_zero(num_sets)) | set)
            << offset_bits);
        latency += next ? next->access(victim_addr, true) : mem_latency;
    }

    // Fill from the next level.
    latency += next ? next->access(addr, false) : mem_latency;
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lru = ++use_counter;
    return latency;
}

bool
Cache::probe(Addr addr) const
{
    const u64 block = addr >> offset_bits;
    const u32 set = static_cast<u32>(block) & (num_sets - 1);
    const u64 tag = block >> std::countr_zero(num_sets);
    const Line *set_base = &lines[static_cast<std::size_t>(set) * cfg.assoc];
    for (u32 w = 0; w < cfg.assoc; ++w)
        if (set_base[w].valid && set_base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines)
        line = Line{};
}

} // namespace predbus::sim
