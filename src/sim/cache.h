/**
 * @file
 * Set-associative cache timing model (LRU, write-back, write-allocate).
 *
 * The caches model *timing only*: data lives in the functional Memory.
 * A cache access returns the total latency for the request, chaining
 * into the next level (another cache or a fixed main-memory latency) on
 * miss, and charging an extra next-level access for dirty evictions.
 */

#ifndef PREDBUS_SIM_CACHE_H
#define PREDBUS_SIM_CACHE_H

#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::sim
{

/** Geometry and latency parameters for one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    u32 size_bytes = 16 * 1024;
    u32 line_bytes = 32;
    u32 assoc = 4;
    u32 hit_latency = 1;
};

/** Counters for one cache level. */
struct CacheStats
{
    u64 accesses = 0;
    u64 misses = 0;
    u64 writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * One cache level. Levels are chained via a next pointer; the last
 * level charges @p memory_latency for misses.
 */
class Cache
{
  public:
    /** @p next_level may be nullptr for the last cache before memory. */
    Cache(const CacheConfig &config, Cache *next_level,
          u32 memory_latency);

    /**
     * Access @p addr; returns the latency in cycles for this request.
     * @p is_write marks stores (sets the dirty bit on the line).
     */
    u32 access(Addr addr, bool is_write);

    /** True if @p addr currently hits without changing any state. */
    bool probe(Addr addr) const;

    /** Drop all lines (does not reset statistics). */
    void flush();

    const CacheStats &stats() const { return stat; }
    const CacheConfig &config() const { return cfg; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        u64 tag = 0;
        u64 lru = 0;   ///< last-use stamp
    };

    u32 numSets() const { return num_sets; }

    CacheConfig cfg;
    Cache *next;
    u32 mem_latency;
    u32 num_sets;
    unsigned offset_bits;
    std::vector<Line> lines;   ///< num_sets * assoc, set-major
    u64 use_counter = 0;
    CacheStats stat;
};

} // namespace predbus::sim

#endif // PREDBUS_SIM_CACHE_H
