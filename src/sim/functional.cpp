#include "sim/functional.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::sim
{

namespace
{

u32
wordOfDoubleLo(double d)
{
    u64 raw;
    std::memcpy(&raw, &d, 8);
    return static_cast<u32>(raw);
}

u32
wordOfDoubleHi(double d)
{
    u64 raw;
    std::memcpy(&raw, &d, 8);
    return static_cast<u32>(raw >> 32);
}

s32
safeDiv(s32 a, s32 b)
{
    if (b == 0)
        return 0;
    if (a == std::numeric_limits<s32>::min() && b == -1)
        return a;
    return a / b;
}

s32
safeRem(s32 a, s32 b)
{
    if (b == 0)
        return a;
    if (a == std::numeric_limits<s32>::min() && b == -1)
        return 0;
    return a % b;
}

s32
doubleToInt(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 2147483647.0)
        return std::numeric_limits<s32>::max();
    if (d <= -2147483648.0)
        return std::numeric_limits<s32>::min();
    return static_cast<s32>(d);
}

} // namespace

ExecInfo
ArchState::step()
{
    panicIf(halt_flag, "ArchState::step after halt");

    ExecInfo info;
    info.pc = pc;
    const u32 raw = mem->read32(pc);
    const auto decoded = isa::decode(raw);
    if (!decoded)
        fatal("illegal instruction 0x", std::hex, raw, " at pc 0x", pc);
    const isa::Instruction inst = *decoded;
    info.inst = inst;

    // Record the register-bus port-0 value: the rs-field operand the
    // register file drives this cycle, including r0 reads (the port
    // physically reads out zero for them, as in real hardware).
    if (const auto port = isa::firstIntSourceField(inst)) {
        info.has_int_operand = true;
        info.int_operand = readInt(*port);
    }

    Addr next = pc + 4;
    const u32 rs = readInt(inst.rs);
    const u32 rt = readInt(inst.rt);
    const s32 srs = static_cast<s32>(rs);
    const s32 srt = static_cast<s32>(rt);
    const double fs = readFp(inst.rs);
    const double ft = readFp(inst.rt);

    using Op = isa::Opcode;
    switch (inst.op) {
      case Op::SLL: writeInt(inst.rd, rt << inst.shamt); break;
      case Op::SRL: writeInt(inst.rd, rt >> inst.shamt); break;
      case Op::SRA:
        writeInt(inst.rd, static_cast<u32>(srt >> inst.shamt));
        break;
      case Op::SLLV: writeInt(inst.rd, rt << (rs & 31)); break;
      case Op::SRLV: writeInt(inst.rd, rt >> (rs & 31)); break;
      case Op::SRAV:
        writeInt(inst.rd, static_cast<u32>(srt >> (rs & 31)));
        break;
      case Op::ADD: writeInt(inst.rd, rs + rt); break;
      case Op::SUB: writeInt(inst.rd, rs - rt); break;
      case Op::MUL: writeInt(inst.rd, rs * rt); break;
      case Op::DIV:
        writeInt(inst.rd, static_cast<u32>(safeDiv(srs, srt)));
        break;
      case Op::REM:
        writeInt(inst.rd, static_cast<u32>(safeRem(srs, srt)));
        break;
      case Op::AND: writeInt(inst.rd, rs & rt); break;
      case Op::OR: writeInt(inst.rd, rs | rt); break;
      case Op::XOR: writeInt(inst.rd, rs ^ rt); break;
      case Op::NOR: writeInt(inst.rd, ~(rs | rt)); break;
      case Op::SLT: writeInt(inst.rd, srs < srt ? 1 : 0); break;
      case Op::SLTU: writeInt(inst.rd, rs < rt ? 1 : 0); break;

      case Op::ADDI:
        writeInt(inst.rt, rs + static_cast<u32>(inst.imm));
        break;
      case Op::SLTI: writeInt(inst.rt, srs < inst.imm ? 1 : 0); break;
      case Op::SLTIU:
        writeInt(inst.rt, rs < static_cast<u32>(inst.imm) ? 1 : 0);
        break;
      case Op::ANDI:
        writeInt(inst.rt, rs & static_cast<u32>(inst.imm));
        break;
      case Op::ORI:
        writeInt(inst.rt, rs | static_cast<u32>(inst.imm));
        break;
      case Op::XORI:
        writeInt(inst.rt, rs ^ static_cast<u32>(inst.imm));
        break;
      case Op::LUI:
        writeInt(inst.rt, static_cast<u32>(inst.imm) << 16);
        break;

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::FLD: {
        const Addr addr = rs + static_cast<u32>(inst.imm);
        info.is_mem = true;
        info.mem_addr = addr;
        switch (inst.op) {
          case Op::LB:
            writeInt(inst.rt, static_cast<u32>(
                                  static_cast<s32>(
                                      static_cast<s8>(mem->read8(addr)))));
            info.mem_lo = readInt(inst.rt);
            break;
          case Op::LBU:
            writeInt(inst.rt, mem->read8(addr));
            info.mem_lo = readInt(inst.rt);
            break;
          case Op::LH:
            writeInt(inst.rt, static_cast<u32>(
                                  static_cast<s32>(static_cast<s16>(
                                      mem->read16(addr)))));
            info.mem_lo = readInt(inst.rt);
            break;
          case Op::LHU:
            writeInt(inst.rt, mem->read16(addr));
            info.mem_lo = readInt(inst.rt);
            break;
          case Op::LW:
            writeInt(inst.rt, mem->read32(addr));
            info.mem_lo = readInt(inst.rt);
            break;
          case Op::FLD: {
            const double d = mem->readDouble(addr);
            writeFp(inst.rt, d);
            info.mem_is_double = true;
            info.mem_lo = wordOfDoubleLo(d);
            info.mem_hi = wordOfDoubleHi(d);
            break;
          }
          default:
            break;
        }
        break;
      }

      case Op::SB: case Op::SH: case Op::SW: case Op::FSD: {
        const Addr addr = rs + static_cast<u32>(inst.imm);
        info.is_mem = true;
        info.mem_addr = addr;
        switch (inst.op) {
          case Op::SB:
            mem->write8(addr, static_cast<u8>(rt));
            info.mem_lo = static_cast<u8>(rt);
            break;
          case Op::SH:
            mem->write16(addr, static_cast<u16>(rt));
            info.mem_lo = static_cast<u16>(rt);
            break;
          case Op::SW:
            mem->write32(addr, rt);
            info.mem_lo = rt;
            break;
          case Op::FSD: {
            const double d = readFp(inst.rt);
            mem->writeDouble(addr, d);
            info.mem_is_double = true;
            info.mem_lo = wordOfDoubleLo(d);
            info.mem_hi = wordOfDoubleHi(d);
            break;
          }
          default:
            break;
        }
        break;
      }

      case Op::J:
        info.is_control = true;
        info.taken = true;
        next = inst.target << 2;
        break;
      case Op::JAL:
        info.is_control = true;
        info.taken = true;
        writeInt(31, pc + 4);
        next = inst.target << 2;
        break;
      case Op::JR:
        info.is_control = true;
        info.taken = true;
        next = rs;
        break;
      case Op::JALR:
        info.is_control = true;
        info.taken = true;
        writeInt(inst.rd, pc + 4);
        next = rs;
        break;

      case Op::BEQ: case Op::BNE: case Op::BLEZ: case Op::BGTZ:
      case Op::BLTZ: case Op::BGEZ: {
        info.is_control = true;
        bool take = false;
        switch (inst.op) {
          case Op::BEQ: take = rs == rt; break;
          case Op::BNE: take = rs != rt; break;
          case Op::BLEZ: take = srs <= 0; break;
          case Op::BGTZ: take = srs > 0; break;
          case Op::BLTZ: take = srs < 0; break;
          case Op::BGEZ: take = srs >= 0; break;
          default: break;
        }
        info.taken = take;
        if (take)
            next = pc + 4 + (static_cast<u32>(inst.imm) << 2);
        break;
      }

      case Op::FADD: writeFp(inst.rd, fs + ft); break;
      case Op::FSUB: writeFp(inst.rd, fs - ft); break;
      case Op::FMUL: writeFp(inst.rd, fs * ft); break;
      case Op::FDIV: writeFp(inst.rd, fs / ft); break;
      case Op::FSQRT:
        writeFp(inst.rd, fs >= 0.0 ? std::sqrt(fs) : 0.0);
        break;
      case Op::FABS: writeFp(inst.rd, std::fabs(fs)); break;
      case Op::FNEG: writeFp(inst.rd, -fs); break;
      case Op::FMOV: writeFp(inst.rd, fs); break;
      case Op::FMIN: writeFp(inst.rd, std::fmin(fs, ft)); break;
      case Op::FMAX: writeFp(inst.rd, std::fmax(fs, ft)); break;
      case Op::CVTIF: writeFp(inst.rd, static_cast<double>(srs)); break;
      case Op::CVTFI:
        writeInt(inst.rd, static_cast<u32>(doubleToInt(fs)));
        break;
      case Op::FCLT: writeInt(inst.rd, fs < ft ? 1 : 0); break;
      case Op::FCLE: writeInt(inst.rd, fs <= ft ? 1 : 0); break;
      case Op::FCEQ: writeInt(inst.rd, fs == ft ? 1 : 0); break;

      case Op::HALT:
        halt_flag = true;
        info.halted = true;
        next = pc;
        break;
      case Op::OUT:
        out_values.push_back(rs);
        break;

      default:
        panic("unhandled opcode in ArchState::step");
    }

    if (const auto dest = isa::intDest(inst)) {
        info.has_int_result = true;
        info.int_result = readInt(*dest);
    }

    pc = next;
    info.next_pc = next;
    return info;
}

u64
ArchState::run(u64 max_steps)
{
    u64 steps = 0;
    while (!halt_flag && steps < max_steps) {
        step();
        ++steps;
    }
    return steps;
}

} // namespace predbus::sim
