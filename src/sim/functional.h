/**
 * @file
 * Architectural (functional) execution of P32 instructions.
 *
 * The out-of-order core executes instructions functionally at dispatch
 * (the SimpleScalar approach) and models timing separately; this file
 * provides the architectural state and one-instruction step, returning
 * everything the timing model and bus tracers need.
 */

#ifndef PREDBUS_SIM_FUNCTIONAL_H
#define PREDBUS_SIM_FUNCTIONAL_H

#include <array>
#include <optional>
#include <vector>

#include "common/types.h"
#include "isa/isa.h"
#include "sim/memory.h"

namespace predbus::sim
{

/** Everything observable about one executed instruction. */
struct ExecInfo
{
    isa::Instruction inst;
    Addr pc = 0;
    Addr next_pc = 0;

    bool is_control = false;      ///< branch or jump
    bool taken = false;           ///< control transfer taken

    bool is_mem = false;
    Addr mem_addr = 0;
    bool mem_is_double = false;   ///< FLD/FSD: two bus beats
    Word mem_lo = 0;              ///< low word on the memory data bus
    Word mem_hi = 0;              ///< high word (doubles only)

    bool has_int_operand = false; ///< read an integer register operand
    Word int_operand = 0;         ///< value of the first int operand

    bool has_int_result = false;  ///< wrote an integer register
    Word int_result = 0;          ///< the written value (writeback bus)

    bool halted = false;
};

/** Architectural register file + PC + memory binding. */
class ArchState
{
  public:
    explicit ArchState(Memory &memory) : mem(&memory) {}

    Addr pc = 0;

    u32 readInt(unsigned r) const { return r ? iregs[r] : 0; }
    void
    writeInt(unsigned r, u32 v)
    {
        if (r)
            iregs[r] = v;
    }
    double readFp(unsigned r) const { return fregs[r]; }
    void writeFp(unsigned r, double v) { fregs[r] = v; }

    Memory &memory() { return *mem; }
    const Memory &memory() const { return *mem; }

    bool halted() const { return halt_flag; }

    /** Values emitted by OUT, in program order. */
    const std::vector<u32> &output() const { return out_values; }

    /**
     * Execute exactly one instruction at the current PC.
     * Illegal encodings raise FatalError (guest bug).
     */
    ExecInfo step();

    /** Convenience: run until HALT or @p max_steps; returns steps. */
    u64 run(u64 max_steps);

  private:
    std::array<u32, isa::kNumIntRegs> iregs{};
    std::array<double, isa::kNumFpRegs> fregs{};
    Memory *mem;
    std::vector<u32> out_values;
    bool halt_flag = false;
};

} // namespace predbus::sim

#endif // PREDBUS_SIM_FUNCTIONAL_H
