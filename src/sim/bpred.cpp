#include "sim/bpred.h"

#include <bit>

#include "common/bitops.h"
#include "common/log.h"

namespace predbus::sim
{

u32
Bpred::counterIndex(Addr pc) const
{
    const u32 word = pc >> 2;
    if (cfg.kind == BpredKind::Gshare)
        return (word ^ static_cast<u32>(history)) &
               (cfg.bimodal_entries - 1);
    return word & (cfg.bimodal_entries - 1);
}

Bpred::Bpred(const BpredConfig &config) : cfg(config)
{
    if (!std::has_single_bit(cfg.bimodal_entries) ||
        !std::has_single_bit(cfg.btb_entries))
        fatal("bpred tables must be powers of two");
    counters.assign(cfg.bimodal_entries, 2);  // weakly taken
    btb.resize(cfg.btb_entries);
    ras.assign(cfg.ras_entries, 0);
}

Prediction
Bpred::predict(Addr pc, bool is_unconditional, bool is_return)
{
    ++stat.lookups;
    Prediction p;
    if (is_return && ras_top > 0) {
        p.taken = true;
        p.target_valid = true;
        p.target = ras[--ras_top];
        return p;
    }
    const u32 word = pc >> 2;
    if (is_unconditional) {
        p.taken = true;
    } else {
        const u8 ctr = counters[counterIndex(pc)];
        p.taken = ctr >= 2;
    }
    const BtbEntry &entry = btb[word & (cfg.btb_entries - 1)];
    if (entry.valid && entry.pc == pc) {
        p.target_valid = true;
        p.target = entry.target;
    }
    return p;
}

void
Bpred::update(Addr pc, bool taken, Addr target, bool is_conditional)
{
    const u32 word = pc >> 2;
    if (is_conditional) {
        u8 &ctr = counters[counterIndex(pc)];
        if (taken && ctr < 3)
            ++ctr;
        else if (!taken && ctr > 0)
            --ctr;
        if (cfg.kind == BpredKind::Gshare) {
            history = ((history << 1) | (taken ? 1 : 0)) &
                      maskLow(cfg.history_bits);
        }
    }
    if (taken) {
        BtbEntry &entry = btb[word & (cfg.btb_entries - 1)];
        entry.valid = true;
        entry.pc = pc;
        entry.target = target;
    }
}

void
Bpred::pushReturn(Addr return_addr)
{
    if (cfg.ras_entries == 0)
        return;
    if (ras_top == cfg.ras_entries) {
        // Full: shift down (rare; depth is small).
        for (u32 i = 1; i < cfg.ras_entries; ++i)
            ras[i - 1] = ras[i];
        --ras_top;
    }
    ras[ras_top++] = return_addr;
}

void
Bpred::recordOutcome(bool dir_correct, bool target_correct)
{
    stat.dir_hits += dir_correct ? 1 : 0;
    stat.target_hits += target_correct ? 1 : 0;
}

} // namespace predbus::sim
