/**
 * @file
 * Blocking client for the predbus serving protocol.
 *
 * Client owns one connection (TCP or Unix socket) and exposes both a
 * low-level frame interface (send()/recv(), used by the protocol
 * tests and for pipelined load generation) and ClientSession, the
 * high-level stateful handle that mirrors the server session's
 * sequence number and rolling output checksum — the client half of
 * the synchronized-dictionary invariant. Server-reported errors are
 * returned as values (ServeError), not exceptions, so callers can
 * react to OVERLOADED and DESYNC in their control flow; transport
 * failures (connection lost) throw FatalError.
 */

#ifndef PREDBUS_SERVE_CLIENT_H
#define PREDBUS_SERVE_CLIENT_H

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/session.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace predbus::serve
{

/** A server-reported error response. */
struct ServeError
{
    protocol::ErrCode code{};
    std::string message;
};

class ClientSession;

class Client
{
  public:
    static Client connectUnixSocket(const std::string &path);
    static Client connectTcpSocket(const std::string &host, u16 port);
    ~Client();

    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Send one frame; throws FatalError if the connection is gone. */
    void send(const protocol::Frame &frame);

    /** Receive one frame; throws FatalError on EOF or garbage. */
    protocol::Frame recv();

    /** The raw socket (tests craft malformed byte streams with it). */
    int fd() const { return sock; }

    /**
     * OPEN_SESSION round trip. On success returns a session handle;
     * on a server error returns it in @p error (handle disengaged).
     */
    std::optional<ClientSession>
    open(const std::string &spec,
         std::optional<ServeError> &error);

    /** Convenience: open() that throws FatalError on server errors. */
    ClientSession openOrThrow(const std::string &spec);

    /**
     * SERVER_STATS round trip: the server's stats JSON
     * (schema predbus.serverstats.v1; see serve/stats.h), with the
     * flight-recorder events included when @p include_events is set.
     */
    std::string serverStats(bool include_events = false);

  private:
    explicit Client(int sock) : sock(sock) {}

    int sock = -1;
};

/** Result of one batch round trip. */
template <typename T>
struct BatchResult
{
    std::vector<T> data;               ///< states (encode) / words
    u64 checksum = 0;                  ///< server post-batch checksum
    std::optional<ServeError> error;   ///< engaged if the batch failed

    bool ok() const { return !error.has_value(); }
};

/**
 * One open session. Tracks the client-side mirror of the session
 * stream (sequence number + rolling checksum); every request carries
 * the mirror so the server can detect desync, and every response is
 * verified against the mirror so the client can too (a mismatch
 * throws FatalError — the server lied about shared state).
 */
class ClientSession
{
  public:
    ClientSession(Client &client, u32 id, u32 width)
        : client(&client), id_(id), width_(width)
    {
    }

    u32 id() const { return id_; }
    u32 width() const { return width_; }
    u64 seq() const { return seq_no; }
    u64 checksum() const { return sum; }

    /** Encode a batch of words into wire states. @p trace, when
     * non-null, stamps the request with a trace context the server
     * copies onto its per-batch span (end-to-end tracing). */
    BatchResult<u64> encode(std::span<const Word> words,
                            const protocol::TraceContext *trace =
                                nullptr);

    /** Decode a batch of wire states into words. */
    BatchResult<Word> decode(std::span<const u64> states,
                             const protocol::TraceContext *trace =
                                 nullptr);

    /** Fetch the server-side session statistics. */
    protocol::SessionStats stats();

    /** Recovery handshake: reset both ends to a fresh epoch. */
    u32 resync();

    /** CLOSE round trip; the handle is dead afterwards. */
    void close();

  private:
    Client *client;
    u32 id_;
    u32 width_;
    u64 seq_no = 0;
    u64 sum = coding::kChecksumSeed;
};

} // namespace predbus::serve

#endif // PREDBUS_SERVE_CLIENT_H
