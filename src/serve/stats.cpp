#include "serve/stats.h"

#include <map>
#include <sstream>
#include <string_view>

#include "coding/codec.h"
#include "obs/json_util.h"

namespace predbus::serve
{

namespace
{

/** One aggregated serve.energy.* row (server-wide or per-family). */
struct EnergyRow
{
    u64 words = 0;
    u64 base_tau = 0;
    u64 base_kappa = 0;
    u64 coded_tau = 0;
    u64 coded_kappa = 0;

    bool
    assign(const std::string &field, u64 value)
    {
        if (field == "words")
            words = value;
        else if (field == "base_tau")
            base_tau = value;
        else if (field == "base_kappa")
            base_kappa = value;
        else if (field == "coded_tau")
            coded_tau = value;
        else if (field == "coded_kappa")
            coded_kappa = value;
        else
            return false;
        return true;
    }
};

void
writeEnergyRow(std::ostream &os, const EnergyRow &row,
               const ServerStatsContext &ctx)
{
    os << "{\"words\":" << row.words << ",\"base_tau\":"
       << row.base_tau << ",\"base_kappa\":" << row.base_kappa
       << ",\"coded_tau\":" << row.coded_tau << ",\"coded_kappa\":"
       << row.coded_kappa;
    const u64 base_ev = row.base_tau + row.base_kappa;
    const u64 coded_ev = row.coded_tau + row.coded_kappa;
    os << ",\"saved_transitions\":"
       << (static_cast<s64>(base_ev) - static_cast<s64>(coded_ev));
    const coding::EnergyCount base{row.base_tau, row.base_kappa};
    const coding::EnergyCount coded{row.coded_tau, row.coded_kappa};
    const double b = base.cost(ctx.energy_lambda);
    os << ",\"saved_pct\":";
    obs::jsonNumber(
        os, b > 0.0
                ? 100.0 * (1.0 - coded.cost(ctx.energy_lambda) / b)
                : 0.0);
    if (ctx.joule_per_tau > 0.0 || ctx.joule_per_kappa > 0.0) {
        // Picojoules: obs::jsonNumber prints fixed %.3f, so Joules
        // (~1e-12 per event) would all round to zero.
        const double scale = 1e12;
        const double base_pj =
            scale * (ctx.joule_per_tau * row.base_tau +
                     ctx.joule_per_kappa * row.base_kappa);
        const double coded_pj =
            scale * (ctx.joule_per_tau * row.coded_tau +
                     ctx.joule_per_kappa * row.coded_kappa);
        os << ",\"base_pj\":";
        obs::jsonNumber(os, base_pj);
        os << ",\"coded_pj\":";
        obs::jsonNumber(os, coded_pj);
        os << ",\"saved_pj\":";
        obs::jsonNumber(os, base_pj - coded_pj);
    }
    os << '}';
}

/** Hex-string form of a trace/span id (see file header). */
void
writeHexId(std::ostream &os, u64 id)
{
    static const char digits[] = "0123456789abcdef";
    os << '"';
    for (int shift = 60; shift >= 0; shift -= 4)
        os << digits[(id >> shift) & 0xf];
    os << '"';
}

void
writeHistogram(std::ostream &os, const obs::HistogramStats &h)
{
    os << "{\"count\":" << h.count;
    const std::pair<const char *, double> fields[] = {
        {"min", h.min},   {"max", h.max}, {"mean", h.mean},
        {"p50", h.p50},   {"p95", h.p95}, {"p99", h.p99},
    };
    for (const auto &[key, value] : fields) {
        os << ",\"" << key << "\":";
        obs::jsonNumber(os, value);
    }
    os << '}';
}

} // namespace

std::string
serverStatsJson(const obs::RegistrySnapshot &snapshot,
                const ServerStatsContext &ctx)
{
    std::ostringstream os;
    os << "{\"schema\":\"predbus.serverstats.v1\",\"uptime_s\":";
    obs::jsonNumber(os, ctx.uptime_s);
    os << ",\"draining\":" << (ctx.draining ? "true" : "false");

    os << ",\"counters\":{";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.counters[i].first);
        os << ':' << snapshot.counters[i].second;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.gauges[i].first);
        os << ':' << snapshot.gauges[i].second;
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.histograms[i].first);
        os << ':';
        writeHistogram(os, snapshot.histograms[i].second.stats());
    }
    os << '}';

    // Energy attribution, derived from the serve.energy.* counters of
    // the same snapshot (so totals and the raw counter section can
    // never disagree).
    EnergyRow total;
    std::map<std::string, EnergyRow> families;
    constexpr std::string_view prefix = "serve.energy.";
    for (const auto &[name, value] : snapshot.counters) {
        if (name.rfind(prefix, 0) != 0)
            continue;
        const std::string rest = name.substr(prefix.size());
        const std::size_t dot = rest.find('.');
        if (dot == std::string::npos)
            total.assign(rest, value);
        else
            families[rest.substr(0, dot)].assign(
                rest.substr(dot + 1), value);
    }
    os << ",\"energy\":{\"lambda\":";
    obs::jsonNumber(os, ctx.energy_lambda);
    os << ",\"total\":";
    writeEnergyRow(os, total, ctx);
    os << ",\"families\":{";
    bool first_family = true;
    for (const auto &[family, row] : families) {
        os << (first_family ? "" : ",");
        first_family = false;
        obs::jsonEscape(os, family);
        os << ':';
        writeEnergyRow(os, row, ctx);
    }
    os << "}}";

    os << ",\"events_recorded\":"
       << (ctx.recorder ? ctx.recorder->recorded() : 0);
    if (ctx.recorder && ctx.include_events) {
        os << ",\"events\":[";
        const std::vector<FlightEvent> events = ctx.recorder->dump();
        for (std::size_t i = 0; i < events.size(); ++i) {
            const FlightEvent &ev = events[i];
            os << (i ? "," : "") << "{\"t_ns\":" << ev.time_ns
               << ",\"kind\":\""
               << flightEventName(
                      static_cast<FlightEventKind>(ev.kind))
               << "\",\"session\":" << ev.session
               << ",\"seq\":" << ev.seq << ",\"label\":";
            obs::jsonEscape(os, ev.label);
            os << '}';
        }
        os << ']';
    }

    os << ",\"batches_recorded\":"
       << (ctx.batches ? ctx.batches->offered() : 0);
    if (ctx.batches && ctx.include_events) {
        os << ",\"batches\":[";
        const std::vector<BatchSpan> spans = ctx.batches->dump();
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const BatchSpan &sp = spans[i];
            os << (i ? "," : "") << "{\"t_ns\":" << sp.t_ns
               << ",\"trace_id\":";
            writeHexId(os, sp.trace_id);
            os << ",\"span_id\":";
            writeHexId(os, sp.span_id);
            os << ",\"kind\":\"" << (sp.is_encode ? "encode" : "decode")
               << "\",\"session\":" << sp.session
               << ",\"seq\":" << sp.seq
               << ",\"queue_ns\":" << sp.queue_ns
               << ",\"codec_ns\":" << sp.codec_ns
               << ",\"words\":" << sp.words << ",\"family\":";
            obs::jsonEscape(os, sp.family);
            os << ",\"base_tau\":" << sp.base_tau
               << ",\"base_kappa\":" << sp.base_kappa
               << ",\"coded_tau\":" << sp.coded_tau
               << ",\"coded_kappa\":" << sp.coded_kappa;
            const coding::EnergyCount base{sp.base_tau,
                                           sp.base_kappa};
            const coding::EnergyCount coded{sp.coded_tau,
                                            sp.coded_kappa};
            const double b = base.cost(ctx.energy_lambda);
            os << ",\"saved_pct\":";
            obs::jsonNumber(
                os,
                b > 0.0 ? 100.0 * (1.0 -
                                   coded.cost(ctx.energy_lambda) / b)
                        : 0.0);
            os << '}';
        }
        os << ']';
    }
    os << '}';
    return os.str();
}

} // namespace predbus::serve
