#include "serve/stats.h"

#include <sstream>

#include "obs/json_util.h"

namespace predbus::serve
{

namespace
{

void
writeHistogram(std::ostream &os, const obs::HistogramStats &h)
{
    os << "{\"count\":" << h.count;
    const std::pair<const char *, double> fields[] = {
        {"min", h.min},   {"max", h.max}, {"mean", h.mean},
        {"p50", h.p50},   {"p95", h.p95}, {"p99", h.p99},
    };
    for (const auto &[key, value] : fields) {
        os << ",\"" << key << "\":";
        obs::jsonNumber(os, value);
    }
    os << '}';
}

} // namespace

std::string
serverStatsJson(const obs::RegistrySnapshot &snapshot,
                const ServerStatsContext &ctx)
{
    std::ostringstream os;
    os << "{\"schema\":\"predbus.serverstats.v1\",\"uptime_s\":";
    obs::jsonNumber(os, ctx.uptime_s);
    os << ",\"draining\":" << (ctx.draining ? "true" : "false");

    os << ",\"counters\":{";
    for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.counters[i].first);
        os << ':' << snapshot.counters[i].second;
    }
    os << "},\"gauges\":{";
    for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.gauges[i].first);
        os << ':' << snapshot.gauges[i].second;
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
        os << (i ? "," : "");
        obs::jsonEscape(os, snapshot.histograms[i].first);
        os << ':';
        writeHistogram(os, snapshot.histograms[i].second.stats());
    }
    os << '}';

    os << ",\"events_recorded\":"
       << (ctx.recorder ? ctx.recorder->recorded() : 0);
    if (ctx.recorder && ctx.include_events) {
        os << ",\"events\":[";
        const std::vector<FlightEvent> events = ctx.recorder->dump();
        for (std::size_t i = 0; i < events.size(); ++i) {
            const FlightEvent &ev = events[i];
            os << (i ? "," : "") << "{\"t_ns\":" << ev.time_ns
               << ",\"kind\":\""
               << flightEventName(
                      static_cast<FlightEventKind>(ev.kind))
               << "\",\"session\":" << ev.session
               << ",\"seq\":" << ev.seq << ",\"label\":";
            obs::jsonEscape(os, ev.label);
            os << '}';
        }
        os << ']';
    }
    os << '}';
    return os.str();
}

} // namespace predbus::serve
