/**
 * @file
 * The predbus serving wire protocol (docs/SERVING.md).
 *
 * Length-prefixed binary frames over a byte stream (TCP or Unix
 * domain socket). Every frame is a fixed 24-byte little-endian header
 * followed by `payload_len` payload bytes:
 *
 *   offset size field
 *   0      4    magic "PBS1" (0x31534250 LE)
 *   4      1    version (1)
 *   5      1    type (MsgType)
 *   6      2    flags (bit 0: trace context; others reserved and
 *               IGNORED on receipt — senders write 0)
 *   8      4    session id (0 when not session-scoped)
 *   12     4    payload_len (<= kMaxPayload)
 *   16     8    seq (per-session batch sequence; 0 otherwise)
 *
 * Requests are 0x01..0x7f, responses are the request type | 0x80, and
 * 0xff is the error response. ENCODE/DECODE requests carry the
 * client's rolling stream checksum *before* the batch (see
 * coding/session.h); the server verifies it against its own before
 * advancing the session FSMs, which is how cross-network dictionary
 * desynchronization is detected. Responses carry the checksum *after*
 * the batch so the client can verify the server the same way.
 *
 * Trace context (docs/PROTOCOL.md): when header flag bit 0 is set on
 * an ENCODE/DECODE request, the payload is prefixed with 16 bytes —
 * u64 trace id, u64 span id — before the regular batch layout. The
 * server tags the batch's observability span with both ids so client
 * and server traces merge on the shared trace id. Frames without the
 * flag are byte-identical to the pre-trace protocol.
 *
 * This layer is pure bytes — no sockets, no sessions — so the framing
 * parser can be fuzzed in isolation (tests/test_serve_protocol.cpp).
 */

#ifndef PREDBUS_SERVE_PROTOCOL_H
#define PREDBUS_SERVE_PROTOCOL_H

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "coding/codec.h"
#include "common/types.h"

namespace predbus::serve::protocol
{

constexpr u32 kMagic = 0x31534250;  ///< "PBS1" on the wire
constexpr u8 kVersion = 1;
constexpr std::size_t kHeaderSize = 24;

/** Hard payload bound: anything larger is rejected unread. */
constexpr u32 kMaxPayload = 1u << 20;

/** Largest word/state count accepted in one ENCODE/DECODE batch. */
constexpr u32 kMaxBatchWords = 65536;

/** Largest accepted codec spec string. */
constexpr u32 kMaxSpecLen = 256;

/** Header flag bit 0: the payload starts with a TraceContext. Other
 * flag bits are reserved; receivers ignore them (forward compat). */
constexpr u16 kFlagTraceContext = 0x0001;

/** On-wire size of a trace context (two little-endian u64s). */
constexpr std::size_t kTraceContextSize = 16;

/**
 * End-to-end request tracing identifiers, stamped by clients on
 * ENCODE/DECODE frames. The trace id names one logical operation
 * across processes; the span id names the client-side span within it.
 * Both are opaque to the server — it only copies them onto the
 * observability span it opens for the batch.
 */
struct TraceContext
{
    u64 trace_id = 0;
    u64 span_id = 0;
};

enum class MsgType : u8
{
    OpenSession = 0x01,  ///< payload: u16 len, spec bytes
    Encode = 0x02,       ///< payload: [trace ctx,] u64 checksum,
                         ///<          u32 n, u32 word[n]
    Decode = 0x03,       ///< payload: [trace ctx,] u64 checksum,
                         ///<          u32 n, u64 state[n]
    Stats = 0x04,        ///< empty payload
    Resync = 0x05,       ///< empty payload
    Close = 0x06,        ///< empty payload
    ServerStats = 0x07,  ///< payload: u8 flags (bit0: include events;
                         ///<          unknown bits ignored)

    OpenOk = 0x81,        ///< payload: u32 session, u32 width
    EncodeOk = 0x82,      ///< payload: u64 checksum, u32 n, u64 state[n]
    DecodeOk = 0x83,      ///< payload: u64 checksum, u32 n, u32 word[n]
    StatsOk = 0x84,       ///< payload: SessionStats
    ResyncOk = 0x85,      ///< payload: u32 epoch
    CloseOk = 0x86,       ///< empty payload
    ServerStatsOk = 0x87, ///< payload: u32 len, JSON bytes
    Error = 0xff,         ///< payload: u16 code, u16 len, message bytes
};

/** Error codes carried by MsgType::Error. */
enum class ErrCode : u16
{
    BadFrame = 1,      ///< malformed header or payload
    BadVersion = 2,    ///< unsupported protocol version
    BadSpec = 3,       ///< OPEN_SESSION spec rejected by the factory
    NoSession = 4,     ///< unknown session id
    Desync = 5,        ///< sequence/checksum mismatch; RESYNC required
    Overloaded = 6,    ///< request queue full — batch was shed
    Draining = 7,      ///< server is shutting down
    TooLarge = 8,      ///< payload or batch over the hard bounds
    SessionLimit = 9,  ///< per-connection session cap reached
    Internal = 10,     ///< unexpected server-side failure
};

/** Human-readable error-code name ("desync", "overloaded", ...). */
const char *errName(ErrCode code);

struct FrameHeader
{
    u8 type = 0;
    u16 flags = 0;  ///< kFlag* bits; unknown bits are ignored
    u32 session = 0;
    u32 payload_len = 0;
    u64 seq = 0;
};

/** One parsed frame. */
struct Frame
{
    FrameHeader hdr;
    std::vector<u8> payload;
};

/** Header-level verdict before any payload is read. */
enum class HeaderStatus
{
    Ok,
    BadMagic,
    BadVersion,
    TooLarge,
};

/** Serialize @p hdr into exactly kHeaderSize bytes appended to @p out. */
void writeHeader(std::vector<u8> &out, const FrameHeader &hdr);

/** Parse a header from @p bytes (must be >= kHeaderSize). */
HeaderStatus parseHeader(std::span<const u8> bytes, FrameHeader &hdr);

/** Serialize a whole frame (header + payload). */
std::vector<u8> serialize(const Frame &frame);

/** Per-session statistics reported by STATS. */
struct SessionStats
{
    u64 seq = 0;
    u64 checksum = 0;
    u32 epoch = 0;
    u32 width = 0;
    coding::OpCounts ops;
    /** Live energy attribution (zero when metering is disabled):
     * wire events of the unencoded 32-wire bus vs the coded bus over
     * every word this session transcoded (coding/bus_energy.h). */
    coding::EnergyCount base_energy;
    coding::EnergyCount coded_energy;
    u64 metered_words = 0;
};

// -- request builders ---------------------------------------------------
Frame makeOpenSession(const std::string &spec);
/** @p trace, when non-null, sets kFlagTraceContext and prefixes the
 * payload with the 16-byte trace context. */
Frame makeEncode(u32 session, u64 seq, u64 checksum,
                 std::span<const Word> words,
                 const TraceContext *trace = nullptr);
Frame makeDecode(u32 session, u64 seq, u64 checksum,
                 std::span<const u64> states,
                 const TraceContext *trace = nullptr);
Frame makeStats(u32 session);
Frame makeResync(u32 session);
Frame makeClose(u32 session);
Frame makeServerStats(bool include_events);

// -- response builders --------------------------------------------------
Frame makeOpenOk(u32 session, u32 width);
Frame makeEncodeOk(u32 session, u64 seq, u64 checksum,
                   std::span<const u64> states);
Frame makeDecodeOk(u32 session, u64 seq, u64 checksum,
                   std::span<const Word> words);
Frame makeStatsOk(u32 session, const SessionStats &stats);
Frame makeResyncOk(u32 session, u32 epoch);
Frame makeCloseOk(u32 session);
Frame makeServerStatsOk(const std::string &json);
Frame makeError(u32 session, u64 seq, ErrCode code,
                const std::string &message);

// -- payload parsers (false on malformed payloads) ----------------------
bool parseOpenSession(const Frame &frame, std::string &spec);
bool parseEncode(const Frame &frame, u64 &checksum,
                 std::vector<Word> &words);
bool parseDecode(const Frame &frame, u64 &checksum,
                 std::vector<u64> &states);
/** @p trace is engaged iff the frame carries kFlagTraceContext (a
 * flagged frame whose payload is too short for the prefix fails). */
bool parseEncode(const Frame &frame, u64 &checksum,
                 std::vector<Word> &words,
                 std::optional<TraceContext> &trace);
bool parseDecode(const Frame &frame, u64 &checksum,
                 std::vector<u64> &states,
                 std::optional<TraceContext> &trace);
bool parseOpenOk(const Frame &frame, u32 &session, u32 &width);
bool parseEncodeOk(const Frame &frame, u64 &checksum,
                   std::vector<u64> &states);
bool parseDecodeOk(const Frame &frame, u64 &checksum,
                   std::vector<Word> &words);
bool parseServerStats(const Frame &frame, bool &include_events);
bool parseStatsOk(const Frame &frame, SessionStats &stats);
bool parseServerStatsOk(const Frame &frame, std::string &json);
bool parseResyncOk(const Frame &frame, u32 &epoch);
bool parseError(const Frame &frame, ErrCode &code,
                std::string &message);

} // namespace predbus::serve::protocol

#endif // PREDBUS_SERVE_PROTOCOL_H
