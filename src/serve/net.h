/**
 * @file
 * Minimal POSIX socket helpers shared by the server, the client, and
 * the load generator: TCP and Unix-domain listen/connect plus
 * whole-buffer send/recv and frame IO. All failures surface as
 * FatalError (setup paths) or as status returns (data paths) — the
 * serving layer never crashes on a peer's misbehavior.
 */

#ifndef PREDBUS_SERVE_NET_H
#define PREDBUS_SERVE_NET_H

#include <string>

#include "common/types.h"
#include "serve/protocol.h"

namespace predbus::serve
{

/** Listen on TCP 127.0.0.1:@p port (0 = ephemeral); @p bound_port
 * receives the actual port. Throws FatalError on failure. */
int listenTcp(u16 port, u16 &bound_port);

/** Listen on a Unix domain socket at @p path (unlinked first).
 * Throws FatalError on failure (including over-long paths). */
int listenUnix(const std::string &path);

/** Connect to TCP @p host:@p port. Throws FatalError on failure. */
int connectTcp(const std::string &host, u16 port);

/** Connect to the Unix socket at @p path. Throws FatalError. */
int connectUnix(const std::string &path);

/** Close @p fd if valid (idempotent helper). */
void closeFd(int fd);

/** Send the whole buffer (MSG_NOSIGNAL); false on any failure. */
bool sendAll(int fd, const void *data, std::size_t n);

enum class RecvStatus
{
    Ok,       ///< buffer filled
    Eof,      ///< clean close before the first byte
    Partial,  ///< peer closed mid-buffer
    Error,    ///< socket error
};

/** Receive exactly @p n bytes. */
RecvStatus recvAll(int fd, void *data, std::size_t n);

/** Serialize and send one frame. */
bool sendFrame(int fd, const protocol::Frame &frame);

enum class ReadResult
{
    Ok,          ///< frame parsed
    Eof,         ///< clean close on a frame boundary
    Truncated,   ///< peer closed mid-frame
    BadMagic,    ///< header magic mismatch — stream is garbage
    BadVersion,  ///< unsupported protocol version
    TooLarge,    ///< declared payload over kMaxPayload
    IoError,     ///< socket error
};

/** Read one length-prefixed frame off @p fd. */
ReadResult readFrame(int fd, protocol::Frame &frame);

} // namespace predbus::serve

#endif // PREDBUS_SERVE_NET_H
