/**
 * @file
 * Tail sampler for per-batch request spans. Every ENCODE/DECODE batch
 * produces one BatchSpan (trace ids, queue wait, codec time, words,
 * energy delta); keeping them all would be unbounded, and a plain ring
 * of the most *recent* batches would evict exactly the batches worth
 * keeping. Instead the sampler retains the tail of two distributions:
 * the K slowest batches (queue + codec time) and the K worst-savings
 * batches (lowest transition savings per word), which is what a
 * postmortem actually wants from SERVER_STATS --events.
 *
 * The hot path (offer(), called by worker threads per batch) keeps an
 * atomic admission threshold per class, so a batch that beats neither
 * tail costs two relaxed loads and no lock; only admissions take the
 * mutex to maintain the K-slot heaps.
 */

#ifndef PREDBUS_SERVE_BATCH_TRACE_H
#define PREDBUS_SERVE_BATCH_TRACE_H

#include <atomic>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace predbus::serve
{

/** One served batch, as retained by the tail sampler. */
struct BatchSpan
{
    u64 trace_id = 0;   ///< client trace context (0 = unstamped)
    u64 span_id = 0;
    u64 t_ns = 0;       ///< obs::nowNs() when the frame was read
    u64 queue_ns = 0;   ///< read → worker pickup
    u64 codec_ns = 0;   ///< encode/decode span time
    u64 seq = 0;
    u64 words = 0;
    u64 base_tau = 0;   ///< energy delta of this batch (0 when
    u64 base_kappa = 0; ///< metering is off)
    u64 coded_tau = 0;
    u64 coded_kappa = 0;
    u32 session = 0;
    bool is_encode = false;
    char family[15] = {};  ///< codec family, NUL-terminated

    void
    setFamily(const char *name)
    {
        std::strncpy(family, name, sizeof(family) - 1);
        family[sizeof(family) - 1] = '\0';
    }

    /** Retention keys (see class comment). */
    u64 latencyKey() const { return queue_ns + codec_ns; }

    /** Per-mille transitions saved at lambda=1, clamped to >= 0 so
     * the integer key orders "worst savings first" without floats.
     * Batches with no metered events rank worst (key 0). */
    static u64
    savedMilli(u64 base_events, u64 coded_events)
    {
        if (base_events == 0 || coded_events >= base_events)
            return 0;
        return (base_events - coded_events) * 1000 / base_events;
    }

    u64
    savedMilliKey() const
    {
        return savedMilli(base_tau + base_kappa,
                          coded_tau + coded_kappa);
    }
};

/**
 * Retains the top-K slowest and K worst-savings batches seen so far.
 * offer() is called per batch from worker threads; dump() (the
 * SERVER_STATS --events path) merges both classes, dedupes batches
 * retained by both, and sorts by arrival time.
 */
class BatchTailSampler
{
  public:
    /** @p per_class_capacity 0 disables the sampler entirely. */
    explicit BatchTailSampler(std::size_t per_class_capacity);

    bool enabled() const { return cap > 0; }

    /** Hot-path pre-check: counts the batch and reports whether a
     * span with these keys could enter either tail, so the caller can
     * skip building a BatchSpan at all for batches both tails would
     * reject (the steady state once the heaps are warm). A stale
     * floor read can at worst let a borderline batch through to
     * offer(), which re-checks under the same admission rules. */
    bool
    consider(u64 latency_key, u64 saved_milli)
    {
        if (!enabled())
            return false;
        total.fetch_add(1, std::memory_order_relaxed);
        const bool slow_ok =
            !slow.full ||
            latency_key > slow.floor.load(std::memory_order_relaxed);
        const bool worst_ok =
            !worst.full ||
            ~saved_milli > worst.floor.load(std::memory_order_relaxed);
        return slow_ok || worst_ok;
    }

    /** Submit a span consider() let through. Takes the mutex only on
     * admission; the batch was already counted by consider(). */
    void offer(const BatchSpan &span);

    /** Total batches ever offered. */
    u64 offered() const { return total.load(std::memory_order_relaxed); }

    /** Retained spans, deduped across classes, oldest first. */
    std::vector<BatchSpan> dump() const;

  private:
    /** One K-slot retention class: a min-heap on key() so the weakest
     * retained entry is evictable in O(log K). */
    struct Tail
    {
        std::vector<BatchSpan> heap;  ///< min-heap by key
        std::vector<u64> keys;        ///< parallel to heap
        /** Admission floor: once full, a span must beat this. */
        std::atomic<u64> floor{0};
        bool full = false;
    };

    /** @p better: for latency, bigger keys are worth keeping; for
     * savings, *smaller* keys are worse batches, so the key is
     * inverted by the caller. */
    void admit(Tail &tail, const BatchSpan &span, u64 key);

    std::size_t cap;
    std::atomic<u64> total{0};
    mutable std::mutex mu;
    Tail slow;   ///< key = latencyKey(), keep largest
    Tail worst;  ///< key = ~savedMilliKey(), keep largest (= worst savings)
};

} // namespace predbus::serve

#endif // PREDBUS_SERVE_BATCH_TRACE_H
