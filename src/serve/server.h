/**
 * @file
 * The stateful bus-transcoding server behind predbus_served.
 *
 * Architecture (docs/SERVING.md):
 *
 *   accept threads (one per listener: TCP and/or Unix socket)
 *     -> one reader thread per connection: frames the byte stream,
 *        applies backpressure, and enqueues parsed frames
 *     -> a fixed worker pool draining a bounded request queue
 *
 * Ordering: a session's FSMs must see its batches in order, so a
 * connection is scheduled onto the pool as a unit — it sits in the
 * ready queue at most once, and whichever worker holds it processes
 * exactly one pending frame before re-scheduling. Different
 * connections run on different workers concurrently; one connection's
 * requests are strictly serialized.
 *
 * Backpressure: the reader rejects a frame *at parse time* with an
 * Overloaded error when the global queued-frame budget
 * (Options::queue_capacity) or the per-connection pending cap
 * (Options::max_pending) is full. Memory is bounded by
 * queue_capacity x kMaxPayload regardless of client behavior;
 * nothing buffers without bound.
 *
 * Drain: beginDrain() stops accepting, half-closes every connection
 * (SHUT_RD), and lets the workers finish every already-queued batch —
 * responses are still written. waitDrained() blocks until the last
 * connection retires. stop() is the hard variant used by tests and
 * the final step of a graceful shutdown.
 */

#ifndef PREDBUS_SERVE_SERVER_H
#define PREDBUS_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coding/session.h"
#include "obs/metrics.h"
#include "serve/batch_trace.h"
#include "serve/flight_recorder.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace predbus::serve
{

/** Server configuration. */
struct ServerOptions
{
    /** Unix domain socket path; empty disables the Unix listener. */
    std::string unix_path;
    /** TCP port (0 = ephemeral); negative disables the TCP listener. */
    int tcp_port = -1;
    /** Worker pool size; 0 = hardware concurrency. */
    unsigned workers = 0;
    /** Global bound on queued-but-unprocessed frames. */
    unsigned queue_capacity = 256;
    /** Per-connection bound on pending frames. */
    unsigned max_pending = 32;
    /** Per-connection bound on open sessions. */
    unsigned max_sessions = 64;
    /** Flight-recorder ring capacity (rounded up to a power of 2). */
    unsigned flight_capacity = 256;
    /** Live energy attribution: meter every session's base-vs-coded
     * wire events into the serve.energy.* metrics. */
    bool meter_energy = true;
    /** Batch tail-sampler slots per retention class (slowest /
     * worst-savings); 0 disables per-batch span retention. */
    unsigned batch_trace_capacity = 64;
    /** Coupling ratio lambda for the saved-percent gauge and the
     * energy section of SERVER_STATS. */
    double energy_lambda = 1.0;
    /** Joules per self transition / per coupling event; both 0 keeps
     * SERVER_STATS in raw event counts (no Joule rows). Set from a
     * wires::WireModel by predbus_served --energy-wire. */
    double energy_joule_per_tau = 0.0;
    double energy_joule_per_kappa = 0.0;
};

class Server
{
  public:
    /** Construct and start listening/serving. Metrics go to
     * @p registry (serve.* names, docs/OBSERVABILITY.md). */
    explicit Server(ServerOptions options,
                    obs::Registry &registry = obs::Registry::global());
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Actual TCP port (after ephemeral resolution); 0 if disabled. */
    u16 tcpPort() const { return tcp_port; }

    /**
     * Server-stats JSON (serve/stats.h schema) at this instant — the
     * SERVER_STATS payload; also used by predbus_served for the
     * --stats-interval JSON-lines and the SIGUSR1 postmortem dump.
     */
    std::string statsJson(bool include_events) const;

    /** The protocol-event flight recorder (bounded, lock-free). */
    const FlightRecorder &flightRecorder() const { return recorder; }

    /** Stop accepting and half-close connections; in-flight batches
     * still complete and their responses are written. */
    void beginDrain();

    /** Block until every connection has retired (call beginDrain()
     * first, or this waits for clients to hang up on their own). */
    void waitDrained();

    /** Hard stop: abort connections, stop the pool, join all threads.
     * Idempotent; the destructor calls it. */
    void stop();

  private:
    /** Per-connection state. Field access rules:
     *  - pending/scheduled/input_done/broken/finalized: conn mutex;
     *  - sessions/next_session/desynced: only the (single) worker
     *    currently holding the connection's schedule token, or the
     *    finalizer after the token is permanently dropped;
     *  - writes to fd: write_mutex (reader rejects vs worker replies).
     */
    struct Conn
    {
        int fd = -1;
        std::mutex mutex;
        std::mutex write_mutex;

        /** A parsed frame plus the instant the reader finished
         * framing it — the anchor for the queue-wait measurement. */
        struct PendingFrame
        {
            protocol::Frame frame;
            u64 recv_ns = 0;
        };
        std::deque<PendingFrame> pending;
        bool scheduled = false;
        bool input_done = false;
        bool broken = false;
        bool finalized = false;

        /** Per-family serve.energy.<family>.* counters, resolved once
         * at session open (shared across sessions of a family). */
        struct FamilyEnergy
        {
            obs::Counter *base_tau = nullptr;
            obs::Counter *base_kappa = nullptr;
            obs::Counter *coded_tau = nullptr;
            obs::Counter *coded_kappa = nullptr;
            obs::Counter *words = nullptr;
        };

        struct Session
        {
            coding::CodecSession codec;
            std::string family;  ///< codec family metric segment
            bool desynced = false;
            /** Energy totals already published to the counters;
             * per-batch deltas are current - published. */
            coding::SessionEnergy published;
            FamilyEnergy fam;

            Session(coding::CodecSession codec, std::string family)
                : codec(std::move(codec)), family(std::move(family))
            {
            }
        };

        std::map<u32, Session> sessions;
        u32 next_session = 1;
    };

    using ConnPtr = std::shared_ptr<Conn>;

    void acceptLoop(int listen_fd);
    void readerLoop(ConnPtr conn);
    void workerLoop();

    /** Handle one request frame; returns false when the connection
     * should be torn down (write failure). @p recv_ns is when the
     * reader finished framing the request (queue-wait anchor). */
    bool handleFrame(Conn &conn, const protocol::Frame &frame,
                     u64 recv_ns);
    bool handleOpen(Conn &conn, const protocol::Frame &frame);
    bool handleBatch(Conn &conn, const protocol::Frame &frame,
                     u64 recv_ns);
    bool handleControl(Conn &conn, const protocol::Frame &frame);
    bool handleServerStats(Conn &conn, const protocol::Frame &frame);

    /** Publish the session's unpublished energy delta into the
     * per-family and server-wide counters; returns the delta. */
    coding::SessionEnergy publishEnergy(Conn::Session &session);

    /** Recompute serve.energy.saved_pct_milli from the energy
     * counters; called on scrape, not per batch. */
    void refreshEnergyGauge() const;

    /** The "serve.sessions.<family>" resident-session gauge. */
    obs::Gauge &familyGauge(const std::string &family);

    bool reply(Conn &conn, const protocol::Frame &frame);
    bool replyError(Conn &conn, const protocol::Frame &request,
                    protocol::ErrCode code, const std::string &message);

    /** Drop the connection's sessions and fd exactly once. */
    void finalize(const ConnPtr &conn);

    ServerOptions opt;
    obs::Registry &registry;

    // Listeners.
    std::vector<int> listen_fds;
    u16 tcp_port = 0;

    // Ready queue of connections with pending work.
    std::mutex ready_mutex;
    std::condition_variable ready_cv;
    std::deque<ConnPtr> ready;
    bool pool_stopping = false;

    // Global queued-frame budget (backpressure).
    std::atomic<int> queued{0};

    // Connection registry (for drain/stop) and thread bookkeeping.
    std::mutex conns_mutex;
    std::condition_variable conns_cv;
    std::vector<ConnPtr> conns;
    std::vector<std::thread> threads;
    std::atomic<bool> draining{false};
    std::atomic<bool> stopping{false};
    bool stopped = false;
    std::mutex stop_mutex;

    // serve.* metrics (resolved once; see docs/OBSERVABILITY.md).
    obs::Counter &m_accepted;
    obs::Gauge &m_conns_active;
    obs::Counter &m_sessions_opened;
    obs::Gauge &m_sessions_active;
    obs::Counter &m_batches;
    obs::Counter &m_words;
    obs::Counter &m_rejects;
    obs::Counter &m_errors;
    obs::Counter &m_desyncs;
    obs::Counter &m_resyncs;
    obs::Gauge &m_queue_depth;
    obs::Histogram &m_batch_ns;
    obs::Counter &m_stats_requests;
    obs::Histogram &m_queue_wait_ns;

    // Server-wide energy attribution (zero when metering is off).
    obs::Counter &m_energy_base_tau;
    obs::Counter &m_energy_base_kappa;
    obs::Counter &m_energy_coded_tau;
    obs::Counter &m_energy_coded_kappa;
    obs::Counter &m_energy_words;
    obs::Gauge &m_energy_saved_pct_milli;

    // Live-telemetry plane: event ring + batch tail + uptime anchor.
    FlightRecorder recorder;
    BatchTailSampler batch_sampler;
    u64 start_ns = 0;
};

} // namespace predbus::serve

#endif // PREDBUS_SERVE_SERVER_H
