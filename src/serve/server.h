/**
 * @file
 * The stateful bus-transcoding server behind predbus_served.
 *
 * Architecture (docs/SERVING.md):
 *
 *   one epoll IO thread: accepts on every listener, frames each
 *     connection's byte stream incrementally, and applies parse-time
 *     backpressure (Overloaded/Draining errors go out before a frame
 *     ever reaches the execution plane)
 *   N shard threads: each owns a fixed subset of connections (by
 *     connection serial) and the matching shard of the session store,
 *     draining a per-shard ready queue of connections with work
 *
 * Ordering: a session's FSMs must see its batches in order, so a
 * connection sits in its shard's ready queue at most once and the
 * shard thread processes exactly one pending frame before
 * re-scheduling it. All sessions of a connection live in that
 * connection's shard — in-order per-session semantics need no
 * cross-shard coordination, and the shard thread touches its slice of
 * the session store without locks (store/session_store.h).
 *
 * Sessions: codec state lives in a store::ShardedSessionStore keyed
 * by (connection serial << 32 | session id). When the resident-bytes
 * budget overflows, cold sessions are snapshotted and spilled to
 * disk; the next request for one lazily restores it byte-identically
 * — spill and resume are invisible on the wire (they surface only as
 * serve.store.* metrics and session_spill/session_resume flight
 * events).
 *
 * Backpressure: the IO thread rejects a frame *at parse time* with an
 * Overloaded error when the global queued-frame budget
 * (Options::queue_capacity) or the per-connection pending cap
 * (Options::max_pending) is full. Memory is bounded by
 * queue_capacity x kMaxPayload regardless of client behavior;
 * nothing buffers without bound.
 *
 * Drain: beginDrain() stops accepting and half-closes every
 * connection (SHUT_RD); the shard threads finish every already-queued
 * batch and responses are still written. waitDrained() blocks until
 * the last connection retires. stop() is the hard variant used by
 * tests and the final step of a graceful shutdown.
 */

#ifndef PREDBUS_SERVE_SERVER_H
#define PREDBUS_SERVE_SERVER_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "coding/session.h"
#include "obs/metrics.h"
#include "serve/batch_trace.h"
#include "serve/flight_recorder.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "store/session_store.h"

namespace predbus::serve
{

/** Server configuration. */
struct ServerOptions
{
    /** Unix domain socket path; empty disables the Unix listener. */
    std::string unix_path;
    /** TCP port (0 = ephemeral); negative disables the TCP listener. */
    int tcp_port = -1;
    /** Shard-thread count; 0 = hardware concurrency. Also the session
     * store's shard count (one store shard per thread). */
    unsigned workers = 0;
    /** Global bound on queued-but-unprocessed frames. */
    unsigned queue_capacity = 256;
    /** Per-connection bound on pending frames. */
    unsigned max_pending = 32;
    /** Per-connection bound on open sessions. */
    unsigned max_sessions = 64;
    /** Flight-recorder ring capacity (rounded up to a power of 2). */
    unsigned flight_capacity = 256;
    /** Live energy attribution: meter every session's base-vs-coded
     * wire events into the serve.energy.* metrics. */
    bool meter_energy = true;
    /** Batch tail-sampler slots per retention class (slowest /
     * worst-savings); 0 disables per-batch span retention. */
    unsigned batch_trace_capacity = 64;
    /** Coupling ratio lambda for the saved-percent gauge and the
     * energy section of SERVER_STATS. */
    double energy_lambda = 1.0;
    /** Joules per self transition / per coupling event; both 0 keeps
     * SERVER_STATS in raw event counts (no Joule rows). Set from a
     * wires::WireModel by predbus_served --energy-wire. */
    double energy_joule_per_tau = 0.0;
    double energy_joule_per_kappa = 0.0;

    /** Session-store resident budget across all shards; sessions past
     * it spill to disk and resume lazily (docs/STORE.md). */
    std::size_t store_resident_bytes = 64u << 20;
    /** Spill directory; empty = a private temp dir removed on stop. */
    std::string store_spill_dir;
    /** Spill segment-file rotation size. */
    std::size_t store_segment_bytes = 4u << 20;
};

class Server
{
  public:
    /** Construct and start listening/serving. Metrics go to
     * @p registry (serve.* names, docs/OBSERVABILITY.md). */
    explicit Server(ServerOptions options,
                    obs::Registry &registry = obs::Registry::global());
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Actual TCP port (after ephemeral resolution); 0 if disabled. */
    u16 tcpPort() const { return tcp_port; }

    /**
     * Server-stats JSON (serve/stats.h schema) at this instant — the
     * SERVER_STATS payload; also used by predbus_served for the
     * --stats-interval JSON-lines and the SIGUSR1 postmortem dump.
     */
    std::string statsJson(bool include_events) const;

    /** The protocol-event flight recorder (bounded, lock-free). */
    const FlightRecorder &flightRecorder() const { return recorder; }

    /** The tiered session store (resident shards + disk spill). */
    const store::ShardedSessionStore &sessionStore() const
    {
        return *session_store;
    }

    /** Stop accepting and half-close connections; in-flight batches
     * still complete and their responses are written. */
    void beginDrain();

    /** Block until every connection has retired (call beginDrain()
     * first, or this waits for clients to hang up on their own). */
    void waitDrained();

    /** Hard stop: abort connections, stop the threads, join them.
     * Idempotent; the destructor calls it. */
    void stop();

  private:
    /** Per-connection state. Field access rules:
     *  - rbuf/rpos: IO thread only (inbound framing buffer);
     *  - pending/scheduled/input_done/broken/finalized: conn mutex;
     *  - session_ids/next_session: only the owning shard thread, or
     *    the finalizer after every thread is joined;
     *  - writes to fd: write_mutex (IO-thread sheds vs shard replies).
     */
    struct Conn
    {
        int fd = -1;
        u32 serial = 0;  ///< shard-affinity tag, assigned at accept
        std::mutex mutex;
        std::mutex write_mutex;

        std::vector<u8> rbuf;  ///< unparsed inbound bytes
        std::size_t rpos = 0;  ///< consumed prefix of rbuf

        /** A parsed frame plus the instant the IO thread finished
         * framing it — the anchor for the queue-wait measurement. */
        struct PendingFrame
        {
            protocol::Frame frame;
            u64 recv_ns = 0;
        };
        std::deque<PendingFrame> pending;
        bool scheduled = false;
        bool input_done = false;
        bool broken = false;
        bool finalized = false;

        std::set<u32> session_ids;
        u32 next_session = 1;
    };

    using ConnPtr = std::shared_ptr<Conn>;

    /** Per-family serve.energy.<family>.* counters, resolved once at
     * session open (shared across sessions of a family). */
    struct FamilyEnergy
    {
        obs::Counter *base_tau = nullptr;
        obs::Counter *base_kappa = nullptr;
        obs::Counter *coded_tau = nullptr;
        obs::Counter *coded_kappa = nullptr;
        obs::Counter *words = nullptr;
    };

    /** Serve-level session state that stays resident when the codec
     * spills: tiny, and needed to publish energy deltas at spill
     * time. Owned by the session's shard thread. */
    struct SessionMeta
    {
        std::string family;  ///< codec family metric segment
        FamilyEnergy fam;
        /** Energy totals already published to the counters; per-batch
         * deltas are current - published. */
        coding::SessionEnergy published;
    };

    /** One shard of the execution plane: a ready queue of connections
     * with work, and the resident metadata of this shard's sessions.
     * The meta map is touched only by the shard's thread. */
    struct ShardQueue
    {
        std::mutex mutex;
        std::condition_variable cv;
        std::deque<ConnPtr> ready;
        std::unordered_map<u64, SessionMeta> meta;
    };

    /** Store key: connection serial tags the shard, session id the
     * session within the connection. */
    static u64
    sessionKey(u32 serial, u32 session_id)
    {
        return (static_cast<u64>(serial) << 32) | session_id;
    }

    void ioLoop();
    void shardLoop(unsigned shard_id);

    /** Accept every pending connection on @p listen_fd. */
    void acceptReady(int listen_fd, int epoll_fd,
                     std::unordered_map<int, ConnPtr> &by_fd);
    /** One readiness event on @p conn's socket: read, frame,
     * dispatch. Detaches the fd from epoll on EOF/violation. */
    void onReadable(const ConnPtr &conn, int epoll_fd,
                    std::unordered_map<int, ConnPtr> &by_fd);
    /** Frame rbuf and dispatch complete frames; false on a framing
     * violation (error already sent — stop reading this stream). */
    bool parseInbound(const ConnPtr &conn);
    /** Parse-time admission: shed (Draining/Overloaded) or enqueue
     * onto the connection's shard. */
    void dispatchInbound(const ConnPtr &conn, protocol::Frame frame,
                         u64 recv_ns);
    /** Mark the read side finished and make sure the shard thread
     * takes one more pass (it drains pending, then finalizes). */
    void markInputDone(const ConnPtr &conn);
    /** Push @p conn onto its shard's ready queue. */
    void scheduleOnShard(const ConnPtr &conn);

    /** Handle one request frame; returns false when the connection
     * should be torn down (write failure). @p recv_ns is when the IO
     * thread finished framing the request (queue-wait anchor). */
    bool handleFrame(Conn &conn, const protocol::Frame &frame,
                     u64 recv_ns);
    bool handleOpen(Conn &conn, const protocol::Frame &frame);
    bool handleBatch(Conn &conn, const protocol::Frame &frame,
                     u64 recv_ns);
    bool handleControl(Conn &conn, const protocol::Frame &frame);
    bool handleServerStats(Conn &conn, const protocol::Frame &frame);

    /** The shard structures of @p conn / of store key @p key. */
    ShardQueue &shardOf(const Conn &conn);
    ShardQueue &shardOfKey(u64 key);

    /** Publish the session's unpublished energy delta into the
     * per-family and server-wide counters; returns the delta. */
    coding::SessionEnergy publishEnergy(SessionMeta &meta,
                                        coding::CodecSession &codec);

    /** Recompute serve.energy.saved_pct_milli from the energy
     * counters; called on scrape, not per batch. */
    void refreshEnergyGauge() const;

    /** The "serve.sessions.<family>" resident-session gauge. */
    obs::Gauge &familyGauge(const std::string &family);

    bool reply(Conn &conn, const protocol::Frame &frame);
    bool replyError(Conn &conn, const protocol::Frame &request,
                    protocol::ErrCode code, const std::string &message);

    /** Drop the connection's sessions (both store tiers) and fd
     * exactly once. Runs on the owning shard thread, or on the
     * stopping thread after every worker is joined. */
    void finalize(const ConnPtr &conn);

    ServerOptions opt;
    obs::Registry &registry;

    // Listeners.
    std::vector<int> listen_fds;
    u16 tcp_port = 0;

    // Execution plane: one queue per shard thread.
    unsigned n_shards = 0;
    std::vector<std::unique_ptr<ShardQueue>> shard_queues;
    std::atomic<bool> pool_stopping{false};

    // Tiered session store (one store shard per shard thread).
    std::unique_ptr<store::ShardedSessionStore> session_store;

    // Global queued-frame budget (backpressure).
    std::atomic<int> queued{0};

    // Connection registry (for drain/stop) and thread bookkeeping.
    std::mutex conns_mutex;
    std::condition_variable conns_cv;
    std::vector<ConnPtr> conns;
    std::vector<std::thread> threads;
    u32 next_serial = 1;  ///< IO thread only
    std::atomic<bool> draining{false};
    std::atomic<bool> stopping{false};
    bool stopped = false;
    std::mutex stop_mutex;

    // serve.* metrics (resolved once; see docs/OBSERVABILITY.md).
    obs::Counter &m_accepted;
    obs::Gauge &m_conns_active;
    obs::Counter &m_sessions_opened;
    obs::Gauge &m_sessions_active;
    obs::Counter &m_batches;
    obs::Counter &m_words;
    obs::Counter &m_rejects;
    obs::Counter &m_errors;
    obs::Counter &m_desyncs;
    obs::Counter &m_resyncs;
    obs::Gauge &m_queue_depth;
    obs::Histogram &m_batch_ns;
    obs::Counter &m_stats_requests;
    obs::Histogram &m_queue_wait_ns;

    // Server-wide energy attribution (zero when metering is off).
    obs::Counter &m_energy_base_tau;
    obs::Counter &m_energy_base_kappa;
    obs::Counter &m_energy_coded_tau;
    obs::Counter &m_energy_coded_kappa;
    obs::Counter &m_energy_words;
    obs::Gauge &m_energy_saved_pct_milli;

    // Live-telemetry plane: event ring + batch tail + uptime anchor.
    FlightRecorder recorder;
    BatchTailSampler batch_sampler;
    u64 start_ns = 0;
};

} // namespace predbus::serve

#endif // PREDBUS_SERVE_SERVER_H
