#include "serve/protocol.h"

#include <cstring>

namespace predbus::serve::protocol
{

namespace
{

void
putU16(std::vector<u8> &out, u16 v)
{
    out.push_back(static_cast<u8>(v));
    out.push_back(static_cast<u8>(v >> 8));
}

void
putU32(std::vector<u8> &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

void
putU64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(v >> (8 * i)));
}

/** Bounds-checked little-endian reader over a payload. */
class Cursor
{
  public:
    explicit Cursor(std::span<const u8> bytes) : bytes(bytes) {}

    bool
    getU16(u16 &v)
    {
        if (bytes.size() - pos < 2)
            return false;
        v = static_cast<u16>(bytes[pos] | (u16{bytes[pos + 1]} << 8));
        pos += 2;
        return true;
    }

    bool
    getU32(u32 &v)
    {
        if (bytes.size() - pos < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= u32{bytes[pos + i]} << (8 * i);
        pos += 4;
        return true;
    }

    bool
    getU64(u64 &v)
    {
        if (bytes.size() - pos < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= u64{bytes[pos + i]} << (8 * i);
        pos += 8;
        return true;
    }

    bool
    getBytes(std::size_t n, std::string &out)
    {
        if (bytes.size() - pos < n)
            return false;
        out.assign(reinterpret_cast<const char *>(bytes.data() + pos),
                   n);
        pos += n;
        return true;
    }

    bool done() const { return pos == bytes.size(); }

  private:
    std::span<const u8> bytes;
    std::size_t pos = 0;
};

Frame
frameOf(MsgType type, u32 session, u64 seq)
{
    Frame frame;
    frame.hdr.type = static_cast<u8>(type);
    frame.hdr.session = session;
    frame.hdr.seq = seq;
    return frame;
}

bool
isType(const Frame &frame, MsgType type)
{
    return frame.hdr.type == static_cast<u8>(type);
}

} // namespace

const char *
errName(ErrCode code)
{
    switch (code) {
      case ErrCode::BadFrame:
        return "bad_frame";
      case ErrCode::BadVersion:
        return "bad_version";
      case ErrCode::BadSpec:
        return "bad_spec";
      case ErrCode::NoSession:
        return "no_session";
      case ErrCode::Desync:
        return "desync";
      case ErrCode::Overloaded:
        return "overloaded";
      case ErrCode::Draining:
        return "draining";
      case ErrCode::TooLarge:
        return "too_large";
      case ErrCode::SessionLimit:
        return "session_limit";
      case ErrCode::Internal:
        return "internal";
    }
    return "unknown";
}

void
writeHeader(std::vector<u8> &out, const FrameHeader &hdr)
{
    putU32(out, kMagic);
    out.push_back(kVersion);
    out.push_back(hdr.type);
    putU16(out, hdr.flags);
    putU32(out, hdr.session);
    putU32(out, hdr.payload_len);
    putU64(out, hdr.seq);
}

HeaderStatus
parseHeader(std::span<const u8> bytes, FrameHeader &hdr)
{
    auto u32At = [&](std::size_t at) {
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= u32{bytes[at + i]} << (8 * i);
        return v;
    };
    u64 seq = 0;
    for (int i = 0; i < 8; ++i)
        seq |= u64{bytes[16 + i]} << (8 * i);

    const u32 magic = u32At(0);
    const u8 version = bytes[4];
    hdr.type = bytes[5];
    // Unknown flag bits pass through unmodified: receivers only test
    // the bits they know, so the field can grow meaning later.
    hdr.flags = static_cast<u16>(bytes[6] | (u16{bytes[7]} << 8));
    hdr.session = u32At(8);
    hdr.payload_len = u32At(12);
    hdr.seq = seq;
    if (magic != kMagic)
        return HeaderStatus::BadMagic;
    if (version != kVersion)
        return HeaderStatus::BadVersion;
    if (hdr.payload_len > kMaxPayload)
        return HeaderStatus::TooLarge;
    return HeaderStatus::Ok;
}

std::vector<u8>
serialize(const Frame &frame)
{
    std::vector<u8> out;
    out.reserve(kHeaderSize + frame.payload.size());
    FrameHeader hdr = frame.hdr;
    hdr.payload_len = static_cast<u32>(frame.payload.size());
    writeHeader(out, hdr);
    out.insert(out.end(), frame.payload.begin(), frame.payload.end());
    return out;
}

Frame
makeOpenSession(const std::string &spec)
{
    Frame frame = frameOf(MsgType::OpenSession, 0, 0);
    putU16(frame.payload, static_cast<u16>(spec.size()));
    frame.payload.insert(frame.payload.end(), spec.begin(), spec.end());
    return frame;
}

namespace
{

/** Stamp @p trace (when given) as the flagged payload prefix. */
void
putTraceContext(Frame &frame, const TraceContext *trace)
{
    if (!trace)
        return;
    frame.hdr.flags |= kFlagTraceContext;
    putU64(frame.payload, trace->trace_id);
    putU64(frame.payload, trace->span_id);
}

/** Consume the trace-context prefix if the frame's flag announces
 * one; false only when the flagged prefix is truncated. */
bool
getTraceContext(const Frame &frame, Cursor &cur,
                std::optional<TraceContext> &trace)
{
    trace.reset();
    if ((frame.hdr.flags & kFlagTraceContext) == 0)
        return true;
    TraceContext ctx;
    if (!cur.getU64(ctx.trace_id) || !cur.getU64(ctx.span_id))
        return false;
    trace = ctx;
    return true;
}

} // namespace

Frame
makeEncode(u32 session, u64 seq, u64 checksum,
           std::span<const Word> words, const TraceContext *trace)
{
    Frame frame = frameOf(MsgType::Encode, session, seq);
    putTraceContext(frame, trace);
    putU64(frame.payload, checksum);
    putU32(frame.payload, static_cast<u32>(words.size()));
    for (const Word w : words)
        putU32(frame.payload, w);
    return frame;
}

Frame
makeDecode(u32 session, u64 seq, u64 checksum,
           std::span<const u64> states, const TraceContext *trace)
{
    Frame frame = frameOf(MsgType::Decode, session, seq);
    putTraceContext(frame, trace);
    putU64(frame.payload, checksum);
    putU32(frame.payload, static_cast<u32>(states.size()));
    for (const u64 s : states)
        putU64(frame.payload, s);
    return frame;
}

Frame
makeStats(u32 session)
{
    return frameOf(MsgType::Stats, session, 0);
}

Frame
makeResync(u32 session)
{
    return frameOf(MsgType::Resync, session, 0);
}

Frame
makeClose(u32 session)
{
    return frameOf(MsgType::Close, session, 0);
}

Frame
makeServerStats(bool include_events)
{
    Frame frame = frameOf(MsgType::ServerStats, 0, 0);
    frame.payload.push_back(include_events ? 1 : 0);
    return frame;
}

Frame
makeOpenOk(u32 session, u32 width)
{
    Frame frame = frameOf(MsgType::OpenOk, session, 0);
    putU32(frame.payload, session);
    putU32(frame.payload, width);
    return frame;
}

Frame
makeEncodeOk(u32 session, u64 seq, u64 checksum,
             std::span<const u64> states)
{
    Frame frame = frameOf(MsgType::EncodeOk, session, seq);
    putU64(frame.payload, checksum);
    putU32(frame.payload, static_cast<u32>(states.size()));
    for (const u64 s : states)
        putU64(frame.payload, s);
    return frame;
}

Frame
makeDecodeOk(u32 session, u64 seq, u64 checksum,
             std::span<const Word> words)
{
    Frame frame = frameOf(MsgType::DecodeOk, session, seq);
    putU64(frame.payload, checksum);
    putU32(frame.payload, static_cast<u32>(words.size()));
    for (const Word w : words)
        putU32(frame.payload, w);
    return frame;
}

Frame
makeStatsOk(u32 session, const SessionStats &stats)
{
    Frame frame = frameOf(MsgType::StatsOk, session, 0);
    putU64(frame.payload, stats.seq);
    putU64(frame.payload, stats.checksum);
    putU32(frame.payload, stats.epoch);
    putU32(frame.payload, stats.width);
    const coding::OpCounts &ops = stats.ops;
    for (const u64 v : {ops.cycles, ops.matches, ops.shifts,
                        ops.counter_incs, ops.compares, ops.swaps,
                        ops.divisions, ops.raw_sends, ops.hits,
                        ops.last_hits})
        putU64(frame.payload, v);
    for (const u64 v : {stats.base_energy.tau, stats.base_energy.kappa,
                        stats.coded_energy.tau,
                        stats.coded_energy.kappa, stats.metered_words})
        putU64(frame.payload, v);
    return frame;
}

Frame
makeResyncOk(u32 session, u32 epoch)
{
    Frame frame = frameOf(MsgType::ResyncOk, session, 0);
    putU32(frame.payload, epoch);
    return frame;
}

Frame
makeCloseOk(u32 session)
{
    return frameOf(MsgType::CloseOk, session, 0);
}

Frame
makeServerStatsOk(const std::string &json)
{
    Frame frame = frameOf(MsgType::ServerStatsOk, 0, 0);
    // Hard-capped so the frame always fits kMaxPayload; a snapshot is
    // a few KiB in practice, hitting the cap means a bug upstream.
    const std::size_t n =
        std::min<std::size_t>(json.size(), kMaxPayload - 4);
    putU32(frame.payload, static_cast<u32>(n));
    frame.payload.insert(frame.payload.end(), json.begin(),
                         json.begin() + static_cast<long>(n));
    return frame;
}

Frame
makeError(u32 session, u64 seq, ErrCode code,
          const std::string &message)
{
    Frame frame = frameOf(MsgType::Error, session, seq);
    putU16(frame.payload, static_cast<u16>(code));
    const std::size_t n = std::min<std::size_t>(message.size(), 512);
    putU16(frame.payload, static_cast<u16>(n));
    frame.payload.insert(frame.payload.end(), message.begin(),
                         message.begin() + static_cast<long>(n));
    return frame;
}

bool
parseOpenSession(const Frame &frame, std::string &spec)
{
    if (!isType(frame, MsgType::OpenSession))
        return false;
    Cursor cur(frame.payload);
    u16 len = 0;
    return cur.getU16(len) && len <= kMaxSpecLen &&
           cur.getBytes(len, spec) && cur.done();
}

bool
parseEncode(const Frame &frame, u64 &checksum,
            std::vector<Word> &words,
            std::optional<TraceContext> &trace)
{
    if (!isType(frame, MsgType::Encode))
        return false;
    Cursor cur(frame.payload);
    u32 count = 0;
    if (!getTraceContext(frame, cur, trace) ||
        !cur.getU64(checksum) || !cur.getU32(count) ||
        count > kMaxBatchWords)
        return false;
    words.clear();
    words.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u32 w = 0;
        if (!cur.getU32(w))
            return false;
        words.push_back(w);
    }
    return cur.done();
}

bool
parseEncode(const Frame &frame, u64 &checksum,
            std::vector<Word> &words)
{
    std::optional<TraceContext> trace;
    return parseEncode(frame, checksum, words, trace);
}

bool
parseDecode(const Frame &frame, u64 &checksum,
            std::vector<u64> &states,
            std::optional<TraceContext> &trace)
{
    if (!isType(frame, MsgType::Decode))
        return false;
    Cursor cur(frame.payload);
    u32 count = 0;
    if (!getTraceContext(frame, cur, trace) ||
        !cur.getU64(checksum) || !cur.getU32(count) ||
        count > kMaxBatchWords)
        return false;
    states.clear();
    states.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u64 s = 0;
        if (!cur.getU64(s))
            return false;
        states.push_back(s);
    }
    return cur.done();
}

bool
parseDecode(const Frame &frame, u64 &checksum,
            std::vector<u64> &states)
{
    std::optional<TraceContext> trace;
    return parseDecode(frame, checksum, states, trace);
}

bool
parseOpenOk(const Frame &frame, u32 &session, u32 &width)
{
    if (!isType(frame, MsgType::OpenOk))
        return false;
    Cursor cur(frame.payload);
    return cur.getU32(session) && cur.getU32(width) && cur.done();
}

bool
parseEncodeOk(const Frame &frame, u64 &checksum,
              std::vector<u64> &states)
{
    if (!isType(frame, MsgType::EncodeOk))
        return false;
    Cursor cur(frame.payload);
    u32 count = 0;
    if (!cur.getU64(checksum) || !cur.getU32(count) ||
        count > kMaxBatchWords)
        return false;
    states.clear();
    states.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u64 s = 0;
        if (!cur.getU64(s))
            return false;
        states.push_back(s);
    }
    return cur.done();
}

bool
parseDecodeOk(const Frame &frame, u64 &checksum,
              std::vector<Word> &words)
{
    if (!isType(frame, MsgType::DecodeOk))
        return false;
    Cursor cur(frame.payload);
    u32 count = 0;
    if (!cur.getU64(checksum) || !cur.getU32(count) ||
        count > kMaxBatchWords)
        return false;
    words.clear();
    words.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        u32 w = 0;
        if (!cur.getU32(w))
            return false;
        words.push_back(w);
    }
    return cur.done();
}

bool
parseServerStats(const Frame &frame, bool &include_events)
{
    if (!isType(frame, MsgType::ServerStats))
        return false;
    if (frame.payload.size() != 1)
        return false;
    // Only bit 0 is assigned; unknown/reserved flag bits are ignored
    // so a newer client's request still gets a v1 snapshot.
    include_events = (frame.payload[0] & 1u) != 0;
    return true;
}

bool
parseServerStatsOk(const Frame &frame, std::string &json)
{
    if (!isType(frame, MsgType::ServerStatsOk))
        return false;
    Cursor cur(frame.payload);
    u32 len = 0;
    return cur.getU32(len) && cur.getBytes(len, json) && cur.done();
}

bool
parseStatsOk(const Frame &frame, SessionStats &stats)
{
    if (!isType(frame, MsgType::StatsOk))
        return false;
    Cursor cur(frame.payload);
    if (!cur.getU64(stats.seq) || !cur.getU64(stats.checksum) ||
        !cur.getU32(stats.epoch) || !cur.getU32(stats.width))
        return false;
    coding::OpCounts &ops = stats.ops;
    for (u64 *field : {&ops.cycles, &ops.matches, &ops.shifts,
                       &ops.counter_incs, &ops.compares, &ops.swaps,
                       &ops.divisions, &ops.raw_sends, &ops.hits,
                       &ops.last_hits}) {
        if (!cur.getU64(*field))
            return false;
    }
    for (u64 *field :
         {&stats.base_energy.tau, &stats.base_energy.kappa,
          &stats.coded_energy.tau, &stats.coded_energy.kappa,
          &stats.metered_words}) {
        if (!cur.getU64(*field))
            return false;
    }
    return cur.done();
}

bool
parseResyncOk(const Frame &frame, u32 &epoch)
{
    if (!isType(frame, MsgType::ResyncOk))
        return false;
    Cursor cur(frame.payload);
    return cur.getU32(epoch) && cur.done();
}

bool
parseError(const Frame &frame, ErrCode &code, std::string &message)
{
    if (!isType(frame, MsgType::Error))
        return false;
    Cursor cur(frame.payload);
    u16 raw_code = 0;
    u16 len = 0;
    if (!cur.getU16(raw_code) || !cur.getU16(len) ||
        !cur.getBytes(len, message) || !cur.done())
        return false;
    code = static_cast<ErrCode>(raw_code);
    return true;
}

} // namespace predbus::serve::protocol
