#include "serve/client.h"

#include "common/log.h"

namespace predbus::serve
{

Client
Client::connectUnixSocket(const std::string &path)
{
    return Client(connectUnix(path));
}

Client
Client::connectTcpSocket(const std::string &host, u16 port)
{
    return Client(connectTcp(host, port));
}

Client::~Client()
{
    closeFd(sock);
}

Client::Client(Client &&other) noexcept : sock(other.sock)
{
    other.sock = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        closeFd(sock);
        sock = other.sock;
        other.sock = -1;
    }
    return *this;
}

void
Client::send(const protocol::Frame &frame)
{
    if (!sendFrame(sock, frame))
        fatal("serve client: connection lost while sending");
}

protocol::Frame
Client::recv()
{
    protocol::Frame frame;
    switch (readFrame(sock, frame)) {
      case ReadResult::Ok:
        return frame;
      case ReadResult::Eof:
      case ReadResult::Truncated:
        fatal("serve client: server closed the connection");
      case ReadResult::BadMagic:
      case ReadResult::BadVersion:
      case ReadResult::TooLarge:
        fatal("serve client: malformed frame from server");
      case ReadResult::IoError:
        fatal("serve client: receive failed");
    }
    fatal("serve client: unreachable");
}

namespace
{

/** Engage @p error if @p frame is an error response. */
bool
takeError(const protocol::Frame &frame,
          std::optional<ServeError> &error)
{
    if (frame.hdr.type != static_cast<u8>(protocol::MsgType::Error))
        return false;
    ServeError e;
    if (!protocol::parseError(frame, e.code, e.message)) {
        e.code = protocol::ErrCode::Internal;
        e.message = "unparseable error response";
    }
    error = std::move(e);
    return true;
}

} // namespace

std::optional<ClientSession>
Client::open(const std::string &spec,
             std::optional<ServeError> &error)
{
    send(protocol::makeOpenSession(spec));
    const protocol::Frame response = recv();
    if (takeError(response, error))
        return std::nullopt;
    u32 session = 0;
    u32 width = 0;
    if (!protocol::parseOpenOk(response, session, width))
        fatal("serve client: bad OPEN_SESSION response");
    return ClientSession(*this, session, width);
}

ClientSession
Client::openOrThrow(const std::string &spec)
{
    std::optional<ServeError> error;
    std::optional<ClientSession> session = open(spec, error);
    if (!session) {
        fatal("serve client: open '", spec, "' failed: ",
              protocol::errName(error->code), " (", error->message,
              ")");
    }
    return *session;
}

std::string
Client::serverStats(bool include_events)
{
    send(protocol::makeServerStats(include_events));
    const protocol::Frame response = recv();
    std::optional<ServeError> error;
    if (takeError(response, error)) {
        fatal("serve client: SERVER_STATS failed: ",
              protocol::errName(error->code));
    }
    std::string json;
    if (!protocol::parseServerStatsOk(response, json))
        fatal("serve client: bad SERVER_STATS response");
    return json;
}

BatchResult<u64>
ClientSession::encode(std::span<const Word> words,
                      const protocol::TraceContext *trace)
{
    BatchResult<u64> result;
    client->send(
        protocol::makeEncode(id_, seq_no + 1, sum, words, trace));
    const protocol::Frame response = client->recv();
    if (takeError(response, result.error))
        return result;
    if (!protocol::parseEncodeOk(response, result.checksum,
                                 result.data))
        fatal("serve client: bad ENCODE response");

    // Advance the mirror and verify the server agrees with it.
    ++seq_no;
    for (const u64 state : result.data)
        sum = coding::checksumFold(sum, state);
    if (result.checksum != sum || response.hdr.seq != seq_no) {
        fatal("serve client: server checksum diverged "
              "(session state corrupted)");
    }
    return result;
}

BatchResult<Word>
ClientSession::decode(std::span<const u64> states,
                      const protocol::TraceContext *trace)
{
    BatchResult<Word> result;
    client->send(
        protocol::makeDecode(id_, seq_no + 1, sum, states, trace));
    const protocol::Frame response = client->recv();
    if (takeError(response, result.error))
        return result;
    if (!protocol::parseDecodeOk(response, result.checksum,
                                 result.data))
        fatal("serve client: bad DECODE response");

    ++seq_no;
    for (const Word word : result.data)
        sum = coding::checksumFold(sum, word);
    if (result.checksum != sum || response.hdr.seq != seq_no) {
        fatal("serve client: server checksum diverged "
              "(session state corrupted)");
    }
    return result;
}

protocol::SessionStats
ClientSession::stats()
{
    client->send(protocol::makeStats(id_));
    const protocol::Frame response = client->recv();
    std::optional<ServeError> error;
    if (takeError(response, error)) {
        fatal("serve client: STATS failed: ",
              protocol::errName(error->code));
    }
    protocol::SessionStats stats;
    if (!protocol::parseStatsOk(response, stats))
        fatal("serve client: bad STATS response");
    return stats;
}

u32
ClientSession::resync()
{
    client->send(protocol::makeResync(id_));
    const protocol::Frame response = client->recv();
    std::optional<ServeError> error;
    if (takeError(response, error)) {
        fatal("serve client: RESYNC failed: ",
              protocol::errName(error->code));
    }
    u32 epoch = 0;
    if (!protocol::parseResyncOk(response, epoch))
        fatal("serve client: bad RESYNC response");
    seq_no = 0;
    sum = coding::kChecksumSeed;
    return epoch;
}

void
ClientSession::close()
{
    client->send(protocol::makeClose(id_));
    const protocol::Frame response = client->recv();
    std::optional<ServeError> error;
    if (takeError(response, error)) {
        fatal("serve client: CLOSE failed: ",
              protocol::errName(error->code));
    }
}

} // namespace predbus::serve
