/**
 * @file
 * Flight recorder: a bounded, lock-free ring of recent protocol
 * events (session open/close, desync, resync, shed, drain) kept by
 * the server for postmortems. Writers are the reader/worker threads
 * on their hot paths, so record() must never block or allocate: one
 * relaxed fetch_add claims a slot, a per-slot seqlock stamp makes
 * torn writes detectable, and the newest events simply overwrite the
 * oldest. dump() (the STATS-with-events path and the SIGUSR1 handler)
 * reads concurrently with writers and skips any slot it catches
 * mid-write.
 */

#ifndef PREDBUS_SERVE_FLIGHT_RECORDER_H
#define PREDBUS_SERVE_FLIGHT_RECORDER_H

#include <atomic>
#include <memory>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace predbus::serve
{

enum class FlightEventKind : u8
{
    SessionOpen = 1,
    SessionClose = 2,
    Desync = 3,
    Resync = 4,
    Shed = 5,
    Drain = 6,
    SessionSpill = 7,   ///< session state pushed to the store's disk tier
    SessionResume = 8,  ///< session state lazily restored from disk
};

/** Stable lowercase name ("desync", "shed", ...). */
const char *flightEventName(FlightEventKind kind);

/** One recorded event. Fixed-size so slots are plain memory. */
struct FlightEvent
{
    u64 time_ns = 0;  ///< obs::nowNs() at record time
    u64 seq = 0;      ///< batch sequence involved (0 if n/a)
    u32 session = 0;  ///< session id (0 if n/a)
    u8 kind = 0;      ///< FlightEventKind
    char label[27] = {};  ///< short detail, NUL-terminated, truncated
};

class FlightRecorder
{
  public:
    /** @p capacity is rounded up to a power of two, min 16. */
    explicit FlightRecorder(std::size_t capacity = 256);

    /** Lock-free, wait-free; safe from any thread. */
    void record(FlightEventKind kind, u32 session, u64 seq,
                std::string_view label);

    /**
     * Snapshot of the retained events, oldest first. Taken while
     * writers keep writing: a slot caught mid-overwrite is skipped,
     * every returned event is complete and in true record order.
     */
    std::vector<FlightEvent> dump() const;

    /** Total events ever recorded (retained + overwritten). */
    u64 recorded() const;

    std::size_t capacity() const { return mask + 1; }

  private:
    /**
     * Per-slot seqlock: stamp 0 = never written, odd = write in
     * progress, even 2t+2 = slot holds the event claimed at ticket t.
     * The ticket doubles as the global order for dump().
     */
    struct Slot
    {
        std::atomic<u64> stamp{0};
        FlightEvent event;
    };

    std::atomic<u64> cursor{0};
    std::unique_ptr<Slot[]> slots;
    std::size_t mask;
};

} // namespace predbus::serve

#endif // PREDBUS_SERVE_FLIGHT_RECORDER_H
