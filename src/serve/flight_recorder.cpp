#include "serve/flight_recorder.h"

#include <algorithm>
#include <cstring>

#include "obs/tracing.h"

namespace predbus::serve
{

const char *
flightEventName(FlightEventKind kind)
{
    switch (kind) {
      case FlightEventKind::SessionOpen:
        return "session_open";
      case FlightEventKind::SessionClose:
        return "session_close";
      case FlightEventKind::Desync:
        return "desync";
      case FlightEventKind::Resync:
        return "resync";
      case FlightEventKind::Shed:
        return "shed";
      case FlightEventKind::Drain:
        return "drain";
      case FlightEventKind::SessionSpill:
        return "session_spill";
      case FlightEventKind::SessionResume:
        return "session_resume";
    }
    return "unknown";
}

namespace
{

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 16;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots(std::make_unique<Slot[]>(roundUpPow2(capacity))),
      mask(roundUpPow2(capacity) - 1)
{
}

void
FlightRecorder::record(FlightEventKind kind, u32 session, u64 seq,
                       std::string_view label)
{
    const u64 ticket =
        cursor.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots[ticket & mask];

    FlightEvent ev;
    ev.time_ns = obs::nowNs();
    ev.seq = seq;
    ev.session = session;
    ev.kind = static_cast<u8>(kind);
    const std::size_t n =
        std::min(label.size(), sizeof(ev.label) - 1);
    std::memcpy(ev.label, label.data(), n);

    // Seqlock write: go odd, store, go even-with-ticket. If a lapped
    // writer races us on this slot, readers see mismatched stamps and
    // drop the slot — one lost event beats a lock on the hot path.
    slot.stamp.store(2 * ticket + 1, std::memory_order_release);
    slot.event = ev;
    slot.stamp.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<FlightEvent>
FlightRecorder::dump() const
{
    std::vector<std::pair<u64, FlightEvent>> kept;
    kept.reserve(mask + 1);
    for (std::size_t i = 0; i <= mask; ++i) {
        const Slot &slot = slots[i];
        const u64 before =
            slot.stamp.load(std::memory_order_acquire);
        if (before == 0 || (before & 1) != 0)
            continue;  // empty or mid-write
        FlightEvent ev = slot.event;
        std::atomic_thread_fence(std::memory_order_acquire);
        const u64 after =
            slot.stamp.load(std::memory_order_relaxed);
        if (after != before)
            continue;  // overwritten while copying
        kept.emplace_back((before - 2) / 2, ev);
    }
    std::sort(kept.begin(), kept.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    std::vector<FlightEvent> out;
    out.reserve(kept.size());
    for (auto &[ticket, ev] : kept)
        out.push_back(ev);
    return out;
}

u64
FlightRecorder::recorded() const
{
    return cursor.load(std::memory_order_relaxed);
}

} // namespace predbus::serve
