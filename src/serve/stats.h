/**
 * @file
 * Server-stats JSON (schema "predbus.serverstats.v1"): the payload of
 * the SERVER_STATS response, each --stats-interval JSON-line, and the
 * SIGUSR1 postmortem dump. One compact line of RFC-8259 JSON:
 *
 *   {"schema":"predbus.serverstats.v1","uptime_s":...,
 *    "draining":false,"counters":{...},"gauges":{...},
 *    "histograms":{"name":{"count":..,"min":..,"max":..,"mean":..,
 *                          "p50":..,"p95":..,"p99":..}},
 *    "energy":{"lambda":..,"total":{...},"families":{"window":{...}}},
 *    "events_recorded":N,
 *    "events":[{"t_ns":..,"kind":"desync","session":..,"seq":..,
 *               "label":".."}],        // only when requested
 *    "batches_recorded":N,
 *    "batches":[{"t_ns":..,"trace_id":"..","span_id":"..",
 *                "kind":"encode","session":..,"seq":..,
 *                "queue_ns":..,"codec_ns":..,"words":..,
 *                "family":"..","base_tau":..,...,"saved_pct":..}]}
 *                                      // only when requested
 *
 * Counters/gauges/histograms mirror a Registry snapshot taken at call
 * time (writers are never blocked), so every name in
 * docs/OBSERVABILITY.md appears here under the same key. The "energy"
 * section is derived from the serve.energy.* counters of the same
 * snapshot: each row carries the raw wire-event totals, the
 * transitions saved, and the percent saved at the server's coupling
 * ratio lambda — plus base/coded/saved picojoules when the server was
 * given a wire model. Trace/span ids in "batches" are 16-digit hex
 * strings (u64s would lose precision in double-based JSON readers).
 */

#ifndef PREDBUS_SERVE_STATS_H
#define PREDBUS_SERVE_STATS_H

#include <string>

#include "obs/metrics.h"
#include "serve/batch_trace.h"
#include "serve/flight_recorder.h"

namespace predbus::serve
{

struct ServerStatsContext
{
    double uptime_s = 0.0;
    bool draining = false;
    /** nullptr leaves events_recorded at 0 and omits "events". */
    const FlightRecorder *recorder = nullptr;
    bool include_events = false;
    /** nullptr leaves batches_recorded at 0 and omits "batches". */
    const BatchTailSampler *batches = nullptr;
    /** Coupling ratio for every derived saved_pct. */
    double energy_lambda = 1.0;
    /** Joules per wire event; both 0 omits the *_pj fields. */
    double joule_per_tau = 0.0;
    double joule_per_kappa = 0.0;
};

/** Serialize @p snapshot + @p ctx as one compact JSON line (no
 * trailing newline). */
std::string serverStatsJson(const obs::RegistrySnapshot &snapshot,
                            const ServerStatsContext &ctx);

} // namespace predbus::serve

#endif // PREDBUS_SERVE_STATS_H
