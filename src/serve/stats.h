/**
 * @file
 * Server-stats JSON (schema "predbus.serverstats.v1"): the payload of
 * the SERVER_STATS response, each --stats-interval JSON-line, and the
 * SIGUSR1 postmortem dump. One compact line of RFC-8259 JSON:
 *
 *   {"schema":"predbus.serverstats.v1","uptime_s":...,
 *    "draining":false,"counters":{...},"gauges":{...},
 *    "histograms":{"name":{"count":..,"min":..,"max":..,"mean":..,
 *                          "p50":..,"p95":..,"p99":..}},
 *    "events_recorded":N,
 *    "events":[{"t_ns":..,"kind":"desync","session":..,"seq":..,
 *               "label":".."}]}        // only when requested
 *
 * Counters/gauges/histograms mirror a Registry snapshot taken at call
 * time (writers are never blocked), so every name in
 * docs/OBSERVABILITY.md appears here under the same key.
 */

#ifndef PREDBUS_SERVE_STATS_H
#define PREDBUS_SERVE_STATS_H

#include <string>

#include "obs/metrics.h"
#include "serve/flight_recorder.h"

namespace predbus::serve
{

struct ServerStatsContext
{
    double uptime_s = 0.0;
    bool draining = false;
    /** nullptr leaves events_recorded at 0 and omits "events". */
    const FlightRecorder *recorder = nullptr;
    bool include_events = false;
};

/** Serialize @p snapshot + @p ctx as one compact JSON line (no
 * trailing newline). */
std::string serverStatsJson(const obs::RegistrySnapshot &snapshot,
                            const ServerStatsContext &ctx);

} // namespace predbus::serve

#endif // PREDBUS_SERVE_STATS_H
