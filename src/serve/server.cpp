#include "serve/server.h"

#include <cerrno>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "obs/tracing.h"
#include "serve/stats.h"

namespace predbus::serve
{

namespace
{

unsigned
resolveWorkers(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

/** Codec family as a metric segment: the spec before the first ':'. */
std::string
familyOf(const std::string &spec)
{
    return obs::metricSegment(spec.substr(0, spec.find(':')));
}

} // namespace

Server::Server(ServerOptions options, obs::Registry &reg)
    : opt(std::move(options)),
      registry(reg),
      m_accepted(reg.counter("serve.connections_accepted")),
      m_conns_active(reg.gauge("serve.connections_active")),
      m_sessions_opened(reg.counter("serve.sessions_opened")),
      m_sessions_active(reg.gauge("serve.sessions_active")),
      m_batches(reg.counter("serve.batches")),
      m_words(reg.counter("serve.words")),
      m_rejects(reg.counter("serve.rejects")),
      m_errors(reg.counter("serve.errors")),
      m_desyncs(reg.counter("serve.desyncs")),
      m_resyncs(reg.counter("serve.resyncs")),
      m_queue_depth(reg.gauge("serve.queue_depth")),
      m_batch_ns(reg.histogram("serve.batch_ns")),
      m_stats_requests(reg.counter("serve.stats_requests")),
      m_queue_wait_ns(reg.histogram("serve.queue_wait_ns")),
      m_energy_base_tau(reg.counter("serve.energy.base_tau")),
      m_energy_base_kappa(reg.counter("serve.energy.base_kappa")),
      m_energy_coded_tau(reg.counter("serve.energy.coded_tau")),
      m_energy_coded_kappa(reg.counter("serve.energy.coded_kappa")),
      m_energy_words(reg.counter("serve.energy.words")),
      m_energy_saved_pct_milli(
          reg.gauge("serve.energy.saved_pct_milli")),
      recorder(opt.flight_capacity),
      batch_sampler(opt.batch_trace_capacity),
      start_ns(obs::nowNs())
{
    if (opt.unix_path.empty() && opt.tcp_port < 0)
        fatal("server needs a unix path and/or a tcp port");
    if (opt.queue_capacity == 0 || opt.max_pending == 0)
        fatal("queue capacity and per-connection pending cap "
              "must be positive");

    if (!opt.unix_path.empty())
        listen_fds.push_back(listenUnix(opt.unix_path));
    if (opt.tcp_port >= 0) {
        listen_fds.push_back(
            listenTcp(static_cast<u16>(opt.tcp_port), tcp_port));
    }

    const unsigned workers = resolveWorkers(opt.workers);
    {
        // Accept threads push reader threads into `threads` under
        // conns_mutex; hold it here so their pushes can't interleave
        // with ours.
        std::lock_guard<std::mutex> lock(conns_mutex);
        threads.reserve(workers + listen_fds.size());
        for (unsigned i = 0; i < workers; ++i)
            threads.emplace_back([this] { workerLoop(); });
        for (const int fd : listen_fds)
            threads.emplace_back([this, fd] { acceptLoop(fd); });
    }
    logInfo("serve: listening (",
            opt.unix_path.empty() ? "no unix" : opt.unix_path,
            ", tcp port ", tcp_port, "), ", workers, " workers, queue ",
            opt.queue_capacity);
}

Server::~Server()
{
    stop();
}

void
Server::acceptLoop(int listen_fd)
{
    while (!stopping.load() && !draining.load()) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int n = ::poll(&pfd, 1, 100);
        if (n <= 0)
            continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            logWarn("serve: accept failed: errno ", errno);
            continue;
        }
        if (stopping.load() || draining.load()) {
            closeFd(fd);
            break;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        m_accepted.inc();
        m_conns_active.add(1);
        {
            std::lock_guard<std::mutex> lock(conns_mutex);
            conns.push_back(conn);
            threads.emplace_back(
                [this, conn] { readerLoop(conn); });
        }
    }
}

void
Server::readerLoop(ConnPtr conn)
{
    for (;;) {
        protocol::Frame frame;
        const ReadResult result = readFrame(conn->fd, frame);
        const u64 recv_ns = obs::nowNs();
        if (result == ReadResult::Ok) {
            if (draining.load() || stopping.load()) {
                m_rejects.inc();
                recorder.record(FlightEventKind::Shed,
                                frame.hdr.session, frame.hdr.seq,
                                "draining");
                replyError(*conn, frame, protocol::ErrCode::Draining,
                           "server is draining");
                continue;
            }
            bool enqueued = false;
            {
                std::lock_guard<std::mutex> lock(conn->mutex);
                if (conn->pending.size() <
                        opt.max_pending &&
                    queued.load(std::memory_order_relaxed) <
                        static_cast<int>(opt.queue_capacity)) {
                    queued.fetch_add(1, std::memory_order_relaxed);
                    m_queue_depth.add(1);
                    conn->pending.push_back(
                        Conn::PendingFrame{std::move(frame), recv_ns});
                    if (!conn->scheduled) {
                        conn->scheduled = true;
                        std::lock_guard<std::mutex> rlock(ready_mutex);
                        ready.push_back(conn);
                        ready_cv.notify_one();
                    }
                    enqueued = true;
                }
            }
            if (!enqueued) {
                m_rejects.inc();
                recorder.record(FlightEventKind::Shed,
                                frame.hdr.session, frame.hdr.seq,
                                "queue_full");
                replyError(*conn, frame, protocol::ErrCode::Overloaded,
                           "request queue full");
            }
            continue;
        }

        // Stream over: clean EOF, a framing violation, or an IO
        // error. Report framing violations best-effort, then stop
        // reading; frames already queued still complete.
        protocol::Frame nil;
        switch (result) {
          case ReadResult::BadMagic:
            m_errors.inc();
            replyError(*conn, nil, protocol::ErrCode::BadFrame,
                       "bad frame magic");
            break;
          case ReadResult::BadVersion:
            m_errors.inc();
            replyError(*conn, nil, protocol::ErrCode::BadVersion,
                       "unsupported protocol version");
            break;
          case ReadResult::TooLarge:
            m_errors.inc();
            replyError(*conn, nil, protocol::ErrCode::TooLarge,
                       "frame payload over limit");
            break;
          case ReadResult::Truncated:
          case ReadResult::IoError:
          case ReadResult::Eof:
          case ReadResult::Ok:
            break;
        }
        break;
    }

    bool finalize_now = false;
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        conn->input_done = true;
        finalize_now = !conn->scheduled && conn->pending.empty();
    }
    if (finalize_now)
        finalize(conn);
}

void
Server::workerLoop()
{
    for (;;) {
        ConnPtr conn;
        {
            std::unique_lock<std::mutex> lock(ready_mutex);
            ready_cv.wait(lock, [this] {
                return pool_stopping || !ready.empty();
            });
            if (pool_stopping)
                return;
            conn = std::move(ready.front());
            ready.pop_front();
        }

        Conn::PendingFrame item;
        bool have = false;
        bool broken;
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            broken = conn->broken;
            if (!broken && !conn->pending.empty()) {
                item = std::move(conn->pending.front());
                conn->pending.pop_front();
                queued.fetch_sub(1, std::memory_order_relaxed);
                m_queue_depth.add(-1);
                have = true;
            }
        }

        if (have && !handleFrame(*conn, item.frame, item.recv_ns)) {
            // Write failed: the peer is gone. Drop what's left and
            // kick the reader off the socket.
            std::lock_guard<std::mutex> lock(conn->mutex);
            conn->broken = true;
            broken = true;
            ::shutdown(conn->fd, SHUT_RDWR);
        }

        bool finalize_now = false;
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            if (broken && !conn->pending.empty()) {
                queued.fetch_sub(
                    static_cast<int>(conn->pending.size()),
                    std::memory_order_relaxed);
                m_queue_depth.add(
                    -static_cast<s64>(conn->pending.size()));
                conn->pending.clear();
            }
            if (!conn->pending.empty()) {
                std::lock_guard<std::mutex> rlock(ready_mutex);
                ready.push_back(conn);
                ready_cv.notify_one();
            } else {
                conn->scheduled = false;
                finalize_now = conn->input_done;
            }
        }
        if (finalize_now)
            finalize(conn);
    }
}

bool
Server::handleFrame(Conn &conn, const protocol::Frame &frame,
                    u64 recv_ns)
{
    using protocol::MsgType;
    switch (static_cast<MsgType>(frame.hdr.type)) {
      case MsgType::OpenSession:
        return handleOpen(conn, frame);
      case MsgType::Encode:
      case MsgType::Decode:
        return handleBatch(conn, frame, recv_ns);
      case MsgType::Stats:
      case MsgType::Resync:
      case MsgType::Close:
        return handleControl(conn, frame);
      case MsgType::ServerStats:
        // Admin frame: server-scoped, needs no session.
        return handleServerStats(conn, frame);
      default:
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "unknown request type");
    }
}

bool
Server::handleOpen(Conn &conn, const protocol::Frame &frame)
{
    std::string spec;
    if (!protocol::parseOpenSession(frame, spec)) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed OPEN_SESSION payload");
    }
    if (conn.sessions.size() >= opt.max_sessions) {
        m_errors.inc();
        return replyError(conn, frame,
                          protocol::ErrCode::SessionLimit,
                          "session limit reached");
    }
    try {
        coding::CodecSession codec(spec);
        codec.attachSpanMetrics(registry);
        if (opt.meter_energy)
            codec.enableEnergyMetering();
        const u32 width = codec.codec().width();
        const u32 id = conn.next_session++;
        std::string family = familyOf(spec);
        familyGauge(family).add(1);
        Conn::Session session(std::move(codec), std::move(family));
        if (opt.meter_energy) {
            const std::string prefix =
                "serve.energy." + session.family + ".";
            session.fam.base_tau =
                &registry.counter(prefix + "base_tau");
            session.fam.base_kappa =
                &registry.counter(prefix + "base_kappa");
            session.fam.coded_tau =
                &registry.counter(prefix + "coded_tau");
            session.fam.coded_kappa =
                &registry.counter(prefix + "coded_kappa");
            session.fam.words = &registry.counter(prefix + "words");
        }
        conn.sessions.emplace(id, std::move(session));
        m_sessions_opened.inc();
        m_sessions_active.add(1);
        recorder.record(FlightEventKind::SessionOpen, id, 0, spec);
        return reply(conn, protocol::makeOpenOk(id, width));
    } catch (const FatalError &e) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadSpec,
                          e.what());
    }
}

coding::SessionEnergy
Server::publishEnergy(Conn::Session &session)
{
    const coding::SessionEnergy now = session.codec.energy();
    coding::SessionEnergy delta;
    delta.base.tau = now.base.tau - session.published.base.tau;
    delta.base.kappa = now.base.kappa - session.published.base.kappa;
    delta.coded.tau = now.coded.tau - session.published.coded.tau;
    delta.coded.kappa =
        now.coded.kappa - session.published.coded.kappa;
    delta.words = now.words - session.published.words;
    session.published = now;

    session.fam.base_tau->inc(delta.base.tau);
    session.fam.base_kappa->inc(delta.base.kappa);
    session.fam.coded_tau->inc(delta.coded.tau);
    session.fam.coded_kappa->inc(delta.coded.kappa);
    session.fam.words->inc(delta.words);
    m_energy_base_tau.inc(delta.base.tau);
    m_energy_base_kappa.inc(delta.base.kappa);
    m_energy_coded_tau.inc(delta.coded.tau);
    m_energy_coded_kappa.inc(delta.coded.kappa);
    m_energy_words.inc(delta.words);
    return delta;
}

void
Server::refreshEnergyGauge() const
{
    // Server-wide savings gauge, derived from the counter totals
    // (per-mille so the s64 gauge keeps float-free precision). The
    // gauge is a pure function of the counters, so it is refreshed on
    // scrape instead of per batch to keep publishEnergy off the
    // floating-point unit in the serve hot path.
    coding::EnergyCount base{m_energy_base_tau.value(),
                             m_energy_base_kappa.value()};
    coding::EnergyCount coded{m_energy_coded_tau.value(),
                              m_energy_coded_kappa.value()};
    const double b = base.cost(opt.energy_lambda);
    if (b > 0.0) {
        const double saved =
            1000.0 * (1.0 - coded.cost(opt.energy_lambda) / b);
        m_energy_saved_pct_milli.set(static_cast<s64>(saved));
    }
}

bool
Server::handleBatch(Conn &conn, const protocol::Frame &frame,
                    u64 recv_ns)
{
    const auto it = conn.sessions.find(frame.hdr.session);
    if (it == conn.sessions.end()) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::NoSession,
                          "unknown session");
    }
    Conn::Session &session = it->second;
    if (session.desynced) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::Desync,
                          "session desynchronized; RESYNC required");
    }

    const bool is_encode =
        frame.hdr.type == static_cast<u8>(protocol::MsgType::Encode);
    u64 client_sum = 0;
    std::vector<Word> words;
    std::vector<u64> states;
    std::optional<protocol::TraceContext> trace;
    const bool parsed =
        is_encode
            ? protocol::parseEncode(frame, client_sum, words, trace)
            : protocol::parseDecode(frame, client_sum, states, trace);
    if (!parsed) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed batch payload");
    }

    // The networked synchronized-dictionary invariant: the batch must
    // be the next in sequence and the client's view of the output
    // stream must match ours, or the FSMs are not advanced at all.
    coding::CodecSession &codec = session.codec;
    if (frame.hdr.seq != codec.seq() + 1 ||
        client_sum != codec.checksum()) {
        session.desynced = true;
        m_desyncs.inc();
        m_errors.inc();
        recorder.record(FlightEventKind::Desync, frame.hdr.session,
                        frame.hdr.seq,
                        frame.hdr.seq != codec.seq() + 1
                            ? "seq_mismatch"
                            : "checksum_mismatch");
        return replyError(conn, frame, protocol::ErrCode::Desync,
                          "sequence/checksum mismatch; RESYNC "
                          "required");
    }

    const u64 t0 = obs::nowNs();
    protocol::Frame response;
    std::size_t batch_words = 0;
    if (is_encode) {
        states.clear();
        codec.encodeBatch(words, states);
        batch_words = words.size();
        response =
            protocol::makeEncodeOk(frame.hdr.session, codec.seq(),
                                   codec.checksum(), states);
    } else {
        words.clear();
        codec.decodeBatch(states, words);
        batch_words = states.size();
        response =
            protocol::makeDecodeOk(frame.hdr.session, codec.seq(),
                                   codec.checksum(), words);
    }
    const u64 t1 = obs::nowNs();
    m_batches.inc();
    m_words.inc(batch_words);
    m_batch_ns.record(static_cast<double>(t1 - t0));
    const u64 queue_ns = t0 > recv_ns ? t0 - recv_ns : 0;
    m_queue_wait_ns.record(static_cast<double>(queue_ns));

    coding::SessionEnergy delta;
    if (codec.energyMeteringEnabled())
        delta = publishEnergy(session);

    const u64 saved_milli =
        BatchSpan::savedMilli(delta.base.tau + delta.base.kappa,
                              delta.coded.tau + delta.coded.kappa);
    if (batch_sampler.consider(queue_ns + (t1 - t0), saved_milli)) {
        BatchSpan span;
        if (trace) {
            span.trace_id = trace->trace_id;
            span.span_id = trace->span_id;
        }
        span.t_ns = recv_ns;
        span.queue_ns = queue_ns;
        span.codec_ns = t1 - t0;
        span.seq = frame.hdr.seq;
        span.words = batch_words;
        span.base_tau = delta.base.tau;
        span.base_kappa = delta.base.kappa;
        span.coded_tau = delta.coded.tau;
        span.coded_kappa = delta.coded.kappa;
        span.session = frame.hdr.session;
        span.is_encode = is_encode;
        span.setFamily(session.family.c_str());
        batch_sampler.offer(span);
    }
    return reply(conn, response);
}

bool
Server::handleControl(Conn &conn, const protocol::Frame &frame)
{
    const auto it = conn.sessions.find(frame.hdr.session);
    if (it == conn.sessions.end()) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::NoSession,
                          "unknown session");
    }
    Conn::Session &session = it->second;

    switch (static_cast<protocol::MsgType>(frame.hdr.type)) {
      case protocol::MsgType::Stats: {
          protocol::SessionStats stats;
          stats.seq = session.codec.seq();
          stats.checksum = session.codec.checksum();
          stats.epoch = session.codec.epoch();
          stats.width = session.codec.codec().width();
          stats.ops = session.codec.codec().ops();
          const coding::SessionEnergy energy = session.codec.energy();
          stats.base_energy = energy.base;
          stats.coded_energy = energy.coded;
          stats.metered_words = energy.words;
          return reply(conn, protocol::makeStatsOk(frame.hdr.session,
                                                   stats));
      }
      case protocol::MsgType::Resync:
        session.codec.resync();
        // The session meters restart with the new epoch; restart the
        // published baseline too or the next delta would underflow.
        session.published = coding::SessionEnergy{};
        session.desynced = false;
        m_resyncs.inc();
        recorder.record(FlightEventKind::Resync, frame.hdr.session,
                        0,
                        "epoch=" +
                            std::to_string(session.codec.epoch()));
        return reply(conn,
                     protocol::makeResyncOk(frame.hdr.session,
                                            session.codec.epoch()));
      case protocol::MsgType::Close:
        familyGauge(session.family).add(-1);
        recorder.record(FlightEventKind::SessionClose,
                        frame.hdr.session, 0, session.family);
        conn.sessions.erase(it);
        m_sessions_active.add(-1);
        return reply(conn, protocol::makeCloseOk(frame.hdr.session));
      default:
        panic("handleControl: unexpected type ",
              unsigned{frame.hdr.type});
    }
}

bool
Server::handleServerStats(Conn &conn, const protocol::Frame &frame)
{
    bool include_events = false;
    if (!protocol::parseServerStats(frame, include_events)) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed SERVER_STATS payload");
    }
    m_stats_requests.inc();
    return reply(conn,
                 protocol::makeServerStatsOk(
                     statsJson(include_events)));
}

obs::Gauge &
Server::familyGauge(const std::string &family)
{
    return registry.gauge("serve.sessions." + family);
}

std::string
Server::statsJson(bool include_events) const
{
    refreshEnergyGauge();
    ServerStatsContext ctx;
    ctx.uptime_s =
        static_cast<double>(obs::nowNs() - start_ns) / 1e9;
    ctx.draining = draining.load(std::memory_order_relaxed);
    ctx.recorder = &recorder;
    ctx.include_events = include_events;
    ctx.batches = &batch_sampler;
    ctx.energy_lambda = opt.energy_lambda;
    ctx.joule_per_tau = opt.energy_joule_per_tau;
    ctx.joule_per_kappa = opt.energy_joule_per_kappa;
    return serverStatsJson(registry.snapshot(), ctx);
}

bool
Server::reply(Conn &conn, const protocol::Frame &frame)
{
    std::lock_guard<std::mutex> lock(conn.write_mutex);
    return sendFrame(conn.fd, frame);
}

bool
Server::replyError(Conn &conn, const protocol::Frame &request,
                   protocol::ErrCode code, const std::string &message)
{
    return reply(conn, protocol::makeError(request.hdr.session,
                                           request.hdr.seq, code,
                                           message));
}

void
Server::finalize(const ConnPtr &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->finalized)
            return;
        conn->finalized = true;
        if (!conn->pending.empty()) {
            queued.fetch_sub(static_cast<int>(conn->pending.size()),
                             std::memory_order_relaxed);
            m_queue_depth.add(-static_cast<s64>(conn->pending.size()));
            conn->pending.clear();
        }
    }
    if (!conn->sessions.empty()) {
        for (const auto &[id, session] : conn->sessions) {
            familyGauge(session.family).add(-1);
            recorder.record(FlightEventKind::SessionClose, id, 0,
                            session.family);
        }
        m_sessions_active.add(-static_cast<s64>(conn->sessions.size()));
        conn->sessions.clear();
    }
    closeFd(conn->fd);
    m_conns_active.add(-1);
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        std::erase(conns, conn);
    }
    conns_cv.notify_all();
}

void
Server::beginDrain()
{
    if (!draining.exchange(true))
        recorder.record(FlightEventKind::Drain, 0, 0, "begin");
    std::lock_guard<std::mutex> lock(conns_mutex);
    for (const ConnPtr &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
}

void
Server::waitDrained()
{
    std::unique_lock<std::mutex> lock(conns_mutex);
    conns_cv.wait(lock, [this] {
        return conns.empty() &&
               queued.load(std::memory_order_relaxed) == 0;
    });
}

void
Server::stop()
{
    std::lock_guard<std::mutex> stop_lock(stop_mutex);
    if (stopped)
        return;
    stopped = true;

    stopping.store(true);
    draining.store(true);
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        for (const ConnPtr &conn : conns)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    {
        std::lock_guard<std::mutex> lock(ready_mutex);
        pool_stopping = true;
        ready_cv.notify_all();
    }

    // Joining drains the accept loops, the readers (their sockets are
    // shut down), and the workers. New reader threads cannot appear:
    // the accept loops observe `stopping` before spawning.
    for (;;) {
        std::vector<std::thread> to_join;
        {
            std::lock_guard<std::mutex> lock(conns_mutex);
            to_join.swap(threads);
        }
        if (to_join.empty())
            break;
        for (std::thread &t : to_join)
            t.join();
    }

    // Workers may have exited holding schedule tokens; retire any
    // connection still registered.
    std::vector<ConnPtr> leftover;
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        leftover = conns;
    }
    for (const ConnPtr &conn : leftover)
        finalize(conn);

    for (const int fd : listen_fds)
        closeFd(fd);
    listen_fds.clear();
    if (!opt.unix_path.empty())
        ::unlink(opt.unix_path.c_str());
}

} // namespace predbus::serve
