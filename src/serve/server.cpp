#include "serve/server.h"

#include <cerrno>

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/log.h"
#include "obs/tracing.h"
#include "serve/stats.h"

namespace predbus::serve
{

namespace
{

unsigned
resolveWorkers(unsigned requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 2;
}

/** Codec family as a metric segment: the spec before the first ':'. */
std::string
familyOf(const std::string &spec)
{
    return obs::metricSegment(spec.substr(0, spec.find(':')));
}

} // namespace

Server::Server(ServerOptions options, obs::Registry &reg)
    : opt(std::move(options)),
      registry(reg),
      m_accepted(reg.counter("serve.connections_accepted")),
      m_conns_active(reg.gauge("serve.connections_active")),
      m_sessions_opened(reg.counter("serve.sessions_opened")),
      m_sessions_active(reg.gauge("serve.sessions_active")),
      m_batches(reg.counter("serve.batches")),
      m_words(reg.counter("serve.words")),
      m_rejects(reg.counter("serve.rejects")),
      m_errors(reg.counter("serve.errors")),
      m_desyncs(reg.counter("serve.desyncs")),
      m_resyncs(reg.counter("serve.resyncs")),
      m_queue_depth(reg.gauge("serve.queue_depth")),
      m_batch_ns(reg.histogram("serve.batch_ns")),
      m_stats_requests(reg.counter("serve.stats_requests")),
      m_queue_wait_ns(reg.histogram("serve.queue_wait_ns")),
      m_energy_base_tau(reg.counter("serve.energy.base_tau")),
      m_energy_base_kappa(reg.counter("serve.energy.base_kappa")),
      m_energy_coded_tau(reg.counter("serve.energy.coded_tau")),
      m_energy_coded_kappa(reg.counter("serve.energy.coded_kappa")),
      m_energy_words(reg.counter("serve.energy.words")),
      m_energy_saved_pct_milli(
          reg.gauge("serve.energy.saved_pct_milli")),
      recorder(opt.flight_capacity),
      batch_sampler(opt.batch_trace_capacity),
      start_ns(obs::nowNs())
{
    if (opt.unix_path.empty() && opt.tcp_port < 0)
        fatal("server needs a unix path and/or a tcp port");
    if (opt.queue_capacity == 0 || opt.max_pending == 0)
        fatal("queue capacity and per-connection pending cap "
              "must be positive");

    if (!opt.unix_path.empty())
        listen_fds.push_back(listenUnix(opt.unix_path));
    if (opt.tcp_port >= 0) {
        listen_fds.push_back(
            listenTcp(static_cast<u16>(opt.tcp_port), tcp_port));
    }

    n_shards = resolveWorkers(opt.workers);
    shard_queues.reserve(n_shards);
    for (unsigned i = 0; i < n_shards; ++i)
        shard_queues.push_back(std::make_unique<ShardQueue>());

    // One store shard per shard thread: the thread that executes a
    // connection is the only one touching its slice of the store.
    store::StoreOptions store_opt;
    store_opt.shards = n_shards;
    store_opt.resident_bytes = opt.store_resident_bytes;
    store_opt.spill_dir = opt.store_spill_dir;
    store_opt.segment_bytes = opt.store_segment_bytes;
    session_store = std::make_unique<store::ShardedSessionStore>(
        std::move(store_opt), &registry);

    store::StoreHooks hooks;
    hooks.before_spill = [this](u64 key,
                                store::StoredSession &stored) {
        // Flush the unpublished energy delta so the spilled snapshot
        // and the published counters agree; after_resume re-baselines
        // from the restored totals.
        if (stored.session.energyMeteringEnabled())
            publishEnergy(shardOfKey(key).meta.at(key),
                          stored.session);
    };
    hooks.after_resume = [this](u64 key,
                                store::StoredSession &stored) {
        stored.session.attachSpanMetrics(registry);
        shardOfKey(key).meta.at(key).published =
            stored.session.energy();
    };
    hooks.on_event = [this](const store::StoreEvent &event) {
        recorder.record(
            event.kind == store::StoreEventKind::Spill
                ? FlightEventKind::SessionSpill
                : FlightEventKind::SessionResume,
            static_cast<u32>(event.key), 0,
            "shard=" + std::to_string(event.shard) +
                " b=" + std::to_string(event.bytes));
    };
    session_store->setHooks(std::move(hooks));

    threads.reserve(n_shards + 1);
    for (unsigned i = 0; i < n_shards; ++i)
        threads.emplace_back([this, i] { shardLoop(i); });
    threads.emplace_back([this] { ioLoop(); });

    logInfo("serve: listening (",
            opt.unix_path.empty() ? "no unix" : opt.unix_path,
            ", tcp port ", tcp_port, "), ", n_shards,
            " shards, queue ", opt.queue_capacity,
            ", store budget ", opt.store_resident_bytes, " B");
}

Server::~Server()
{
    stop();
}

Server::ShardQueue &
Server::shardOf(const Conn &conn)
{
    return *shard_queues[conn.serial % n_shards];
}

Server::ShardQueue &
Server::shardOfKey(u64 key)
{
    return *shard_queues[(key >> 32) % n_shards];
}

// ---------------------------------------------------------------- IO plane

void
Server::ioLoop()
{
    const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epfd < 0)
        fatal("epoll_create1 failed: errno ", errno);
    for (const int fd : listen_fds) {
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev) != 0)
            fatal("epoll_ctl(listener) failed: errno ", errno);
    }

    std::unordered_map<int, ConnPtr> by_fd;
    epoll_event events[64];
    while (!stopping.load()) {
        const int n = ::epoll_wait(epfd, events, 64, 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            logWarn("serve: epoll_wait failed: errno ", errno);
            break;
        }
        for (int i = 0; i < n && !stopping.load(); ++i) {
            const int fd = events[i].data.fd;
            const bool is_listener =
                std::find(listen_fds.begin(), listen_fds.end(), fd) !=
                listen_fds.end();
            if (is_listener) {
                acceptReady(fd, epfd, by_fd);
                continue;
            }
            const auto it = by_fd.find(fd);
            if (it != by_fd.end())
                onReadable(it->second, epfd, by_fd);
        }
    }

    // Sockets the IO plane still watched: hand them to the shard
    // threads (stop() shuts the fds down, so their streams are over).
    for (auto &[fd, conn] : by_fd)
        markInputDone(conn);
    ::close(epfd);
}

void
Server::acceptReady(int listen_fd, int epoll_fd,
                    std::unordered_map<int, ConnPtr> &by_fd)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            if (errno != EAGAIN && errno != EWOULDBLOCK &&
                errno != ECONNABORTED)
                logWarn("serve: accept failed: errno ", errno);
            return;
        }
        if (stopping.load() || draining.load()) {
            closeFd(fd);
            return;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->serial = next_serial++;
        m_accepted.inc();
        m_conns_active.add(1);
        {
            std::lock_guard<std::mutex> lock(conns_mutex);
            conns.push_back(conn);
        }
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
            logWarn("serve: epoll_ctl(conn) failed: errno ", errno);
            markInputDone(conn);
            continue;
        }
        by_fd.emplace(fd, std::move(conn));
        // The listener is level-triggered: if more connections are
        // queued, the next epoll_wait delivers it again. One accept
        // per pass keeps a connect storm from starving reads.
        return;
    }
}

void
Server::onReadable(const ConnPtr &conn, int epoll_fd,
                   std::unordered_map<int, ConnPtr> &by_fd)
{
    // Blocking fd + level-triggered readiness: one recv() per event
    // never blocks, and leftover bytes re-arm epoll immediately.
    u8 buf[64 * 1024];
    const ssize_t n = ::recv(conn->fd, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK))
        return;

    bool stream_over = n <= 0;
    if (n > 0) {
        conn->rbuf.insert(conn->rbuf.end(), buf, buf + n);
        // A framing violation poisons the stream: the error reply is
        // already out, stop reading (queued frames still complete).
        stream_over = !parseInbound(conn);
        if (stream_over)
            ::shutdown(conn->fd, SHUT_RD);
    }
    if (stream_over) {
        ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
        by_fd.erase(conn->fd);
        markInputDone(conn);
    }
}

bool
Server::parseInbound(const ConnPtr &conn)
{
    bool ok = true;
    std::vector<u8> &rbuf = conn->rbuf;
    std::size_t &rpos = conn->rpos;
    while (ok) {
        const std::size_t avail = rbuf.size() - rpos;
        if (avail < protocol::kHeaderSize)
            break;
        protocol::FrameHeader hdr;
        const protocol::HeaderStatus status = protocol::parseHeader(
            std::span<const u8>(rbuf.data() + rpos,
                                protocol::kHeaderSize),
            hdr);
        if (status != protocol::HeaderStatus::Ok) {
            m_errors.inc();
            protocol::Frame nil;
            switch (status) {
              case protocol::HeaderStatus::BadMagic:
                replyError(*conn, nil, protocol::ErrCode::BadFrame,
                           "bad frame magic");
                break;
              case protocol::HeaderStatus::BadVersion:
                replyError(*conn, nil, protocol::ErrCode::BadVersion,
                           "unsupported protocol version");
                break;
              default:
                replyError(*conn, nil, protocol::ErrCode::TooLarge,
                           "frame payload over limit");
                break;
            }
            ok = false;
            break;
        }
        if (avail < protocol::kHeaderSize + hdr.payload_len)
            break;
        protocol::Frame frame;
        frame.hdr = hdr;
        const u8 *payload = rbuf.data() + rpos + protocol::kHeaderSize;
        frame.payload.assign(payload, payload + hdr.payload_len);
        rpos += protocol::kHeaderSize + hdr.payload_len;
        dispatchInbound(conn, std::move(frame), obs::nowNs());
    }
    if (rpos > 0) {
        rbuf.erase(rbuf.begin(),
                   rbuf.begin() + static_cast<std::ptrdiff_t>(rpos));
        rpos = 0;
    }
    return ok;
}

void
Server::dispatchInbound(const ConnPtr &conn, protocol::Frame frame,
                        u64 recv_ns)
{
    if (draining.load() || stopping.load()) {
        m_rejects.inc();
        recorder.record(FlightEventKind::Shed, frame.hdr.session,
                        frame.hdr.seq, "draining");
        replyError(*conn, frame, protocol::ErrCode::Draining,
                   "server is draining");
        return;
    }
    bool enqueued = false;
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->pending.size() < opt.max_pending &&
            queued.load(std::memory_order_relaxed) <
                static_cast<int>(opt.queue_capacity)) {
            queued.fetch_add(1, std::memory_order_relaxed);
            m_queue_depth.add(1);
            conn->pending.push_back(
                Conn::PendingFrame{std::move(frame), recv_ns});
            if (!conn->scheduled) {
                conn->scheduled = true;
                scheduleOnShard(conn);
            }
            enqueued = true;
        }
    }
    if (!enqueued) {
        m_rejects.inc();
        recorder.record(FlightEventKind::Shed, frame.hdr.session,
                        frame.hdr.seq, "queue_full");
        replyError(*conn, frame, protocol::ErrCode::Overloaded,
                   "request queue full");
    }
}

void
Server::scheduleOnShard(const ConnPtr &conn)
{
    ShardQueue &q = shardOf(*conn);
    std::lock_guard<std::mutex> lock(q.mutex);
    q.ready.push_back(conn);
    q.cv.notify_one();
}

void
Server::markInputDone(const ConnPtr &conn)
{
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->input_done = true;
    // If nobody holds the schedule token, take it: the shard thread
    // must run at least once more to drain pending and finalize.
    if (!conn->scheduled) {
        conn->scheduled = true;
        scheduleOnShard(conn);
    }
}

// ----------------------------------------------------------- shard plane

void
Server::shardLoop(unsigned shard_id)
{
    ShardQueue &q = *shard_queues[shard_id];
    for (;;) {
        ConnPtr conn;
        {
            std::unique_lock<std::mutex> lock(q.mutex);
            q.cv.wait(lock, [this, &q] {
                return pool_stopping.load() || !q.ready.empty();
            });
            if (pool_stopping.load())
                return;
            conn = std::move(q.ready.front());
            q.ready.pop_front();
        }

        Conn::PendingFrame item;
        bool have = false;
        bool broken;
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            broken = conn->broken;
            if (!broken && !conn->pending.empty()) {
                item = std::move(conn->pending.front());
                conn->pending.pop_front();
                queued.fetch_sub(1, std::memory_order_relaxed);
                m_queue_depth.add(-1);
                have = true;
            }
        }

        if (have && !handleFrame(*conn, item.frame, item.recv_ns)) {
            // Write failed: the peer is gone. Drop what's left and
            // kick the IO thread off the socket.
            std::lock_guard<std::mutex> lock(conn->mutex);
            conn->broken = true;
            broken = true;
            ::shutdown(conn->fd, SHUT_RDWR);
        }

        bool finalize_now = false;
        {
            std::lock_guard<std::mutex> lock(conn->mutex);
            if (broken && !conn->pending.empty()) {
                queued.fetch_sub(
                    static_cast<int>(conn->pending.size()),
                    std::memory_order_relaxed);
                m_queue_depth.add(
                    -static_cast<s64>(conn->pending.size()));
                conn->pending.clear();
            }
            if (!conn->pending.empty()) {
                scheduleOnShard(conn);
            } else {
                conn->scheduled = false;
                finalize_now = conn->input_done;
            }
        }
        if (finalize_now)
            finalize(conn);
    }
}

bool
Server::handleFrame(Conn &conn, const protocol::Frame &frame,
                    u64 recv_ns)
{
    using protocol::MsgType;
    switch (static_cast<MsgType>(frame.hdr.type)) {
      case MsgType::OpenSession:
        return handleOpen(conn, frame);
      case MsgType::Encode:
      case MsgType::Decode:
        return handleBatch(conn, frame, recv_ns);
      case MsgType::Stats:
      case MsgType::Resync:
      case MsgType::Close:
        return handleControl(conn, frame);
      case MsgType::ServerStats:
        // Admin frame: server-scoped, needs no session.
        return handleServerStats(conn, frame);
      default:
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "unknown request type");
    }
}

bool
Server::handleOpen(Conn &conn, const protocol::Frame &frame)
{
    std::string spec;
    if (!protocol::parseOpenSession(frame, spec)) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed OPEN_SESSION payload");
    }
    if (conn.session_ids.size() >= opt.max_sessions) {
        m_errors.inc();
        return replyError(conn, frame,
                          protocol::ErrCode::SessionLimit,
                          "session limit reached");
    }
    try {
        coding::CodecSession codec(spec);
        codec.attachSpanMetrics(registry);
        if (opt.meter_energy)
            codec.enableEnergyMetering();
        const u32 width = codec.codec().width();
        const u32 id = conn.next_session++;
        const u64 key = sessionKey(conn.serial, id);

        SessionMeta meta;
        meta.family = familyOf(spec);
        familyGauge(meta.family).add(1);
        if (opt.meter_energy) {
            const std::string prefix =
                "serve.energy." + meta.family + ".";
            meta.fam.base_tau =
                &registry.counter(prefix + "base_tau");
            meta.fam.base_kappa =
                &registry.counter(prefix + "base_kappa");
            meta.fam.coded_tau =
                &registry.counter(prefix + "coded_tau");
            meta.fam.coded_kappa =
                &registry.counter(prefix + "coded_kappa");
            meta.fam.words = &registry.counter(prefix + "words");
        }
        shardOf(conn).meta.emplace(key, std::move(meta));
        session_store->put(
            key, store::StoredSession{std::move(codec), false});
        conn.session_ids.insert(id);
        m_sessions_opened.inc();
        m_sessions_active.add(1);
        recorder.record(FlightEventKind::SessionOpen, id, 0, spec);
        return reply(conn, protocol::makeOpenOk(id, width));
    } catch (const FatalError &e) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadSpec,
                          e.what());
    }
}

coding::SessionEnergy
Server::publishEnergy(SessionMeta &meta, coding::CodecSession &codec)
{
    const coding::SessionEnergy now = codec.energy();
    coding::SessionEnergy delta;
    delta.base.tau = now.base.tau - meta.published.base.tau;
    delta.base.kappa = now.base.kappa - meta.published.base.kappa;
    delta.coded.tau = now.coded.tau - meta.published.coded.tau;
    delta.coded.kappa = now.coded.kappa - meta.published.coded.kappa;
    delta.words = now.words - meta.published.words;
    meta.published = now;

    meta.fam.base_tau->inc(delta.base.tau);
    meta.fam.base_kappa->inc(delta.base.kappa);
    meta.fam.coded_tau->inc(delta.coded.tau);
    meta.fam.coded_kappa->inc(delta.coded.kappa);
    meta.fam.words->inc(delta.words);
    m_energy_base_tau.inc(delta.base.tau);
    m_energy_base_kappa.inc(delta.base.kappa);
    m_energy_coded_tau.inc(delta.coded.tau);
    m_energy_coded_kappa.inc(delta.coded.kappa);
    m_energy_words.inc(delta.words);
    return delta;
}

void
Server::refreshEnergyGauge() const
{
    // Server-wide savings gauge, derived from the counter totals
    // (per-mille so the s64 gauge keeps float-free precision). The
    // gauge is a pure function of the counters, so it is refreshed on
    // scrape instead of per batch to keep publishEnergy off the
    // floating-point unit in the serve hot path.
    coding::EnergyCount base{m_energy_base_tau.value(),
                             m_energy_base_kappa.value()};
    coding::EnergyCount coded{m_energy_coded_tau.value(),
                              m_energy_coded_kappa.value()};
    const double b = base.cost(opt.energy_lambda);
    if (b > 0.0) {
        const double saved =
            1000.0 * (1.0 - coded.cost(opt.energy_lambda) / b);
        m_energy_saved_pct_milli.set(static_cast<s64>(saved));
    }
}

bool
Server::handleBatch(Conn &conn, const protocol::Frame &frame,
                    u64 recv_ns)
{
    const u64 key = sessionKey(conn.serial, frame.hdr.session);
    store::StoredSession *stored =
        conn.session_ids.count(frame.hdr.session)
            ? session_store->get(key)
            : nullptr;
    if (!stored) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::NoSession,
                          "unknown session");
    }
    if (stored->desynced) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::Desync,
                          "session desynchronized; RESYNC required");
    }

    const bool is_encode =
        frame.hdr.type == static_cast<u8>(protocol::MsgType::Encode);
    u64 client_sum = 0;
    std::vector<Word> words;
    std::vector<u64> states;
    std::optional<protocol::TraceContext> trace;
    const bool parsed =
        is_encode
            ? protocol::parseEncode(frame, client_sum, words, trace)
            : protocol::parseDecode(frame, client_sum, states, trace);
    if (!parsed) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed batch payload");
    }

    // The networked synchronized-dictionary invariant: the batch must
    // be the next in sequence and the client's view of the output
    // stream must match ours, or the FSMs are not advanced at all.
    coding::CodecSession &codec = stored->session;
    if (frame.hdr.seq != codec.seq() + 1 ||
        client_sum != codec.checksum()) {
        stored->desynced = true;
        m_desyncs.inc();
        m_errors.inc();
        recorder.record(FlightEventKind::Desync, frame.hdr.session,
                        frame.hdr.seq,
                        frame.hdr.seq != codec.seq() + 1
                            ? "seq_mismatch"
                            : "checksum_mismatch");
        return replyError(conn, frame, protocol::ErrCode::Desync,
                          "sequence/checksum mismatch; RESYNC "
                          "required");
    }

    SessionMeta &meta = shardOf(conn).meta.at(key);
    const u64 t0 = obs::nowNs();
    protocol::Frame response;
    std::size_t batch_words = 0;
    if (is_encode) {
        states.clear();
        codec.encodeBatch(words, states);
        batch_words = words.size();
        response =
            protocol::makeEncodeOk(frame.hdr.session, codec.seq(),
                                   codec.checksum(), states);
    } else {
        words.clear();
        codec.decodeBatch(states, words);
        batch_words = states.size();
        response =
            protocol::makeDecodeOk(frame.hdr.session, codec.seq(),
                                   codec.checksum(), words);
    }
    const u64 t1 = obs::nowNs();
    m_batches.inc();
    m_words.inc(batch_words);
    m_batch_ns.record(static_cast<double>(t1 - t0));
    const u64 queue_ns = t0 > recv_ns ? t0 - recv_ns : 0;
    m_queue_wait_ns.record(static_cast<double>(queue_ns));

    coding::SessionEnergy delta;
    if (codec.energyMeteringEnabled())
        delta = publishEnergy(meta, codec);

    const u64 saved_milli =
        BatchSpan::savedMilli(delta.base.tau + delta.base.kappa,
                              delta.coded.tau + delta.coded.kappa);
    if (batch_sampler.consider(queue_ns + (t1 - t0), saved_milli)) {
        BatchSpan span;
        if (trace) {
            span.trace_id = trace->trace_id;
            span.span_id = trace->span_id;
        }
        span.t_ns = recv_ns;
        span.queue_ns = queue_ns;
        span.codec_ns = t1 - t0;
        span.seq = frame.hdr.seq;
        span.words = batch_words;
        span.base_tau = delta.base.tau;
        span.base_kappa = delta.base.kappa;
        span.coded_tau = delta.coded.tau;
        span.coded_kappa = delta.coded.kappa;
        span.session = frame.hdr.session;
        span.is_encode = is_encode;
        span.setFamily(meta.family.c_str());
        batch_sampler.offer(span);
    }
    return reply(conn, response);
}

bool
Server::handleControl(Conn &conn, const protocol::Frame &frame)
{
    const u64 key = sessionKey(conn.serial, frame.hdr.session);
    store::StoredSession *stored =
        conn.session_ids.count(frame.hdr.session)
            ? session_store->get(key)
            : nullptr;
    if (!stored) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::NoSession,
                          "unknown session");
    }
    coding::CodecSession &codec = stored->session;
    SessionMeta &meta = shardOf(conn).meta.at(key);

    switch (static_cast<protocol::MsgType>(frame.hdr.type)) {
      case protocol::MsgType::Stats: {
          protocol::SessionStats stats;
          stats.seq = codec.seq();
          stats.checksum = codec.checksum();
          stats.epoch = codec.epoch();
          stats.width = codec.codec().width();
          stats.ops = codec.codec().ops();
          const coding::SessionEnergy energy = codec.energy();
          stats.base_energy = energy.base;
          stats.coded_energy = energy.coded;
          stats.metered_words = energy.words;
          return reply(conn, protocol::makeStatsOk(frame.hdr.session,
                                                   stats));
      }
      case protocol::MsgType::Resync:
        codec.resync();
        // The session meters restart with the new epoch; restart the
        // published baseline too or the next delta would underflow.
        meta.published = coding::SessionEnergy{};
        stored->desynced = false;
        m_resyncs.inc();
        recorder.record(FlightEventKind::Resync, frame.hdr.session,
                        0,
                        "epoch=" + std::to_string(codec.epoch()));
        return reply(conn,
                     protocol::makeResyncOk(frame.hdr.session,
                                            codec.epoch()));
      case protocol::MsgType::Close:
        familyGauge(meta.family).add(-1);
        recorder.record(FlightEventKind::SessionClose,
                        frame.hdr.session, 0, meta.family);
        shardOf(conn).meta.erase(key);
        session_store->erase(key);
        conn.session_ids.erase(frame.hdr.session);
        m_sessions_active.add(-1);
        return reply(conn, protocol::makeCloseOk(frame.hdr.session));
      default:
        panic("handleControl: unexpected type ",
              unsigned{frame.hdr.type});
    }
}

bool
Server::handleServerStats(Conn &conn, const protocol::Frame &frame)
{
    bool include_events = false;
    if (!protocol::parseServerStats(frame, include_events)) {
        m_errors.inc();
        return replyError(conn, frame, protocol::ErrCode::BadFrame,
                          "malformed SERVER_STATS payload");
    }
    m_stats_requests.inc();
    return reply(conn,
                 protocol::makeServerStatsOk(
                     statsJson(include_events)));
}

obs::Gauge &
Server::familyGauge(const std::string &family)
{
    return registry.gauge("serve.sessions." + family);
}

std::string
Server::statsJson(bool include_events) const
{
    refreshEnergyGauge();
    ServerStatsContext ctx;
    ctx.uptime_s =
        static_cast<double>(obs::nowNs() - start_ns) / 1e9;
    ctx.draining = draining.load(std::memory_order_relaxed);
    ctx.recorder = &recorder;
    ctx.include_events = include_events;
    ctx.batches = &batch_sampler;
    ctx.energy_lambda = opt.energy_lambda;
    ctx.joule_per_tau = opt.energy_joule_per_tau;
    ctx.joule_per_kappa = opt.energy_joule_per_kappa;
    return serverStatsJson(registry.snapshot(), ctx);
}

bool
Server::reply(Conn &conn, const protocol::Frame &frame)
{
    std::lock_guard<std::mutex> lock(conn.write_mutex);
    return sendFrame(conn.fd, frame);
}

bool
Server::replyError(Conn &conn, const protocol::Frame &request,
                   protocol::ErrCode code, const std::string &message)
{
    return reply(conn, protocol::makeError(request.hdr.session,
                                           request.hdr.seq, code,
                                           message));
}

void
Server::finalize(const ConnPtr &conn)
{
    {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->finalized)
            return;
        conn->finalized = true;
        if (!conn->pending.empty()) {
            queued.fetch_sub(static_cast<int>(conn->pending.size()),
                             std::memory_order_relaxed);
            m_queue_depth.add(-static_cast<s64>(conn->pending.size()));
            conn->pending.clear();
        }
    }
    if (!conn->session_ids.empty()) {
        ShardQueue &q = shardOf(*conn);
        for (const u32 id : conn->session_ids) {
            const u64 key = sessionKey(conn->serial, id);
            const auto meta_it = q.meta.find(key);
            if (meta_it != q.meta.end()) {
                familyGauge(meta_it->second.family).add(-1);
                recorder.record(FlightEventKind::SessionClose, id, 0,
                                meta_it->second.family);
                q.meta.erase(meta_it);
            }
            session_store->erase(key);
        }
        m_sessions_active.add(
            -static_cast<s64>(conn->session_ids.size()));
        conn->session_ids.clear();
    }
    closeFd(conn->fd);
    m_conns_active.add(-1);
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        std::erase(conns, conn);
    }
    conns_cv.notify_all();
}

void
Server::beginDrain()
{
    if (!draining.exchange(true))
        recorder.record(FlightEventKind::Drain, 0, 0, "begin");
    std::lock_guard<std::mutex> lock(conns_mutex);
    for (const ConnPtr &conn : conns)
        ::shutdown(conn->fd, SHUT_RD);
}

void
Server::waitDrained()
{
    std::unique_lock<std::mutex> lock(conns_mutex);
    conns_cv.wait(lock, [this] {
        return conns.empty() &&
               queued.load(std::memory_order_relaxed) == 0;
    });
}

void
Server::stop()
{
    std::lock_guard<std::mutex> stop_lock(stop_mutex);
    if (stopped)
        return;
    stopped = true;

    stopping.store(true);
    draining.store(true);
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        for (const ConnPtr &conn : conns)
            ::shutdown(conn->fd, SHUT_RDWR);
    }
    pool_stopping.store(true);
    for (const auto &q : shard_queues) {
        std::lock_guard<std::mutex> lock(q->mutex);
        q->cv.notify_all();
    }

    // The IO thread exits on its next wakeup (100 ms poll at worst);
    // the shard threads exit on the pool_stopping signal.
    for (std::thread &t : threads)
        t.join();
    threads.clear();

    // Shard threads may have exited holding schedule tokens; every
    // thread is joined now, so the stopping thread owns all shards
    // and may retire any connection still registered.
    std::vector<ConnPtr> leftover;
    {
        std::lock_guard<std::mutex> lock(conns_mutex);
        leftover = conns;
    }
    for (const ConnPtr &conn : leftover)
        finalize(conn);

    for (const int fd : listen_fds)
        closeFd(fd);
    listen_fds.clear();
    if (!opt.unix_path.empty())
        ::unlink(opt.unix_path.c_str());
}

} // namespace predbus::serve
