#include "serve/net.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/log.h"

namespace predbus::serve
{

namespace
{

[[noreturn]] void
sysFatal(const char *what, const std::string &target)
{
    fatal(what, " ", target, ": ", std::strerror(errno));
}

} // namespace

int
listenTcp(u16 port, u16 &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        sysFatal("socket", "tcp");
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        closeFd(fd);
        sysFatal("bind", "tcp port " + std::to_string(port));
    }
    if (::listen(fd, 128) != 0) {
        closeFd(fd);
        sysFatal("listen", "tcp port " + std::to_string(port));
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0) {
        closeFd(fd);
        sysFatal("getsockname", "tcp");
    }
    bound_port = ntohs(addr.sin_port);
    return fd;
}

int
listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        fatal("unix socket path too long: ", path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        sysFatal("socket", "unix");
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        closeFd(fd);
        sysFatal("bind", path);
    }
    if (::listen(fd, 128) != 0) {
        closeFd(fd);
        sysFatal("listen", path);
    }
    return fd;
}

int
connectTcp(const std::string &host, u16 port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        sysFatal("socket", "tcp");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        closeFd(fd);
        fatal("bad IPv4 address '", host, "'");
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        closeFd(fd);
        sysFatal("connect", host + ":" + std::to_string(port));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        fatal("unix socket path too long: ", path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        sysFatal("socket", "unix");
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        closeFd(fd);
        sysFatal("connect", path);
    }
    return fd;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

bool
sendAll(int fd, const void *data, std::size_t n)
{
    const u8 *p = static_cast<const u8 *>(data);
    while (n > 0) {
        const ssize_t sent = ::send(fd, p, n, MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += sent;
        n -= static_cast<std::size_t>(sent);
    }
    return true;
}

RecvStatus
recvAll(int fd, void *data, std::size_t n)
{
    u8 *p = static_cast<u8 *>(data);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::recv(fd, p + got, n - got, 0);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return RecvStatus::Error;
        }
        if (r == 0)
            return got == 0 ? RecvStatus::Eof : RecvStatus::Partial;
        got += static_cast<std::size_t>(r);
    }
    return RecvStatus::Ok;
}

bool
sendFrame(int fd, const protocol::Frame &frame)
{
    const std::vector<u8> bytes = protocol::serialize(frame);
    return sendAll(fd, bytes.data(), bytes.size());
}

ReadResult
readFrame(int fd, protocol::Frame &frame)
{
    u8 header[protocol::kHeaderSize];
    switch (recvAll(fd, header, sizeof(header))) {
      case RecvStatus::Eof:
        return ReadResult::Eof;
      case RecvStatus::Partial:
        return ReadResult::Truncated;
      case RecvStatus::Error:
        return ReadResult::IoError;
      case RecvStatus::Ok:
        break;
    }
    switch (protocol::parseHeader(header, frame.hdr)) {
      case protocol::HeaderStatus::BadMagic:
        return ReadResult::BadMagic;
      case protocol::HeaderStatus::BadVersion:
        return ReadResult::BadVersion;
      case protocol::HeaderStatus::TooLarge:
        return ReadResult::TooLarge;
      case protocol::HeaderStatus::Ok:
        break;
    }
    frame.payload.resize(frame.hdr.payload_len);
    if (frame.hdr.payload_len == 0)
        return ReadResult::Ok;
    switch (recvAll(fd, frame.payload.data(), frame.payload.size())) {
      case RecvStatus::Eof:
      case RecvStatus::Partial:
        return ReadResult::Truncated;
      case RecvStatus::Error:
        return ReadResult::IoError;
      case RecvStatus::Ok:
        break;
    }
    return ReadResult::Ok;
}

} // namespace predbus::serve
