#include "serve/batch_trace.h"

#include <algorithm>

namespace predbus::serve
{

namespace
{

/** Sift the root of a min-heap (by key) down to its place. */
void
siftDown(std::vector<BatchSpan> &heap, std::vector<u64> &keys)
{
    std::size_t i = 0;
    const std::size_t n = heap.size();
    for (;;) {
        std::size_t best = i;
        const std::size_t l = 2 * i + 1;
        const std::size_t r = 2 * i + 2;
        if (l < n && keys[l] < keys[best])
            best = l;
        if (r < n && keys[r] < keys[best])
            best = r;
        if (best == i)
            return;
        std::swap(keys[i], keys[best]);
        std::swap(heap[i], heap[best]);
        i = best;
    }
}

void
siftUp(std::vector<BatchSpan> &heap, std::vector<u64> &keys)
{
    std::size_t i = heap.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (keys[parent] <= keys[i])
            return;
        std::swap(keys[i], keys[parent]);
        std::swap(heap[i], heap[parent]);
        i = parent;
    }
}

} // namespace

BatchTailSampler::BatchTailSampler(std::size_t per_class_capacity)
    : cap(per_class_capacity)
{
    slow.heap.reserve(cap);
    slow.keys.reserve(cap);
    worst.heap.reserve(cap);
    worst.keys.reserve(cap);
}

void
BatchTailSampler::admit(Tail &tail, const BatchSpan &span, u64 key)
{
    // Fast path: the class is full and this batch does not beat its
    // weakest retained entry. floor only ever rises, so a stale read
    // can at worst admit a borderline batch, never lose a qualifying
    // one.
    if (tail.full && key <= tail.floor.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(mu);
    if (tail.heap.size() < cap) {
        tail.heap.push_back(span);
        tail.keys.push_back(key);
        siftUp(tail.heap, tail.keys);
        if (tail.heap.size() == cap) {
            tail.full = true;
            tail.floor.store(tail.keys[0], std::memory_order_relaxed);
        }
        return;
    }
    if (key <= tail.keys[0])
        return;
    tail.heap[0] = span;
    tail.keys[0] = key;
    siftDown(tail.heap, tail.keys);
    tail.floor.store(tail.keys[0], std::memory_order_relaxed);
}

void
BatchTailSampler::offer(const BatchSpan &span)
{
    if (!enabled())
        return;
    admit(slow, span, span.latencyKey());
    // Invert the savings key so "keep largest" retains the worst
    // savers. Batches too small to meter anything (key 0 → ~0) are
    // the first retained, which is what a savings postmortem wants.
    admit(worst, span, ~span.savedMilliKey());
}

std::vector<BatchSpan>
BatchTailSampler::dump() const
{
    std::vector<BatchSpan> out;
    {
        std::lock_guard<std::mutex> lock(mu);
        out.reserve(slow.heap.size() + worst.heap.size());
        out.insert(out.end(), slow.heap.begin(), slow.heap.end());
        out.insert(out.end(), worst.heap.begin(), worst.heap.end());
    }
    std::sort(out.begin(), out.end(),
              [](const BatchSpan &a, const BatchSpan &b) {
                  if (a.t_ns != b.t_ns)
                      return a.t_ns < b.t_ns;
                  if (a.session != b.session)
                      return a.session < b.session;
                  return a.seq < b.seq;
              });
    // A batch retained by both classes appears twice; dedupe on the
    // (time, session, seq, direction) identity.
    out.erase(std::unique(out.begin(), out.end(),
                          [](const BatchSpan &a, const BatchSpan &b) {
                              return a.t_ns == b.t_ns &&
                                     a.session == b.session &&
                                     a.seq == b.seq &&
                                     a.is_encode == b.is_encode;
                          }),
              out.end());
    return out;
}

} // namespace predbus::serve
