/**
 * @file
 * li: cons-cell list construction and traversal.
 *
 * Lisp interpreters chase car/cdr pointers through a cell heap. Each
 * pass builds linked lists by bump allocation (wrapping when the heap
 * is exhausted, a crude sweep) and immediately traverses them, summing
 * the car fields through data-dependent loads.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kHeap = 0x27c5a000;
constexpr u32 kNumCells = 8192;
constexpr u32 kListLen = 48;
constexpr u32 kListsPerPass = 128;
constexpr u32 kNil = 0xffffffffu;
constexpr Addr kFrame = 0x7fff8400;

u32
passes(u32 scale)
{
    return 2 * scale;
}

} // namespace

std::vector<u32>
referenceLi(u32 scale)
{
    std::vector<u32> car(kNumCells, 0), cdr(kNumCells, 0);
    u32 bump = 0;
    u32 sum = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 list = 0; list < kListsPerPass; ++list) {
            u32 head = kNil;
            for (u32 k = 0; k < kListLen; ++k) {
                const u32 cell = bump;
                bump = (bump + 1 == kNumCells) ? 0 : bump + 1;
                car[cell] = pass + list * 7 + k;
                cdr[cell] = head;
                head = cell;
            }
            u32 p = head;
            while (p != kNil) {
                sum += car[p];
                p = cdr[p];
            }
        }
    }
    return {sum};
}

isa::Program
buildLi(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("li");

    // r13 heap base, r1 bump, r11 sum, r14 pass idx, r15 list idx,
    // r2 head, r3 k, r4 cell, r5 addr, r6 value, r7 nil.
    a.la(r29, kFrame);
    a.la(r13, kHeap);
    a.sw(r13, r29, 0);
    a.li(r1, 0);
    a.li(r11, 0);
    a.li(r14, 0);
    a.li(r7, kNil);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.li(r15, 0);

    a.label("list");
    a.move(r2, r7);              // head = nil
    a.li(r3, kListLen);

    a.label("build");
    a.move(r4, r1);              // cell = bump
    a.addi(r1, r1, 1);
    a.li(r5, kNumCells);
    a.bne(r1, r5, "no_wrap");
    a.li(r1, 0);
    a.label("no_wrap");
    // car[cell] = pass + list*7 + (kListLen - r3)
    a.sll(r6, r15, 3);
    a.sub(r6, r6, r15);          // list*7
    a.add(r6, r6, r14);
    a.li(r5, kListLen);
    a.sub(r5, r5, r3);
    a.add(r6, r6, r5);
    a.lw(r13, r29, 0);           // reload spilled heap base
    a.sll(r5, r4, 3);
    a.add(r5, r13, r5);          // &cell
    a.sw(r6, r5, 0);             // car
    a.sw(r2, r5, 4);             // cdr = head
    a.move(r2, r4);              // head = cell
    a.addi(r3, r3, -1);
    a.bgtz(r3, "build");

    // Traverse.
    a.label("walk");
    a.beq(r2, r7, "walk_done");
    a.lw(r13, r29, 0);           // reload spilled heap base
    a.sll(r5, r2, 3);
    a.add(r5, r13, r5);
    a.lw(r6, r5, 0);
    a.add(r11, r11, r6);
    a.lw(r2, r5, 4);
    a.j("walk");
    a.label("walk_done");

    a.addi(r15, r15, 1);
    a.li(r5, kListsPerPass);
    a.bne(r15, r5, "list");

    a.addi(r14, r14, 1);
    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r11);
    a.halt();

    return a.finish();
}

} // namespace predbus::workloads
