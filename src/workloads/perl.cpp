/**
 * @file
 * perl: string hashing and associative-array probing.
 *
 * Script interpreters hash identifier strings and probe hash tables
 * constantly. Each pass scans English-like text byte by byte, rolling
 * a x33 hash per word, and on each word boundary probes an
 * open-addressed table (insert on empty, count hits).
 */

#include <string>
#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kText = 0x2e414000;
constexpr Addr kTab = 0x172d8000;
constexpr Addr kFrame = 0x7fff8200;
constexpr u32 kTextLen = 8192;
constexpr u32 kTabMask = 2047;
constexpr u32 kMaxProbes = 8;
constexpr u64 kSeed = 0x9E71;

u32
passes(u32 scale)
{
    return 2 * scale;
}

} // namespace

std::vector<u32>
referencePerl(u32 scale)
{
    const std::string text = syntheticText(kTextLen, kSeed);
    std::vector<u32> tab(kTabMask + 1, 0);
    u32 hits = 0, inserts = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        u32 h = 5381;
        for (u32 i = 0; i < kTextLen; ++i) {
            const u32 c = static_cast<u8>(text[i]);
            if (c != ' ') {
                h = h * 33 + c;
                continue;
            }
            if (h == 5381)
                continue;  // consecutive spaces: empty word
            // Probe. Hash value 0 would alias the empty marker; the
            // x33 hash of a nonempty word over printable ASCII is
            // never 0 in practice, and the guest does the same test.
            u32 idx = h & kTabMask;
            for (u32 probe = 0; probe < kMaxProbes; ++probe) {
                if (tab[idx] == h) {
                    ++hits;
                    break;
                }
                if (tab[idx] == 0) {
                    tab[idx] = h;
                    ++inserts;
                    break;
                }
                idx = (idx + 1) & kTabMask;
            }
            h = 5381;
        }
    }
    return {hits, inserts};
}

isa::Program
buildPerl(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("perl");

    // r13 text base, r12 table base, r1 byte ptr, r2 remaining,
    // r3 c, r4 h, r5 idx, r6 probe counter, r7 entry, r8 tmp,
    // r10 hits, r11 inserts, r9 const 5381.
    a.la(r29, kFrame);
    a.la(r13, kText);
    a.la(r12, kTab);
    a.sw(r12, r29, 0);
    a.li(r10, 0);
    a.li(r11, 0);
    a.li(r9, 5381);
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.move(r1, r13);
    a.li(r2, kTextLen);
    a.move(r4, r9);

    a.label("byte");
    a.lbu(r3, r1, 0);
    a.li(r8, ' ');
    a.beq(r3, r8, "word_end");
    // h = h*33 + c  (h<<5 + h + c)
    a.sll(r8, r4, 5);
    a.add(r4, r8, r4);
    a.add(r4, r4, r3);
    a.j("next_byte");

    a.label("word_end");
    a.beq(r4, r9, "next_byte");   // empty word
    a.lw(r12, r29, 0);            // reload spilled table base
    a.andi(r5, r4, kTabMask);
    a.li(r6, kMaxProbes);
    a.label("probe");
    a.sll(r8, r5, 2);
    a.add(r8, r12, r8);
    a.lw(r7, r8, 0);
    a.beq(r7, r4, "hit");
    a.beq(r7, r0, "empty");
    a.addi(r5, r5, 1);
    a.andi(r5, r5, kTabMask);
    a.addi(r6, r6, -1);
    a.bgtz(r6, "probe");
    a.j("probed");
    a.label("hit");
    a.addi(r10, r10, 1);
    a.j("probed");
    a.label("empty");
    a.sw(r4, r8, 0);
    a.addi(r11, r11, 1);
    a.label("probed");
    a.move(r4, r9);

    a.label("next_byte");
    a.addi(r1, r1, 1);
    a.addi(r2, r2, -1);
    a.bgtz(r2, "byte");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r10);
    a.out(r11);
    a.halt();

    isa::Program p = a.finish();
    const std::string text = syntheticText(kTextLen, kSeed);
    p.addSegment(kText, std::vector<u8>(text.begin(), text.end()));
    return p;
}

} // namespace predbus::workloads
