/**
 * @file
 * The SPEC95-like workload suite.
 *
 * The paper evaluates its coding schemes on bus traces from SPEC95
 * benchmarks. SPEC sources and inputs are not redistributable, so each
 * benchmark is replaced by a hand-written P32 kernel implementing the
 * same computational idiom (see DESIGN.md §1): LZW hashing for
 * compress, pointer-chasing IR walks for gcc, shallow-water stencils
 * for swim, and so on. What the coding experiments consume is the
 * *statistical character* of the bus values, which these idioms set.
 *
 * Every workload:
 *  - is deterministic (seeded data generators),
 *  - emits one or more OUT checksum values before HALT,
 *  - has a host-side reference implementation used by the tests to
 *    validate the assembly end-to-end,
 *  - accepts a @p scale factor multiplying its outer iteration count
 *    (tests run scale 1; trace capture uses larger scales so the
 *    requested cycle budget, not program length, bounds the trace).
 */

#ifndef PREDBUS_WORKLOADS_WORKLOAD_H
#define PREDBUS_WORKLOADS_WORKLOAD_H

#include <string>
#include <vector>

#include "isa/program.h"

namespace predbus::workloads
{

/** Descriptor for one benchmark. */
struct WorkloadInfo
{
    std::string name;         ///< SPEC95 benchmark name (lowercase)
    bool is_fp = false;       ///< SPECfp (vs SPECint)
    std::string description;  ///< kernel idiom implemented
};

/** All 17 workloads the paper plots, in the paper's order. */
const std::vector<WorkloadInfo> &all();

/** SPECint subset names (ijpeg m88ksim go gcc compress perl li). */
const std::vector<std::string> &intNames();

/** SPECfp subset names (hydro2d fpppp apsi applu wave5 turb3d
 * tomcatv swim su2cor mgrid). */
const std::vector<std::string> &fpNames();

/** Look up a workload descriptor; FatalError for unknown names. */
const WorkloadInfo &info(const std::string &name);

/** Build the guest program for @p name at @p scale. */
isa::Program build(const std::string &name, u32 scale = 1);

/**
 * Host-side reference output (the OUT values the guest must produce
 * when run to completion at @p scale).
 */
std::vector<u32> reference(const std::string &name, u32 scale = 1);

} // namespace predbus::workloads

#endif // PREDBUS_WORKLOADS_WORKLOAD_H
