/**
 * @file
 * swim: shallow-water 2D stencil.
 *
 * The SPEC95 `swim` benchmark sweeps finite-difference updates over
 * u/v/p grids. Each pass applies a damped shallow-water-style update
 * to the interior of three 64x64 double grids in place.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kU = 0x31a48000;
constexpr Addr kV = 0x1ce94000;
constexpr Addr kP = 0x25b3c000;
constexpr u32 kN = 64;
constexpr u64 kSeed = 0x5714;
constexpr Addr kLit = 0x7fff8d00;

u32
passes(u32 scale)
{
    return 2 * scale;
}

struct Grids
{
    std::vector<double> u, v, p;
};

Grids
makeGrids()
{
    Grids g;
    g.u = smoothField(kN * kN, -0.1, 0.1, kSeed);
    g.v = smoothField(kN * kN, -0.1, 0.1, kSeed + 1);
    g.p = smoothField(kN * kN, 0.5, 1.5, kSeed + 2);
    return g;
}

} // namespace

std::vector<u32>
referenceSwim(u32 scale)
{
    Grids g = makeGrids();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        for (u32 i = 1; i < kN - 1; ++i) {
            for (u32 j = 1; j < kN - 1; ++j) {
                const u32 idx = i * kN + j;
                const double du = g.p[idx + 1] - g.p[idx - 1];
                const double dv = g.p[idx + kN] - g.p[idx - kN];
                const double un = g.u[idx] * 0.99 + du * 0.01;
                const double vn = g.v[idx] * 0.99 + dv * 0.01;
                const double pn =
                    g.p[idx] * 0.99 - (un + vn) * 0.005;
                g.u[idx] = un;
                g.v[idx] = vn;
                g.p[idx] = pn;
                acc = acc + pn;
            }
        }
    }
    return {cvtfi(acc * 16.0), cvtfi(g.u[kN + 1] * 1024.0)};
}

isa::Program
buildSwim(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("swim");

    a.fli(f1, 0.99, r9);
    a.fli(f2, 0.01, r9);
    a.fli(f3, 0.005, r9);
    a.fli(f4, 16.0, r9);
    a.fli(f5, 1024.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    constexpr s32 kRow = static_cast<s32>(kN * 8);

    a.label("pass");
    a.la(r1, kP + (kN + 1) * 8);
    a.la(r2, kU + (kN + 1) * 8);
    a.la(r3, kV + (kN + 1) * 8);
    a.fli(f12, 0.0, r9);  // acc (pool slot reused; loads same constant)
    a.li(r4, kN - 2);     // i

    a.label("row");
    a.li(r5, kN - 2);     // j

    a.label("cell");
    a.fld(f1, r29, 0);           // reload 0.99 from the literal pool
    a.fld(f6, r1, 8);
    a.fld(f7, r1, -8);
    a.fsub(f6, f6, f7);          // du
    a.fld(f7, r1, kRow);
    a.fld(f8, r1, -kRow);
    a.fsub(f7, f7, f8);          // dv
    a.fld(f8, r2, 0);
    a.fmul(f8, f8, f1);
    a.fmul(f9, f6, f2);
    a.fadd(f8, f8, f9);          // un
    a.fld(f9, r3, 0);
    a.fmul(f9, f9, f1);
    a.fmul(f10, f7, f2);
    a.fadd(f9, f9, f10);         // vn
    a.fld(f10, r1, 0);
    a.fmul(f10, f10, f1);
    a.fadd(f11, f8, f9);
    a.fmul(f11, f11, f3);
    a.fsub(f10, f10, f11);       // pn
    a.fsd(f8, r2, 0);
    a.fsd(f9, r3, 0);
    a.fsd(f10, r1, 0);
    a.fadd(f12, f12, f10);

    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r3, r3, 8);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "cell");

    a.addi(r1, r1, 16);
    a.addi(r2, r2, 16);
    a.addi(r3, r3, 16);
    a.addi(r4, r4, -1);
    a.bgtz(r4, "row");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f12, f12, f4);
    a.cvtfi(r10, f12);
    a.out(r10);
    a.la(r2, kU + (kN + 1) * 8);
    a.fld(f6, r2, 0);
    a.fmul(f6, f6, f5);
    a.cvtfi(r10, f6);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    const Grids g = makeGrids();
    p.addDoubles(kLit, {0.99});
    p.addDoubles(kU, g.u);
    p.addDoubles(kV, g.v);
    p.addDoubles(kP, g.p);
    return p;
}

} // namespace predbus::workloads
