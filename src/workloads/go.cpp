/**
 * @file
 * go: board scans with neighbor counting.
 *
 * Game-playing programs repeatedly scan a small board, branching on
 * cell contents and tallying pattern features. Each pass scans the
 * interior of a 32x32 byte board, counting empty and same-colored
 * neighbors per stone, then perturbs one cell so successive scans see
 * an evolving position.
 */

#include <vector>

#include "common/rng.h"
#include "isa/assembler.h"
#include "workloads/kernels.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kBoard = 0x145ac000;
constexpr u32 kDim = 32;
constexpr u64 kSeed = 0x60;

u32
passes(u32 scale)
{
    return 8 * scale;
}

std::vector<u8>
makeBoard()
{
    Rng rng(kSeed);
    std::vector<u8> board(kDim * kDim);
    for (auto &cell : board)
        cell = static_cast<u8>(rng.below(3));
    return board;
}

} // namespace

std::vector<u32>
referenceGo(u32 scale)
{
    std::vector<u8> board = makeBoard();
    u32 score = 0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 i = 1; i < kDim - 1; ++i) {
            for (u32 j = 1; j < kDim - 1; ++j) {
                const u32 idx = i * kDim + j;
                const u32 c = board[idx];
                if (c == 0)
                    continue;
                u32 libs = 0, same = 0;
                for (const int off : {-1, 1, -static_cast<int>(kDim),
                                      static_cast<int>(kDim)}) {
                    const u32 v =
                        board[static_cast<u32>(static_cast<int>(idx) +
                                               off)];
                    if (v == 0)
                        ++libs;
                    else if (v == c)
                        ++same;
                }
                if (c == 1)
                    score += libs + 2 * same;
                else
                    score -= libs;
            }
        }
        // Perturb one interior-ish cell so positions evolve.
        const u32 idx = (pass * 37 + 11) & (kDim * kDim - 1);
        board[idx] = static_cast<u8>((board[idx] + 1) % 3);
    }
    return {score};
}

isa::Program
buildGo(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("go");

    constexpr s32 kD = static_cast<s32>(kDim);
    a.la(r13, kBoard);
    a.li(r11, 0);        // score
    a.li(r14, 0);        // pass index (ascending)
    a.li(r28, static_cast<u32>(passes(scale)));

    a.label("pass");
    a.li(r2, 1);         // i

    a.label("row");
    // r1 = &board[i*kDim + 1]
    a.sll(r8, r2, 5);
    a.add(r8, r8, r13);
    a.addi(r1, r8, 1);
    a.li(r3, kD - 2);    // j counter

    a.label("cell");
    a.lbu(r4, r1, 0);
    a.beq(r4, r0, "next_cell");
    a.li(r5, 0);         // libs
    a.li(r6, 0);         // same

    // Four neighbors, unrolled.
    for (const s32 off : {-1, 1, -kD, kD}) {
        const std::string tag = "n" + std::to_string(off + 100);
        a.lbu(r7, r1, off);
        a.bne(r7, r0, tag + "_stone");
        a.addi(r5, r5, 1);
        a.j(tag + "_done");
        a.label(tag + "_stone");
        a.bne(r7, r4, tag + "_done");
        a.addi(r6, r6, 1);
        a.label(tag + "_done");
    }

    a.li(r8, 1);
    a.bne(r4, r8, "white");
    a.sll(r8, r6, 1);
    a.add(r8, r8, r5);
    a.add(r11, r11, r8);
    a.j("next_cell");
    a.label("white");
    a.sub(r11, r11, r5);

    a.label("next_cell");
    a.addi(r1, r1, 1);
    a.addi(r3, r3, -1);
    a.bgtz(r3, "cell");

    a.addi(r2, r2, 1);
    a.li(r8, kD - 1);
    a.bne(r2, r8, "row");

    // Perturbation: board[(pass*37 + 11) & 1023] = (old + 1) % 3.
    a.li(r8, 37);
    a.mul(r8, r14, r8);
    a.addi(r8, r8, 11);
    a.andi(r8, r8, kDim * kDim - 1);
    a.add(r8, r13, r8);
    a.lbu(r7, r8, 0);
    a.addi(r7, r7, 1);
    a.li(r9, 3);
    a.bne(r7, r9, "no_wrap");
    a.li(r7, 0);
    a.label("no_wrap");
    a.sb(r7, r8, 0);

    a.addi(r14, r14, 1);
    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.out(r11);
    a.halt();

    isa::Program p = a.finish();
    p.addSegment(kBoard, makeBoard());
    return p;
}

} // namespace predbus::workloads
