/**
 * @file
 * mgrid: 3D 7-point stencil relaxation.
 *
 * Multigrid solvers relax 3D grids with nearest-neighbor stencils.
 * Each pass applies a damped 7-point Jacobi-in-place step over the
 * interior of a 16^3 double grid.
 */

#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kGrid = 0x19c6c000;
constexpr u32 kN = 16;
constexpr u64 kSeed = 0x316D;
constexpr Addr kLit = 0x7fff8a00;

u32
passes(u32 scale)
{
    return 4 * scale;
}

std::vector<double>
makeGrid()
{
    return smoothField(kN * kN * kN, 0.0, 1.0, kSeed);
}

} // namespace

std::vector<u32>
referenceMgrid(u32 scale)
{
    std::vector<double> v = makeGrid();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        for (u32 k = 1; k < kN - 1; ++k) {
            for (u32 j = 1; j < kN - 1; ++j) {
                for (u32 i = 1; i < kN - 1; ++i) {
                    const u32 idx = (k * kN + j) * kN + i;
                    double s = v[idx - 1] + v[idx + 1];
                    s = s + v[idx - kN];
                    s = s + v[idx + kN];
                    s = s + v[idx - kN * kN];
                    s = s + v[idx + kN * kN];
                    const double vn = v[idx] * 0.4 + s * 0.1;
                    v[idx] = vn;
                    acc = acc + vn;
                }
            }
        }
    }
    return {cvtfi(acc * 256.0)};
}

isa::Program
buildMgrid(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("mgrid");

    a.fli(f1, 0.4, r9);
    a.fli(f2, 0.1, r9);
    a.fli(f3, 256.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    constexpr s32 kRow = static_cast<s32>(kN * 8);
    constexpr s32 kPlane = static_cast<s32>(kN * kN * 8);

    a.label("pass");
    a.fli(f15, 0.0, r9);
    a.li(r4, kN - 2);    // k

    a.label("plane");
    a.li(r5, kN - 2);    // j
    // r1 = &v[(k*kN + j)*kN + 1]; recompute per row below.

    a.label("rowk");
    // r1 = base + ((k*16 + j)*16 + 1)*8 where k = kN-1-r4, j = kN-1-r5
    a.li(r8, kN - 1);
    a.sub(r8, r8, r4);          // k
    a.sll(r8, r8, 4);
    a.li(r7, kN - 1);
    a.sub(r7, r7, r5);          // j
    a.add(r8, r8, r7);
    a.sll(r8, r8, 4);
    a.addi(r8, r8, 1);
    a.sll(r8, r8, 3);
    a.la(r1, kGrid);
    a.add(r1, r1, r8);
    a.li(r6, kN - 2);    // i

    a.label("cell");
    a.fld(f5, r1, -8);
    a.fld(f6, r1, 8);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, -kRow);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, kRow);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, -kPlane);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, kPlane);
    a.fadd(f5, f5, f6);
    a.fld(f6, r1, 0);
    a.fmul(f6, f6, f1);
    a.fld(f2, r29, 0);           // reload 0.1 from the literal pool
    a.fmul(f5, f5, f2);
    a.fadd(f6, f6, f5);          // vn
    a.fsd(f6, r1, 0);
    a.fadd(f15, f15, f6);
    a.addi(r1, r1, 8);
    a.addi(r6, r6, -1);
    a.bgtz(r6, "cell");

    a.addi(r5, r5, -1);
    a.bgtz(r5, "rowk");
    a.addi(r4, r4, -1);
    a.bgtz(r4, "plane");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f3);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.1});
    p.addDoubles(kGrid, makeGrid());
    return p;
}

} // namespace predbus::workloads
