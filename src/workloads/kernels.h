/**
 * @file
 * Internal: per-benchmark builder + host-reference pairs.
 *
 * Each kernel file implements one SPEC95-like workload: a build<Name>()
 * returning the guest program, and a reference<Name>() host mirror that
 * computes the exact OUT values the guest emits (same arithmetic, same
 * order, so FP results match bit-for-bit).
 */

#ifndef PREDBUS_WORKLOADS_KERNELS_H
#define PREDBUS_WORKLOADS_KERNELS_H

#include <vector>

#include "isa/program.h"

namespace predbus::workloads
{

#define PREDBUS_DECLARE_KERNEL(Name) \
    isa::Program build##Name(u32 scale); \
    std::vector<u32> reference##Name(u32 scale);

// SPECint.
PREDBUS_DECLARE_KERNEL(Compress)
PREDBUS_DECLARE_KERNEL(Gcc)
PREDBUS_DECLARE_KERNEL(Go)
PREDBUS_DECLARE_KERNEL(Ijpeg)
PREDBUS_DECLARE_KERNEL(Li)
PREDBUS_DECLARE_KERNEL(M88ksim)
PREDBUS_DECLARE_KERNEL(Perl)

// SPECfp.
PREDBUS_DECLARE_KERNEL(Applu)
PREDBUS_DECLARE_KERNEL(Apsi)
PREDBUS_DECLARE_KERNEL(Fpppp)
PREDBUS_DECLARE_KERNEL(Hydro2d)
PREDBUS_DECLARE_KERNEL(Mgrid)
PREDBUS_DECLARE_KERNEL(Su2cor)
PREDBUS_DECLARE_KERNEL(Swim)
PREDBUS_DECLARE_KERNEL(Tomcatv)
PREDBUS_DECLARE_KERNEL(Turb3d)
PREDBUS_DECLARE_KERNEL(Wave5)

#undef PREDBUS_DECLARE_KERNEL

} // namespace predbus::workloads

#endif // PREDBUS_WORKLOADS_KERNELS_H
