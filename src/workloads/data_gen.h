/**
 * @file
 * Deterministic synthetic input data for the workloads.
 */

#ifndef PREDBUS_WORKLOADS_DATA_GEN_H
#define PREDBUS_WORKLOADS_DATA_GEN_H

#include <string>
#include <vector>

#include "common/types.h"

namespace predbus::workloads
{

/** Uniform random 32-bit words. */
std::vector<u32> randomWords(std::size_t n, u64 seed);

/** Random words bounded below @p bound. */
std::vector<u32> boundedWords(std::size_t n, u32 bound, u64 seed);

/** Smooth doubles in [lo, hi): sum of a few sinusoids over the index,
 * the usual initializer for stencil grids. */
std::vector<double> smoothField(std::size_t n, double lo, double hi,
                                u64 seed);

/** Uniform random doubles in [lo, hi). */
std::vector<double> randomDoubles(std::size_t n, double lo, double hi,
                                  u64 seed);

/**
 * English-like text: words drawn from a small dictionary with Zipf
 * popularity, separated by spaces. Feeds compress/perl.
 */
std::string syntheticText(std::size_t n_bytes, u64 seed);

} // namespace predbus::workloads

#endif // PREDBUS_WORKLOADS_DATA_GEN_H
