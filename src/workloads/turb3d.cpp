/**
 * @file
 * turb3d: scaled FFT butterfly stages.
 *
 * Turbulence codes live in FFTs. Each pass runs the 9 radix-2 stages
 * of a 512-point complex FFT with per-stage 0.5 scaling (as fixed-
 * point FFTs do), using a precomputed twiddle table, then renormalizes
 * by a data-dependent factor so the signal neither decays nor blows
 * up across passes.
 */

#include <cmath>
#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

constexpr u32 kN = 512;
constexpr u32 kStages = 9;
constexpr Addr kRe = 0x2192c000;
constexpr Addr kIm = 0x0d7e4000;
constexpr Addr kTwRe = 0x33468000;
constexpr Addr kTwIm = 0x16ad0000;
constexpr u64 kSeed = 0x73BD;
constexpr Addr kLit = 0x7fff8b00;

u32
passes(u32 scale)
{
    return 2 * scale;
}

std::vector<double>
makeSignalRe()
{
    return smoothField(kN, -1.0, 1.0, kSeed);
}

std::vector<double>
makeSignalIm()
{
    return smoothField(kN, -1.0, 1.0, kSeed + 1);
}

std::vector<double>
twiddleRe()
{
    std::vector<double> t(kN / 2);
    for (u32 i = 0; i < kN / 2; ++i)
        t[i] = std::cos(-2.0 * M_PI * i / kN);
    return t;
}

std::vector<double>
twiddleIm()
{
    std::vector<double> t(kN / 2);
    for (u32 i = 0; i < kN / 2; ++i)
        t[i] = std::sin(-2.0 * M_PI * i / kN);
    return t;
}

} // namespace

std::vector<u32>
referenceTurb3d(u32 scale)
{
    std::vector<double> re = makeSignalRe();
    std::vector<double> im = makeSignalIm();
    const std::vector<double> twr = twiddleRe();
    const std::vector<double> twi = twiddleIm();
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        for (u32 s = 0; s < kStages; ++s) {
            const u32 half = 1u << s;
            const u32 step = half << 1;
            const u32 tw_stride = (kN / 2) >> s;
            for (u32 base = 0; base < kN; base += step) {
                for (u32 j = 0; j < half; ++j) {
                    const u32 ia = base + j;
                    const u32 ib = ia + half;
                    const double tr = twr[j * tw_stride];
                    const double ti = twi[j * tw_stride];
                    const double br = re[ib] * tr - im[ib] * ti;
                    const double bi = re[ib] * ti + im[ib] * tr;
                    const double ar = re[ia];
                    const double ai = im[ia];
                    re[ia] = (ar + br) * 0.5;
                    im[ia] = (ai + bi) * 0.5;
                    re[ib] = (ar - br) * 0.5;
                    im[ib] = (ai - bi) * 0.5;
                }
            }
        }
        // Renormalize.
        const double mag = std::fabs(re[0]) + std::fabs(im[0]) + 0.5;
        const double factor = 4.0 / mag;
        for (u32 i = 0; i < kN; ++i) {
            re[i] = re[i] * factor;
            im[i] = im[i] * factor;
        }
    }
    double acc = 0.0;
    for (u32 i = 0; i < kN; ++i)
        acc = acc + re[i];
    return {cvtfi(acc * 256.0)};
}

isa::Program
buildTurb3d(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("turb3d");

    a.fli(f1, 0.5, r9);
    a.fli(f2, 4.0, r9);
    a.fli(f3, 256.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    // Integer plan: r4 stage, r5 half (elements), r6 base, r7 j,
    // r1 &re[ia], r2 &im[ia], r3 twiddle ptr offset regs,
    // r8 tmp, r10 tmp, r12 half bytes, r13 tw stride bytes,
    // r14 = &re base, r15 = &im base, r16 = &twr, r17 = &twi.
    a.la(r14, kRe);
    a.la(r15, kIm);
    a.la(r16, kTwRe);
    a.la(r17, kTwIm);

    a.label("pass");
    a.li(r4, 0);                 // stage

    a.label("stage");
    a.li(r8, 1);
    a.sllv(r5, r8, r4);          // half = 1 << s
    a.sll(r12, r5, 3);           // half bytes
    a.li(r13, kN / 2);
    a.srlv(r13, r13, r4);
    a.sll(r13, r13, 3);          // tw stride bytes
    a.li(r6, 0);                 // base (elements)

    a.label("block");
    // r1 = &re[base], r2 = &im[base]; j walks forward.
    a.sll(r8, r6, 3);
    a.add(r1, r14, r8);
    a.add(r2, r15, r8);
    a.li(r18, 0);                // twiddle byte offset
    a.move(r7, r5);              // j counter = half

    a.label("fly");
    a.fld(f1, r29, 0);           // reload 0.5 from the literal pool
    a.add(r8, r16, r18);
    a.fld(f5, r8, 0);            // tr
    a.add(r8, r17, r18);
    a.fld(f6, r8, 0);            // ti
    a.add(r8, r1, r12);
    a.fld(f7, r8, 0);            // re[ib]
    a.add(r10, r2, r12);
    a.fld(f8, r10, 0);           // im[ib]
    a.fmul(f9, f7, f5);          // re*tr
    a.fmul(f10, f8, f6);         // im*ti
    a.fsub(f9, f9, f10);         // br
    a.fmul(f10, f7, f6);         // re*ti
    a.fmul(f11, f8, f5);         // im*tr
    a.fadd(f10, f10, f11);       // bi
    a.fld(f7, r1, 0);            // ar
    a.fld(f8, r2, 0);            // ai
    a.fadd(f11, f7, f9);
    a.fmul(f11, f11, f1);
    a.fsd(f11, r1, 0);           // re[ia]
    a.fadd(f11, f8, f10);
    a.fmul(f11, f11, f1);
    a.fsd(f11, r2, 0);           // im[ia]
    a.fsub(f11, f7, f9);
    a.fmul(f11, f11, f1);
    a.add(r8, r1, r12);
    a.fsd(f11, r8, 0);           // re[ib]
    a.fsub(f11, f8, f10);
    a.fmul(f11, f11, f1);
    a.add(r10, r2, r12);
    a.fsd(f11, r10, 0);          // im[ib]

    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.add(r18, r18, r13);
    a.addi(r7, r7, -1);
    a.bgtz(r7, "fly");

    a.sll(r8, r5, 1);            // step
    a.add(r6, r6, r8);
    a.li(r10, kN);
    a.bne(r6, r10, "block");

    a.addi(r4, r4, 1);
    a.li(r8, kStages);
    a.bne(r4, r8, "stage");

    // Renormalize: factor = 4 / (|re0| + |im0| + 0.5).
    a.fld(f5, r14, 0);
    a.fabs_(f5, f5);
    a.fld(f6, r15, 0);
    a.fabs_(f6, f6);
    a.fadd(f5, f5, f6);
    a.fadd(f5, f5, f1);          // + 0.5
    a.fdiv(f5, f2, f5);          // factor
    a.move(r1, r14);
    a.move(r2, r15);
    a.li(r7, kN);
    a.label("norm");
    a.fld(f6, r1, 0);
    a.fmul(f6, f6, f5);
    a.fsd(f6, r1, 0);
    a.fld(f6, r2, 0);
    a.fmul(f6, f6, f5);
    a.fsd(f6, r2, 0);
    a.addi(r1, r1, 8);
    a.addi(r2, r2, 8);
    a.addi(r7, r7, -1);
    a.bgtz(r7, "norm");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    // acc = sum re.
    a.move(r1, r14);
    a.li(r7, kN);
    a.fli(f5, 0.0, r9);
    a.label("accum");
    a.fld(f6, r1, 0);
    a.fadd(f5, f5, f6);
    a.addi(r1, r1, 8);
    a.addi(r7, r7, -1);
    a.bgtz(r7, "accum");
    a.fmul(f5, f5, f3);
    a.cvtfi(r10, f5);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.5});
    p.addDoubles(kRe, makeSignalRe());
    p.addDoubles(kIm, makeSignalIm());
    p.addDoubles(kTwRe, twiddleRe());
    p.addDoubles(kTwIm, twiddleIm());
    return p;
}

} // namespace predbus::workloads
