/**
 * @file
 * Internal helpers shared by the workload kernels and their host
 * reference implementations.
 */

#ifndef PREDBUS_WORKLOADS_SUPPORT_H
#define PREDBUS_WORKLOADS_SUPPORT_H

#include <cmath>
#include <limits>

#include "common/types.h"

namespace predbus::workloads
{

/**
 * Host mirror of the guest CVTFI semantics (clamping double->s32
 * conversion), so reference implementations match the assembly exactly.
 */
inline u32
cvtfi(double d)
{
    if (std::isnan(d))
        return 0;
    if (d >= 2147483647.0)
        return static_cast<u32>(std::numeric_limits<s32>::max());
    if (d <= -2147483648.0)
        return static_cast<u32>(std::numeric_limits<s32>::min());
    return static_cast<u32>(static_cast<s32>(d));
}

} // namespace predbus::workloads

#endif // PREDBUS_WORKLOADS_SUPPORT_H
