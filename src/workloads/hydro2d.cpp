/**
 * @file
 * hydro2d: upwind flux sweeps on a 2D grid.
 *
 * Hydrodynamics codes compute dissipative fluxes between neighboring
 * cells and update conserved quantities directionally. Each pass does
 * a row sweep then a column sweep over a 48x48 density grid using a
 * Rusanov-style flux with |.| dissipation.
 */

#include <cmath>
#include <vector>

#include "isa/assembler.h"
#include "workloads/data_gen.h"
#include "workloads/kernels.h"
#include "workloads/support.h"

namespace predbus::workloads
{

namespace
{

// Segment bases are scattered across the address space the way a real
// allocator would place them; the diverse high-order bits reproduce the
// register/memory value diversity of compiled SPEC binaries.
constexpr Addr kRho = 0x2b8d4000;
constexpr u32 kN = 48;
constexpr u64 kSeed = 0x44D;
constexpr Addr kLit = 0x7fff8800;

u32
passes(u32 scale)
{
    return 2 * scale;
}

std::vector<double>
makeGrid()
{
    return smoothField(kN * kN, 0.8, 1.2, kSeed);
}

/** flux(a, b) = (a+b)*0.5 - |b-a|*0.5; mirrors the assembly. */
double
flux(double a, double b)
{
    const double avg = (a + b) * 0.5;
    const double d = std::fabs(b - a);
    return avg - d * 0.5;
}

} // namespace

std::vector<u32>
referenceHydro2d(u32 scale)
{
    std::vector<double> rho = makeGrid();
    double acc = 0.0;
    for (u32 pass = 0; pass < passes(scale); ++pass) {
        acc = 0.0;
        // Row sweep.
        for (u32 i = 0; i < kN; ++i) {
            for (u32 j = 1; j < kN - 1; ++j) {
                const u32 idx = i * kN + j;
                const double fl = flux(rho[idx - 1], rho[idx]);
                const double fr = flux(rho[idx], rho[idx + 1]);
                const double rn = rho[idx] + (fl - fr) * 0.05;
                rho[idx] = rn;
                acc = acc + rn;
            }
        }
        // Column sweep.
        for (u32 j = 0; j < kN; ++j) {
            for (u32 i = 1; i < kN - 1; ++i) {
                const u32 idx = i * kN + j;
                const double fl = flux(rho[idx - kN], rho[idx]);
                const double fr = flux(rho[idx], rho[idx + kN]);
                const double rn = rho[idx] + (fl - fr) * 0.05;
                rho[idx] = rn;
                acc = acc + rn;
            }
        }
    }
    return {cvtfi(acc * 64.0)};
}

isa::Program
buildHydro2d(u32 scale)
{
    using namespace isa::regs;
    isa::Asm a("hydro2d");

    a.fli(f1, 0.5, r9);
    a.fli(f2, 0.05, r9);
    a.fli(f3, 64.0, r9);
    a.la(r29, kLit);
    a.li(r28, static_cast<u32>(passes(scale)));

    constexpr s32 kRow = static_cast<s32>(kN * 8);

    // The flux computation appears four times; emit it via a helper
    // that reads (prev: f5, cur: f6) -> result f7 using f8 scratch.
    auto emit_flux = [&a](isa::FReg fa, isa::FReg fb, isa::FReg fout,
                          isa::FReg scratch) {
        using namespace isa::regs;
        a.fadd(fout, fa, fb);
        a.fmul(fout, fout, f1);      // avg
        a.fsub(scratch, fb, fa);
        a.fabs_(scratch, scratch);
        a.fmul(scratch, scratch, f1);
        a.fsub(fout, fout, scratch);
    };

    a.label("pass");
    a.fli(f15, 0.0, r9);  // acc

    // Row sweep: r1 points at rho[i*kN + 1].
    a.la(r1, kRho + 8);
    a.li(r4, kN);         // i
    a.label("rsweep_row");
    a.li(r5, kN - 2);     // j
    a.label("rsweep_cell");
    a.fld(f1, r29, 0);           // reload 0.5 from the literal pool
    a.fld(f5, r1, -8);
    a.fld(f6, r1, 0);
    a.fld(f9, r1, 8);
    emit_flux(f5, f6, f7, f8);   // fl
    emit_flux(f6, f9, f10, f8);  // fr
    a.fsub(f7, f7, f10);
    a.fmul(f7, f7, f2);
    a.fadd(f6, f6, f7);          // rn
    a.fsd(f6, r1, 0);
    a.fadd(f15, f15, f6);
    a.addi(r1, r1, 8);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "rsweep_cell");
    a.addi(r1, r1, 16);          // skip last + first of next row
    a.addi(r4, r4, -1);
    a.bgtz(r4, "rsweep_row");

    // Column sweep: r1 points at rho[kN + j].
    a.li(r6, 0);                 // j
    a.label("csweep_col");
    a.sll(r8, r6, 3);
    a.la(r1, kRho);
    a.add(r1, r1, r8);
    a.addi(r1, r1, kRow);        // rho[kN + j]
    a.li(r5, kN - 2);            // i
    a.label("csweep_cell");
    a.fld(f1, r29, 0);           // reload 0.5 from the literal pool
    a.fld(f5, r1, -kRow);
    a.fld(f6, r1, 0);
    a.fld(f9, r1, kRow);
    emit_flux(f5, f6, f7, f8);
    emit_flux(f6, f9, f10, f8);
    a.fsub(f7, f7, f10);
    a.fmul(f7, f7, f2);
    a.fadd(f6, f6, f7);
    a.fsd(f6, r1, 0);
    a.fadd(f15, f15, f6);
    a.addi(r1, r1, kRow);
    a.addi(r5, r5, -1);
    a.bgtz(r5, "csweep_cell");
    a.addi(r6, r6, 1);
    a.li(r8, kN);
    a.bne(r6, r8, "csweep_col");

    a.addi(r28, r28, -1);
    a.bgtz(r28, "pass");

    a.fmul(f15, f15, f3);
    a.cvtfi(r10, f15);
    a.out(r10);
    a.halt();

    isa::Program p = a.finish();
    p.addDoubles(kLit, {0.5});
    p.addDoubles(kRho, makeGrid());
    return p;
}

} // namespace predbus::workloads
